// Command doccheck is the CI driver behind `make doc-check`: godoc
// hygiene as a gate instead of a convention. It walks every package in
// the module and fails if any lacks a package comment; for the
// packages listed in strictPkgs it additionally requires a doc comment
// on every exported top-level symbol (types, functions, methods,
// consts, vars). Run it from the repository root.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// strictPkgs are directories (module-relative) held to the
// every-exported-symbol standard, not just the package-comment floor.
var strictPkgs = map[string]bool{
	"internal/serve": true,
}

func main() {
	problems, err := check(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck: FAIL:", err)
		os.Exit(1)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "doccheck:", p)
		}
		fmt.Fprintf(os.Stderr, "doccheck: FAIL: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("doccheck: ok")
}

func check(root string) ([]string, error) {
	// Collect every directory holding non-test .go files.
	dirs := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirs[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	sorted := make([]string, 0, len(dirs))
	for dir := range dirs {
		sorted = append(sorted, dir)
	}
	sort.Strings(sorted)

	var problems []string
	for _, dir := range sorted {
		ps, err := checkDir(dir)
		if err != nil {
			return nil, err
		}
		problems = append(problems, ps...)
	}
	return problems, nil
}

func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", dir, err)
	}

	rel := filepath.ToSlash(strings.TrimPrefix(dir, "./"))
	var problems []string
	for name, pkg := range pkgs {
		hasDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
				hasDoc = true
			}
		}
		if !hasDoc {
			problems = append(problems, fmt.Sprintf("%s: package %s has no package comment", rel, name))
		}
		if !strictPkgs[rel] {
			continue
		}
		for fname, f := range pkg.Files {
			problems = append(problems, checkExported(fset, fname, f)...)
		}
	}
	return problems, nil
}

// checkExported reports every exported top-level symbol in f that
// carries no doc comment.
func checkExported(fset *token.FileSet, fname string, f *ast.File) []string {
	var problems []string
	undocumented := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			// Methods on unexported receivers are not godoc-visible.
			if d.Recv != nil && !exportedRecv(d.Recv) {
				continue
			}
			kind := "function"
			if d.Recv != nil {
				kind = "method"
			}
			undocumented(d.Pos(), kind, d.Name.Name)
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
						undocumented(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						if n.IsExported() && d.Doc == nil && s.Doc == nil {
							undocumented(s.Pos(), d.Tok.String(), n.Name)
						}
					}
				}
			}
		}
	}
	return problems
}

// exportedRecv reports whether a method receiver names an exported
// type (unwrapping the pointer star).
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.IsExported()
	}
	return false
}
