package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dsr/internal/obs"
	"dsr/internal/obs/fleet"
)

func snapshotAt(queries, rpc0 uint64) *fleet.Snapshot {
	coord := obs.Snapshot{
		Build:    obs.BuildInfo{GoVersion: "go1.22"},
		Counters: map[string]uint64{},
		Gauges:   map[string]int64{},
		Histograms: map[string]obs.HistogramSnapshot{
			"dsr_query_latency_ns":                        {Count: queries, P50: 1000, P99: 5000},
			obs.Name("dsr_rpc_server_ns", "partition", 0): {Count: rpc0, P99: 700},
		},
	}
	coord.Counters["dsr_queries_total"] = queries
	coord.Counters[obs.Name("dsr_rpc_total", "partition", 0)] = rpc0
	coord.Counters[obs.Name("dsr_rpc_total", "partition", 1)] = rpc0 / 2
	coord.Counters[obs.Name("shard_retries_total", "partition", 0)] = 3
	return &fleet.Snapshot{
		Coordinator: coord,
		Shards: []fleet.ShardStatus{
			{Partition: 0, Replica: 0, Live: true},
			{Partition: 0, Replica: 1, Live: true},
			{Partition: 1, Replica: 0, Live: true},
			{Partition: 1, Replica: 1, Live: false, Error: "connection refused", Addr: "h:7001"},
		},
	}
}

func TestRenderRates(t *testing.T) {
	prev := snapshotAt(100, 40)
	cur := snapshotAt(150, 60)
	var b strings.Builder
	render(&b, prev, cur, 10*time.Second)
	out := b.String()

	// 50 queries over 10s → 5.0/s; 20 rpcs on partition 0 → 2.0/s.
	for _, want := range []string{
		"queries 5.0/s",
		"p99 5µs",
		"2.0", // partition 0 rpc rate
		"700ns",
		"2/2", // partition 0 replicas
		"1/2", // partition 1 replicas
		"! p1/r1 (h:7001): connection refused",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "0 ") || strings.HasPrefix(line, "1 ") {
			rows++
		}
	}
	if rows != 2 {
		t.Errorf("got %d partition rows, want 2:\n%s", rows, out)
	}
}

// TestRenderFirstFrame: with no previous snapshot the table must show
// totals, not rates (and not divide by zero).
func TestRenderFirstFrame(t *testing.T) {
	var b strings.Builder
	render(&b, nil, snapshotAt(100, 40), 0)
	out := b.String()
	if !strings.Contains(out, "queries 100.0total") {
		t.Errorf("first frame should show totals:\n%s", out)
	}
}

// TestCounterDeltaReset: a restarted coordinator's counters go
// backwards; the rate must clamp to the new total, never underflow.
func TestCounterDeltaReset(t *testing.T) {
	if got := counterDelta(500, 10, time.Second); got != 10 {
		t.Errorf("counterDelta after reset = %v, want 10", got)
	}
	if got := counterDelta(10, 30, 2*time.Second); got != 10 {
		t.Errorf("counterDelta = %v, want 10/s", got)
	}
}

// TestPollDecodes exercises the HTTP path against a fake /fleet.
func TestPollDecodes(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(snapshotAt(7, 3))
	}))
	defer srv.Close()
	snap, err := poll(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Coordinator.Counters["dsr_queries_total"] != 7 {
		t.Errorf("decoded snapshot = %+v", snap.Coordinator.Counters)
	}
	bad := httptest.NewServer(http.NotFoundHandler())
	defer bad.Close()
	if _, err := poll(bad.URL); err == nil {
		t.Error("poll of a 404 endpoint did not fail")
	}
}
