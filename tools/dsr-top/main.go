// Command dsr-top is a console top for a DSR deployment: it polls the
// coordinator's /fleet endpoint and renders rate deltas — coordinator
// QPS and latency quantiles, per-partition RPC rates, server-side p99,
// retry totals, and live replica counts — as a refreshing table.
//
//	dsr-top -fleet http://127.0.0.1:6060/fleet
//	dsr-top -fleet http://127.0.0.1:6060/fleet -interval 2s
//	dsr-top -fleet http://127.0.0.1:6060/fleet -once   # one table, no refresh
//
// Rates are computed from consecutive /fleet snapshots (counter deltas
// over the poll interval), so the first refresh shows totals and every
// later one shows per-second rates.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"sort"
	"strings"
	"time"

	"dsr/internal/obs"
	"dsr/internal/obs/fleet"
)

func main() {
	var (
		fleetURL = flag.String("fleet", "http://127.0.0.1:6060/fleet", "coordinator /fleet endpoint to poll")
		interval = flag.Duration("interval", time.Second, "refresh interval")
		once     = flag.Bool("once", false, "print one snapshot and exit (no rates, no screen clearing)")
	)
	flag.Parse()

	cur, err := poll(*fleetURL)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsr-top: %v\n", err)
		os.Exit(1)
	}
	if *once {
		render(os.Stdout, nil, cur, 0)
		return
	}
	prev := cur
	for {
		time.Sleep(*interval)
		cur, err = poll(*fleetURL)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsr-top: %v\n", err)
			os.Exit(1)
		}
		// ANSI home+clear so the table refreshes in place.
		fmt.Print("\x1b[H\x1b[2J")
		render(os.Stdout, prev, cur, *interval)
		prev = cur
	}
}

// poll fetches one fleet snapshot.
func poll(url string) (*fleet.Snapshot, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var snap fleet.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("GET %s: %v", url, err)
	}
	return &snap, nil
}

// partRe extracts the partition label from names like
// "dsr_rpc_total{partition=2}".
var partRe = regexp.MustCompile(`^([a-z_]+)\{partition=(\d+)\}$`)

// counterDelta is (cur-prev)/dt as a rate; with no prev (first frame,
// -once) it returns the current total unscaled.
func counterDelta(prev, cur uint64, dt time.Duration) float64 {
	if dt <= 0 {
		return float64(cur)
	}
	if cur < prev { // counter reset (coordinator restarted)
		prev = 0
	}
	return float64(cur-prev) / dt.Seconds()
}

// render writes one frame of the fleet table: coordinator QPS and
// latency, then one row per partition with RPC rate, server-side p99,
// cumulative retries, and live/configured replicas. prev may be nil
// (first frame), in which case rate columns show totals.
func render(w io.Writer, prev, cur *fleet.Snapshot, dt time.Duration) {
	rates := dt > 0 && prev != nil
	perSec := func(name string) float64 {
		var p uint64
		if prev != nil {
			p = prev.Coordinator.Counters[name]
		}
		return counterDelta(p, cur.Coordinator.Counters[name], dt)
	}
	unit := "total"
	if rates {
		unit = "/s"
	}
	lat := cur.Coordinator.Histograms["dsr_query_latency_ns"]
	fmt.Fprintf(w, "dsr-top — queries %.1f%s  p50 %v  p99 %v  build %s\n",
		perSec("dsr_queries_total"), unit,
		time.Duration(lat.P50), time.Duration(lat.P99),
		cur.Coordinator.Build.GoVersion)

	// Partition set: whatever the coordinator has per-partition RPC
	// counters for, plus every shard the fleet snapshot lists.
	parts := map[int]bool{}
	for name := range cur.Coordinator.Counters {
		if m := partRe.FindStringSubmatch(name); m != nil {
			var p int
			fmt.Sscanf(m[2], "%d", &p)
			parts[p] = true
		}
	}
	live := map[int]int{}
	replicas := map[int]int{}
	for _, st := range cur.Shards {
		parts[st.Partition] = true
		replicas[st.Partition]++
		if st.Live && st.Error == "" {
			live[st.Partition]++
		}
	}
	order := make([]int, 0, len(parts))
	for p := range parts {
		order = append(order, p)
	}
	sort.Ints(order)

	fmt.Fprintf(w, "%-10s %12s %14s %10s %9s\n",
		"partition", "rpc"+unit, "server p99", "retries", "replicas")
	fmt.Fprintln(w, strings.Repeat("-", 60))
	for _, p := range order {
		serverP99 := cur.Coordinator.Histograms[obs.Name("dsr_rpc_server_ns", "partition", p)].P99
		retries := cur.Coordinator.Counters[obs.Name("shard_retries_total", "partition", p)]
		fmt.Fprintf(w, "%-10d %12.1f %14v %10d %5d/%d\n",
			p,
			perSec(obs.Name("dsr_rpc_total", "partition", p)),
			time.Duration(serverP99),
			retries,
			live[p], replicas[p])
	}
	for _, st := range cur.Shards {
		if st.Error != "" {
			fmt.Fprintf(w, "! p%d/r%d (%s): %s\n", st.Partition, st.Replica, st.Addr, st.Error)
		}
	}
}
