// Command metricssmoke is the CI driver behind `make metrics-smoke`:
// it builds the real binaries, boots a k=2 dsr-shard fleet over
// loopback TCP with every process serving -metrics-addr, runs one
// query through dsr-query, and then asserts that
//
//   - GET /metrics on the coordinator parses as JSON with the
//     build/counters/gauges/histograms sections, and
//   - GET /fleet parses as a merged fleet snapshot listing both
//     shards, each scraped cleanly with its own registry attached.
//
// Run it from the repository root; it exits non-zero with a reason on
// the first broken invariant.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"time"

	"dsr/internal/obs/fleet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "metrics-smoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("metrics-smoke: ok")
}

var (
	servingRe = regexp.MustCompile(`serving on (\S+)`)
	metricsRe = regexp.MustCompile(`metrics on (http://\S+/metrics)`)
)

// waitLine scans lines from r until re matches, returning the first
// capture group. It gives up after 30s.
func waitLine(r io.Reader, re *regexp.Regexp, what string) (string, error) {
	found := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(r)
		for sc.Scan() {
			if m := re.FindStringSubmatch(sc.Text()); m != nil {
				found <- m[1]
				return
			}
		}
	}()
	select {
	case s := <-found:
		return s, nil
	case <-time.After(30 * time.Second):
		return "", fmt.Errorf("timed out waiting for %s", what)
	}
}

func getJSON(url string, into any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		return fmt.Errorf("GET %s: not valid JSON: %v", url, err)
	}
	return nil
}

func run() error {
	bin, err := os.MkdirTemp("", "metrics-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(bin)
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/dsr-shard", "./cmd/dsr-query").CombinedOutput(); err != nil {
		return fmt.Errorf("go build: %v\n%s", err, out)
	}
	graphPath := filepath.Join("internal", "graph", "testdata", "tiny.txt")
	if _, err := os.Stat(graphPath); err != nil {
		return fmt.Errorf("run from the repository root: %v", err)
	}

	// Boot the k=2 fleet, each shard with its own ops endpoint.
	const k = 2
	var procs []*exec.Cmd
	defer func() {
		for _, p := range procs {
			if p.Process != nil {
				p.Process.Kill()
				p.Wait()
			}
		}
	}()
	shardAddrs := make([]string, k)
	shards := make([]*exec.Cmd, k)
	for p := 0; p < k; p++ {
		cmd := exec.Command(filepath.Join(bin, "dsr-shard"),
			"-graph", graphPath, "-shards", fmt.Sprint(k), "-id", fmt.Sprint(p),
			"-listen", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0")
		stderr, err := cmd.StderrPipe()
		if err != nil {
			return err
		}
		if err := cmd.Start(); err != nil {
			return err
		}
		procs = append(procs, cmd)
		shards[p] = cmd
		if shardAddrs[p], err = waitLine(stderr, servingRe, fmt.Sprintf("shard %d address", p)); err != nil {
			return err
		}
	}

	query := exec.Command(filepath.Join(bin, "dsr-query"),
		"-shards", strings.Join(shardAddrs, ","), "-metrics-addr", "127.0.0.1:0")
	qerr, err := query.StderrPipe()
	if err != nil {
		return err
	}
	stdin, err := query.StdinPipe()
	if err != nil {
		return err
	}
	stdout, err := query.StdoutPipe()
	if err != nil {
		return err
	}
	if err := query.Start(); err != nil {
		return err
	}
	procs = append(procs, query)
	metricsURL, err := waitLine(qerr, metricsRe, "coordinator metrics endpoint")
	if err != nil {
		return err
	}

	// One answered query so the counters below describe real traffic.
	if _, err := io.WriteString(stdin, "0 | 7\n"); err != nil {
		return err
	}
	answer, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		return fmt.Errorf("read answer: %v", err)
	}
	if got := strings.TrimSpace(answer); got != "true" && got != "false" {
		return fmt.Errorf("query answered %q, want true/false", got)
	}

	// /metrics: a JSON document with all four registry sections.
	var doc map[string]json.RawMessage
	if err := getJSON(metricsURL, &doc); err != nil {
		return err
	}
	for _, key := range []string{"build", "counters", "gauges", "histograms"} {
		if _, ok := doc[key]; !ok {
			return fmt.Errorf("/metrics JSON missing %q section", key)
		}
	}
	var build struct {
		GoVersion string `json:"go_version"`
	}
	if err := json.Unmarshal(doc["build"], &build); err != nil || build.GoVersion == "" {
		return fmt.Errorf("/metrics build section unusable (%v): %s", err, doc["build"])
	}

	// /fleet: both shards merged, scraped cleanly, registries attached.
	fleetURL := strings.TrimSuffix(metricsURL, "/metrics") + "/fleet"
	var snap fleet.Snapshot
	if err := getJSON(fleetURL, &snap); err != nil {
		return err
	}
	if snap.Coordinator.Counters["dsr_queries_total"] == 0 {
		return fmt.Errorf("/fleet coordinator section shows no queries")
	}
	if len(snap.Shards) != k {
		return fmt.Errorf("/fleet lists %d shards, want %d", len(snap.Shards), k)
	}
	for i, st := range snap.Shards {
		if st.Partition != i {
			return fmt.Errorf("/fleet shard %d has partition %d (not sorted?)", i, st.Partition)
		}
		if !st.Live || st.Error != "" || st.Metrics == nil {
			return fmt.Errorf("/fleet shard %d not scraped cleanly: live=%v err=%q", i, st.Live, st.Error)
		}
		if st.Metrics.Build.GoVersion == "" {
			return fmt.Errorf("/fleet shard %d snapshot missing build info", i)
		}
	}

	// Clean teardown: the coordinator exits 0 on EOF, shards on SIGTERM.
	stdin.Close()
	if err := query.Wait(); err != nil {
		return fmt.Errorf("dsr-query exited non-zero: %v", err)
	}
	for p, cmd := range shards {
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			return err
		}
		if err := cmd.Wait(); err != nil {
			return fmt.Errorf("shard %d did not drain cleanly: %v", p, err)
		}
	}
	procs = nil
	return nil
}
