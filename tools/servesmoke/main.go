// Command servesmoke is the CI driver behind `make serve-smoke`: it
// builds the real binaries, boots a k=2 dsr-shard fleet over loopback
// TCP, starts dsr-serve in front of it, and drives the serving layer
// end to end:
//
//   - two queries through one client connection, answers checked
//     against the tiny.txt graph,
//   - the repeat answered from the result cache
//     (dsr_cache_hits_total >= 1 on /metrics),
//   - the serving counters present and consistent
//     (dsr_serve_queries_total, dsr_serve_batches_total),
//   - SIGTERM draining the server to a clean exit 0.
//
// Run it from the repository root; it exits non-zero with a reason on
// the first broken invariant.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"time"

	"dsr/internal/graph"
	"dsr/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "serve-smoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("serve-smoke: ok")
}

var (
	servingRe = regexp.MustCompile(`serving on (\S+)`)
	metricsRe = regexp.MustCompile(`metrics on (http://\S+/metrics)`)
)

// waitLine scans lines from r until re matches, returning the first
// capture group. It gives up after 30s. One call consumes the stream
// up to its match; callers needing several patterns from one stream
// must capture them in one pass (see waitServeAddrs).
func waitLine(r io.Reader, re *regexp.Regexp, what string) (string, error) {
	found := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(r)
		for sc.Scan() {
			if m := re.FindStringSubmatch(sc.Text()); m != nil {
				found <- m[1]
				return
			}
		}
	}()
	select {
	case s := <-found:
		return s, nil
	case <-time.After(30 * time.Second):
		return "", fmt.Errorf("timed out waiting for %s", what)
	}
}

// waitServeAddrs reads dsr-serve's stderr in one pass, collecting the
// metrics URL (announced first) and then the query-protocol address;
// it keeps draining the pipe afterwards so the process never blocks on
// stderr.
func waitServeAddrs(r io.Reader) (metricsURL, serveAddr string, err error) {
	type addrs struct{ metrics, serve string }
	found := make(chan addrs, 1)
	go func() {
		var got addrs
		sc := bufio.NewScanner(r)
		for sc.Scan() {
			line := sc.Text()
			if m := metricsRe.FindStringSubmatch(line); m != nil {
				got.metrics = m[1]
			}
			if m := servingRe.FindStringSubmatch(line); m != nil {
				got.serve = m[1]
				found <- got
				break
			}
		}
		for sc.Scan() {
		}
	}()
	select {
	case got := <-found:
		if got.metrics == "" {
			return "", "", fmt.Errorf("dsr-serve announced no metrics endpoint")
		}
		return got.metrics, got.serve, nil
	case <-time.After(30 * time.Second):
		return "", "", fmt.Errorf("timed out waiting for dsr-serve addresses")
	}
}

func run() error {
	bin, err := os.MkdirTemp("", "serve-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(bin)
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/dsr-shard", "./cmd/dsr-serve").CombinedOutput(); err != nil {
		return fmt.Errorf("go build: %v\n%s", err, out)
	}
	graphPath := filepath.Join("internal", "graph", "testdata", "tiny.txt")
	if _, err := os.Stat(graphPath); err != nil {
		return fmt.Errorf("run from the repository root: %v", err)
	}

	const k = 2
	var procs []*exec.Cmd
	defer func() {
		for _, p := range procs {
			if p.Process != nil {
				p.Process.Kill()
				p.Wait()
			}
		}
	}()
	shardAddrs := make([]string, k)
	for p := 0; p < k; p++ {
		cmd := exec.Command(filepath.Join(bin, "dsr-shard"),
			"-graph", graphPath, "-shards", fmt.Sprint(k), "-id", fmt.Sprint(p),
			"-listen", "127.0.0.1:0")
		stderr, err := cmd.StderrPipe()
		if err != nil {
			return err
		}
		if err := cmd.Start(); err != nil {
			return err
		}
		procs = append(procs, cmd)
		if shardAddrs[p], err = waitLine(stderr, servingRe, fmt.Sprintf("shard %d address", p)); err != nil {
			return err
		}
	}

	srv := exec.Command(filepath.Join(bin, "dsr-serve"),
		"-shards", strings.Join(shardAddrs, ","),
		"-listen", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0")
	serr, err := srv.StderrPipe()
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	procs = append(procs, srv)
	metricsURL, serveAddr, err := waitServeAddrs(serr)
	if err != nil {
		return err
	}

	// Three queries: an answer, its cached repeat, and the opposite
	// direction — tiny.txt reaches 0->7 but never 7->0.
	c, err := serve.Dial(serveAddr)
	if err != nil {
		return err
	}
	defer c.Close()
	for i := 0; i < 2; i++ {
		ans, err := c.Query([]graph.VertexID{0}, []graph.VertexID{7})
		if err != nil {
			return fmt.Errorf("query %d: %v", i, err)
		}
		if !ans {
			return fmt.Errorf("query %d: 0->7 answered false", i)
		}
	}
	ans, err := c.Query([]graph.VertexID{7}, []graph.VertexID{0})
	if err != nil {
		return err
	}
	if ans {
		return fmt.Errorf("7->0 answered true")
	}

	var snap struct {
		Counters map[string]uint64 `json:"counters"`
	}
	resp, err := http.Get(metricsURL)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", metricsURL, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return fmt.Errorf("GET %s: not valid JSON: %v", metricsURL, err)
	}
	if got := snap.Counters["dsr_serve_queries_total"]; got != 3 {
		return fmt.Errorf("dsr_serve_queries_total = %d, want 3", got)
	}
	if got := snap.Counters["dsr_cache_hits_total"]; got < 1 {
		return fmt.Errorf("dsr_cache_hits_total = %d, want >= 1 (the repeated query)", got)
	}
	if got := snap.Counters["dsr_serve_batches_total"]; got < 1 || got > 2 {
		return fmt.Errorf("dsr_serve_batches_total = %d, want 1..2 (two misses, one cached)", got)
	}

	// Clean teardown: dsr-serve drains on SIGTERM, shards likewise.
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	if err := srv.Wait(); err != nil {
		return fmt.Errorf("dsr-serve did not drain cleanly: %v", err)
	}
	for p := 0; p < k; p++ {
		if err := procs[p].Process.Signal(syscall.SIGTERM); err != nil {
			return err
		}
		if err := procs[p].Wait(); err != nil {
			return fmt.Errorf("shard %d did not drain cleanly: %v", p, err)
		}
	}
	procs = nil
	return nil
}
