// Command benchjson converts `go test -bench` text output on stdin into
// a JSON array on stdout, one object per benchmark result line:
//
//	[{"name": "BenchmarkIndexBuild-8", "pkg": "dsr/internal/dsr",
//	  "iterations": 1, "metrics": {"ns/op": 2.1e8, "B/op": 123, ...}}]
//
// -only and -not filter result lines by benchmark-name regexp, so one
// benchmark run can be split into several artifacts. `make bench-json`
// runs it twice over the same output to emit BENCH_build.json (index
// construction) and BENCH_query.json (query paths, including the
// batched and TCP variants), which CI uploads as workflow artifacts so
// the perf trajectory is recorded per commit.
//
// -compare turns it into the CI benchmark-regression gate:
//
//	benchjson -compare baseline.json new.json -tolerance 1.3
//
// exits non-zero (printing each offender) when any benchmark present in
// both files regressed past tolerance on ns/op or allocs/op. Benchmark
// names are matched with the -N GOMAXPROCS suffix stripped, so a
// baseline recorded on one machine gates runs on another; `make
// bench-gate` compares a fresh run against the committed
// BENCH_baseline/ files and `make bench-baseline` re-records them.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	only := flag.String("only", "", "keep only benchmarks whose name matches this regexp")
	not := flag.String("not", "", "drop benchmarks whose name matches this regexp")
	compareMode := flag.Bool("compare", false, "compare two benchmark JSON files (baseline, new) and exit non-zero on regressions")
	tolerance := flag.Float64("tolerance", 1.3, "with -compare: fail when new ns/op or allocs/op exceeds baseline by more than this factor")
	flag.Parse()

	if *compareMode {
		os.Exit(runCompare(flag.Args(), tolerance))
	}

	var onlyRe, notRe *regexp.Regexp
	var err error
	if *only != "" {
		if onlyRe, err = regexp.Compile(*only); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: -only:", err)
			os.Exit(2)
		}
	}
	if *not != "" {
		if notRe, err = regexp.Compile(*not); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: -not:", err)
			os.Exit(2)
		}
	}
	results, err := parseBench(os.Stdin, onlyRe, notRe)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}
}

// runCompare implements the -compare mode. args are the remaining
// command-line arguments: the two JSON files, optionally followed by
// more flags (the documented invocation puts -tolerance after the file
// names, where the flag package stops parsing — so re-parse the tail).
func runCompare(args []string, tolerance *float64) int {
	fs := flag.NewFlagSet("benchjson -compare", flag.ContinueOnError)
	fs.Float64Var(tolerance, "tolerance", *tolerance, "regression tolerance factor")
	var files []string
	// Alternate positional/flag parsing so files and flags may interleave.
	for len(args) > 0 {
		if strings.HasPrefix(args[0], "-") {
			if err := fs.Parse(args); err != nil {
				return 2
			}
			args = fs.Args()
			continue
		}
		files = append(files, args[0])
		args = args[1:]
	}
	if len(files) != 2 {
		fmt.Fprintln(os.Stderr, "benchjson: -compare wants exactly two files: baseline.json new.json")
		return 2
	}
	if *tolerance <= 0 {
		fmt.Fprintln(os.Stderr, "benchjson: -tolerance must be > 0")
		return 2
	}
	base, err := loadResults(files[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	next, err := loadResults(files[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	return reportCompare(os.Stdout, base, next, *tolerance)
}

func loadResults(path string) ([]result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rs []result
	if err := json.Unmarshal(data, &rs); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return rs, nil
}

// parseBench converts `go test -bench` text output into results,
// keeping only benchmarks passing the only/not filters (either may be
// nil).
func parseBench(r io.Reader, onlyRe, notRe *regexp.Regexp) ([]result, error) {
	in := bufio.NewScanner(r)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	results := []result{}
	pkg := ""
	for in.Scan() {
		line := strings.TrimSpace(in.Text())
		// `go test -bench ./...` prints "pkg: <path>" headers (and ok/FAIL
		// trailers) between benchmark lines; remember the current package.
		if rest, found := strings.CutPrefix(line, "pkg:"); found {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 3 {
			continue
		}
		if onlyRe != nil && !onlyRe.MatchString(f[0]) {
			continue
		}
		if notRe != nil && notRe.MatchString(f[0]) {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		r := result{Name: f[0], Pkg: pkg, Iterations: iters, Metrics: map[string]float64{}}
		// The rest of the line is (value, unit) pairs: ns/op, B/op, ...
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			r.Metrics[f[i+1]] = v
		}
		results = append(results, r)
	}
	if err := in.Err(); err != nil {
		return nil, err
	}
	return results, nil
}
