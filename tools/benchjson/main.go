// Command benchjson converts `go test -bench` text output on stdin into
// a JSON array on stdout, one object per benchmark result line:
//
//	[{"name": "BenchmarkIndexBuild-8", "pkg": "dsr/internal/dsr",
//	  "iterations": 1, "metrics": {"ns/op": 2.1e8, "B/op": 123, ...}}]
//
// -only and -not filter result lines by benchmark-name regexp, so one
// benchmark run can be split into several artifacts. `make bench-json`
// runs it twice over the same output to emit BENCH_build.json (index
// construction) and BENCH_query.json (query paths, including the
// batched and TCP variants), which CI uploads as workflow artifacts so
// the perf trajectory is recorded per commit.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	only := flag.String("only", "", "keep only benchmarks whose name matches this regexp")
	not := flag.String("not", "", "drop benchmarks whose name matches this regexp")
	flag.Parse()
	var onlyRe, notRe *regexp.Regexp
	var err error
	if *only != "" {
		if onlyRe, err = regexp.Compile(*only); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: -only:", err)
			os.Exit(2)
		}
	}
	if *not != "" {
		if notRe, err = regexp.Compile(*not); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: -not:", err)
			os.Exit(2)
		}
	}
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	results := []result{}
	pkg := ""
	for in.Scan() {
		line := strings.TrimSpace(in.Text())
		// `go test -bench ./...` prints "pkg: <path>" headers (and ok/FAIL
		// trailers) between benchmark lines; remember the current package.
		if rest, found := strings.CutPrefix(line, "pkg:"); found {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 3 {
			continue
		}
		if onlyRe != nil && !onlyRe.MatchString(f[0]) {
			continue
		}
		if notRe != nil && notRe.MatchString(f[0]) {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		r := result{Name: f[0], Pkg: pkg, Iterations: iters, Metrics: map[string]float64{}}
		// The rest of the line is (value, unit) pairs: ns/op, B/op, ...
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			r.Metrics[f[i+1]] = v
		}
		results = append(results, r)
	}
	if err := in.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}
}
