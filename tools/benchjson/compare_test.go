package main

import (
	"strings"
	"testing"
)

func res(pkg, name string, nsOp, allocsOp float64) result {
	return result{
		Name: name, Pkg: pkg, Iterations: 1,
		Metrics: map[string]float64{"ns/op": nsOp, "allocs/op": allocsOp},
	}
}

// TestCompareCatchesSyntheticRegression is the gate's acceptance test:
// a synthetic 2x ns/op regression must fail at tolerance 1.3, and the
// unchanged baseline must pass.
func TestCompareCatchesSyntheticRegression(t *testing.T) {
	base := []result{
		res("dsr/internal/dsr", "BenchmarkQuery-8", 35000, 0),
		res("dsr/internal/dsr", "BenchmarkIndexBuild-8", 1.5e8, 900),
	}
	doubled := []result{
		res("dsr/internal/dsr", "BenchmarkQuery-8", 70000, 0), // 2x ns/op
		res("dsr/internal/dsr", "BenchmarkIndexBuild-8", 1.5e8, 900),
	}
	regs, missing := compare(base, doubled, 1.3)
	if len(missing) != 0 {
		t.Errorf("unexpected missing: %v", missing)
	}
	if len(regs) != 1 || regs[0].Metric != "ns/op" || !strings.Contains(regs[0].Key, "BenchmarkQuery") {
		t.Fatalf("2x ns/op regression not caught: %+v", regs)
	}

	// The identical baseline passes.
	if regs, _ := compare(base, base, 1.3); len(regs) != 0 {
		t.Fatalf("baseline vs itself flagged: %+v", regs)
	}
	// Small noise within tolerance passes.
	noisy := []result{
		res("dsr/internal/dsr", "BenchmarkQuery-8", 40000, 0), // 1.14x
		res("dsr/internal/dsr", "BenchmarkIndexBuild-8", 1.7e8, 900),
	}
	if regs, _ := compare(base, noisy, 1.3); len(regs) != 0 {
		t.Fatalf("within-tolerance noise flagged: %+v", regs)
	}
}

// TestCompareAllocRegression: allocs/op is gated too, and a 0-alloc
// baseline tolerates no allocation at all — the lock on the
// allocation-free query path.
func TestCompareAllocRegression(t *testing.T) {
	base := []result{res("p", "BenchmarkQuery-8", 1000, 0)}
	leaky := []result{res("p", "BenchmarkQuery-8", 1000, 1)}
	regs, _ := compare(base, leaky, 1.3)
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Fatalf("new allocation on 0-alloc baseline not caught: %+v", regs)
	}

	base = []result{res("p", "BenchmarkIndexBuild-8", 1000, 100)}
	grown := []result{res("p", "BenchmarkIndexBuild-8", 1000, 400)}
	if regs, _ := compare(base, grown, 1.3); len(regs) != 1 {
		t.Fatalf("4x allocs/op regression not caught: %+v", regs)
	}
}

// TestCompareKeysAcrossMachines: the -N GOMAXPROCS suffix must not
// defeat matching (baseline machine and CI runner differ in cores),
// while genuinely different benchmarks must not collide.
func TestCompareKeysAcrossMachines(t *testing.T) {
	base := []result{res("p", "BenchmarkQuery-8", 1000, 0)}
	next := []result{res("p", "BenchmarkQuery-4", 2500, 0)}
	regs, missing := compare(base, next, 1.3)
	if len(missing) != 0 {
		t.Fatalf("suffix mismatch treated as missing: %v", missing)
	}
	if len(regs) != 1 {
		t.Fatalf("regression hidden by suffix mismatch: %+v", regs)
	}
	// Sub-benchmarks keep their full path.
	if k := benchKey(res("p", "BenchmarkPartitionQuality/locality-8", 1, 0)); k != "p.BenchmarkPartitionQuality/locality" {
		t.Errorf("benchKey = %q", k)
	}
	// Same name in different packages must not collide.
	a := res("pkg/a", "BenchmarkX-2", 100, 0)
	b := res("pkg/b", "BenchmarkX-2", 100, 0)
	if benchKey(a) == benchKey(b) {
		t.Error("cross-package key collision")
	}
}

// TestCompareMissingAndExtra: removed benchmarks are reported (not
// failed); added benchmarks are ignored until baselined.
func TestCompareMissingAndExtra(t *testing.T) {
	base := []result{res("p", "BenchmarkGone-8", 1000, 0)}
	next := []result{res("p", "BenchmarkNew-8", 99999, 50)}
	regs, missing := compare(base, next, 1.3)
	if len(regs) != 0 {
		t.Fatalf("unrelated benchmarks flagged: %+v", regs)
	}
	if len(missing) != 1 || missing[0] != "p.BenchmarkGone" {
		t.Fatalf("missing = %v, want [p.BenchmarkGone]", missing)
	}
}

// TestReportCompareExitCodes pins the gate's contract: 0 clean, 1 on
// regression, and the offender named in the output.
func TestReportCompareExitCodes(t *testing.T) {
	base := []result{res("p", "BenchmarkQuery-8", 1000, 0)}
	var out strings.Builder
	if code := reportCompare(&out, base, base, 1.3); code != 0 {
		t.Fatalf("clean compare exit %d:\n%s", code, out.String())
	}
	out.Reset()
	bad := []result{res("p", "BenchmarkQuery-8", 2000, 0)}
	if code := reportCompare(&out, base, bad, 1.3); code != 1 {
		t.Fatalf("regressed compare exit %d", code)
	}
	if !strings.Contains(out.String(), "REGRESSION") || !strings.Contains(out.String(), "BenchmarkQuery") {
		t.Fatalf("report does not name the offender:\n%s", out.String())
	}
}

// TestParseBenchRoundTrip pins the text parser the artifacts and the
// gate both depend on.
func TestParseBenchRoundTrip(t *testing.T) {
	const benchOut = `goos: linux
pkg: dsr/internal/dsr
BenchmarkQuery-8        	   34054	     35123 ns/op	       0 B/op	       0 allocs/op
BenchmarkIndexBuild-8   	       7	 151234567 ns/op	 1234567 B/op	     900 allocs/op
ok  	dsr/internal/dsr	3.1s
pkg: dsr/internal/partition/locality
BenchmarkPartitionQuality/locality-8 	      18	  61234567 ns/op	      4730 boundary	      2455 cutedges
ok  	dsr/internal/partition/locality	2.2s
`
	rs, err := parseBench(strings.NewReader(benchOut), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(rs), rs)
	}
	if rs[0].Pkg != "dsr/internal/dsr" || rs[0].Metrics["ns/op"] != 35123 || rs[0].Metrics["allocs/op"] != 0 {
		t.Errorf("result 0: %+v", rs[0])
	}
	if rs[2].Pkg != "dsr/internal/partition/locality" || rs[2].Metrics["boundary"] != 4730 {
		t.Errorf("result 2: %+v", rs[2])
	}
}
