package main

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// gatedMetrics are the metrics the regression gate enforces. Throughput
// (ns/op) and allocation count (allocs/op) regressions are what CI must
// catch; B/op tracks allocs/op closely and custom metrics (boundary,
// cutedges, ...) are quality numbers whose "direction of bad" the gate
// cannot know.
var gatedMetrics = []string{"ns/op", "allocs/op"}

// regression is one metric of one benchmark exceeding tolerance.
type regression struct {
	Key    string
	Metric string
	Old    float64
	New    float64
}

// compare checks every gated metric of every benchmark present in both
// base and next against next <= base*tolerance, and returns the
// regressions plus the keys of base benchmarks missing from next
// (renamed or deleted — reported so a rename cannot silently retire a
// gate, but not failed, since intentional removals are legitimate and
// re-baselining handles them).
//
// Keys are pkg + benchmark name with the -N GOMAXPROCS suffix stripped:
// the baseline machine and the CI runner may differ in core count, and
// "BenchmarkQuery-8" vs "BenchmarkQuery-4" are the same benchmark. A
// baseline metric of exactly 0 (the 0 allocs/op query path) tolerates
// nothing: any nonzero value is a regression, which is precisely the
// lock the allocation-free paths want.
func compare(base, next []result, tolerance float64) (regs []regression, missing []string) {
	nextByKey := make(map[string]result, len(next))
	for _, r := range next {
		nextByKey[benchKey(r)] = r
	}
	for _, o := range base {
		key := benchKey(o)
		n, ok := nextByKey[key]
		if !ok {
			missing = append(missing, key)
			continue
		}
		for _, m := range gatedMetrics {
			ov, ook := o.Metrics[m]
			nv, nok := n.Metrics[m]
			if !ook || !nok {
				continue
			}
			if nv > ov*tolerance {
				regs = append(regs, regression{Key: key, Metric: m, Old: ov, New: nv})
			}
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Key != regs[j].Key {
			return regs[i].Key < regs[j].Key
		}
		return regs[i].Metric < regs[j].Metric
	})
	sort.Strings(missing)
	return regs, missing
}

// benchKey identifies a benchmark across machines: package plus name
// with the trailing -N parallelism suffix removed.
func benchKey(r result) string {
	name := r.Name
	if i := strings.LastIndex(name, "-"); i > 0 && isDigits(name[i+1:]) {
		name = name[:i]
	}
	if r.Pkg == "" {
		return name
	}
	return r.Pkg + "." + name
}

func isDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// reportCompare renders the comparison for humans and returns the
// process exit code: 0 when nothing regressed, 1 otherwise.
func reportCompare(w io.Writer, base, next []result, tolerance float64) int {
	regs, missing := compare(base, next, tolerance)
	for _, key := range missing {
		fmt.Fprintf(w, "benchjson: note: %s in baseline but not in new results (renamed or deleted? re-baseline with `make bench-baseline`)\n", key)
	}
	if len(regs) == 0 {
		fmt.Fprintf(w, "benchjson: no regressions (%d baseline benchmarks, tolerance %.2fx)\n", len(base), tolerance)
		return 0
	}
	for _, r := range regs {
		ratio := "inf"
		if r.Old != 0 {
			ratio = fmt.Sprintf("%.2fx", r.New/r.Old)
		}
		fmt.Fprintf(w, "benchjson: REGRESSION %s %s: %.6g -> %.6g (%s, tolerance %.2fx)\n",
			r.Key, r.Metric, r.Old, r.New, ratio, tolerance)
	}
	fmt.Fprintf(w, "benchjson: %d regression(s); if intentional, re-baseline with `make bench-baseline`\n", len(regs))
	return 1
}
