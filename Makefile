GO ?= go

.PHONY: build test test-e2e vet fmt fmt-check lint bench bench-smoke bench-json

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Localhost shard e2e under the race detector: boots real TCP shard
# servers (in-process and as the actual dsr-shard/dsr-query binaries)
# and differentially checks distributed answers against the oracle.
test-e2e:
	$(GO) test -race -count=1 -run 'TCP|Distributed' ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

# Fails (with the offending files listed) if anything is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

lint: vet fmt-check

bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# One iteration per benchmark: cheap CI smoke that the harness still runs.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Same cheap single-iteration run, converted to per-commit JSON perf
# records (tools/benchjson does the parse): BENCH_query.json captures
# the query paths (BenchmarkQuery, BenchmarkQueryBatch, and the TCP
# variants), BENCH_build.json everything else. Separate steps, not a
# pipe: a pipe would return benchjson's exit status and mask benchmark
# failures.
bench-json:
	$(GO) test -bench=. -benchmem -benchtime=1x -run='^$$' ./... > bench.out
	$(GO) run ./tools/benchjson -not '^Benchmark((TCP)?Query|NaiveReach)' < bench.out > BENCH_build.json
	$(GO) run ./tools/benchjson -only '^Benchmark((TCP)?Query|NaiveReach)' < bench.out > BENCH_query.json
	@rm -f bench.out
	@echo "wrote BENCH_build.json and BENCH_query.json"
