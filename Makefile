GO ?= go

.PHONY: build test vet fmt fmt-check lint bench bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

# Fails (with the offending files listed) if anything is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

lint: vet fmt-check

bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# One iteration per benchmark: cheap CI smoke that the harness still runs.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...
