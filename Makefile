GO ?= go

.PHONY: build test vet fmt fmt-check lint bench bench-smoke bench-json

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

# Fails (with the offending files listed) if anything is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

lint: vet fmt-check

bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# One iteration per benchmark: cheap CI smoke that the harness still runs.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Same cheap single-iteration run, converted to BENCH_build.json so CI
# can archive a per-commit perf record (tools/benchjson does the parse).
# Two steps, not a pipe: a pipe would return benchjson's exit status and
# mask benchmark failures.
bench-json:
	$(GO) test -bench=. -benchmem -benchtime=1x -run='^$$' ./... > bench.out
	$(GO) run ./tools/benchjson < bench.out > BENCH_build.json
	@rm -f bench.out
	@echo "wrote BENCH_build.json"
