GO ?= go

# Benchmark-regression gate settings. BENCH_TIME=100x amortizes warmup
# (first-round arena growth would otherwise dominate allocs/op and
# ns/op) while keeping the full gate run under a minute. BENCH_TOLERANCE
# is deliberately looser than benchjson's 1.3 default: the gate compares
# a committed baseline against runs on shared CI runners, so it is tuned
# to catch real regressions (2x+) without flaking on scheduler noise.
# allocs/op is noise-free at 100 iterations, so the same tolerance is an
# effectively exact gate there — including 0 allocs/op staying 0.
BENCH_TOLERANCE ?= 1.6
BENCH_TIME ?= 100x
FUZZ_TIME ?= 30s

# Committed coverage minima for the replication/failover-critical
# packages plus the wire protocol (cover-gate). The slack absorbs
# small refactors, while a real test deletion trips the gate.
COVER_MIN_SHARD ?= 85.0
COVER_MIN_CHAOS ?= 85.0
COVER_MIN_DSR ?= 87.0
COVER_MIN_WIRE ?= 85.0
COVER_MIN_OBS ?= 85.0
COVER_MIN_FLEET ?= 85.0
COVER_MIN_SERVE ?= 85.0
COVER_MIN_SNAPSHOT ?= 85.0

.PHONY: build test test-e2e vet fmt fmt-check lint bench bench-smoke bench-json bench-baseline bench-gate cover-gate fuzz-smoke metrics-smoke serve-smoke doc-check vulncheck

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Localhost shard e2e under the race detector: boots real TCP shard
# servers (in-process and as the actual dsr-shard/dsr-query binaries,
# including R>1 replica fleets with mid-stream kills) and the chaos
# suites (seeded fault injection, frame-cutting proxies), all checked
# differentially against the oracle.
test-e2e:
	$(GO) test -race -count=1 -run 'TCP|Distributed|Chaos|Replicated|Proxy' ./...

# Coverage gate: `go test -cover` on the packages that implement and
# prove replication/failover, compared against the committed minima
# above. A failing test or a coverage drop past the minimum fails the
# target; raise the minima when coverage rises for keeps.
cover-gate:
	@out="$$($(GO) test -count=1 -cover ./internal/shard ./internal/shard/chaos ./internal/dsr ./internal/wire ./internal/obs ./internal/obs/fleet ./internal/serve ./internal/snapshot)"; \
	status=$$?; echo "$$out"; \
	echo "$$out" | awk -v ms=$(COVER_MIN_SHARD) -v mc=$(COVER_MIN_CHAOS) -v md=$(COVER_MIN_DSR) -v mw=$(COVER_MIN_WIRE) -v mo=$(COVER_MIN_OBS) -v mf=$(COVER_MIN_FLEET) -v mv=$(COVER_MIN_SERVE) -v mn=$(COVER_MIN_SNAPSHOT) ' \
		$$1 == "FAIL" { fail = 1 } \
		/coverage:/ { \
			pct = ""; for (i = 1; i <= NF; i++) if ($$i ~ /%$$/) { pct = $$i; gsub("%", "", pct) } \
			min = -1; \
			if ($$2 == "dsr/internal/shard") min = ms; \
			if ($$2 == "dsr/internal/shard/chaos") min = mc; \
			if ($$2 == "dsr/internal/dsr") min = md; \
			if ($$2 == "dsr/internal/wire") min = mw; \
			if ($$2 == "dsr/internal/obs") min = mo; \
			if ($$2 == "dsr/internal/obs/fleet") min = mf; \
			if ($$2 == "dsr/internal/serve") min = mv; \
			if ($$2 == "dsr/internal/snapshot") min = mn; \
			if (min >= 0) { \
				seen++; \
				if (pct + 0 < min + 0) { printf "cover-gate: %s %.1f%% < %.1f%% minimum\n", $$2, pct, min; fail = 1 } \
				else printf "cover-gate: %s %.1f%% (minimum %.1f%%)\n", $$2, pct, min \
			} \
		} \
		END { if (seen != 8) { printf "cover-gate: expected 8 coverage lines, saw %d\n", seen; fail = 1 }; exit fail }' \
	&& [ $$status -eq 0 ]

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

# Fails (with the offending files listed) if anything is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

lint: vet fmt-check

bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# One iteration per benchmark: cheap CI smoke that the harness still runs.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Same cheap single-iteration run, converted to per-commit JSON perf
# records (tools/benchjson does the parse): BENCH_query.json captures
# the query paths (BenchmarkQuery, BenchmarkQueryBatch, and the TCP
# variants), BENCH_build.json everything else. Separate steps, not a
# pipe: a pipe would return benchjson's exit status and mask benchmark
# failures.
bench-json:
	$(GO) test -bench=. -benchmem -benchtime=1x -run='^$$' ./... > bench.out
	$(GO) run ./tools/benchjson -not '^Benchmark((TCP)?Query|NaiveReach)' < bench.out > BENCH_build.json
	$(GO) run ./tools/benchjson -only '^Benchmark((TCP)?Query|NaiveReach)' < bench.out > BENCH_query.json
	@rm -f bench.out
	@echo "wrote BENCH_build.json and BENCH_query.json"

# Re-record the committed benchmark baseline that bench-gate compares
# against. Run this (and commit BENCH_baseline/) when a perf change is
# intentional; the gate's output names this target on failure.
bench-baseline:
	$(GO) test -bench=. -benchmem -benchtime=$(BENCH_TIME) -run='^$$' ./... > bench-baseline.out
	@mkdir -p BENCH_baseline
	$(GO) run ./tools/benchjson -not '^Benchmark((TCP)?Query|NaiveReach)' < bench-baseline.out > BENCH_baseline/BENCH_build.json
	$(GO) run ./tools/benchjson -only '^Benchmark((TCP)?Query|NaiveReach)' < bench-baseline.out > BENCH_baseline/BENCH_query.json
	@rm -f bench-baseline.out
	@echo "wrote BENCH_baseline/BENCH_build.json and BENCH_baseline/BENCH_query.json"

# CI benchmark-regression gate: run the suite fresh (same benchtime as
# the baseline) and fail if ns/op or allocs/op regressed past
# BENCH_TOLERANCE on any benchmark in the committed baseline. Names are
# matched with the -N core-count suffix stripped, so the baseline
# machine and the CI runner need not have the same core count — but
# ns/op is still absolute time, so record the baseline on hardware in
# the same class as the gate runner (CI's own bench-smoke artifacts are
# a good source) or widen BENCH_TOLERANCE; allocs/op is exact on any
# machine and is where the gate has teeth regardless. Both suites are
# compared even if the first regresses, so one run reports everything.
bench-gate:
	$(GO) test -bench=. -benchmem -benchtime=$(BENCH_TIME) -run='^$$' ./... > bench-gate.out
	$(GO) run ./tools/benchjson -not '^Benchmark((TCP)?Query|NaiveReach)' < bench-gate.out > bench-gate-build.json
	$(GO) run ./tools/benchjson -only '^Benchmark((TCP)?Query|NaiveReach)' < bench-gate.out > bench-gate-query.json
	@fail=0; \
	$(GO) run ./tools/benchjson -compare BENCH_baseline/BENCH_build.json bench-gate-build.json -tolerance $(BENCH_TOLERANCE) || fail=1; \
	$(GO) run ./tools/benchjson -compare BENCH_baseline/BENCH_query.json bench-gate-query.json -tolerance $(BENCH_TOLERANCE) || fail=1; \
	rm -f bench-gate.out bench-gate-build.json bench-gate-query.json; \
	exit $$fail

# Run every wire-protocol fuzz target for FUZZ_TIME each, growing the
# hostile-input corpus instead of only replaying committed seeds. Any
# crasher go finds is written to testdata/fuzz and fails the run.
fuzz-smoke:
	$(GO) test ./internal/wire -run='^$$' -fuzz='^FuzzDecodeTasks$$' -fuzztime=$(FUZZ_TIME)
	$(GO) test ./internal/wire -run='^$$' -fuzz='^FuzzDecodeResults$$' -fuzztime=$(FUZZ_TIME)
	$(GO) test ./internal/wire -run='^$$' -fuzz='^FuzzDecodeHello$$' -fuzztime=$(FUZZ_TIME)
	$(GO) test ./internal/wire -run='^$$' -fuzz='^FuzzReadFrame$$' -fuzztime=$(FUZZ_TIME)
	$(GO) test ./internal/wire -run='^$$' -fuzz='^FuzzDecodeSummary$$' -fuzztime=$(FUZZ_TIME)
	$(GO) test ./internal/snapshot -run='^$$' -fuzz='^FuzzDecodeSnapshotHeader$$' -fuzztime=$(FUZZ_TIME)

# Observability smoke: build the real binaries, boot a k=2 loopback-TCP
# fleet with every process serving -metrics-addr, run one query, and
# assert that /metrics and /fleet on the coordinator parse as JSON with
# the required sections (build info, merged per-shard registries). The
# driver lives in tools/metricssmoke and must run from the repo root.
metrics-smoke:
	$(GO) run ./tools/metricssmoke

# Serving-layer smoke: build the real binaries, boot a k=2 fleet with
# dsr-serve in front, run queries through the serving protocol, and
# assert the cache hit and serving counters on /metrics plus a clean
# SIGTERM drain. The driver lives in tools/servesmoke and must run from
# the repo root.
serve-smoke:
	$(GO) run ./tools/servesmoke

# Godoc hygiene gate: every package must carry a package comment, and
# the packages tools/doccheck lists as strict (internal/serve) must
# document every exported symbol.
doc-check:
	$(GO) run ./tools/doccheck

# Scan dependencies and stdlib usage against the Go vulnerability
# database (network access required; CI installs the tool pinned).
vulncheck:
	govulncheck ./...
