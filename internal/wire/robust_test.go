package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// TestReadFrameHostileHeaders exercises the framing layer against
// corrupt length prefixes: every case must return an error without
// panicking, and oversized prefixes must be rejected *before* any
// allocation (a 4 GiB claim on an 8-byte stream must not make() 4 GiB).
func TestReadFrameHostileHeaders(t *testing.T) {
	cases := []struct {
		name  string
		input []byte
		want  error
	}{
		{"empty stream", nil, io.EOF},
		{"partial header", []byte{0x00, 0x01}, io.ErrUnexpectedEOF},
		{"zero length", []byte{0, 0, 0, 0}, ErrEmptyFrame},
		{"truncated payload", append([]byte{0, 0, 0, 10}, 1, 2, 3), io.ErrUnexpectedEOF},
		{"oversized length", []byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3, 4}, ErrFrameTooBig},
		{"just over cap", binary.BigEndian.AppendUint32(nil, MaxFrame+1), ErrFrameTooBig},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadFrame(bytes.NewReader(c.input), nil)
			if !errors.Is(err, c.want) {
				t.Fatalf("err = %v, want %v", err, c.want)
			}
		})
	}
	// A frame exactly at the cap is legal.
	var ok bytes.Buffer
	payload := make([]byte, MaxFrame)
	payload[0] = MsgError
	if err := WriteFrame(&ok, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(&ok, nil); err != nil {
		t.Fatalf("frame at MaxFrame: %v", err)
	}
}

// TestDecodeHostilePayloads feeds truncated, garbage, and
// count-inflated payloads to every decoder: all must error, none may
// panic, and inflated element counts must be caught before the decoder
// grows any slice by them.
func TestDecodeHostilePayloads(t *testing.T) {
	// A tasks payload claiming 2^60 tasks in a handful of bytes:
	// readCount must reject it against the remaining byte count. The
	// two zero bytes after the type are the batch header (flags, batch
	// ID).
	inflated := append([]byte{MsgTasks, 0, 0}, binary.AppendUvarint(nil, 1<<60)...)
	// A results payload whose boundary count outruns the payload
	// (flags=0, batch=0, one result).
	badBoundary := []byte{MsgResults, 0, 0, 1, byte(Forward), 0 /*query*/, 0 /*hit*/, 1 /*owned*/, 200 /*count*/}
	// A results payload promising a timing footer it never delivers.
	noFooter := AppendResults(nil, 3, true, nil)
	// A hello whose metrics-address length outruns the payload: flip a
	// clean hello's trailing zero-length byte to claim 5 address bytes.
	shortAddr := AppendHello(nil, Hello{})
	shortAddr[len(shortAddr)-1] = 5
	shortAddr = append(shortAddr, 'a')
	// A summary payload claiming 2^50 boundary vertices in a handful of
	// bytes, and one whose edge-pair count outruns the payload.
	inflatedSummary := append([]byte{MsgSummary}, binary.AppendUvarint(nil, 1<<50)...)
	badPairs := []byte{MsgSummary, 1 /*nb*/, 7 /*vertex*/, 100 /*edge count*/, 1, 2}
	// A varint that overflows uint32 (10 bytes of continuation).
	over64 := append([]byte{MsgHello}, binary.BigEndian.AppendUint32(nil, helloMagic)...)
	over64 = append(over64, binary.AppendUvarint(nil, 1<<40)...)

	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty", nil},
		{"type only tasks", []byte{MsgTasks}},
		{"tasks flags only", []byte{MsgTasks, 0}},
		{"tasks unknown flags", []byte{MsgTasks, 0x80, 0, 0}},
		{"inflated task count", inflated},
		{"task kind garbage", []byte{MsgTasks, 0, 0, 1, 0x7F}},
		{"task truncated mid-seeds", []byte{MsgTasks, 0, 0, 1, byte(Forward), 0, 3, 1}},
		{"results type only", []byte{MsgResults}},
		{"results unknown flags", []byte{MsgResults, 0x02, 0, 0}},
		{"results missing timing footer", noFooter},
		{"inflated boundary count", badBoundary},
		{"bad hit byte", []byte{MsgResults, 0, 0, 1, byte(Forward), 0, 9, 0}},
		{"hello short magic", []byte{MsgHello, 0x44, 0x53}},
		{"hello bad magic", []byte{MsgHello, 0, 0, 0, 0, 1, 1, 1}},
		{"hello oversized varint", over64},
		{"hello addr overruns payload", shortAddr},
		{"wrong type everywhere", AppendError(nil, "x")},
		{"trailing garbage", append(AppendTasks(nil, BatchHeader{}, nil), 0xEE)},
		{"summary type only", []byte{MsgSummary}},
		{"inflated summary boundary count", inflatedSummary},
		{"inflated summary pair count", badPairs},
		{"summary unsorted boundary", []byte{MsgSummary, 2, 9, 3, 0, 0}},
		{"summary trailing garbage", append(AppendSummary(nil, Summary{}), 0xEE)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, _, _, err := DecodeTasks(c.payload, nil, nil); err == nil {
				t.Error("DecodeTasks accepted hostile payload")
			}
			if _, _, _, err := DecodeResults(c.payload, nil, nil); err == nil {
				t.Error("DecodeResults accepted hostile payload")
			}
			if _, err := DecodeHello(c.payload); err == nil {
				t.Error("DecodeHello accepted hostile payload")
			}
			if _, err := DecodeSummary(c.payload); err == nil {
				t.Error("DecodeSummary accepted hostile payload")
			}
		})
	}
}

// FuzzDecodeTasks asserts the decoder never panics and that anything it
// accepts re-encodes to a payload it accepts again with equal content
// (decode-encode-decode fixpoint).
func FuzzDecodeTasks(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendTasks(nil, BatchHeader{}, nil))
	f.Add(AppendTasks(nil, BatchHeader{Trace: true, Batch: 99}, []Task{
		{Kind: Forward, Query: 9, Seeds: []int32{1, 300, 70000}, Targets: []int32{2}},
		{Kind: Backward, Query: 10, Seeds: []int32{0}},
	}))
	f.Add([]byte{MsgTasks, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F})
	f.Add([]byte{MsgTasks, 0x01, 0x80, 0x01, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, tasks, _, err := DecodeTasks(data, nil, nil)
		if err != nil {
			return
		}
		re := AppendTasks(nil, hdr, tasks)
		hdr2, again, _, err := DecodeTasks(re, nil, nil)
		if err != nil {
			t.Fatalf("re-decode of accepted payload failed: %v", err)
		}
		if hdr2 != hdr {
			t.Fatalf("header changed across re-encode: %+v vs %+v", hdr, hdr2)
		}
		if len(again) != len(tasks) {
			t.Fatalf("fixpoint broke: %d tasks then %d", len(tasks), len(again))
		}
		for i := range tasks {
			if !taskEqual(tasks[i], again[i]) {
				t.Fatalf("task %d changed across re-encode", i)
			}
		}
	})
}

// FuzzDecodeResults mirrors FuzzDecodeTasks for the result decoder.
func FuzzDecodeResults(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendResults(nil, 0, false, nil))
	f.Add(AppendResults(nil, 12, false, []Result{
		{Kind: Forward, Query: 1, Hit: true, Boundary: []uint32{7, 1 << 30}},
		{Kind: Backward, Query: 2, Boundary: []uint32{0}},
	}))
	f.Add(AppendServerTiming(AppendResults(nil, 12, true, []Result{
		{Kind: Forward, Query: 1, Hit: true, Owned: 4, Boundary: []uint32{7}},
	}), ServerTiming{Decode: 1500, Queue: 20, Search: 4_000_000, Encode: 900}))
	f.Fuzz(func(t *testing.T, data []byte) {
		info, results, _, err := DecodeResults(data, nil, nil)
		if err != nil {
			return
		}
		re := AppendResults(nil, info.Batch, info.HasTiming, results)
		if info.HasTiming {
			re = AppendServerTiming(re, info.Timing)
		}
		info2, again, _, err := DecodeResults(re, nil, nil)
		if err != nil {
			t.Fatalf("re-decode of accepted payload failed: %v", err)
		}
		if info2 != info {
			t.Fatalf("info changed across re-encode: %+v vs %+v", info, info2)
		}
		if len(again) != len(results) {
			t.Fatalf("fixpoint broke: %d results then %d", len(results), len(again))
		}
	})
}

// FuzzDecodeSummary hardens the decoder that faces the largest
// untrusted payload in the protocol — a whole partition's boundary
// summary. Contract as everywhere: never panic, inflated counts are
// rejected before slices grow, and anything accepted is canonical
// (strictly ordered boundary) and survives a re-encode round trip.
func FuzzDecodeSummary(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendSummary(nil, Summary{}))
	f.Add(AppendSummary(nil, Summary{
		Boundary: []uint32{1, 300, 70000, 1 << 30},
		Edges:    [][2]uint32{{1, 300}, {300, 70000}},
		Cross:    [][2]uint32{{70000, 1}},
	}))
	f.Add([]byte{MsgSummary, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F})
	f.Add([]byte{MsgSummary, 2, 9, 3, 0, 0}) // unsorted boundary
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSummary(data)
		if err != nil {
			return
		}
		for i := 1; i < len(s.Boundary); i++ {
			if s.Boundary[i] <= s.Boundary[i-1] {
				t.Fatalf("accepted non-canonical boundary list at index %d", i)
			}
		}
		again, err := DecodeSummary(AppendSummary(nil, s))
		if err != nil {
			t.Fatalf("re-decode of accepted summary failed: %v", err)
		}
		if !summaryEqual(s, again) {
			t.Fatal("summary changed across re-encode")
		}
	})
}

// FuzzDecodeHello covers the one decoder that runs against a freshly
// dialed, completely untrusted peer — whatever is listening on the
// address gets to pick these bytes. Same contract as the other
// decoders: never panic, and anything accepted must round-trip.
func FuzzDecodeHello(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendHello(nil, Hello{}))
	f.Add(AppendHello(nil, Hello{
		ShardID: 2, NumShards: 5, NumVertices: 1 << 30,
		Graph: 0xFEEDC0DE, Partitioning: 0xBADC0FFEE,
	}))
	f.Add(AppendHello(nil, Hello{ShardID: 1, MetricsAddr: "127.0.0.1:9090"}))
	f.Add([]byte{MsgHello, 0x44, 0x53, 0x52, 0x31}) // magic, then truncated
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := DecodeHello(data)
		if err != nil {
			return
		}
		again, err := DecodeHello(AppendHello(nil, h))
		if err != nil {
			t.Fatalf("re-decode of accepted hello failed: %v", err)
		}
		if again != h {
			t.Fatalf("hello changed across re-encode: %+v vs %+v", h, again)
		}
	})
}

// FuzzReadFrame asserts the framing layer never panics or over-allocates
// on arbitrary byte streams.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteFrame(&buf, []byte{MsgHello, 1, 2, 3})
	f.Add(buf.Bytes())
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0, 0, 0, 2, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		var scratch []byte
		for {
			p, err := ReadFrame(r, scratch)
			if err != nil {
				return
			}
			if len(p) == 0 || len(p) > MaxFrame {
				t.Fatalf("accepted frame of %d bytes", len(p))
			}
			scratch = p
		}
	})
}
