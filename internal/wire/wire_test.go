package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		{0x01},
		[]byte("hello"),
		bytes.Repeat([]byte{0xAB}, 1<<16),
	}
	var buf bytes.Buffer
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	var scratch []byte
	for i, want := range payloads {
		got, err := ReadFrame(&buf, scratch)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(want))
		}
		scratch = got
	}
	if _, err := ReadFrame(&buf, scratch); err != io.EOF {
		t.Fatalf("after last frame: err = %v, want io.EOF", err)
	}
}

func TestWriteFrameRejects(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, nil); !errors.Is(err, ErrEmptyFrame) {
		t.Errorf("empty payload: err = %v, want ErrEmptyFrame", err)
	}
	if err := WriteFrame(&buf, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooBig) {
		t.Errorf("oversized payload: err = %v, want ErrFrameTooBig", err)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	for _, h := range []Hello{
		{},
		{ShardID: 2, NumShards: 5, NumVertices: 1_000_000, Graph: 0xDEADBEEFCAFE},
		{ShardID: math.MaxUint32, NumShards: math.MaxUint32, NumVertices: math.MaxUint32, Graph: math.MaxUint64},
		{ShardID: 1, NumShards: 3, MetricsAddr: "127.0.0.1:9090"},
		{MetricsAddr: strings.Repeat("a", maxMetricsAddr)},
	} {
		got, err := DecodeHello(AppendHello(nil, h))
		if err != nil {
			t.Fatalf("%+v: %v", h, err)
		}
		if got != h {
			t.Fatalf("round trip: got %+v, want %+v", got, h)
		}
	}
}

func TestDecodeHelloRejectsOversizedMetricsAddr(t *testing.T) {
	p := AppendHello(nil, Hello{MetricsAddr: strings.Repeat("a", maxMetricsAddr+1)})
	if _, err := DecodeHello(p); err == nil {
		t.Fatal("hello with oversized metrics address accepted")
	}
}

func taskEqual(a, b Task) bool {
	return a.Kind == b.Kind && a.Query == b.Query &&
		idsEqual(a.Seeds, b.Seeds) && idsEqual(a.Targets, b.Targets)
}

func idsEqual[T int32 | uint32](a, b []T) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestTasksRoundTrip(t *testing.T) {
	cases := [][]Task{
		nil,
		{{Kind: Forward, Query: 0, Seeds: []int32{0}}},
		{{Kind: Backward, Query: 7, Seeds: []int32{3, 1, 4, 1, 5}}},
		{
			{Kind: Forward, Query: 1, Seeds: []int32{0, math.MaxInt32}, Targets: []int32{9}},
			{Kind: Backward, Query: 2, Seeds: []int32{128, 16384, 2097152}},
			{Kind: Forward, Query: math.MaxUint32, Seeds: []int32{5}, Targets: nil},
		},
	}
	headers := []BatchHeader{
		{},
		{Trace: true, Batch: 1},
		{Batch: math.MaxUint64},
		{Trace: true, Batch: 1 << 40},
	}
	for ci, tasks := range cases {
		hdr := headers[ci%len(headers)]
		gotHdr, got, _, err := DecodeTasks(AppendTasks(nil, hdr, tasks), nil, nil)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		if gotHdr != hdr {
			t.Fatalf("case %d: header round trip: got %+v, want %+v", ci, gotHdr, hdr)
		}
		if len(got) != len(tasks) {
			t.Fatalf("case %d: got %d tasks, want %d", ci, len(got), len(tasks))
		}
		for i := range tasks {
			if !taskEqual(got[i], tasks[i]) {
				t.Fatalf("case %d task %d: got %+v, want %+v", ci, i, got[i], tasks[i])
			}
		}
	}
}

func TestResultsRoundTrip(t *testing.T) {
	cases := [][]Result{
		nil,
		{{Kind: Forward, Query: 3, Hit: true, Owned: 2}},
		{
			{Kind: Forward, Query: 0, Hit: false, Owned: math.MaxUint32, Boundary: []uint32{1, 2, math.MaxUint32}},
			{Kind: Backward, Query: 1, Boundary: []uint32{300, 70000}},
			{Kind: Backward, Query: 2, Owned: 1, Boundary: nil},
		},
	}
	for ci, results := range cases {
		batch := uint64(ci * 17)
		info, got, _, err := DecodeResults(AppendResults(nil, batch, false, results), nil, nil)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		if info.Batch != batch || info.HasTiming {
			t.Fatalf("case %d: info = %+v, want batch %d without timing", ci, info, batch)
		}
		if len(got) != len(results) {
			t.Fatalf("case %d: got %d results, want %d", ci, len(got), len(results))
		}
		for i := range results {
			w, g := results[i], got[i]
			if g.Kind != w.Kind || g.Query != w.Query || g.Hit != w.Hit || g.Owned != w.Owned || !idsEqual(g.Boundary, w.Boundary) {
				t.Fatalf("case %d result %d: got %+v, want %+v", ci, i, g, w)
			}
		}
	}
}

// TestResultsTimingFooter round-trips the server-timing footer that a
// traced batch's reply carries after its results.
func TestResultsTimingFooter(t *testing.T) {
	results := []Result{
		{Kind: Forward, Query: 0, Hit: true, Owned: 3, Boundary: []uint32{1, 2}},
		{Kind: Backward, Query: 1, Boundary: []uint32{5}},
	}
	timing := ServerTiming{Decode: 1200, Queue: 35, Search: 9_000_000, Encode: 800}
	p := AppendResults(nil, 42, true, results)
	p = AppendServerTiming(p, timing)
	info, got, _, err := DecodeResults(p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Batch != 42 || !info.HasTiming || info.Timing != timing {
		t.Fatalf("info = %+v, want batch 42 with timing %+v", info, timing)
	}
	if len(got) != len(results) {
		t.Fatalf("got %d results, want %d", len(got), len(results))
	}
	if want := timing.Decode + timing.Queue + timing.Search + timing.Encode; timing.Total() != want {
		t.Fatalf("Total() = %d, want %d", timing.Total(), want)
	}
	// A payload that promises a footer but omits it is truncated.
	if _, _, _, err := DecodeResults(AppendResults(nil, 42, true, results), nil, nil); err == nil {
		t.Fatal("missing timing footer accepted")
	}
}

func pairsEqual(a, b [][2]uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func summaryEqual(a, b Summary) bool {
	return idsEqual(a.Boundary, b.Boundary) && pairsEqual(a.Edges, b.Edges) && pairsEqual(a.Cross, b.Cross)
}

func TestSummaryRoundTrip(t *testing.T) {
	cases := []Summary{
		{},
		{Boundary: []uint32{7}},
		{
			Boundary: []uint32{1, 4, 9, math.MaxUint32},
			Edges:    [][2]uint32{{1, 4}, {1, 9}, {4, 4}},
			Cross:    [][2]uint32{{9, 1}, {4, math.MaxUint32}},
		},
		{
			Boundary: []uint32{0, 128, 16384, 2097152},
			Cross:    [][2]uint32{{128, 0}},
		},
	}
	for ci, s := range cases {
		got, err := DecodeSummary(AppendSummary(nil, s))
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		if !summaryEqual(got, s) {
			t.Fatalf("case %d: got %+v, want %+v", ci, got, s)
		}
	}
}

func TestDecodeSummaryRejectsUnsortedBoundary(t *testing.T) {
	for _, boundary := range [][]uint32{{3, 1}, {5, 5}, {0, 2, 2}} {
		p := AppendSummary(nil, Summary{Boundary: boundary})
		if _, err := DecodeSummary(p); err == nil {
			t.Errorf("boundary %v accepted, want strict-order error", boundary)
		}
	}
}

// TestDecodeReuse verifies the arena-reuse contract: decoding into
// retained buffers allocates nothing in steady state.
func TestDecodeReuse(t *testing.T) {
	tasks := []Task{
		{Kind: Forward, Query: 1, Seeds: []int32{1, 2, 3}, Targets: []int32{4}},
		{Kind: Backward, Query: 2, Seeds: []int32{5, 6}},
	}
	payload := AppendTasks(nil, BatchHeader{Trace: true, Batch: 7}, tasks)
	var dst []Task
	var arena []int32
	var err error
	// Warm up capacity.
	if _, dst, arena, err = DecodeTasks(payload, dst[:0], arena[:0]); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		_, dst, arena, err = DecodeTasks(payload, dst[:0], arena[:0])
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state DecodeTasks allocates %v/op, want 0", allocs)
	}
	// The results decoder carries the same contract, timing footer
	// included: parsing the footer touches only the ResultsInfo value.
	rp := AppendServerTiming(AppendResults(nil, 7, true, []Result{
		{Kind: Forward, Query: 1, Hit: true, Owned: 2, Boundary: []uint32{3, 9}},
	}), ServerTiming{Decode: 1, Queue: 2, Search: 3, Encode: 4})
	var rdst []Result
	var rarena []uint32
	if _, rdst, rarena, err = DecodeResults(rp, rdst[:0], rarena[:0]); err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(100, func() {
		_, rdst, rarena, err = DecodeResults(rp, rdst[:0], rarena[:0])
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state DecodeResults allocates %v/op, want 0", allocs)
	}
}

func TestErrorRoundTrip(t *testing.T) {
	msg := "shard 3: partition mismatch"
	got, err := DecodeError(AppendError(nil, msg))
	if err != nil {
		t.Fatal(err)
	}
	if got != msg {
		t.Fatalf("got %q, want %q", got, msg)
	}
}

func TestRandomizedTaskRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		tasks := make([]Task, rng.Intn(8))
		for i := range tasks {
			tasks[i] = Task{
				Kind:    TaskKind(rng.Intn(2)),
				Query:   rng.Uint32(),
				Seeds:   randIDs(rng),
				Targets: randIDs(rng),
			}
		}
		hdr := BatchHeader{Trace: rng.Intn(2) == 1, Batch: rng.Uint64()}
		gotHdr, got, _, err := DecodeTasks(AppendTasks(nil, hdr, tasks), nil, nil)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if gotHdr != hdr {
			t.Fatalf("iter %d: header mismatch: got %+v, want %+v", iter, gotHdr, hdr)
		}
		for i := range tasks {
			if !taskEqual(got[i], tasks[i]) {
				t.Fatalf("iter %d task %d mismatch", iter, i)
			}
		}
	}
}

func randIDs(rng *rand.Rand) []int32 {
	ids := make([]int32, rng.Intn(10))
	for i := range ids {
		ids[i] = rng.Int31()
	}
	if len(ids) == 0 {
		return nil
	}
	return ids
}

func TestMsgType(t *testing.T) {
	if _, err := MsgType(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("MsgType(nil): err = %v, want ErrTruncated", err)
	}
	ty, err := MsgType(AppendHello(nil, Hello{}))
	if err != nil || ty != MsgHello {
		t.Errorf("MsgType(hello) = %#02x, %v; want MsgHello", ty, err)
	}
}
