// Package wire is the binary protocol between the DSR coordinator and
// its shards: length-prefixed frames carrying varint-packed messages.
// A frame is a 4-byte big-endian payload length followed by the
// payload; the payload's first byte is the message type. Six message
// types exist:
//
//   - MsgHello    — server -> client on connect: shard identity
//     (shard ID, shard count, vertex count, graph fingerprint,
//     partitioning digest) so a coordinator can refuse a shard built
//     from a different graph or partitioned differently.
//   - MsgSummaryRequest — client -> server: ask for the shard's
//     boundary summary (no payload beyond the type byte).
//   - MsgSummary  — server -> client: the shard's boundary summary —
//     its boundary-vertex set, entry→exit summary edges, and outgoing
//     cross-partition edges, all as global vertex IDs. The coordinator
//     stitches the k summaries into the global boundary graph without
//     ever holding the full graph.
//   - MsgTasks    — client -> server: a batch of local-search tasks,
//     each tagged with the batch-query index it belongs to. Seeds and
//     targets are global vertex IDs; a shard silently skips the ones
//     it does not own (the coordinator broadcasts, it has no placement
//     data) and reports how many it owned. The batch leads with a
//     header — a flags byte plus a coordinator-assigned batch ID —
//     whose trace flag asks the server to measure itself.
//   - MsgResults  — server -> client: one result per task, in task
//     order, carrying local-hit flags, owned-seed counts, and
//     boundary-vertex sets. Echoes the batch ID, and when the batch
//     requested tracing the payload ends with a server-timing footer
//     (decode, queue-wait, local-search, and encode nanoseconds) so
//     the coordinator can split round-trip time into network vs shard
//     compute.
//   - MsgError    — server -> client: a fatal protocol error as text;
//     the connection is closed afterwards.
//
// Vertex IDs are packed as unsigned varints: boundary sets are the
// dominant payload and real-world IDs are small, so varints beat fixed
// 4-byte encoding on exactly the traffic DSR is designed to bound
// (boundary vertices only, never partition interiors).
//
// Every Decode* function is hardened against hostile input: lengths are
// capped before any allocation, element counts are validated against
// the bytes actually present (each element costs at least one byte),
// and all errors are returned, never panicked.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// MaxFrame caps a frame payload at 64 MiB. ReadFrame rejects larger
// length prefixes before allocating, so a garbage or hostile header
// cannot trigger an arbitrarily large make.
const MaxFrame = 1 << 26

// Message type bytes (first byte of every frame payload).
const (
	MsgHello          = 0x01
	MsgTasks          = 0x02
	MsgResults        = 0x03
	MsgError          = 0x04
	MsgSummaryRequest = 0x05
	MsgSummary        = 0x06
)

// helloMagic guards against a client speaking to something that is not
// a DSR shard — and against an old one: it leads the hello payload
// ("DSR3"; the bump from DSR2 covers the task-batch header, the
// server-timing footer on results, and the hello's metrics address).
const helloMagic = 0x44535233

// Task-batch header flags (the byte after the MsgTasks type byte).
// Unknown bits are rejected by DecodeTasks: a flag this build does not
// understand means a newer peer, and silently ignoring it could drop a
// semantic the sender depends on.
const (
	// TaskFlagTrace asks the server to time itself and append a
	// server-timing footer to its MsgResults reply.
	TaskFlagTrace = 0x01

	taskFlagsKnown = TaskFlagTrace
)

// Results flags (the byte after the MsgResults type byte).
const (
	// resultFlagTiming marks a server-timing footer after the results.
	resultFlagTiming = 0x01

	resultFlagsKnown = resultFlagTiming
)

// maxMetricsAddr caps the hello's metrics-address string. Real
// addresses are host:port; anything past this is hostile or corrupt.
const maxMetricsAddr = 256

// Protocol errors.
var (
	ErrFrameTooBig = errors.New("wire: frame exceeds MaxFrame")
	ErrEmptyFrame  = errors.New("wire: empty frame")
	ErrTruncated   = errors.New("wire: truncated message")
	ErrBadMagic    = errors.New("wire: bad hello magic")
)

// TaskKind selects the local search a shard runs for a task.
type TaskKind uint8

const (
	// Forward is a BFS from the query's sources within the shard's
	// partition: report a hit if a local target is reached, plus every
	// reached exit vertex.
	Forward TaskKind = iota
	// Backward is a reverse BFS from the query's targets: report every
	// entry vertex that can reach a target locally.
	Backward
)

// Task is one local-search request. Seeds and Targets are global
// vertex IDs: the coordinator holds no placement data, so it
// broadcasts the same task batch to every shard and each shard runs
// the search from whichever seeds it owns, skipping the rest. Query
// ties the task to a position in the coordinator's batch so results
// can be routed back. Targets is only meaningful for Forward tasks.
type Task struct {
	Kind    TaskKind
	Query   uint32
	Seeds   []int32
	Targets []int32
}

// Result answers one Task. Boundary holds global vertex IDs: exits
// reached (Forward) or entries that reach a target (Backward). Owned
// counts how many of the task's Seeds this shard owned — summed over
// all shards it tells the broadcast coordinator whether every seed was
// actually searched (a dead partition's seeds go missing, which must
// fail the query rather than read as false). Hit is only meaningful
// for Forward results.
type Result struct {
	Kind     TaskKind
	Query    uint32
	Hit      bool
	Owned    uint32
	Boundary []uint32
}

// Summary is one shard's contribution to the global boundary graph,
// shipped in response to a MsgSummaryRequest. All IDs are global.
// Boundary lists the partition's boundary vertices (entries ∪ exits)
// in strictly increasing order — the decoder enforces the order, so a
// decoded Summary is always canonical. Edges holds the entry→exit
// summary pairs (exit reachable from entry without leaving the
// partition) and Cross the raw cross-partition edges whose source lies
// in the partition. Stitched over all k shards these are exactly the
// edges of the DSR boundary graph.
type Summary struct {
	Boundary []uint32
	Edges    [][2]uint32
	Cross    [][2]uint32
}

// Hello identifies a shard server to a connecting coordinator. Graph
// is a fingerprint of the exact edge set the shard was built from
// (graph.Fingerprint) and Partitioning a digest of the vertex-to-
// partition assignment (graph.Partitioning.Digest) — the latter catches
// two processes that loaded the same graph but partitioned it
// differently (e.g. hash vs locality, or locality with different
// seeds). For either, 0 means "not computed" and skips the check.
// MetricsAddr, when non-empty, is the host:port of the shard's ops
// endpoint so a coordinator can aggregate the fleet's /metrics
// registries without separate service discovery.
type Hello struct {
	ShardID      uint32
	NumShards    uint32
	NumVertices  uint32
	Graph        uint64
	Partitioning uint64
	MetricsAddr  string
}

// BatchHeader prefixes every MsgTasks batch. Batch is a coordinator-
// assigned ID echoed back in the MsgResults reply (0 means unassigned);
// Trace asks the server to measure itself and append a server-timing
// footer to the reply.
type BatchHeader struct {
	Trace bool
	Batch uint64
}

// ServerTiming is a shard server's self-measured breakdown of one task
// batch, in nanoseconds: request decode, queue wait for the shard's run
// lock, the local search itself, and response encode. It rides as a
// footer on MsgResults when the batch's header set Trace, letting the
// coordinator split observed round-trip time into network vs shard
// compute — the communication/computation separation the DSR evaluation
// is built on.
type ServerTiming struct {
	Decode uint64
	Queue  uint64
	Search uint64
	Encode uint64
}

// Total is the server-side wall time covered by the breakdown.
func (t ServerTiming) Total() uint64 {
	return t.Decode + t.Queue + t.Search + t.Encode
}

// ResultsInfo carries the per-batch metadata decoded from a MsgResults
// payload: the echoed batch ID and, when the server measured itself,
// its timing footer.
type ResultsInfo struct {
	Batch     uint64
	HasTiming bool
	Timing    ServerTiming
}

// WriteFrame writes one length-prefixed frame. The payload must be
// non-empty and at most MaxFrame bytes.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) == 0 {
		return ErrEmptyFrame
	}
	if len(payload) > MaxFrame {
		return ErrFrameTooBig
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame, reusing buf's capacity when possible, and
// returns the payload. The length prefix is validated against MaxFrame
// before any allocation. io.EOF is returned only for a clean EOF at a
// frame boundary; a partial frame yields io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, ErrEmptyFrame
	}
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooBig, n)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}

// AppendHello appends a MsgHello payload to dst.
func AppendHello(dst []byte, h Hello) []byte {
	dst = append(dst, MsgHello)
	dst = binary.BigEndian.AppendUint32(dst, helloMagic)
	dst = binary.AppendUvarint(dst, uint64(h.ShardID))
	dst = binary.AppendUvarint(dst, uint64(h.NumShards))
	dst = binary.AppendUvarint(dst, uint64(h.NumVertices))
	dst = binary.AppendUvarint(dst, h.Graph)
	dst = binary.AppendUvarint(dst, h.Partitioning)
	dst = binary.AppendUvarint(dst, uint64(len(h.MetricsAddr)))
	dst = append(dst, h.MetricsAddr...)
	return dst
}

// DecodeHello decodes a MsgHello payload (including the type byte).
func DecodeHello(p []byte) (Hello, error) {
	var h Hello
	p, err := expectType(p, MsgHello)
	if err != nil {
		return h, err
	}
	if len(p) < 4 {
		return h, ErrTruncated
	}
	if binary.BigEndian.Uint32(p) != helloMagic {
		return h, ErrBadMagic
	}
	p = p[4:]
	if h.ShardID, p, err = readUint32(p); err != nil {
		return h, err
	}
	if h.NumShards, p, err = readUint32(p); err != nil {
		return h, err
	}
	if h.NumVertices, p, err = readUint32(p); err != nil {
		return h, err
	}
	if h.Graph, p, err = readUint64(p); err != nil {
		return h, err
	}
	if h.Partitioning, p, err = readUint64(p); err != nil {
		return h, err
	}
	alen, p, err := readCount(p)
	if err != nil {
		return h, err
	}
	if alen > maxMetricsAddr {
		return h, fmt.Errorf("wire: metrics address length %d exceeds %d", alen, maxMetricsAddr)
	}
	h.MetricsAddr = string(p[:alen])
	p = p[alen:]
	if len(p) != 0 {
		return h, fmt.Errorf("wire: %d trailing bytes after hello", len(p))
	}
	return h, nil
}

// AppendTasks appends a MsgTasks payload carrying the batch to dst,
// led by its header (flags byte + batch ID).
func AppendTasks(dst []byte, h BatchHeader, tasks []Task) []byte {
	dst = append(dst, MsgTasks)
	flags := byte(0)
	if h.Trace {
		flags |= TaskFlagTrace
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, h.Batch)
	dst = binary.AppendUvarint(dst, uint64(len(tasks)))
	for i := range tasks {
		t := &tasks[i]
		dst = append(dst, byte(t.Kind))
		dst = binary.AppendUvarint(dst, uint64(t.Query))
		dst = appendIDs32(dst, t.Seeds)
		dst = appendIDs32(dst, t.Targets)
	}
	return dst
}

// DecodeTasks decodes a MsgTasks payload, returning its batch header.
// Decoded tasks are appended to dst and their Seeds/Targets slices into
// arena, so a caller that keeps both between calls (truncated to length
// 0) pays no steady-state allocations. The returned tasks alias the
// returned arena. Unknown header flag bits are rejected.
func DecodeTasks(p []byte, dst []Task, arena []int32) (BatchHeader, []Task, []int32, error) {
	var hdr BatchHeader
	p, err := expectType(p, MsgTasks)
	if err != nil {
		return hdr, dst, arena, err
	}
	if len(p) == 0 {
		return hdr, dst, arena, ErrTruncated
	}
	flags := p[0]
	if flags&^byte(taskFlagsKnown) != 0 {
		return hdr, dst, arena, fmt.Errorf("wire: unknown task flags %#02x", flags)
	}
	hdr.Trace = flags&TaskFlagTrace != 0
	p = p[1:]
	if hdr.Batch, p, err = readUint64(p); err != nil {
		return hdr, dst, arena, err
	}
	count, p, err := readCount(p)
	if err != nil {
		return hdr, dst, arena, err
	}
	for i := 0; i < count; i++ {
		if len(p) == 0 {
			return hdr, dst, arena, ErrTruncated
		}
		kind := TaskKind(p[0])
		if kind != Forward && kind != Backward {
			return hdr, dst, arena, fmt.Errorf("wire: bad task kind %d", kind)
		}
		p = p[1:]
		var q uint32
		if q, p, err = readUint32(p); err != nil {
			return hdr, dst, arena, err
		}
		var seeds, targets []int32
		if seeds, arena, p, err = readIDs32(p, arena); err != nil {
			return hdr, dst, arena, err
		}
		if targets, arena, p, err = readIDs32(p, arena); err != nil {
			return hdr, dst, arena, err
		}
		dst = append(dst, Task{Kind: kind, Query: q, Seeds: seeds, Targets: targets})
	}
	if len(p) != 0 {
		return hdr, dst, arena, fmt.Errorf("wire: %d trailing bytes after tasks", len(p))
	}
	return hdr, dst, arena, nil
}

// AppendResults appends a MsgResults payload to dst, echoing the
// request's batch ID. withTiming declares that a server-timing footer
// follows the results; the caller MUST then complete the payload with
// AppendServerTiming before framing it. The footer is appended
// separately so the server can include the encode time of the results
// themselves in the measurement.
func AppendResults(dst []byte, batch uint64, withTiming bool, results []Result) []byte {
	dst = append(dst, MsgResults)
	flags := byte(0)
	if withTiming {
		flags |= resultFlagTiming
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, batch)
	dst = binary.AppendUvarint(dst, uint64(len(results)))
	for i := range results {
		r := &results[i]
		dst = append(dst, byte(r.Kind))
		dst = binary.AppendUvarint(dst, uint64(r.Query))
		hit := byte(0)
		if r.Hit {
			hit = 1
		}
		dst = append(dst, hit)
		dst = binary.AppendUvarint(dst, uint64(r.Owned))
		dst = binary.AppendUvarint(dst, uint64(len(r.Boundary)))
		for _, v := range r.Boundary {
			dst = binary.AppendUvarint(dst, uint64(v))
		}
	}
	return dst
}

// AppendServerTiming appends the server-timing footer to a MsgResults
// payload built with withTiming=true.
func AppendServerTiming(dst []byte, t ServerTiming) []byte {
	dst = binary.AppendUvarint(dst, t.Decode)
	dst = binary.AppendUvarint(dst, t.Queue)
	dst = binary.AppendUvarint(dst, t.Search)
	dst = binary.AppendUvarint(dst, t.Encode)
	return dst
}

// DecodeResults decodes a MsgResults payload, appending results to dst
// and their Boundary slices into arena (same reuse contract as
// DecodeTasks). The returned info carries the echoed batch ID and the
// server-timing footer when present. Unknown flag bits are rejected.
func DecodeResults(p []byte, dst []Result, arena []uint32) (ResultsInfo, []Result, []uint32, error) {
	var info ResultsInfo
	p, err := expectType(p, MsgResults)
	if err != nil {
		return info, dst, arena, err
	}
	if len(p) == 0 {
		return info, dst, arena, ErrTruncated
	}
	flags := p[0]
	if flags&^byte(resultFlagsKnown) != 0 {
		return info, dst, arena, fmt.Errorf("wire: unknown result flags %#02x", flags)
	}
	info.HasTiming = flags&resultFlagTiming != 0
	p = p[1:]
	if info.Batch, p, err = readUint64(p); err != nil {
		return info, dst, arena, err
	}
	count, p, err := readCount(p)
	if err != nil {
		return info, dst, arena, err
	}
	for i := 0; i < count; i++ {
		if len(p) < 3 { // kind + query varint + hit, at minimum
			return info, dst, arena, ErrTruncated
		}
		kind := TaskKind(p[0])
		if kind != Forward && kind != Backward {
			return info, dst, arena, fmt.Errorf("wire: bad result kind %d", kind)
		}
		p = p[1:]
		var q uint32
		if q, p, err = readUint32(p); err != nil {
			return info, dst, arena, err
		}
		if len(p) == 0 {
			return info, dst, arena, ErrTruncated
		}
		if p[0] > 1 {
			return info, dst, arena, fmt.Errorf("wire: bad hit byte %d", p[0])
		}
		hit := p[0] == 1
		p = p[1:]
		var owned uint32
		if owned, p, err = readUint32(p); err != nil {
			return info, dst, arena, err
		}
		n, p2, err := readCount(p)
		if err != nil {
			return info, dst, arena, err
		}
		p = p2
		start := len(arena)
		for j := 0; j < n; j++ {
			var v uint32
			if v, p, err = readUint32(p); err != nil {
				return info, dst, arena, err
			}
			arena = append(arena, v)
		}
		dst = append(dst, Result{Kind: kind, Query: q, Hit: hit, Owned: owned, Boundary: arena[start:len(arena):len(arena)]})
	}
	if info.HasTiming {
		if info.Timing.Decode, p, err = readUint64(p); err != nil {
			return info, dst, arena, err
		}
		if info.Timing.Queue, p, err = readUint64(p); err != nil {
			return info, dst, arena, err
		}
		if info.Timing.Search, p, err = readUint64(p); err != nil {
			return info, dst, arena, err
		}
		if info.Timing.Encode, p, err = readUint64(p); err != nil {
			return info, dst, arena, err
		}
	}
	if len(p) != 0 {
		return info, dst, arena, fmt.Errorf("wire: %d trailing bytes after results", len(p))
	}
	return info, dst, arena, nil
}

// AppendSummaryRequest appends a MsgSummaryRequest payload to dst. The
// request carries nothing beyond its type byte.
func AppendSummaryRequest(dst []byte) []byte {
	return append(dst, MsgSummaryRequest)
}

// AppendSummary appends a MsgSummary payload to dst. s.Boundary must be
// strictly increasing (which Shard summaries are by construction);
// DecodeSummary rejects anything else.
func AppendSummary(dst []byte, s Summary) []byte {
	dst = append(dst, MsgSummary)
	dst = binary.AppendUvarint(dst, uint64(len(s.Boundary)))
	for _, v := range s.Boundary {
		dst = binary.AppendUvarint(dst, uint64(v))
	}
	dst = appendPairs(dst, s.Edges)
	dst = appendPairs(dst, s.Cross)
	return dst
}

func appendPairs(dst []byte, pairs [][2]uint32) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(pairs)))
	for _, pr := range pairs {
		dst = binary.AppendUvarint(dst, uint64(pr[0]))
		dst = binary.AppendUvarint(dst, uint64(pr[1]))
	}
	return dst
}

// DecodeSummary decodes a MsgSummary payload. It enforces the boundary
// list's strict ordering (sorted, no duplicates), so accepted summaries
// are canonical and safe to binary-search; element counts are validated
// against the bytes present before any slice grows, like every other
// decoder here.
func DecodeSummary(p []byte) (Summary, error) {
	var s Summary
	p, err := expectType(p, MsgSummary)
	if err != nil {
		return s, err
	}
	nb, p, err := readCount(p)
	if err != nil {
		return s, err
	}
	for j := 0; j < nb; j++ {
		var v uint32
		if v, p, err = readUint32(p); err != nil {
			return s, err
		}
		if j > 0 && v <= s.Boundary[j-1] {
			return s, fmt.Errorf("wire: boundary list not strictly increasing at index %d", j)
		}
		s.Boundary = append(s.Boundary, v)
	}
	if s.Edges, p, err = readPairs(p); err != nil {
		return s, err
	}
	if s.Cross, p, err = readPairs(p); err != nil {
		return s, err
	}
	if len(p) != 0 {
		return s, fmt.Errorf("wire: %d trailing bytes after summary", len(p))
	}
	return s, nil
}

func readPairs(p []byte) ([][2]uint32, []byte, error) {
	n, p, err := readCount(p)
	if err != nil {
		return nil, nil, err
	}
	var pairs [][2]uint32
	for j := 0; j < n; j++ {
		var a, b uint32
		if a, p, err = readUint32(p); err != nil {
			return nil, nil, err
		}
		if b, p, err = readUint32(p); err != nil {
			return nil, nil, err
		}
		pairs = append(pairs, [2]uint32{a, b})
	}
	return pairs, p, nil
}

// AppendError appends a MsgError payload to dst.
func AppendError(dst []byte, msg string) []byte {
	return append(append(dst, MsgError), msg...)
}

// DecodeError decodes a MsgError payload into its message text.
func DecodeError(p []byte) (string, error) {
	p, err := expectType(p, MsgError)
	if err != nil {
		return "", err
	}
	return string(p), nil
}

// MsgType peeks at a payload's message type byte.
func MsgType(p []byte) (byte, error) {
	if len(p) == 0 {
		return 0, ErrTruncated
	}
	return p[0], nil
}

func expectType(p []byte, want byte) ([]byte, error) {
	if len(p) == 0 {
		return nil, ErrTruncated
	}
	if p[0] != want {
		return nil, fmt.Errorf("wire: message type %#02x, want %#02x", p[0], want)
	}
	return p[1:], nil
}

// readCount reads an element-count varint and validates it against the
// bytes actually remaining: every element costs at least one byte, so a
// count larger than len(rest) is corrupt and must fail here, before the
// caller extends any slice by it.
func readCount(p []byte) (int, []byte, error) {
	c, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, ErrTruncated
	}
	p = p[n:]
	if c > uint64(len(p)) {
		return 0, nil, fmt.Errorf("wire: count %d exceeds %d remaining bytes", c, len(p))
	}
	return int(c), p, nil
}

func readUint64(p []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, ErrTruncated
	}
	return v, p[n:], nil
}

func readUint32(p []byte) (uint32, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, ErrTruncated
	}
	if v > math.MaxUint32 {
		return 0, nil, fmt.Errorf("wire: varint %d overflows uint32", v)
	}
	return uint32(v), p[n:], nil
}

func appendIDs32(dst []byte, ids []int32) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ids)))
	for _, v := range ids {
		dst = binary.AppendUvarint(dst, uint64(uint32(v)))
	}
	return dst
}

// readIDs32 reads a count-prefixed vertex-ID list into arena and
// returns the slice of arena holding it. IDs must fit int32: local
// vertex IDs are non-negative int32 by construction.
func readIDs32(p []byte, arena []int32) ([]int32, []int32, []byte, error) {
	n, p, err := readCount(p)
	if err != nil {
		return nil, arena, nil, err
	}
	start := len(arena)
	for j := 0; j < n; j++ {
		v, np := binary.Uvarint(p)
		if np <= 0 {
			return nil, arena, nil, ErrTruncated
		}
		if v > math.MaxInt32 {
			return nil, arena, nil, fmt.Errorf("wire: vertex ID %d overflows int32", v)
		}
		arena = append(arena, int32(v))
		p = p[np:]
	}
	return arena[start:len(arena):len(arena)], arena, p, nil
}
