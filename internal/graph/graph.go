// Package graph provides the in-memory directed graph used by the DSR
// engine: a compact CSR (compressed sparse row) representation with both
// forward and reverse adjacency, an incremental Builder, an edge-list
// loader, and deterministic partitioners that label every vertex with a
// partition and mark boundary vertices.
package graph

// VertexID identifies a vertex. Vertices are dense: 0..NumVertices()-1.
type VertexID = uint32

// Graph is an immutable directed graph in CSR form. Both forward and
// reverse adjacency are materialized so that local backward searches
// (needed for target-side set reachability) are as cheap as forward ones.
type Graph struct {
	offsets  []int64
	edges    []VertexID
	roffsets []int64
	redges   []VertexID
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.offsets) - 1 }

// NumEdges returns the number of directed edges (multi-edges counted).
func (g *Graph) NumEdges() int { return len(g.edges) }

// Out returns the out-neighbors of v as a shared slice; callers must not
// mutate it.
func (g *Graph) Out(v VertexID) []VertexID {
	return g.edges[g.offsets[v]:g.offsets[v+1]]
}

// In returns the in-neighbors of v as a shared slice; callers must not
// mutate it.
func (g *Graph) In(v VertexID) []VertexID {
	return g.redges[g.roffsets[v]:g.roffsets[v+1]]
}

// Edges calls fn for every directed edge (u, v).
func (g *Graph) Edges(fn func(u, v VertexID)) {
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.Out(VertexID(u)) {
			fn(VertexID(u), v)
		}
	}
}

// Fingerprint returns a deterministic 64-bit FNV-1a digest of the
// graph's exact structure: the vertex count and every directed edge in
// CSR order (multi-edges included). Two processes that load the same
// edge list get the same fingerprint, so the distributed handshake can
// refuse a shard whose graph differs even when the vertex count
// happens to match.
func (g *Graph) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xFF
			h *= prime64
			x >>= 8
		}
	}
	mix(uint64(g.NumVertices()))
	for u := 0; u < g.NumVertices(); u++ {
		nbrs := g.Out(VertexID(u))
		mix(uint64(len(nbrs)))
		for _, v := range nbrs {
			mix(uint64(v))
		}
	}
	return h
}

// Builder accumulates edges and produces an immutable Graph.
type Builder struct {
	n   int
	src []VertexID
	dst []VertexID
}

// NewBuilder returns a Builder for a graph with at least n vertices.
func NewBuilder(n int) *Builder { return &Builder{n: n} }

// EnsureVertex grows the vertex count so that v is a valid vertex.
func (b *Builder) EnsureVertex(v VertexID) {
	if int(v) >= b.n {
		b.n = int(v) + 1
	}
}

// AddEdge records the directed edge u -> v, growing the vertex count as
// needed.
func (b *Builder) AddEdge(u, v VertexID) {
	b.EnsureVertex(u)
	b.EnsureVertex(v)
	b.src = append(b.src, u)
	b.dst = append(b.dst, v)
}

// Build produces the CSR graph. The Builder may be reused afterwards, but
// edges already added remain.
func (b *Builder) Build() *Graph {
	g := &Graph{
		offsets:  make([]int64, b.n+1),
		roffsets: make([]int64, b.n+1),
		edges:    make([]VertexID, len(b.src)),
		redges:   make([]VertexID, len(b.src)),
	}
	// Counting sort by source (forward CSR) and by destination (reverse).
	for _, u := range b.src {
		g.offsets[u+1]++
	}
	for _, v := range b.dst {
		g.roffsets[v+1]++
	}
	for i := 1; i <= b.n; i++ {
		g.offsets[i] += g.offsets[i-1]
		g.roffsets[i] += g.roffsets[i-1]
	}
	fcur := make([]int64, b.n)
	rcur := make([]int64, b.n)
	for i := range b.src {
		u, v := b.src[i], b.dst[i]
		g.edges[g.offsets[u]+fcur[u]] = v
		fcur[u]++
		g.redges[g.roffsets[v]+rcur[v]] = u
		rcur[v]++
	}
	return g
}
