package graph

import "fmt"

// Partitioning assigns every vertex to exactly one of K partitions and
// records, per vertex, whether it sits on a partition boundary:
//
//   - Exit[v]  — v has an out-edge into another partition (boundary
//     out-node; cross-partition paths leave v's partition through it).
//   - Entry[v] — v has an in-edge from another partition (boundary
//     in-node; cross-partition paths enter v's partition through it).
//
// Boundary vertices are the only vertices that appear in the compressed
// boundary graph, which is what keeps cross-partition traffic small.
type Partitioning struct {
	K     int
	Part  []int32
	Entry []bool
	Exit  []bool
}

// IsBoundary reports whether v has any cross-partition edge. On a
// hand-rolled Partitioning whose Entry/Exit marks were never computed
// (PartitionWith fills them), absent marks read as non-boundary rather
// than panicking.
func (p *Partitioning) IsBoundary(v VertexID) bool {
	return int(v) < len(p.Entry) && p.Entry[v] || int(v) < len(p.Exit) && p.Exit[v]
}

// NumBoundary returns the number of boundary vertices.
func (p *Partitioning) NumBoundary() int {
	c := 0
	for v := range p.Part {
		if p.IsBoundary(VertexID(v)) {
			c++
		}
	}
	return c
}

// PartitionFunc maps a vertex to a partition in [0, k) given the total
// vertex count n. It must be deterministic.
type PartitionFunc func(v VertexID, n, k int) int32

// HashPartitionFunc spreads vertices across partitions with a fixed
// multiplicative hash (Knuth's 2654435761), so the assignment is
// deterministic across runs and processes.
func HashPartitionFunc(v VertexID, _ int, k int) int32 {
	h := uint64(v) * 2654435761
	h ^= h >> 16
	return int32(h % uint64(k))
}

// RangePartitionFunc assigns contiguous, near-equal vertex ranges to
// partitions: useful when vertex IDs are locality-preserving.
func RangePartitionFunc(v VertexID, n, k int) int32 {
	if n == 0 {
		return 0
	}
	per := (n + k - 1) / k
	p := int(v) / per
	if p >= k {
		p = k - 1
	}
	return int32(p)
}

// HashPartition partitions g into k parts with HashPartitionFunc.
func HashPartition(g *Graph, k int) (*Partitioning, error) {
	return PartitionWith(g, k, HashPartitionFunc)
}

// RangePartition partitions g into k contiguous vertex ranges.
func RangePartition(g *Graph, k int) (*Partitioning, error) {
	return PartitionWith(g, k, RangePartitionFunc)
}

// PartitionWith labels every vertex with fn and then scans the edge set
// once to mark boundary entry/exit vertices.
func PartitionWith(g *Graph, k int, fn PartitionFunc) (*Partitioning, error) {
	if k < 1 {
		return nil, fmt.Errorf("graph: partition count must be >= 1, got %d", k)
	}
	n := g.NumVertices()
	pt := &Partitioning{
		K:     k,
		Part:  make([]int32, n),
		Entry: make([]bool, n),
		Exit:  make([]bool, n),
	}
	for v := 0; v < n; v++ {
		p := fn(VertexID(v), n, k)
		if p < 0 || int(p) >= k {
			return nil, fmt.Errorf("graph: partition func returned %d for vertex %d, want [0,%d)", p, v, k)
		}
		pt.Part[v] = p
	}
	g.Edges(func(u, v VertexID) {
		if pt.Part[u] != pt.Part[v] {
			pt.Exit[u] = true
			pt.Entry[v] = true
		}
	})
	return pt, nil
}
