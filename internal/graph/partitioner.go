package graph

import "fmt"

// Partitioning assigns every vertex to exactly one of K partitions and
// records, per vertex, whether it sits on a partition boundary:
//
//   - Exit[v]  — v has an out-edge into another partition (boundary
//     out-node; cross-partition paths leave v's partition through it).
//   - Entry[v] — v has an in-edge from another partition (boundary
//     in-node; cross-partition paths enter v's partition through it).
//
// Boundary vertices are the only vertices that appear in the compressed
// boundary graph, which is what keeps cross-partition traffic small.
type Partitioning struct {
	K     int
	Part  []int32
	Entry []bool
	Exit  []bool
}

// Digest returns a deterministic FNV-1a digest of the partition
// assignment (K and every vertex's label). Coordinator and shard
// exchange it during the connect-time handshake, so two processes that
// picked different partitioners — or the same locality partitioner with
// different seeds — refuse each other instead of silently disagreeing
// about vertex placement. 0 is never returned, so a digest can always
// be distinguished from "not computed".
func (p *Partitioning) Digest() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xFF
			h *= prime64
			x >>= 8
		}
	}
	mix(uint64(p.K))
	for _, l := range p.Part {
		mix(uint64(uint32(l)))
	}
	if h == 0 {
		h = 1
	}
	return h
}

// IsBoundary reports whether v has any cross-partition edge. On a
// hand-rolled Partitioning whose Entry/Exit marks were never computed
// (PartitionWith fills them), absent marks read as non-boundary rather
// than panicking.
func (p *Partitioning) IsBoundary(v VertexID) bool {
	return int(v) < len(p.Entry) && p.Entry[v] || int(v) < len(p.Exit) && p.Exit[v]
}

// NumBoundary returns the number of boundary vertices.
func (p *Partitioning) NumBoundary() int {
	c := 0
	for v := range p.Part {
		if p.IsBoundary(VertexID(v)) {
			c++
		}
	}
	return c
}

// Partitioner is a strategy for splitting a graph into k parts. All
// implementations must be deterministic — the distributed deployment
// relies on coordinator and shards computing identical placements from
// the same graph — and Name identifies the strategy in logs and CLI
// flags. Hash and Range live here; the locality-aware partitioner is
// partition/locality.New (it needs the whole edge set, not just a
// per-vertex function).
type Partitioner interface {
	Name() string
	Partition(g *Graph, k int) (*Partitioning, error)
}

// funcPartitioner adapts a stateless PartitionFunc to the Partitioner
// interface.
type funcPartitioner struct {
	name string
	fn   PartitionFunc
}

func (p funcPartitioner) Name() string { return p.name }
func (p funcPartitioner) Partition(g *Graph, k int) (*Partitioning, error) {
	return PartitionWith(g, k, p.fn)
}

// Hash returns the deterministic multiplicative-hash Partitioner.
func Hash() Partitioner { return funcPartitioner{"hash", HashPartitionFunc} }

// Range returns the contiguous-vertex-range Partitioner.
func Range() Partitioner { return funcPartitioner{"range", RangePartitionFunc} }

// PartitionFunc maps a vertex to a partition in [0, k) given the total
// vertex count n. It must be deterministic.
type PartitionFunc func(v VertexID, n, k int) int32

// HashPartitionFunc spreads vertices across partitions with a fixed
// multiplicative hash (Knuth's 2654435761), so the assignment is
// deterministic across runs and processes.
func HashPartitionFunc(v VertexID, _ int, k int) int32 {
	h := uint64(v) * 2654435761
	h ^= h >> 16
	return int32(h % uint64(k))
}

// RangePartitionFunc assigns contiguous, near-equal vertex ranges to
// partitions: useful when vertex IDs are locality-preserving.
func RangePartitionFunc(v VertexID, n, k int) int32 {
	if n == 0 {
		return 0
	}
	per := (n + k - 1) / k
	p := int(v) / per
	if p >= k {
		p = k - 1
	}
	return int32(p)
}

// HashPartition partitions g into k parts with HashPartitionFunc.
func HashPartition(g *Graph, k int) (*Partitioning, error) {
	return PartitionWith(g, k, HashPartitionFunc)
}

// RangePartition partitions g into k contiguous vertex ranges.
func RangePartition(g *Graph, k int) (*Partitioning, error) {
	return PartitionWith(g, k, RangePartitionFunc)
}

// PartitionWith labels every vertex with fn and then scans the edge set
// once to mark boundary entry/exit vertices.
func PartitionWith(g *Graph, k int, fn PartitionFunc) (*Partitioning, error) {
	if k < 1 {
		return nil, fmt.Errorf("graph: partition count must be >= 1, got %d", k)
	}
	n := g.NumVertices()
	pt := &Partitioning{
		K:     k,
		Part:  make([]int32, n),
		Entry: make([]bool, n),
		Exit:  make([]bool, n),
	}
	for v := 0; v < n; v++ {
		p := fn(VertexID(v), n, k)
		if p < 0 || int(p) >= k {
			return nil, fmt.Errorf("graph: partition func returned %d for vertex %d, want [0,%d)", p, v, k)
		}
		pt.Part[v] = p
	}
	g.Edges(func(u, v VertexID) {
		if pt.Part[u] != pt.Part[v] {
			pt.Exit[u] = true
			pt.Entry[v] = true
		}
	})
	return pt, nil
}
