package graph

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoadEdgeListFixture(t *testing.T) {
	g, err := LoadEdgeListFile(filepath.Join("testdata", "tiny.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := g.NumVertices(), 8; got != want {
		t.Fatalf("NumVertices = %d, want %d", got, want)
	}
	if got, want := g.NumEdges(), 9; got != want {
		t.Fatalf("NumEdges = %d, want %d", got, want)
	}
	if got := sorted(g.Out(3)); len(got) != 2 || got[0] != 0 || got[1] != 4 {
		t.Fatalf("Out(3) = %v, want [0 4]", got)
	}
}

func TestLoadEdgeListRoundTrip(t *testing.T) {
	g, err := LoadEdgeListFile(filepath.Join("testdata", "tiny.txt"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed shape: %d/%d -> %d/%d",
			g.NumVertices(), g.NumEdges(), g2.NumVertices(), g2.NumEdges())
	}
	for v := 0; v < g.NumVertices(); v++ {
		a, b := sorted(g.Out(VertexID(v))), sorted(g2.Out(VertexID(v)))
		if len(a) != len(b) {
			t.Fatalf("Out(%d) degree changed: %v vs %v", v, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("Out(%d) changed: %v vs %v", v, a, b)
			}
		}
	}
}

func TestLoadEdgeListErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"three fields", "1 2 3\n"},
		{"non-numeric", "a b\n"},
		{"negative", "-1 2\n"},
	}
	for _, c := range cases {
		if _, err := LoadEdgeList(strings.NewReader(c.input)); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestRoundTripPreservesIsolatedVertices(t *testing.T) {
	// Vertices 0, 3, 4 are isolated; 4 is trailing, so without the
	// "# vertices" directive the reloaded graph would shrink to 3.
	b := NewBuilder(5)
	b.AddEdge(1, 2)
	g := b.Build()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := g2.NumVertices(), 5; got != want {
		t.Fatalf("NumVertices after round trip = %d, want %d", got, want)
	}
	if got, want := g2.NumEdges(), 1; got != want {
		t.Fatalf("NumEdges after round trip = %d, want %d", got, want)
	}
}

func TestVertexDirective(t *testing.T) {
	g, err := LoadEdgeList(strings.NewReader("# vertices 10\n0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := g.NumVertices(), 10; got != want {
		t.Fatalf("NumVertices = %d, want %d", got, want)
	}
	// The directive is a floor, not a cap.
	g, err = LoadEdgeList(strings.NewReader("# vertices 2\n0 7\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := g.NumVertices(), 8; got != want {
		t.Fatalf("NumVertices = %d, want %d", got, want)
	}
	// Comments that don't have the directive's exact 3-field shape stay
	// plain comments.
	for _, in := range []string{"# vertices\n", "# vertices 1 2\n", "#vertices 10\n", "# vertex 10\n"} {
		g, err := LoadEdgeList(strings.NewReader(in))
		if err != nil || g.NumVertices() != 0 {
			t.Errorf("%q: got %v vertices, err %v; want plain comment", in, g.NumVertices(), err)
		}
	}
}

// TestVertexDirectiveMalformed: a directive-shaped comment whose count
// does not parse as a uint32 must be a line-numbered load error — not a
// silently dropped count that makes isolated vertices vanish on
// round-trip.
func TestVertexDirectiveMalformed(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"non-numeric", "0 1\n# vertices x\n"},
		{"negative", "0 1\n# vertices -5\n"},
		{"uint32 overflow", "0 1\n# vertices 4294967296\n"},
		{"float", "0 1\n# vertices 1.5\n"},
	}
	for _, c := range cases {
		_, err := LoadEdgeList(strings.NewReader(c.input))
		if err == nil {
			t.Errorf("%s: want error, got nil", c.name)
			continue
		}
		if !strings.Contains(err.Error(), "line 2") {
			t.Errorf("%s: error %q does not name line 2", c.name, err)
		}
		if !strings.Contains(err.Error(), "vertices") {
			t.Errorf("%s: error %q does not name the directive", c.name, err)
		}
	}
}

// TestLoadEdgeListScannerErrorHasLineContext: a line exceeding the
// scanner's 1 MiB buffer must fail with the offending line's number,
// not bufio's opaque "token too long".
func TestLoadEdgeListScannerErrorHasLineContext(t *testing.T) {
	input := "0 1\n1 2\n0 " + strings.Repeat("9", 2*1024*1024) + "\n"
	_, err := LoadEdgeList(strings.NewReader(input))
	if err == nil {
		t.Fatal("want error for an over-long line, got nil")
	}
	if !strings.Contains(err.Error(), "graph: line 3") {
		t.Errorf("error %q does not carry file/line context for line 3", err)
	}
	if !strings.Contains(err.Error(), "token too long") {
		t.Errorf("error %q does not preserve the scanner's cause", err)
	}
}

func TestLoadEdgeListCommentsAndBlank(t *testing.T) {
	g, err := LoadEdgeList(strings.NewReader("# header\n\n0 1\n  \n# mid\n1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 || g.NumVertices() != 3 {
		t.Fatalf("got %d vertices / %d edges, want 3 / 2", g.NumVertices(), g.NumEdges())
	}
}
