package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// LoadEdgeList parses a whitespace-separated edge list: one "u v" pair
// per line, blank lines and lines starting with '#' ignored. Vertex IDs
// are non-negative integers; the graph gets max(id)+1 vertices. One
// comment form is meaningful: a "# vertices N" directive raises the
// vertex count to at least N, so graphs with trailing isolated vertices
// round-trip through WriteEdgeList (which emits it).
func LoadEdgeList(r io.Reader) (*Graph, error) {
	b := NewBuilder(0)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			n, ok, err := parseVertexDirective(line)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", lineno, err)
			}
			if ok && n > 0 {
				b.EnsureVertex(VertexID(n - 1))
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: want 2 fields, got %d", lineno, len(fields))
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source %q: %v", lineno, fields[0], err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target %q: %v", lineno, fields[1], err)
		}
		b.AddEdge(VertexID(u), VertexID(v))
	}
	if err := sc.Err(); err != nil {
		// The scanner failed reading the line after the last one it
		// delivered (e.g. bufio.ErrTooLong on a line over the 1 MiB
		// buffer), so point the error there instead of returning the
		// opaque scanner error raw.
		return nil, fmt.Errorf("graph: line %d: %v", lineno+1, err)
	}
	return b.Build(), nil
}

// LoadEdgeListFile loads an edge list from the file at path.
func LoadEdgeListFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadEdgeList(f)
}

// parseVertexDirective recognizes "# vertices N" comments. A comment
// that is shaped like the directive but whose count fails to parse as
// a uint32 (negative, overflowing, non-numeric) is an error, not a
// plain comment: silently dropping a writer's count would make
// trailing isolated vertices vanish on round-trip.
func parseVertexDirective(line string) (uint64, bool, error) {
	fields := strings.Fields(line)
	if len(fields) != 3 || fields[0] != "#" || fields[1] != "vertices" {
		return 0, false, nil
	}
	n, err := strconv.ParseUint(fields[2], 10, 32)
	if err != nil {
		return 0, false, fmt.Errorf("bad '# vertices' directive count %q: %v", fields[2], err)
	}
	return n, true, nil
}

// WriteEdgeList writes g in the format accepted by LoadEdgeList: a
// "# vertices N" directive (so isolated vertices survive a round trip)
// followed by the edges ordered by source vertex.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	_, err := fmt.Fprintf(bw, "# vertices %d\n", g.NumVertices())
	g.Edges(func(u, v VertexID) {
		if err == nil {
			_, err = fmt.Fprintf(bw, "%d %d\n", u, v)
		}
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}
