package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// LoadEdgeList parses a whitespace-separated edge list: one "u v" pair
// per line, blank lines and lines starting with '#' ignored. Vertex IDs
// are non-negative integers; the graph gets max(id)+1 vertices. One
// comment form is meaningful: a "# vertices N" directive raises the
// vertex count to at least N, so graphs with trailing isolated vertices
// round-trip through WriteEdgeList (which emits it).
func LoadEdgeList(r io.Reader) (*Graph, error) {
	b := NewBuilder(0)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			if n, ok := parseVertexDirective(line); ok && n > 0 {
				b.EnsureVertex(VertexID(n - 1))
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: want 2 fields, got %d", lineno, len(fields))
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source %q: %v", lineno, fields[0], err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target %q: %v", lineno, fields[1], err)
		}
		b.AddEdge(VertexID(u), VertexID(v))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build(), nil
}

// LoadEdgeListFile loads an edge list from the file at path.
func LoadEdgeListFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadEdgeList(f)
}

// parseVertexDirective recognizes "# vertices N" comments.
func parseVertexDirective(line string) (uint64, bool) {
	fields := strings.Fields(line)
	if len(fields) != 3 || fields[0] != "#" || fields[1] != "vertices" {
		return 0, false
	}
	n, err := strconv.ParseUint(fields[2], 10, 32)
	if err != nil {
		return 0, false
	}
	return n, true
}

// WriteEdgeList writes g in the format accepted by LoadEdgeList: a
// "# vertices N" directive (so isolated vertices survive a round trip)
// followed by the edges ordered by source vertex.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	_, err := fmt.Fprintf(bw, "# vertices %d\n", g.NumVertices())
	g.Edges(func(u, v VertexID) {
		if err == nil {
			_, err = fmt.Fprintf(bw, "%d %d\n", u, v)
		}
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}
