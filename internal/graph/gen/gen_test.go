package gen

import (
	"testing"

	"dsr/internal/graph"
)

func TestPlantedShape(t *testing.T) {
	cfg := PlantedConfig{N: 4000, K: 4, IntraDeg: 6, InterDeg: 0.5, Seed: 1, Shuffle: true}
	g, truth, err := Planted(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != cfg.N || len(truth) != cfg.N {
		t.Fatalf("got %d vertices, truth %d, want %d", g.NumVertices(), len(truth), cfg.N)
	}
	// Expected edges: N*(IntraDeg+InterDeg) = 26000; allow 10% slack for
	// the stochastic rounding.
	want := float64(cfg.N) * (cfg.IntraDeg + cfg.InterDeg)
	if m := float64(g.NumEdges()); m < want*0.9 || m > want*1.1 {
		t.Errorf("edge count %v far from expectation %v", m, want)
	}
	// Communities are near-equal.
	sizes := make([]int, cfg.K)
	for _, c := range truth {
		sizes[c]++
	}
	for c, s := range sizes {
		if s < cfg.N/cfg.K-1 || s > cfg.N/cfg.K+1 {
			t.Errorf("community %d has %d members, want ~%d", c, s, cfg.N/cfg.K)
		}
	}
	// Count actual intra/inter edges: structure must be planted as
	// configured (inter edges are ~InterDeg/(IntraDeg+InterDeg) ≈ 7.7%).
	intra, inter := 0, 0
	g.Edges(func(u, v graph.VertexID) {
		if truth[u] == truth[v] {
			intra++
		} else {
			inter++
		}
	})
	if inter == 0 || intra < inter*8 {
		t.Errorf("intra=%d inter=%d: structure not planted as configured", intra, inter)
	}
	// No self-loops: both samplers reject them.
	g.Edges(func(u, v graph.VertexID) {
		if u == v {
			t.Fatalf("self-loop at %d", u)
		}
	})
}

func TestPlantedDeterministic(t *testing.T) {
	cfg := PlantedConfig{N: 500, K: 3, IntraDeg: 4, InterDeg: 1, Seed: 9, Shuffle: true}
	a, _, err := Planted(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Planted(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("same config produced different graphs")
	}
	c, _, err := Planted(PlantedConfig{N: 500, K: 3, IntraDeg: 4, InterDeg: 1, Seed: 10, Shuffle: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestPlantedUnshuffledIsContiguous(t *testing.T) {
	_, truth, err := Planted(PlantedConfig{N: 100, K: 4, IntraDeg: 2, InterDeg: 0.1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < len(truth); v++ {
		if truth[v] < truth[v-1] {
			t.Fatalf("unshuffled communities not contiguous at vertex %d", v)
		}
	}
}

func TestPlantedRejectsBadConfig(t *testing.T) {
	for _, cfg := range []PlantedConfig{
		{N: 10, K: 0},
		{N: -1, K: 2},
		{N: 3, K: 5},
		{N: 10, K: 2, IntraDeg: -1},
	} {
		if _, _, err := Planted(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	// Degenerate but valid: empty graph, single community.
	if g, _, err := Planted(PlantedConfig{N: 0, K: 1}); err != nil || g.NumVertices() != 0 {
		t.Errorf("empty graph: %v, %v", g, err)
	}
	if g, _, err := Planted(PlantedConfig{N: 5, K: 1, IntraDeg: 2}); err != nil || g.NumVertices() != 5 {
		t.Errorf("single community: %v, %v", g, err)
	}
}
