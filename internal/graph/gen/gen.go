// Package gen generates synthetic graphs with known structure for
// benchmarks and partitioner-quality tests. The planted-partition model
// produces graphs with K ground-truth communities: dense inside, sparse
// between. Uniform-random graphs (the existing benchmark workload) show
// ~0 difference between partitioners by construction — every
// partitioning of a structureless graph cuts the same expected number
// of edges — so community structure is what makes partitioner quality
// measurable at all.
package gen

import (
	"fmt"
	"math/rand"

	"dsr/internal/graph"
)

// PlantedConfig describes a planted-partition graph.
type PlantedConfig struct {
	// N is the vertex count, K the number of planted communities
	// (near-equal sizes).
	N, K int
	// IntraDeg and InterDeg are the expected out-degrees of each vertex
	// within its own community and toward other communities. IntraDeg >>
	// InterDeg plants recoverable structure.
	IntraDeg, InterDeg float64
	// Seed makes generation deterministic.
	Seed int64
	// Shuffle scatters community membership across the vertex-ID space.
	// Without it communities are contiguous ID ranges — which a range
	// partitioner solves by accident. With it, recovering the structure
	// requires actually looking at the edges.
	Shuffle bool
}

// Planted generates a planted-partition graph and returns it along with
// the ground-truth community of every vertex. Deterministic for a fixed
// config.
func Planted(cfg PlantedConfig) (*graph.Graph, []int32, error) {
	if cfg.N < 0 || cfg.K < 1 {
		return nil, nil, fmt.Errorf("gen: bad planted config N=%d K=%d", cfg.N, cfg.K)
	}
	if cfg.K > 1 && cfg.N < cfg.K {
		return nil, nil, fmt.Errorf("gen: N=%d smaller than K=%d communities", cfg.N, cfg.K)
	}
	if cfg.IntraDeg < 0 || cfg.InterDeg < 0 {
		return nil, nil, fmt.Errorf("gen: negative degree in config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	truth := make([]int32, cfg.N)
	if cfg.Shuffle {
		// Assign communities round-robin over a random permutation:
		// near-equal sizes, scattered IDs.
		for i, v := range rng.Perm(cfg.N) {
			truth[v] = int32(i % cfg.K)
		}
	} else {
		for v := range truth {
			truth[v] = graph.RangePartitionFunc(graph.VertexID(v), cfg.N, cfg.K)
		}
	}
	members := make([][]graph.VertexID, cfg.K)
	for v, c := range truth {
		members[c] = append(members[c], graph.VertexID(v))
	}

	b := graph.NewBuilder(cfg.N)
	// sample rounds d to an integer stochastically, preserving the
	// expectation for fractional degrees.
	sample := func(d float64) int {
		m := int(d)
		if rng.Float64() < d-float64(m) {
			m++
		}
		return m
	}
	for v := 0; v < cfg.N; v++ {
		c := truth[v]
		own := members[c]
		for i := sample(cfg.IntraDeg); i > 0 && len(own) > 1; i-- {
			w := own[rng.Intn(len(own))]
			for w == graph.VertexID(v) {
				w = own[rng.Intn(len(own))]
			}
			b.AddEdge(graph.VertexID(v), w)
		}
		if cfg.K > 1 {
			for i := sample(cfg.InterDeg); i > 0; i-- {
				// Rejection-sample a vertex outside v's community; with
				// near-equal communities this takes ~K/(K-1) draws.
				w := graph.VertexID(rng.Intn(cfg.N))
				for truth[w] == c {
					w = graph.VertexID(rng.Intn(cfg.N))
				}
				b.AddEdge(graph.VertexID(v), w)
			}
		}
	}
	return b.Build(), truth, nil
}
