package graph

import "testing"

// chain builds 0 -> 1 -> 2 -> ... -> n-1.
func chain(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(VertexID(i), VertexID(i+1))
	}
	return b.Build()
}

func TestPartitionersAssignEveryVertexOnce(t *testing.T) {
	cases := []struct {
		name string
		fn   func(*Graph, int) (*Partitioning, error)
	}{
		{"hash", HashPartition},
		{"range", RangePartition},
	}
	sizes := []int{0, 1, 2, 7, 100}
	ks := []int{1, 2, 3, 8}
	for _, c := range cases {
		for _, n := range sizes {
			for _, k := range ks {
				g := chain(n)
				pt, err := c.fn(g, k)
				if err != nil {
					t.Fatalf("%s(n=%d,k=%d): %v", c.name, n, k, err)
				}
				if len(pt.Part) != n {
					t.Fatalf("%s(n=%d,k=%d): %d labels", c.name, n, k, len(pt.Part))
				}
				for v, p := range pt.Part {
					if p < 0 || int(p) >= k {
						t.Errorf("%s(n=%d,k=%d): vertex %d in partition %d", c.name, n, k, v, p)
					}
				}
			}
		}
	}
}

func TestPartitionRejectsBadK(t *testing.T) {
	for _, k := range []int{0, -1} {
		if _, err := HashPartition(chain(4), k); err == nil {
			t.Errorf("HashPartition(k=%d): want error", k)
		}
	}
}

func TestRangePartitionContiguous(t *testing.T) {
	pt, err := RangePartition(chain(10), 3)
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < 10; v++ {
		if pt.Part[v] < pt.Part[v-1] {
			t.Fatalf("range partition not monotone at vertex %d: %v", v, pt.Part)
		}
	}
}

func TestHashPartitionDeterministic(t *testing.T) {
	g := chain(50)
	a, _ := HashPartition(g, 4)
	b, _ := HashPartition(g, 4)
	for v := range a.Part {
		if a.Part[v] != b.Part[v] {
			t.Fatalf("hash partition not deterministic at vertex %d", v)
		}
	}
}

// TestBoundaryDetection checks entry/exit marking on hand-built graphs.
func TestBoundaryDetection(t *testing.T) {
	// Two partitions by range over 4 vertices: {0,1} and {2,3}.
	// Edges: 0->1 (internal), 1->2 (cross), 2->3 (internal), 3->0 (cross).
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	g := b.Build()
	pt, err := RangePartition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantEntry := []bool{true, false, true, false}
	wantExit := []bool{false, true, false, true}
	for v := 0; v < 4; v++ {
		if pt.Entry[v] != wantEntry[v] {
			t.Errorf("Entry[%d] = %v, want %v", v, pt.Entry[v], wantEntry[v])
		}
		if pt.Exit[v] != wantExit[v] {
			t.Errorf("Exit[%d] = %v, want %v", v, pt.Exit[v], wantExit[v])
		}
		if pt.IsBoundary(VertexID(v)) != (wantEntry[v] || wantExit[v]) {
			t.Errorf("IsBoundary(%d) wrong", v)
		}
	}
	if got, want := pt.NumBoundary(), 4; got != want {
		t.Errorf("NumBoundary = %d, want %d", got, want)
	}
}

func TestIsBoundaryOnBarePartitioning(t *testing.T) {
	// Hand-rolled value with no computed marks: must read as non-boundary,
	// not panic.
	p := &Partitioning{K: 2, Part: []int32{0, 1, 0}}
	for v := 0; v < 3; v++ {
		if p.IsBoundary(VertexID(v)) {
			t.Errorf("IsBoundary(%d) on bare partitioning = true", v)
		}
	}
	if got := p.NumBoundary(); got != 0 {
		t.Errorf("NumBoundary on bare partitioning = %d, want 0", got)
	}
}

func TestBoundaryNoneWhenSinglePartition(t *testing.T) {
	g := chain(6)
	pt, err := HashPartition(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := pt.NumBoundary(); got != 0 {
		t.Fatalf("k=1 graph has %d boundary vertices, want 0", got)
	}
}

func TestBoundaryInternalEdgesOnly(t *testing.T) {
	// All vertices in one range partition out of two: 0..2 in part 0,
	// no vertex in part 1 touches an edge.
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	pt, err := RangePartition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := pt.NumBoundary(); got != 0 {
		t.Fatalf("internal-only edges produced %d boundary vertices, want 0", got)
	}
}
