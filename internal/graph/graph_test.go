package graph

import (
	"reflect"
	"sort"
	"testing"
)

func sorted(s []VertexID) []VertexID {
	out := append([]VertexID(nil), s...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestBuilderCSR(t *testing.T) {
	b := NewBuilder(0)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(2, 1)
	b.AddEdge(3, 0)
	g := b.Build()

	if got, want := g.NumVertices(), 4; got != want {
		t.Fatalf("NumVertices = %d, want %d", got, want)
	}
	if got, want := g.NumEdges(), 4; got != want {
		t.Fatalf("NumEdges = %d, want %d", got, want)
	}
	cases := []struct {
		v   VertexID
		out []VertexID
		in  []VertexID
	}{
		{0, []VertexID{1, 2}, []VertexID{3}},
		{1, nil, []VertexID{0, 2}},
		{2, []VertexID{1}, []VertexID{0}},
		{3, []VertexID{0}, nil},
	}
	for _, c := range cases {
		if got := sorted(g.Out(c.v)); !reflect.DeepEqual(got, sorted(c.out)) {
			t.Errorf("Out(%d) = %v, want %v", c.v, got, c.out)
		}
		if got := sorted(g.In(c.v)); !reflect.DeepEqual(got, sorted(c.in)) {
			t.Errorf("In(%d) = %v, want %v", c.v, got, c.in)
		}
	}
}

func TestBuilderIsolatedVertices(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(1, 2)
	g := b.Build()
	if got, want := g.NumVertices(), 5; got != want {
		t.Fatalf("NumVertices = %d, want %d", got, want)
	}
	for _, v := range []VertexID{0, 3, 4} {
		if len(g.Out(v)) != 0 || len(g.In(v)) != 0 {
			t.Errorf("vertex %d should be isolated", v)
		}
	}
}

func TestEnsureVertexGrows(t *testing.T) {
	b := NewBuilder(0)
	b.EnsureVertex(7)
	g := b.Build()
	if got, want := g.NumVertices(), 8; got != want {
		t.Fatalf("NumVertices = %d, want %d", got, want)
	}
}

func TestEdgesVisitsAll(t *testing.T) {
	b := NewBuilder(0)
	want := map[[2]VertexID]int{
		{0, 1}: 1, {1, 2}: 1, {2, 0}: 2, // multi-edge preserved
	}
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(2, 0)
	g := b.Build()
	got := map[[2]VertexID]int{}
	g.Edges(func(u, v VertexID) { got[[2]VertexID{u, v}]++ })
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Edges visited %v, want %v", got, want)
	}
}
