package graph

import "testing"

func TestFingerprint(t *testing.T) {
	mk := func(n int, edges ...[2]VertexID) *Graph {
		b := NewBuilder(n)
		for _, e := range edges {
			b.AddEdge(e[0], e[1])
		}
		return b.Build()
	}
	base := mk(4, [2]VertexID{0, 1}, [2]VertexID{1, 2})
	if base.Fingerprint() != mk(4, [2]VertexID{0, 1}, [2]VertexID{1, 2}).Fingerprint() {
		t.Error("identical graphs must fingerprint identically")
	}
	for name, other := range map[string]*Graph{
		"extra edge":     mk(4, [2]VertexID{0, 1}, [2]VertexID{1, 2}, [2]VertexID{2, 3}),
		"different edge": mk(4, [2]VertexID{0, 1}, [2]VertexID{1, 3}),
		"extra vertex":   mk(5, [2]VertexID{0, 1}, [2]VertexID{1, 2}),
		"empty":          mk(0),
	} {
		if other.Fingerprint() == base.Fingerprint() {
			t.Errorf("%s: fingerprint collides with base", name)
		}
	}
}
