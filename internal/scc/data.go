package scc

import "fmt"

// CondensationData is the raw array content of a Condensation, exposed
// so a persisted index snapshot can round-trip the SCC decomposition
// without re-running Tarjan. Data returns live views (no copies);
// CondensationFromData validates and reassembles. The arrays are plain
// fixed-width integers on purpose: they serialize as flat sections of
// an mmap-friendly file.
type CondensationData struct {
	Comp    []int32 // vertex -> component
	FOff    []int32 // forward CSR offsets, len N+1
	FEdges  []int32
	ROff    []int32 // reverse CSR offsets, len N+1
	REdges  []int32
	MOff    []int32 // member-list offsets, len N+1
	Members []int32
}

// Data returns views of the condensation's raw arrays. Callers must
// treat them as read-only: they alias the live condensation.
func (c *Condensation) Data() CondensationData {
	return CondensationData{
		Comp:    c.Comp,
		FOff:    c.foff,
		FEdges:  c.fedges,
		ROff:    c.roff,
		REdges:  c.redges,
		MOff:    c.moff,
		Members: c.members,
	}
}

// checkCSR validates one CSR half: offsets start at 0, never decrease,
// and end exactly at the edge-array length, with every edge target in
// [0, limit).
func checkCSR(name string, off, edges []int32, limit int32) error {
	if len(off) == 0 || off[0] != 0 {
		return fmt.Errorf("scc: %s offsets must start at 0", name)
	}
	for i := 1; i < len(off); i++ {
		if off[i] < off[i-1] {
			return fmt.Errorf("scc: %s offsets decrease at %d", name, i)
		}
	}
	if int(off[len(off)-1]) != len(edges) {
		return fmt.Errorf("scc: %s offsets end at %d, want %d", name, off[len(off)-1], len(edges))
	}
	for i, e := range edges {
		if e < 0 || e >= limit {
			return fmt.Errorf("scc: %s edge %d targets %d, want [0,%d)", name, i, e, limit)
		}
	}
	return nil
}

// CondensationFromData validates d and reassembles a Condensation. The
// slices are retained, not copied. Validation covers everything the
// query path and the bitset index rely on: CSR well-formedness, member
// lists that partition the vertex set consistently with Comp, forward
// and reverse adjacency being transposes of each other, and — the
// property every increasing-ID sweep depends on — component IDs in
// reverse topological order (every forward edge points at a smaller
// ID).
func CondensationFromData(d CondensationData) (*Condensation, error) {
	if len(d.MOff) == 0 || len(d.FOff) != len(d.MOff) || len(d.ROff) != len(d.MOff) {
		return nil, fmt.Errorf("scc: offset arrays disagree on component count (%d/%d/%d)",
			len(d.FOff), len(d.ROff), len(d.MOff))
	}
	nc := len(d.MOff) - 1
	n := len(d.Comp)
	if err := checkCSR("forward", d.FOff, d.FEdges, int32(nc)); err != nil {
		return nil, err
	}
	if err := checkCSR("reverse", d.ROff, d.REdges, int32(nc)); err != nil {
		return nil, err
	}
	if err := checkCSR("member", d.MOff, d.Members, int32(n)); err != nil {
		return nil, err
	}
	if len(d.Members) != n {
		return nil, fmt.Errorf("scc: %d members for %d vertices", len(d.Members), n)
	}
	if len(d.FEdges) != len(d.REdges) {
		return nil, fmt.Errorf("scc: %d forward edges vs %d reverse", len(d.FEdges), len(d.REdges))
	}
	// Members must list every vertex exactly once, in its Comp component.
	seen := make([]bool, n)
	for cc := 0; cc < nc; cc++ {
		for _, v := range d.Members[d.MOff[cc]:d.MOff[cc+1]] {
			if seen[v] {
				return nil, fmt.Errorf("scc: vertex %d listed in two components", v)
			}
			seen[v] = true
			if int(d.Comp[v]) != cc {
				return nil, fmt.Errorf("scc: vertex %d in member list of %d but Comp says %d", v, cc, d.Comp[v])
			}
		}
	}
	// Reverse topological numbering: forward edges strictly decrease,
	// reverse edges strictly increase.
	indeg := make([]int32, nc)
	for cc := 0; cc < nc; cc++ {
		for _, dd := range d.FEdges[d.FOff[cc]:d.FOff[cc+1]] {
			if dd >= int32(cc) {
				return nil, fmt.Errorf("scc: forward edge %d->%d breaks reverse topological order", cc, dd)
			}
			indeg[dd]++
		}
	}
	outdeg := make([]int32, nc)
	for cc := 0; cc < nc; cc++ {
		for _, s := range d.REdges[d.ROff[cc]:d.ROff[cc+1]] {
			if s <= int32(cc) {
				return nil, fmt.Errorf("scc: reverse edge %d->%d breaks reverse topological order", cc, s)
			}
			outdeg[s]++
		}
	}
	// Transpose consistency: reverse in/out degrees must mirror forward.
	for cc := 0; cc < nc; cc++ {
		if got := d.ROff[cc+1] - d.ROff[cc]; got != indeg[cc] {
			return nil, fmt.Errorf("scc: component %d has %d reverse edges but forward in-degree %d", cc, got, indeg[cc])
		}
		if got := d.FOff[cc+1] - d.FOff[cc]; got != outdeg[cc] {
			return nil, fmt.Errorf("scc: component %d has %d forward edges but reverse out-degree %d", cc, got, outdeg[cc])
		}
	}
	return &Condensation{
		Comp: d.Comp, N: nc,
		foff: d.FOff, fedges: d.FEdges,
		roff: d.ROff, redges: d.REdges,
		moff: d.MOff, members: d.Members,
	}, nil
}

// IndexData is the raw content of an Index: the exit list (bit i owns
// exits[i]) and the per-component bitsets, concatenated in component
// order.
type IndexData struct {
	Exits []int32
	Bits  []uint64
}

// Data returns views of the index's raw arrays; callers must treat
// them as read-only.
func (ix *Index) Data() IndexData { return IndexData{Exits: ix.exits, Bits: ix.bits} }

// IndexFromData validates d against cond and reassembles an Index. The
// slices are retained. Beyond shape checks, every exit's own bit must
// be set in its component's bitset — the cheapest invariant that
// catches bitsets not built for this exit list.
func IndexFromData(cond *Condensation, d IndexData) (*Index, error) {
	words := (len(d.Exits) + 63) / 64
	if len(d.Bits) != cond.N*words {
		return nil, fmt.Errorf("scc: %d bitset words for %d components x %d words", len(d.Bits), cond.N, words)
	}
	n := len(cond.Comp)
	for i, x := range d.Exits {
		if x < 0 || int(x) >= n {
			return nil, fmt.Errorf("scc: exit %d is vertex %d, want [0,%d)", i, x, n)
		}
		cc := int(cond.Comp[x])
		if d.Bits[cc*words+i/64]&(1<<uint(i%64)) == 0 {
			return nil, fmt.Errorf("scc: exit %d (vertex %d) missing from its own component's bitset", i, x)
		}
	}
	return &Index{cond: cond, exits: d.Exits, words: words, bits: d.Bits}, nil
}
