package scc

// Condensation is the SCC DAG of a graph: one node per component, a
// deduped edge for every pair of components joined by at least one
// original edge, in both forward and reverse CSR form, plus the member
// list of every component. Component IDs are in reverse topological
// order (see Decompose), which downstream consumers rely on: a single
// increasing-ID sweep visits every component after all of its
// successors.
type Condensation struct {
	Comp []int32 // vertex -> component
	N    int     // component count; IDs are 0..N-1

	foff    []int32
	fedges  []int32
	roff    []int32
	redges  []int32
	moff    []int32
	members []int32
}

// Out returns the successor components of c in the DAG.
func (c *Condensation) Out(comp int32) []int32 {
	return c.fedges[c.foff[comp]:c.foff[comp+1]]
}

// In returns the predecessor components of c in the DAG.
func (c *Condensation) In(comp int32) []int32 {
	return c.redges[c.roff[comp]:c.roff[comp+1]]
}

// Members returns the vertices belonging to component c.
func (c *Condensation) Members(comp int32) []int32 {
	return c.members[c.moff[comp]:c.moff[comp+1]]
}

// NumEdges returns the number of deduped DAG edges.
func (c *Condensation) NumEdges() int { return len(c.fedges) }

// Condense decomposes g into SCCs and builds its condensation. ws may
// be nil; when non-nil its transient arrays are reused, and only the
// returned Condensation is freshly allocated.
func Condense(g Adjacency, ws *Workspace) *Condensation {
	if ws == nil {
		ws = &Workspace{}
	}
	comp, nc := Decompose(g, ws)
	n := g.NumVertices()
	c := &Condensation{Comp: comp, N: nc}

	// Member lists: counting sort of vertices by component.
	c.moff = make([]int32, nc+1)
	for _, cc := range comp {
		c.moff[cc+1]++
	}
	for i := 1; i <= nc; i++ {
		c.moff[i] += c.moff[i-1]
	}
	c.members = make([]int32, n)
	cur := ws.counters(nc)
	for v := 0; v < n; v++ {
		cc := comp[v]
		c.members[c.moff[cc]+cur[cc]] = int32(v)
		cur[cc]++
	}

	// DAG edges, deduped per source component: members of a component
	// are scanned contiguously, so a seen-mark holding the current
	// source component suffices.
	seen := ws.seen[:nc]
	for i := range seen {
		seen[i] = -1
	}
	ws.esrc, ws.edst = ws.esrc[:0], ws.edst[:0]
	for cc := int32(0); cc < int32(nc); cc++ {
		for _, v := range c.Members(cc) {
			for _, w := range g.Out(v) {
				if d := comp[w]; d != cc && seen[d] != cc {
					seen[d] = cc
					ws.esrc = append(ws.esrc, cc)
					ws.edst = append(ws.edst, d)
				}
			}
		}
	}

	m := len(ws.esrc)
	c.foff = make([]int32, nc+1)
	c.roff = make([]int32, nc+1)
	for i := 0; i < m; i++ {
		c.foff[ws.esrc[i]+1]++
		c.roff[ws.edst[i]+1]++
	}
	for i := 1; i <= nc; i++ {
		c.foff[i] += c.foff[i-1]
		c.roff[i] += c.roff[i-1]
	}
	c.fedges = make([]int32, m)
	c.redges = make([]int32, m)
	cur = ws.counters(nc)
	for i := 0; i < m; i++ {
		s := ws.esrc[i]
		c.fedges[c.foff[s]+cur[s]] = ws.edst[i]
		cur[s]++
	}
	cur = ws.counters(nc)
	for i := 0; i < m; i++ {
		d := ws.edst[i]
		c.redges[c.roff[d]+cur[d]] = ws.esrc[i]
		cur[d]++
	}
	return c
}
