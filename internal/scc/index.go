package scc

import "math/bits"

// Index is a bitset reachability index over a fixed exit set: exit i
// owns bit i, and every component stores the bitset of exits reachable
// from it (through any path in the condensation, exits in the component
// itself included). Building it is one bottom-up sweep of the DAG —
// O(V+E) for the decomposition plus O((V+E)·B/64) word-parallel OR
// work for B exits — after which each entry's summary reads straight
// out of its component's bitset in output-linear time.
type Index struct {
	cond  *Condensation
	exits []int32 // bit i <-> exits[i]
	words int     // bitset words per component
	bits  []uint64
}

// BuildIndex builds the reachability index of cond over exits. The
// exits slice is retained; callers must not mutate it afterwards.
func BuildIndex(cond *Condensation, exits []int32) *Index {
	words := (len(exits) + 63) / 64
	ix := &Index{
		cond:  cond,
		exits: exits,
		words: words,
		bits:  make([]uint64, cond.N*words),
	}
	for i, x := range exits {
		cc := int(cond.Comp[x])
		ix.bits[cc*words+i/64] |= 1 << uint(i%64)
	}
	// Components are numbered in reverse topological order, so every
	// successor of component cc has a smaller ID and its bitset is
	// already final when cc is processed.
	for cc := 0; cc < cond.N; cc++ {
		dst := ix.bits[cc*words : (cc+1)*words]
		for _, d := range cond.Out(int32(cc)) {
			src := ix.bits[int(d)*words : (int(d)+1)*words]
			for i, w := range src {
				dst[i] |= w
			}
		}
	}
	return ix
}

// NumExits returns the number of indexed exits.
func (ix *Index) NumExits() int { return len(ix.exits) }

// AppendExitsFrom appends to dst every exit reachable from vertex v
// (v itself included if it is an exit) and returns the extended slice.
// Exits appear in bit order, i.e. the order of the exit slice the index
// was built with.
func (ix *Index) AppendExitsFrom(v int32, dst []int32) []int32 {
	b := ix.bits[int(ix.cond.Comp[v])*ix.words:][:ix.words]
	for wi, word := range b {
		for word != 0 {
			dst = append(dst, ix.exits[wi*64+bits.TrailingZeros64(word)])
			word &= word - 1
		}
	}
	return dst
}
