package scc

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestCondensationDataRoundTrip: Data -> CondensationFromData preserves
// the decomposition exactly, across random graphs.
func TestCondensationDataRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(50)
		a := randomAdj(rng, n, []float64{0.5, 1, 2, 4}[rng.Intn(4)])
		c := Condense(a, nil)
		c2, err := CondensationFromData(c.Data())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reflect.DeepEqual(c, c2) {
			t.Fatalf("trial %d: round trip changed the condensation", trial)
		}
	}
}

// TestCondensationFromDataRejects: each persisted-state invariant the
// query path relies on is actually enforced.
func TestCondensationFromDataRejects(t *testing.T) {
	// 0<->1 -> 2, plus isolated 3: components {0,1}, {2}, {3} with
	// comp({0,1}) > comp(2) by reverse-topo numbering.
	base := func() CondensationData {
		a := buildAdj(4, [][2]int32{{0, 1}, {1, 0}, {1, 2}})
		return Condense(a, nil).Data()
	}
	cases := []struct {
		name string
		mut  func(*CondensationData)
	}{
		{"offsets decrease", func(d *CondensationData) { d.FOff[1] = d.FOff[len(d.FOff)-1] + 1 }},
		{"edge out of range", func(d *CondensationData) { d.FEdges[0] = int32(len(d.MOff)) }},
		{"comp disagrees with members", func(d *CondensationData) { d.Comp[0], d.Comp[1] = d.Comp[1], d.Comp[0]+99 }},
		{"vertex in two components", func(d *CondensationData) { d.Members[0] = d.Members[len(d.Members)-1] }},
		{"forward edge breaks topo order", func(d *CondensationData) {
			// Point the one cross-component edge upward instead of down.
			d.FEdges[0] = int32(len(d.MOff) - 2)
		}},
		{"transpose mismatch", func(d *CondensationData) {
			// Drop a reverse edge but keep offsets consistent: degree
			// counts no longer mirror the forward half.
			for i := 1; i < len(d.ROff); i++ {
				d.ROff[i]--
			}
			d.REdges = d.REdges[1:]
		}},
		{"member count mismatch", func(d *CondensationData) { d.Members = d.Members[:len(d.Members)-1] }},
		{"offset arrays disagree", func(d *CondensationData) { d.ROff = d.ROff[:len(d.ROff)-1] }},
	}
	for _, c := range cases {
		d := base()
		// Deep-copy every slice so mutations stay independent per case.
		d.Comp = append([]int32{}, d.Comp...)
		d.FOff = append([]int32{}, d.FOff...)
		d.FEdges = append([]int32{}, d.FEdges...)
		d.ROff = append([]int32{}, d.ROff...)
		d.REdges = append([]int32{}, d.REdges...)
		d.Members = append([]int32{}, d.Members...)
		c.mut(&d)
		if _, err := CondensationFromData(d); err == nil {
			t.Errorf("%s: accepted invalid data", c.name)
		}
	}
}

// TestIndexDataRoundTrip: Data -> IndexFromData preserves reachability
// answers bit for bit.
func TestIndexDataRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(40)
		a := randomAdj(rng, n, 2)
		cond := Condense(a, nil)
		// A few random vertices as exits, deduped and increasing.
		seen := map[int32]bool{}
		var exits []int32
		for i := 0; i < 1+rng.Intn(5); i++ {
			v := int32(rng.Intn(n))
			if !seen[v] {
				seen[v] = true
				exits = append(exits, v)
			}
		}
		for i := 1; i < len(exits); i++ {
			for j := i; j > 0 && exits[j] < exits[j-1]; j-- {
				exits[j], exits[j-1] = exits[j-1], exits[j]
			}
		}
		ix := BuildIndex(cond, exits)
		ix2, err := IndexFromData(cond, ix.Data())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reflect.DeepEqual(ix, ix2) {
			t.Fatalf("trial %d: round trip changed the index", trial)
		}
	}
}

func TestIndexFromDataRejects(t *testing.T) {
	a := buildAdj(3, [][2]int32{{0, 1}, {1, 2}})
	cond := Condense(a, nil)
	ix := BuildIndex(cond, []int32{2})
	d := ix.Data()

	short := IndexData{Exits: d.Exits, Bits: d.Bits[:len(d.Bits)-1]}
	if _, err := IndexFromData(cond, short); err == nil {
		t.Error("accepted truncated bitsets")
	}
	oob := IndexData{Exits: []int32{99}, Bits: d.Bits}
	if _, err := IndexFromData(cond, oob); err == nil {
		t.Error("accepted out-of-range exit")
	}
	// Clear exit 0's own bit in its component: bitsets weren't built for
	// this exit list.
	bits := append([]uint64{}, d.Bits...)
	cc := int(cond.Comp[d.Exits[0]])
	words := (len(d.Exits) + 63) / 64
	bits[cc*words] &^= 1
	if _, err := IndexFromData(cond, IndexData{Exits: d.Exits, Bits: bits}); err == nil {
		t.Error("accepted bitset missing an exit's own bit")
	}
}
