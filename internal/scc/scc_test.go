package scc

import (
	"math/rand"
	"slices"
	"testing"
)

// adjList is a minimal Adjacency for tests.
type adjList [][]int32

func (a adjList) NumVertices() int    { return len(a) }
func (a adjList) Out(v int32) []int32 { return a[v] }

func buildAdj(n int, edges [][2]int32) adjList {
	a := make(adjList, n)
	for _, e := range edges {
		a[e[0]] = append(a[e[0]], e[1])
	}
	return a
}

// groups canonicalizes a component labeling: the member sets, each
// sorted, ordered by their smallest vertex.
func groups(comp []int32, ncomp int) [][]int32 {
	g := make([][]int32, ncomp)
	for v, c := range comp {
		g[c] = append(g[c], int32(v))
	}
	for _, m := range g {
		slices.Sort(m)
	}
	slices.SortFunc(g, func(a, b []int32) int { return int(a[0] - b[0]) })
	return g
}

// checkReverseTopo asserts the ordering contract: every cross-component
// edge u->v has comp[u] > comp[v].
func checkReverseTopo(t *testing.T, a adjList, comp []int32) {
	t.Helper()
	for u := range a {
		for _, v := range a[u] {
			if comp[u] != comp[v] && comp[u] < comp[v] {
				t.Errorf("edge %d->%d violates reverse topological order: comp %d < %d",
					u, v, comp[u], comp[v])
			}
		}
	}
}

func TestDecomposeTable(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges [][2]int32
		want  [][]int32 // component member sets, by smallest vertex
	}{
		{"empty", 0, nil, nil},
		{"isolated vertices", 3, nil, [][]int32{{0}, {1}, {2}}},
		{"self loop", 1, [][2]int32{{0, 0}}, [][]int32{{0}}},
		{"self loops everywhere", 3, [][2]int32{{0, 0}, {1, 1}, {2, 2}, {0, 1}, {1, 2}},
			[][]int32{{0}, {1}, {2}}},
		{"dag chain", 3, [][2]int32{{0, 1}, {1, 2}}, [][]int32{{0}, {1}, {2}}},
		{"diamond dag", 4, [][2]int32{{0, 1}, {0, 2}, {1, 3}, {2, 3}},
			[][]int32{{0}, {1}, {2}, {3}}},
		{"single big cycle", 6, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}},
			[][]int32{{0, 1, 2, 3, 4, 5}}},
		{"two tangent cycles", 5,
			// Cycles 0->1->2->0 and 2->3->4->2 share vertex 2: one SCC.
			[][2]int32{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2}},
			[][]int32{{0, 1, 2, 3, 4}}},
		{"two cycles over a bridge", 4,
			// 0<->1, 2<->3, bridge 1->2: two SCCs, source side ordered after.
			[][2]int32{{0, 1}, {1, 0}, {2, 3}, {3, 2}, {1, 2}},
			[][]int32{{0, 1}, {2, 3}}},
		{"cycle with tail", 5,
			[][2]int32{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}},
			[][]int32{{0, 1, 2}, {3}, {4}}},
	}
	ws := &Workspace{} // shared across cases: reuse must not leak state
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a := buildAdj(c.n, c.edges)
			comp, nc := Decompose(a, ws)
			if nc != len(c.want) {
				t.Fatalf("got %d components, want %d (comp=%v)", nc, len(c.want), comp)
			}
			got := groups(comp, nc)
			for i := range got {
				if !slices.Equal(got[i], c.want[i]) {
					t.Fatalf("component sets %v, want %v", got, c.want)
				}
			}
			checkReverseTopo(t, a, comp)
		})
	}
}

// TestDecomposeDeep drives the iterative DFS through a 200k-vertex
// cycle and a 200k-vertex path: a recursive Tarjan would overflow the
// stack here.
func TestDecomposeDeep(t *testing.T) {
	const n = 200_000
	cycle := make(adjList, n)
	for i := range cycle {
		cycle[i] = []int32{int32((i + 1) % n)}
	}
	if _, nc := Decompose(cycle, nil); nc != 1 {
		t.Fatalf("deep cycle: %d components, want 1", nc)
	}
	path := make(adjList, n)
	for i := 0; i < n-1; i++ {
		path[i] = []int32{int32(i + 1)}
	}
	comp, nc := Decompose(path, nil)
	if nc != n {
		t.Fatalf("deep path: %d components, want %d", nc, n)
	}
	for i := 0; i < n-1; i++ {
		if comp[i] <= comp[i+1] {
			t.Fatalf("deep path: comp[%d]=%d not > comp[%d]=%d", i, comp[i], i+1, comp[i+1])
		}
	}
}

// reachMatrix computes all-pairs reachability (reflexive) by BFS from
// every vertex — the oracle for the randomized tests.
func reachMatrix(a adjList) [][]bool {
	n := len(a)
	reach := make([][]bool, n)
	for s := 0; s < n; s++ {
		reach[s] = make([]bool, n)
		reach[s][s] = true
		queue := []int32{int32(s)}
		for head := 0; head < len(queue); head++ {
			for _, w := range a[queue[head]] {
				if !reach[s][w] {
					reach[s][w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	return reach
}

func randomAdj(rng *rand.Rand, n int, deg float64) adjList {
	a := make(adjList, n)
	for i := 0; i < int(float64(n)*deg); i++ {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		a[u] = append(a[u], v)
	}
	return a
}

// TestDecomposeDifferential checks Decompose against the definition on
// random graphs: u and v share a component iff they reach each other.
func TestDecomposeDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ws := &Workspace{}
	for gi := 0; gi < 150; gi++ {
		n := 1 + rng.Intn(40)
		a := randomAdj(rng, n, []float64{0.5, 1, 2, 4}[rng.Intn(4)])
		comp, nc := Decompose(a, ws)
		if nc < 1 || nc > n {
			t.Fatalf("graph %d: component count %d out of range", gi, nc)
		}
		reach := reachMatrix(a)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				same := comp[u] == comp[v]
				mutual := reach[u][v] && reach[v][u]
				if same != mutual {
					t.Fatalf("graph %d: comp[%d]==comp[%d] is %v but mutual reach is %v",
						gi, u, v, same, mutual)
				}
			}
		}
		checkReverseTopo(t, a, comp)
	}
}

// TestCondenseStructure checks the condensation of a fixed graph: the
// DAG edges, their dedup, and the member lists.
func TestCondenseStructure(t *testing.T) {
	// Two 2-cycles {0,1} and {2,3} with parallel bridges 0->2 and 1->3,
	// plus a sink 4 fed from 3.
	a := buildAdj(5, [][2]int32{
		{0, 1}, {1, 0}, {2, 3}, {3, 2}, {0, 2}, {1, 3}, {3, 4},
	})
	c := Condense(a, nil)
	if c.N != 3 {
		t.Fatalf("got %d components, want 3", c.N)
	}
	// The two bridges collapse to one DAG edge; total edges: {0,1}->{2,3},
	// {2,3}->{4}.
	if c.NumEdges() != 2 {
		t.Fatalf("got %d DAG edges, want 2", c.NumEdges())
	}
	cc01, cc23, cc4 := c.Comp[0], c.Comp[2], c.Comp[4]
	if c.Comp[1] != cc01 || c.Comp[3] != cc23 {
		t.Fatalf("cycle members split across components: %v", c.Comp)
	}
	if !(cc01 > cc23 && cc23 > cc4) {
		t.Fatalf("component order not reverse topological: %v", c.Comp)
	}
	if got := c.Out(cc01); len(got) != 1 || got[0] != cc23 {
		t.Fatalf("Out(%d) = %v, want [%d]", cc01, got, cc23)
	}
	if got := c.In(cc4); len(got) != 1 || got[0] != cc23 {
		t.Fatalf("In(%d) = %v, want [%d]", cc4, got, cc23)
	}
	members := c.Members(cc01)
	sorted := slices.Clone(members)
	slices.Sort(sorted)
	if !slices.Equal(sorted, []int32{0, 1}) {
		t.Fatalf("Members(%d) = %v, want {0,1}", cc01, members)
	}
}

// TestCondenseReverseMatchesForward asserts In() is the exact transpose
// of Out() on random graphs.
func TestCondenseReverseMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ws := &Workspace{}
	for gi := 0; gi < 50; gi++ {
		n := 1 + rng.Intn(50)
		a := randomAdj(rng, n, 2)
		c := Condense(a, ws)
		type edge struct{ u, v int32 }
		var fwd, rev []edge
		for cc := int32(0); cc < int32(c.N); cc++ {
			for _, d := range c.Out(cc) {
				fwd = append(fwd, edge{cc, d})
			}
			for _, p := range c.In(cc) {
				rev = append(rev, edge{p, cc})
			}
		}
		cmp := func(a, b edge) int {
			if a.u != b.u {
				return int(a.u - b.u)
			}
			return int(a.v - b.v)
		}
		slices.SortFunc(fwd, cmp)
		slices.SortFunc(rev, cmp)
		if !slices.Equal(fwd, rev) {
			t.Fatalf("graph %d: forward edges %v != reverse edges %v", gi, fwd, rev)
		}
	}
}

// TestIndexDifferential checks AppendExitsFrom against the reachability
// oracle on random graphs with random exit sets, including exit sets
// past one bitset word.
func TestIndexDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ws := &Workspace{}
	for gi := 0; gi < 150; gi++ {
		n := 1 + rng.Intn(130) // up to 130 exits: exercises multi-word bitsets
		a := randomAdj(rng, n, []float64{0.5, 1, 2, 4}[rng.Intn(4)])
		var exits []int32
		switch rng.Intn(3) {
		case 0: // every vertex is an exit
			for v := 0; v < n; v++ {
				exits = append(exits, int32(v))
			}
		case 1: // random subset
			for v := 0; v < n; v++ {
				if rng.Intn(3) == 0 {
					exits = append(exits, int32(v))
				}
			}
		case 2: // no exits at all
		}
		ix := BuildIndex(Condense(a, ws), exits)
		if ix.NumExits() != len(exits) {
			t.Fatalf("graph %d: NumExits = %d, want %d", gi, ix.NumExits(), len(exits))
		}
		reach := reachMatrix(a)
		var buf []int32
		for v := 0; v < n; v++ {
			buf = ix.AppendExitsFrom(int32(v), buf[:0])
			var want []int32
			for _, x := range exits {
				if reach[v][x] {
					want = append(want, x)
				}
			}
			got := slices.Clone(buf)
			slices.Sort(got)
			slices.Sort(want)
			if !slices.Equal(got, want) {
				t.Fatalf("graph %d: exits from %d = %v, want %v", gi, v, got, want)
			}
		}
	}
}

// TestIndexBigCycleAllExits is a deterministic multi-word case: in a
// 200-vertex cycle where every vertex is an exit, every vertex reaches
// all 200 exits.
func TestIndexBigCycleAllExits(t *testing.T) {
	const n = 200
	a := make(adjList, n)
	exits := make([]int32, n)
	for i := range a {
		a[i] = []int32{int32((i + 1) % n)}
		exits[i] = int32(i)
	}
	ix := BuildIndex(Condense(a, nil), exits)
	var buf []int32
	for v := 0; v < n; v++ {
		buf = ix.AppendExitsFrom(int32(v), buf[:0])
		if len(buf) != n {
			t.Fatalf("vertex %d reaches %d exits, want %d", v, len(buf), n)
		}
	}
}
