// Package scc decomposes a directed graph into strongly connected
// components and derives two build-time artifacts from the result: the
// condensation (the SCC DAG in CSR form, with a vertex↔component
// mapping) and a bitset reachability index over a designated set of
// "exit" vertices. Together they replace per-entry BFS during boundary
// compression: one O(V+E) decomposition plus word-parallel bitset
// propagation answers "which exits does this entry reach?" for every
// entry at once, and the condensation lets query-time searches walk
// components instead of vertices.
//
// The decomposition is Tarjan's algorithm made fully iterative
// (explicit DFS frames, no recursion), so partition-sized graphs with
// deep path structure cannot overflow the goroutine stack.
package scc

// Adjacency is the minimal read-only graph view the decomposition
// needs: dense int32 vertex IDs in [0, NumVertices()) and forward
// adjacency. partition.Subgraph implements it.
type Adjacency interface {
	NumVertices() int
	Out(v int32) []int32
}

// frame is one suspended DFS visit: the vertex and the index of its
// next unexplored out-edge.
type frame struct {
	v  int32
	ei int32
}

// Workspace holds the transient arrays Decompose and Condense need.
// Reusing one Workspace across calls (e.g. per build-pool goroutine
// compressing many partitions) amortizes the O(V) scratch allocations;
// only the returned artifacts themselves are freshly allocated. The
// zero value is ready to use, and a nil *Workspace is accepted
// everywhere, meaning "allocate privately".
type Workspace struct {
	num     []int32 // discovery order, 0 = unvisited
	low     []int32 // Tarjan low-link
	onStack []bool
	stack   []int32 // Tarjan component stack
	frames  []frame // explicit DFS stack
	esrc    []int32 // condensation edge staging: source components
	edst    []int32 // condensation edge staging: target components
	seen    []int32 // per-source-component dedup marks
	cnt     []int32 // CSR fill cursors
}

// grow readies the workspace for a graph with n vertices.
func (ws *Workspace) grow(n int) {
	if cap(ws.num) < n {
		ws.num = make([]int32, n)
		ws.low = make([]int32, n)
		ws.onStack = make([]bool, n)
		ws.seen = make([]int32, n)
	}
	ws.num = ws.num[:n]
	ws.low = ws.low[:n]
	ws.onStack = ws.onStack[:n]
	ws.seen = ws.seen[:n]
	clear(ws.num)
	clear(ws.onStack)
	ws.stack = ws.stack[:0]
	ws.frames = ws.frames[:0]
}

// counters returns an n-element zeroed cursor slice backed by the
// workspace.
func (ws *Workspace) counters(n int) []int32 {
	if cap(ws.cnt) < n {
		ws.cnt = make([]int32, n)
	}
	ws.cnt = ws.cnt[:n]
	clear(ws.cnt)
	return ws.cnt
}

// Decompose returns the strongly connected components of g as a
// vertex→component labeling plus the component count. Components are
// numbered in reverse topological order of the condensation: for every
// edge u→v that crosses components, comp[u] > comp[v]. (Tarjan emits an
// SCC only after every SCC reachable from it, so emission order is
// exactly this order.) ws may be nil.
func Decompose(g Adjacency, ws *Workspace) (comp []int32, ncomp int) {
	if ws == nil {
		ws = &Workspace{}
	}
	n := g.NumVertices()
	ws.grow(n)
	comp = make([]int32, n)
	next := int32(1) // discovery counter; 0 means unvisited
	nc := int32(0)
	for r := 0; r < n; r++ {
		if ws.num[r] != 0 {
			continue
		}
		ws.num[r], ws.low[r] = next, next
		next++
		ws.stack = append(ws.stack, int32(r))
		ws.onStack[r] = true
		ws.frames = append(ws.frames, frame{v: int32(r)})
		for len(ws.frames) > 0 {
			f := &ws.frames[len(ws.frames)-1]
			v := f.v
			if out := g.Out(v); int(f.ei) < len(out) {
				w := out[f.ei]
				f.ei++
				if ws.num[w] == 0 {
					ws.num[w], ws.low[w] = next, next
					next++
					ws.stack = append(ws.stack, w)
					ws.onStack[w] = true
					ws.frames = append(ws.frames, frame{v: w})
				} else if ws.onStack[w] && ws.num[w] < ws.low[v] {
					ws.low[v] = ws.num[w]
				}
				continue
			}
			// v is fully explored: return to the parent, then emit an
			// SCC if v is its root.
			ws.frames = ws.frames[:len(ws.frames)-1]
			if len(ws.frames) > 0 {
				if p := &ws.frames[len(ws.frames)-1]; ws.low[v] < ws.low[p.v] {
					ws.low[p.v] = ws.low[v]
				}
			}
			if ws.low[v] == ws.num[v] {
				for {
					w := ws.stack[len(ws.stack)-1]
					ws.stack = ws.stack[:len(ws.stack)-1]
					ws.onStack[w] = false
					comp[w] = nc
					if w == v {
						break
					}
				}
				nc++
			}
		}
	}
	return comp, int(nc)
}
