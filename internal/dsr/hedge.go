package dsr

import (
	"time"

	"dsr/internal/obs"
	"dsr/internal/shard"
	"dsr/internal/wire"
)

// HedgeOptions configures hedged shard requests: when a round's fan-in
// has waited longer than a high quantile of the partition's usual
// primary latency, the coordinator re-sends the round's task batch to
// an idle sibling replica and takes whichever reply lands first.
// Hedging is sound because local searches are idempotent reads over an
// immutable subgraph — a duplicate answer is identical and is dropped.
// It requires a replicated transport (replica groups); on transports
// without siblings the option is ignored with a warning.
type HedgeOptions struct {
	// Enabled turns hedging on.
	Enabled bool
	// Percentile of the per-partition primary RPC latency to use as the
	// hedge deadline, in (0,1). 0 means 0.99: only the slowest 1% of
	// rounds pay the duplicate work.
	Percentile float64
	// Min clamps the deadline from below, so a very fast fleet doesn't
	// hedge on scheduling jitter. 0 means 1ms.
	Min time.Duration
	// Max clamps the deadline from above and is also the deadline used
	// until enough samples accumulate to estimate the percentile. 0
	// means 100ms.
	Max time.Duration
}

// hedgeDefaults fills zero fields and sanity-clamps the rest.
func (o HedgeOptions) withDefaults() HedgeOptions {
	if o.Percentile <= 0 || o.Percentile >= 1 {
		o.Percentile = 0.99
	}
	if o.Min <= 0 {
		o.Min = time.Millisecond
	}
	if o.Max <= 0 {
		o.Max = 100 * time.Millisecond
	}
	if o.Max < o.Min {
		o.Max = o.Min
	}
	return o
}

// hedgeTransport is the sibling re-submit capability hedging needs;
// shard.Replicated provides it. Loopback and single-replica transports
// don't, which is exactly right: they have no sibling to hedge to.
type hedgeTransport interface {
	SubmitHedge(p int, h wire.BatchHeader, tasks []wire.Task, replyc chan<- shard.Reply)
}

// hedgeMinSamples is how many primary latency samples every partition
// must have before the percentile estimate is trusted; until then the
// deadline is Max, so a cold coordinator hedges late rather than
// stampeding siblings off a meaningless estimate.
const hedgeMinSamples = 16

// hedgeState is the engine's hedging machinery: the sibling-capable
// transport plus a private per-partition histogram of primary RPC
// latencies feeding the deadline estimate. The histograms are engine-
// owned (not registry instruments) so hedging works identically with
// metrics disabled.
type hedgeState struct {
	tr  hedgeTransport
	opt HedgeOptions
	lat []*obs.Histogram
}

func newHedgeState(tr hedgeTransport, k int, o HedgeOptions) *hedgeState {
	h := &hedgeState{tr: tr, opt: o.withDefaults(), lat: make([]*obs.Histogram, k)}
	for p := range h.lat {
		h.lat[p] = &obs.Histogram{}
	}
	return h
}

// observe feeds one primary (non-hedged) round-trip sample for
// partition p into the deadline estimator.
func (h *hedgeState) observe(p int, d time.Duration) {
	h.lat[p].Observe(int64(d))
}

// delay returns the hedge deadline for the next round: the slowest
// partition's Percentile-quantile primary latency, clamped to
// [Min, Max]. The slowest partition governs because the fan-in waits
// for all partitions — hedging a fast partition at its own p99 while a
// structurally slower one is still in budget would duplicate work that
// isn't late.
func (h *hedgeState) delay() time.Duration {
	var worst uint64
	for _, hist := range h.lat {
		if hist.Count() < hedgeMinSamples {
			return h.opt.Max
		}
		if q := hist.Quantile(h.opt.Percentile); q > worst {
			worst = q
		}
	}
	return min(max(time.Duration(worst), h.opt.Min), h.opt.Max)
}
