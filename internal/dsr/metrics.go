package dsr

import (
	"dsr/internal/obs"
)

// engineMetrics is the coordinator's instrument set, resolved once at
// engine construction so the query path touches only pre-bound
// pointers. With a nil registry every instrument is nil, which the obs
// package defines as a no-op — the per-partition slices still exist,
// sized k, so the hot path never branches on "metrics enabled".
//
// The full catalog (names, types, meaning) is documented in README.md
// under "Observability".
type engineMetrics struct {
	queries   *obs.Counter   // dsr_queries_total
	batches   *obs.Counter   // dsr_batches_total
	failed    *obs.Counter   // dsr_query_failures_total
	rounds    *obs.Counter   // dsr_rounds_total
	slow      *obs.Counter   // dsr_slow_queries_total
	latency   *obs.Histogram // dsr_query_latency_ns
	batchSize *obs.Histogram // dsr_batch_size
	faninWait *obs.Histogram // dsr_fanin_wait_ns
	finish    *obs.Histogram // dsr_boundary_finish_ns
	frontier  *obs.Histogram // dsr_frontier_size
	sumFetch  *obs.Histogram // dsr_summary_fetch_ns

	rpcs      []*obs.Counter   // dsr_rpc_total{partition=p}
	rpcErrs   []*obs.Counter   // dsr_rpc_failures_total{partition=p}
	rpcLat    []*obs.Histogram // dsr_rpc_latency_ns{partition=p}
	rpcServer []*obs.Histogram // dsr_rpc_server_ns{partition=p}
	rpcNet    []*obs.Histogram // dsr_rpc_net_ns{partition=p}
	hedges    []*obs.Counter   // dsr_hedges_total{partition=p}
	hedgeWins []*obs.Counter   // dsr_hedge_wins_total{partition=p}

	boundaryVerts *obs.Gauge // dsr_boundary_vertices
	residentBytes *obs.Gauge // dsr_resident_bytes
	partitions    *obs.Gauge // dsr_partitions
}

// newEngineMetrics binds the coordinator instrument set against reg
// (nil reg yields all-nil instruments, still safe to use).
func newEngineMetrics(reg *obs.Registry, k int) engineMetrics {
	m := engineMetrics{
		queries:       reg.Counter("dsr_queries_total"),
		batches:       reg.Counter("dsr_batches_total"),
		failed:        reg.Counter("dsr_query_failures_total"),
		rounds:        reg.Counter("dsr_rounds_total"),
		slow:          reg.Counter("dsr_slow_queries_total"),
		latency:       reg.Histogram("dsr_query_latency_ns"),
		batchSize:     reg.Histogram("dsr_batch_size"),
		faninWait:     reg.Histogram("dsr_fanin_wait_ns"),
		finish:        reg.Histogram("dsr_boundary_finish_ns"),
		frontier:      reg.Histogram("dsr_frontier_size"),
		sumFetch:      reg.Histogram("dsr_summary_fetch_ns"),
		rpcs:          make([]*obs.Counter, k),
		rpcErrs:       make([]*obs.Counter, k),
		rpcLat:        make([]*obs.Histogram, k),
		rpcServer:     make([]*obs.Histogram, k),
		rpcNet:        make([]*obs.Histogram, k),
		hedges:        make([]*obs.Counter, k),
		hedgeWins:     make([]*obs.Counter, k),
		boundaryVerts: reg.Gauge("dsr_boundary_vertices"),
		residentBytes: reg.Gauge("dsr_resident_bytes"),
		partitions:    reg.Gauge("dsr_partitions"),
	}
	for p := 0; p < k; p++ {
		m.rpcs[p] = reg.Counter(obs.Name("dsr_rpc_total", "partition", p))
		m.rpcErrs[p] = reg.Counter(obs.Name("dsr_rpc_failures_total", "partition", p))
		m.rpcLat[p] = reg.Histogram(obs.Name("dsr_rpc_latency_ns", "partition", p))
		m.rpcServer[p] = reg.Histogram(obs.Name("dsr_rpc_server_ns", "partition", p))
		m.rpcNet[p] = reg.Histogram(obs.Name("dsr_rpc_net_ns", "partition", p))
		m.hedges[p] = reg.Counter(obs.Name("dsr_hedges_total", "partition", p))
		m.hedgeWins[p] = reg.Counter(obs.Name("dsr_hedge_wins_total", "partition", p))
	}
	return m
}
