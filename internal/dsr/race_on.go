//go:build race

package dsr

// raceEnabled reports whether the race detector instruments this build;
// allocation-exactness tests skip under it.
const raceEnabled = true
