package dsr

import "dsr/internal/graph"

// NaiveReach is the differential-testing oracle: a whole-graph BFS from
// every source in S, answering the same question as Engine.Query without
// any partitioning. Reachability is reflexive, matching Query.
func NaiveReach(g *graph.Graph, S, T []graph.VertexID) bool {
	n := graph.VertexID(g.NumVertices())
	inT := make(map[graph.VertexID]bool, len(T))
	for _, t := range T {
		if t < n {
			inT[t] = true
		}
	}
	if len(inT) == 0 {
		return false
	}
	visited := make([]bool, n)
	var queue []graph.VertexID
	for _, s := range S {
		if s >= n {
			continue
		}
		if inT[s] {
			return true
		}
		if !visited[s] {
			visited[s] = true
			queue = append(queue, s)
		}
	}
	for head := 0; head < len(queue); head++ {
		for _, w := range g.Out(queue[head]) {
			if !visited[w] {
				if inT[w] {
					return true
				}
				visited[w] = true
				queue = append(queue, w)
			}
		}
	}
	return false
}
