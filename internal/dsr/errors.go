package dsr

import (
	"fmt"
	"strings"
)

// MismatchError reports two shards of one fleet that disagree about the
// deployment they serve — different vertex counts, graph fingerprints,
// or partitioning digests. Connect refuses such a fleet outright: the
// coordinator holds no graph of its own to arbitrate with, and a
// placement disagreement would mean silently wrong answers, not errors.
type MismatchError struct {
	Field        string // "vertex count", "graph fingerprint", "partitioning digest"
	PartA, PartB int    // the two disagreeing partitions
	A, B         uint64 // their reported values
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("dsr: fleet mismatch: shard %d reports %s %#x, shard %d reports %#x",
		e.PartA, e.Field, e.A, e.PartB, e.B)
}

// PartitionError is one partition that answered nothing for a batch
// round: on a replicated transport this means every replica of the
// partition failed (Err carries the per-replica detail, see
// shard.ReplicaSetError); on a plain TCP transport it is the single
// connection's failure.
type PartitionError struct {
	Partition int
	Err       error
}

func (e *PartitionError) Error() string {
	return fmt.Sprintf("partition %d: %v", e.Partition, e.Err)
}

func (e *PartitionError) Unwrap() error { return e.Err }

// BatchError reports partial failure of a QueryBatchErr round: one or
// more partitions were unavailable, exactly one entry per dead
// partition. Answers for queries with Failed[i] == false are still
// valid — either the query never consulted a dead partition, or it was
// proven reachable from the partitions that did answer (a local hit or
// boundary path is evidence of a path; missing data can only hide
// paths, never invent them). Failed[i] == true means the query's
// `false` cannot be trusted and the query should be retried.
type BatchError struct {
	Partitions []PartitionError // one per dead partition, ascending
	Failed     []bool           // per batch query: answer unusable
}

func (e *BatchError) Error() string {
	nf := 0
	for _, f := range e.Failed {
		if f {
			nf++
		}
	}
	parts := make([]string, len(e.Partitions))
	for i := range e.Partitions {
		parts[i] = e.Partitions[i].Error()
	}
	return fmt.Sprintf("dsr: %d of %d queries failed, %d partition(s) unavailable: %s",
		nf, len(e.Failed), len(e.Partitions), strings.Join(parts, "; "))
}
