package dsr

import (
	"errors"
	"math/rand"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"dsr/internal/graph"
	"dsr/internal/partition"
	"dsr/internal/partition/locality"
	"dsr/internal/shard"
)

// bootShardServers launches one hash-partitioned TCP shard server per
// partition of g on ephemeral localhost ports; see bootShardServersWith.
func bootShardServers(t testing.TB, g *graph.Graph, k int) ([]string, func()) {
	t.Helper()
	return bootShardServersWith(t, g, k, graph.Hash())
}

// bootShardServersWith launches one TCP shard server per partition of g
// on ephemeral localhost ports — the same code path as cmd/dsr-shard,
// in process so the e2e test is hermetic — and returns their addresses
// plus a stop function that shuts them down and waits.
func bootShardServersWith(t testing.TB, g *graph.Graph, k int, strat graph.Partitioner) ([]string, func()) {
	t.Helper()
	pt, err := strat.Partition(g, k)
	if err != nil {
		t.Fatal(err)
	}
	subs, _ := partition.Extract(g, pt)
	addrs := make([]string, k)
	servers := make([]*shard.Server, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		srv := shard.NewServer(shard.New(i, subs[i]), k, g.NumVertices(), g.Fingerprint(), pt.Digest())
		servers[i] = srv
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := srv.Serve(ln); err != nil {
				t.Errorf("shard server %v: %v", ln.Addr(), err)
			}
		}()
	}
	return addrs, func() {
		for _, srv := range servers {
			srv.Close()
		}
		wg.Wait()
	}
}

// TestDistributedTCPDifferential is the end-to-end check over real TCP:
// k >= 3 shard server processes (in-process goroutines running the same
// server code as cmd/dsr-shard) on localhost, a graph-free coordinator
// built with Connect from nothing but the addresses — identity from the
// handshake, structure from the shipped boundary summaries — and
// randomized differential comparison of both Query and QueryBatch
// against the whole-graph oracle, for both the hash and the locality
// partitioner.
func TestDistributedTCPDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(20260730))
	strategies := []graph.Partitioner{graph.Hash(), locality.New(locality.Options{Seed: 20260730})}
	for _, k := range []int{3, 5} {
		for gi := 0; gi < 6; gi++ {
			n := 10 + rng.Intn(120)
			deg := []float64{0.5, 1, 2, 4}[rng.Intn(4)]
			g := randomGraph(rng, n, deg)
			strat := strategies[gi%len(strategies)]
			addrs, stop := bootShardServersWith(t, g, k, strat)

			e, err := Connect(t.Context(), ClusterSpec{Groups: addrs})
			if err != nil {
				stop()
				t.Fatal(err)
			}
			// Single queries.
			for qi := 0; qi < 10; qi++ {
				S := randomSet(rng, n, 5)
				T := randomSet(rng, n, 5)
				got := e.Query(S, T)
				if want := NaiveReach(g, S, T); got != want {
					t.Fatalf("k=%d graph %d (n=%d): distributed Query(%v, %v) = %v, oracle = %v",
						k, gi, n, S, T, got, want)
				}
			}
			// Batched queries, including batch sizes above the shard count.
			for _, B := range []int{1, 7, 64} {
				queries := make([]Query, B)
				for i := range queries {
					queries[i] = Query{S: randomSet(rng, n, 5), T: randomSet(rng, n, 5)}
				}
				got, err := e.QueryBatchErr(queries)
				if err != nil {
					t.Fatal(err)
				}
				for i, q := range queries {
					if want := NaiveReach(g, q.S, q.T); got[i] != want {
						t.Fatalf("k=%d graph %d batch %d query %d: got %v, oracle %v",
							k, gi, B, i, got[i], want)
					}
				}
			}
			e.Close()
			stop()
		}
	}
}

// TestDistributedTCPFleetMismatch: the graph-free coordinator has no
// graph of its own to check shards against, so consistency is enforced
// two ways — the fleet against itself (every shard's handshake identity
// must agree with every other shard's, surfacing as *MismatchError),
// and optionally against a caller-pinned digest at dial time. A silent
// placement disagreement would mean wrong answers, not errors.
func TestDistributedTCPFleetMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := randomGraph(rng, 60, 2)
	hashAddrs, stopHash := bootShardServersWith(t, g, 3, graph.Hash())
	defer stopHash()
	locAddrs, stopLoc := bootShardServersWith(t, g, 3, locality.New(locality.Options{Seed: 1}))
	defer stopLoc()

	// A frankenfleet: two hash shards plus one locality shard. The
	// partitioning digests disagree, so Connect must refuse with a
	// MismatchError naming the digest field.
	mixed := []string{hashAddrs[0], hashAddrs[1], locAddrs[2]}
	var me *MismatchError
	if _, err := Connect(t.Context(), ClusterSpec{Groups: mixed}); !errors.As(err, &me) {
		t.Fatalf("mixed-partitioner fleet not rejected with MismatchError: %v", err)
	} else if me.Field != "partitioning digest" {
		t.Fatalf("wrong mismatch field: %+v", me)
	}

	// A coherent fleet against the wrong pinned digest: refused replica
	// by replica at dial time.
	ptHash, err := graph.HashPartition(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Connect(t.Context(), ClusterSpec{Groups: locAddrs, ExpectDigest: ptHash.Digest()}); err == nil ||
		!strings.Contains(err.Error(), "different partitioning") {
		t.Fatalf("wrong pinned digest not rejected: %v", err)
	}
	// Pinning the graph fingerprint alongside the right digest connects
	// fine and answers correctly.
	ptLoc, err := locality.Partition(g, 3, locality.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e, err := Connect(t.Context(), ClusterSpec{
		Groups: locAddrs, ExpectGraph: g.Fingerprint(), ExpectDigest: ptLoc.Digest(),
	})
	if err != nil {
		t.Fatalf("matching deployment refused: %v", err)
	}
	defer e.Close()
	for qi := 0; qi < 5; qi++ {
		S, T := randomSet(rng, 60, 4), randomSet(rng, 60, 4)
		if got, want := e.Query(S, T), NaiveReach(g, S, T); got != want {
			t.Fatalf("pinned connect query %d: got %v, oracle %v", qi, got, want)
		}
	}
}

// TestDistributedTCPServerLoss asserts a coordinator surfaces shard
// failure as an error (QueryBatchErr) rather than a wrong answer or a
// hang.
func TestDistributedTCPServerLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(rng, 80, 2)
	addrs, stop := bootShardServers(t, g, 3)
	e, err := Connect(t.Context(), ClusterSpec{Groups: addrs})
	if err != nil {
		stop()
		t.Fatal(err)
	}
	defer e.Close()
	stop() // all shards down

	deadline := time.After(10 * time.Second)
	for {
		// Spread S/T widely so some shard must be consulted.
		S := make([]graph.VertexID, 40)
		T := make([]graph.VertexID, 40)
		for i := range S {
			S[i] = graph.VertexID(i)
			T[i] = graph.VertexID(40 + i)
		}
		_, err := e.QueryBatchErr([]Query{{S: S, T: T}})
		if err != nil {
			return
		}
		select {
		case <-deadline:
			t.Fatal("no transport error after shard shutdown")
		default:
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestDistributedTCPClosesCleanly asserts the distributed engine's
// Close joins its transport goroutines (client readers).
func TestDistributedTCPClosesCleanly(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomGraph(rng, 100, 2)
	addrs, stop := bootShardServers(t, g, 3)
	defer stop()
	before := runtime.NumGoroutine()
	for iter := 0; iter < 3; iter++ {
		e, err := Connect(t.Context(), ClusterSpec{Groups: addrs})
		if err != nil {
			t.Fatal(err)
		}
		e.Query(randomSet(rng, 100, 4), randomSet(rng, 100, 4))
		e.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// benchTCPEngine boots 3 shard servers and a distributed coordinator
// over the standard 10k-vertex benchmark workload.
func benchTCPEngine(b *testing.B) (*Engine, [][2][]graph.VertexID, func()) {
	rng := rand.New(rand.NewSource(1))
	const n = 10000
	g := randomGraph(rng, n, 4)
	addrs, stop := bootShardServers(b, g, 3)
	e, err := Connect(b.Context(), ClusterSpec{Groups: addrs})
	if err != nil {
		stop()
		b.Fatal(err)
	}
	const nq = 256
	queries := make([][2][]graph.VertexID, nq)
	for i := range queries {
		queries[i] = [2][]graph.VertexID{randomSet(rng, n, 8), randomSet(rng, n, 8)}
	}
	return e, queries, func() { e.Close(); stop() }
}

// BenchmarkTCPQuery is the one-query-per-round-trip baseline over the
// TCP transport (3 localhost shards).
func BenchmarkTCPQuery(b *testing.B) {
	e, queries, cleanup := benchTCPEngine(b)
	defer cleanup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		e.Query(q[0], q[1])
	}
}

// BenchmarkTCPQueryBatch ships 64 queries per round trip over the same
// TCP deployment; b.N counts individual queries so ns/op is directly
// comparable with BenchmarkTCPQuery — the gap is the amortized RPC
// overhead.
func BenchmarkTCPQueryBatch(b *testing.B) {
	e, queries, cleanup := benchTCPEngine(b)
	defer cleanup()
	const B = 64
	batches := make([][]Query, len(queries)/B)
	for bi := range batches {
		batches[bi] = make([]Query, B)
		for i := range batches[bi] {
			q := queries[bi*B+i]
			batches[bi][i] = Query{S: q[0], T: q[1]}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i += B {
		e.QueryBatch(batches[(i/B)%len(batches)])
	}
}
