package dsr

import (
	"math/rand"
	"testing"

	"dsr/internal/graph"
	"dsr/internal/partition/locality"
)

func build(n int, edges [][2]graph.VertexID) *graph.Graph {
	b := graph.NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

func TestQueryHandBuilt(t *testing.T) {
	// Two 4-cycles joined by bridge 3->4, range-partitioned in half.
	g := build(8, [][2]graph.VertexID{
		{0, 1}, {1, 2}, {2, 3}, {3, 0}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 4},
	})
	pt, err := graph.RangePartition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Build(g, Options{Partitioning: pt})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	cases := []struct {
		name string
		S, T []graph.VertexID
		want bool
	}{
		{"same vertex", []graph.VertexID{2}, []graph.VertexID{2}, true},
		{"within partition", []graph.VertexID{0}, []graph.VertexID{3}, true},
		{"across bridge", []graph.VertexID{0}, []graph.VertexID{6}, true},
		{"against bridge", []graph.VertexID{5}, []graph.VertexID{0}, false},
		{"set hit", []graph.VertexID{5, 1}, []graph.VertexID{7, 9}, true},
		{"empty sources", nil, []graph.VertexID{1}, false},
		{"empty targets", []graph.VertexID{1}, nil, false},
		{"out of range ignored", []graph.VertexID{100}, []graph.VertexID{100}, false},
	}
	for _, c := range cases {
		if got := e.Query(c.S, c.T); got != c.want {
			t.Errorf("%s: Query(%v, %v) = %v, want %v", c.name, c.S, c.T, got, c.want)
		}
		if got := NaiveReach(g, c.S, c.T); got != c.want {
			t.Errorf("%s: oracle disagrees with expectation: %v", c.name, got)
		}
	}
}

// randomGraph generates a graph with n vertices and ~n*deg random edges.
func randomGraph(rng *rand.Rand, n int, deg float64) *graph.Graph {
	b := graph.NewBuilder(n)
	m := int(float64(n) * deg)
	for i := 0; i < m; i++ {
		b.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)))
	}
	return b.Build()
}

func randomSet(rng *rand.Rand, n, maxSize int) []graph.VertexID {
	size := rng.Intn(maxSize + 1)
	s := make([]graph.VertexID, 0, size)
	for i := 0; i < size; i++ {
		s = append(s, graph.VertexID(rng.Intn(n)))
	}
	return s
}

// TestQueryDifferential compares the partitioned engine against the
// whole-graph BFS oracle on randomized graphs and query sets, across
// all three partitioners (hash, range, locality). Fixed seed keeps
// failures reproducible.
func TestQueryDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(20260728))
	const graphs = 120
	queriesPer := 8
	checked := 0
	for gi := 0; gi < graphs; gi++ {
		n := 1 + rng.Intn(60)
		deg := []float64{0.5, 1, 2, 4}[rng.Intn(4)]
		g := randomGraph(rng, n, deg)
		k := 2 + rng.Intn(4) // always >= 2 partitions
		var pt *graph.Partitioning
		var err error
		switch gi % 3 {
		case 0:
			pt, err = graph.HashPartition(g, k)
		case 1:
			pt, err = graph.RangePartition(g, k)
		case 2:
			pt, err = locality.Partition(g, k, locality.Options{Seed: int64(gi)})
		}
		if err != nil {
			t.Fatal(err)
		}
		e, err := Build(g, Options{Partitioning: pt})
		if err != nil {
			t.Fatal(err)
		}
		for qi := 0; qi < queriesPer; qi++ {
			S := randomSet(rng, n, 5)
			T := randomSet(rng, n, 5)
			got := e.Query(S, T)
			want := NaiveReach(g, S, T)
			if got != want {
				t.Fatalf("graph %d (n=%d, k=%d), query %d: Query(%v, %v) = %v, oracle = %v",
					gi, n, k, qi, S, T, got, want)
			}
			checked++
		}
		e.Close()
	}
	if checked < 100 {
		t.Fatalf("only %d differential cases ran, want >= 100", checked)
	}
}

// TestQuerySingleVertexGraphs covers the degenerate sizes where boundary
// sets are empty or a partition has no vertices at all.
func TestQuerySingleVertexGraphs(t *testing.T) {
	g := build(1, nil)
	e, err := Build(g, Options{K: 4}) // more partitions than vertices
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if !e.Query([]graph.VertexID{0}, []graph.VertexID{0}) {
		t.Error("vertex should reach itself")
	}
	if e.Query([]graph.VertexID{0}, nil) {
		t.Error("empty target set should be unreachable")
	}
}

func TestQueryAfterClose(t *testing.T) {
	g := build(2, [][2]graph.VertexID{{0, 1}})
	e, err := Build(g, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close() // double close must be safe
	defer func() {
		if recover() == nil {
			t.Error("Query on closed engine should panic, not silently answer")
		}
	}()
	e.Query([]graph.VertexID{0}, []graph.VertexID{1})
}

func TestBuildPartitioningMismatch(t *testing.T) {
	g := build(3, [][2]graph.VertexID{{0, 1}})
	pt, err := graph.HashPartition(build(5, nil), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(g, Options{Partitioning: pt}); err == nil {
		t.Fatal("want error for mismatched partitioning")
	}
	// Hand-rolled partitioning with absent (or wrong) boundary marks is
	// normalized: marks are recomputed from the edge set, so the engine
	// still answers correctly instead of panicking or mis-answering.
	bare := &graph.Partitioning{K: 2, Part: []int32{0, 1, 0}}
	e, err := Build(g, Options{Partitioning: bare})
	if err != nil {
		t.Fatalf("bare partitioning rejected: %v", err)
	}
	defer e.Close()
	if !e.Query([]graph.VertexID{0}, []graph.VertexID{1}) {
		t.Fatal("0 should reach 1 across recomputed boundary")
	}
	if e.Query([]graph.VertexID{1}, []graph.VertexID{0}) {
		t.Fatal("1 must not reach 0")
	}
	// Partition labels outside [0, K) must be rejected, not panic.
	oob := &graph.Partitioning{K: 2, Part: []int32{0, 5, 0}}
	if _, err := Build(g, Options{Partitioning: oob}); err == nil {
		t.Fatal("want error for out-of-range partition label")
	}
	// An explicit K that disagrees with the supplied partitioning is a
	// caller bug, not something to silently resolve either way.
	if _, err := Build(g, Options{K: 3, Partitioning: bare}); err == nil {
		t.Fatal("want error for K conflicting with Partitioning.K")
	}
}

// BenchmarkQuery seeds the performance trajectory: a 10k-vertex random
// graph, 4 partitions, pre-generated random query sets.
func BenchmarkQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 10000
	g := randomGraph(rng, n, 4)
	e, err := Build(g, Options{K: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	const nq = 256
	queries := make([][2][]graph.VertexID, nq)
	for i := range queries {
		queries[i] = [2][]graph.VertexID{randomSet(rng, n, 8), randomSet(rng, n, 8)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%nq]
		e.Query(q[0], q[1])
	}
}

// BenchmarkIndexBuild measures full engine construction — subgraph
// extraction, SCC condensation, bitset index propagation, boundary
// stitching — on a 50k-vertex hash-partitioned random graph where
// nearly every vertex is boundary (~48k entries). This configuration
// took ~50s with the per-entry-BFS summaries; the SCC bitset index
// makes it word-parallel near-linear work.
func BenchmarkIndexBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	const n = 50000
	g := randomGraph(rng, n, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := Build(g, Options{K: 4})
		if err != nil {
			b.Fatal(err)
		}
		e.Close()
	}
}

// BenchmarkNaiveReach is the unpartitioned baseline for the same workload.
func BenchmarkNaiveReach(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 10000
	g := randomGraph(rng, n, 4)
	const nq = 256
	queries := make([][2][]graph.VertexID, nq)
	for i := range queries {
		queries[i] = [2][]graph.VertexID{randomSet(rng, n, 8), randomSet(rng, n, 8)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%nq]
		NaiveReach(g, q[0], q[1])
	}
}
