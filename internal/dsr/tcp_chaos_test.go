package dsr

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"dsr/internal/graph"
	"dsr/internal/partition"
	"dsr/internal/partition/locality"
	"dsr/internal/shard"
	"dsr/internal/shard/chaos"
)

// bootReplicatedFleet boots R real TCP shard servers per partition
// (each replica with its own Shard instance, like independent
// processes) and a chaos proxy in front of every one. It returns the
// grouped "a|b"-style address specs pointing at the proxies, the
// proxies themselves (for Kill/Revive), and a stop function.
func bootReplicatedFleet(t testing.TB, g *graph.Graph, strat graph.Partitioner, k, R int,
	proxyOpts func(p, r int) chaos.ProxyOptions) ([]string, [][]*chaos.Proxy, func()) {
	t.Helper()
	pt, err := strat.Partition(g, k)
	if err != nil {
		t.Fatal(err)
	}
	subs, _ := partition.Extract(g, pt)
	specs := make([]string, k)
	proxies := make([][]*chaos.Proxy, k)
	var servers []*shard.Server
	var wg sync.WaitGroup
	stop := func() {
		for _, srv := range servers {
			srv.Close()
		}
		wg.Wait()
		for _, row := range proxies {
			for _, px := range row {
				px.Close()
			}
		}
	}
	for p := 0; p < k; p++ {
		var grouped []string
		for r := 0; r < R; r++ {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				stop()
				t.Fatal(err)
			}
			srv := shard.NewServer(shard.New(p, subs[p]), k, g.NumVertices(), g.Fingerprint(), pt.Digest())
			servers = append(servers, srv)
			wg.Add(1)
			go func() {
				defer wg.Done()
				srv.Serve(ln)
			}()
			px, err := chaos.NewProxy(ln.Addr().String(), proxyOpts(p, r))
			if err != nil {
				stop()
				t.Fatal(err)
			}
			proxies[p] = append(proxies[p], px)
			grouped = append(grouped, px.Addr())
		}
		specs[p] = strings.Join(grouped, "|")
	}
	return specs, proxies, stop
}

// TestChaosTCPDifferential is the over-real-TCP half of the chaos
// matrix: hash/range/locality × R∈{1,2,3}, with every replica but the
// first behind a proxy that delays frames and cuts connections
// mid-frame. Replica 0's proxy stays clean, so at least one replica
// per partition survives — and then every query must match the oracle
// with no error at all: mid-frame cuts must be absorbed by failover.
func TestChaosTCPDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(20260730))
	strategies := []graph.Partitioner{graph.Hash(), graph.Range(), locality.New(locality.Options{Seed: 20260730})}
	const k = 3
	for _, R := range []int{1, 2, 3} {
		for si, strat := range strategies {
			t.Run(fmt.Sprintf("R=%d/%s", R, strat.Name()), func(t *testing.T) {
				n := 30 + rng.Intn(70)
				g := randomGraph(rng, n, 2)
				seed := int64(100*R + si)
				specs, _, stop := bootReplicatedFleet(t, g, strat, k, R, func(p, r int) chaos.ProxyOptions {
					if r == 0 {
						return chaos.ProxyOptions{Seed: seed}
					}
					return chaos.ProxyOptions{Seed: seed + int64(10*p+r), CutProb: 0.15,
						DelayProb: 0.1, MaxDelay: time.Millisecond}
				})
				defer stop()

				e, err := Connect(t.Context(), ClusterSpec{Groups: specs})
				if err != nil {
					t.Fatal(err)
				}
				defer e.Close()
				for round := 0; round < 3; round++ {
					queries := make([]Query, 16)
					for i := range queries {
						queries[i] = Query{S: randomSet(rng, n, 5), T: randomSet(rng, n, 5)}
					}
					got, err := e.QueryBatchErr(queries)
					if err != nil {
						t.Fatalf("round %d: batch failed despite clean replica 0: %v", round, err)
					}
					for i, q := range queries {
						if want := NaiveReach(g, q.S, q.T); got[i] != want {
							t.Fatalf("round %d query %d: got %v, oracle %v", round, i, got[i], want)
						}
					}
				}
			})
		}
	}
}

// TestChaosTCPPartitionDownAndRecovery kills every replica of one
// partition mid-stream (proxy-level, as the network sees a crash),
// asserts the coordinator degrades to per-query errors — never wrong
// answers — and recovers once the replicas come back, via the
// in-query redial path.
func TestChaosTCPPartitionDownAndRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const k, R, n = 3, 2, 60
	g := randomGraph(rng, n, 2)
	specs, proxies, stop := bootReplicatedFleet(t, g, graph.Hash(), k, R,
		func(p, r int) chaos.ProxyOptions { return chaos.ProxyOptions{Seed: int64(p*10 + r)} })
	defer stop()

	e, err := Connect(t.Context(), ClusterSpec{Groups: specs})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// A victim query whose sources live in partition 1, plus bystanders.
	pt, err := graph.HashPartition(g, k)
	if err != nil {
		t.Fatal(err)
	}
	var inP1 []graph.VertexID
	for v := 0; v < n && len(inP1) < 3; v++ {
		if pt.Part[v] == 1 {
			inP1 = append(inP1, graph.VertexID(v))
		}
	}
	mkBatch := func() []Query {
		return []Query{
			{S: inP1, T: randomSet(rng, n, 4)},
			{S: randomSet(rng, n, 4), T: randomSet(rng, n, 4)},
		}
	}

	if _, err := e.QueryBatchErr(mkBatch()); err != nil {
		t.Fatalf("healthy fleet errored: %v", err)
	}

	for _, px := range proxies[1] {
		px.Kill()
	}
	// The victim query must start failing (as a partial error naming
	// partition 1) once the dead connections are noticed; non-failed
	// answers must stay oracle-correct throughout.
	deadline := time.Now().Add(20 * time.Second)
	for {
		batch := mkBatch()
		got, err := e.QueryBatchErr(batch)
		if err != nil {
			var be *BatchError
			if !errors.As(err, &be) {
				t.Fatalf("non-partial error: %v", err)
			}
			if len(be.Partitions) != 1 || be.Partitions[0].Partition != 1 {
				t.Fatalf("wrong dead partition set: %v", err)
			}
			for i, q := range batch {
				if !be.Failed[i] {
					if want := NaiveReach(g, q.S, q.T); got[i] != want {
						t.Fatalf("unfailed query %d wrong during outage: got %v, oracle %v", i, got[i], want)
					}
				}
			}
			if be.Failed[0] {
				break // the victim query is failing, outage fully observed
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("partition loss never surfaced")
		}
	}

	// Revive: the very next batches redial through the proxies on
	// demand; answers must return to oracle with no error.
	for _, px := range proxies[1] {
		px.Revive()
	}
	deadline = time.Now().Add(20 * time.Second)
	for {
		batch := mkBatch()
		got, err := e.QueryBatchErr(batch)
		if err == nil {
			for i, q := range batch {
				if want := NaiveReach(g, q.S, q.T); got[i] != want {
					t.Fatalf("post-recovery query %d: got %v, oracle %v", i, got[i], want)
				}
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("never recovered after revive: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
