package dsr

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"dsr/internal/graph"
	"dsr/internal/obs"
)

// TestQueryBatchDifferential compares QueryBatch against both the
// oracle and per-query Query on randomized graphs: a batch must answer
// exactly what the one-at-a-time path answers.
func TestQueryBatchDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(20260729))
	const graphs = 60
	for gi := 0; gi < graphs; gi++ {
		n := 1 + rng.Intn(60)
		deg := []float64{0.5, 1, 2, 4}[rng.Intn(4)]
		g := randomGraph(rng, n, deg)
		k := 2 + rng.Intn(4)
		e, err := Build(g, Options{K: k})
		if err != nil {
			t.Fatal(err)
		}
		B := 1 + rng.Intn(20)
		queries := make([]Query, B)
		for i := range queries {
			queries[i] = Query{S: randomSet(rng, n, 5), T: randomSet(rng, n, 5)}
		}
		got := e.QueryBatch(queries)
		if len(got) != B {
			t.Fatalf("graph %d: got %d answers for %d queries", gi, len(got), B)
		}
		for i, q := range queries {
			want := NaiveReach(g, q.S, q.T)
			if got[i] != want {
				t.Fatalf("graph %d (n=%d, k=%d) query %d: batch = %v, oracle = %v (S=%v T=%v)",
					gi, n, k, i, got[i], want, q.S, q.T)
			}
			if single := e.Query(q.S, q.T); single != want {
				t.Fatalf("graph %d query %d: single = %v, oracle = %v", gi, i, single, want)
			}
		}
		e.Close()
	}
}

// TestQueryBatchReuse runs many batches of varying size through one
// engine to exercise scratch reuse across rounds.
func TestQueryBatchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 200, 2)
	e, err := Build(g, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for round := 0; round < 50; round++ {
		B := 1 + rng.Intn(32)
		queries := make([]Query, B)
		for i := range queries {
			queries[i] = Query{S: randomSet(rng, 200, 6), T: randomSet(rng, 200, 6)}
		}
		got := e.QueryBatch(queries)
		for i, q := range queries {
			if want := NaiveReach(g, q.S, q.T); got[i] != want {
				t.Fatalf("round %d query %d: got %v, want %v", round, i, got[i], want)
			}
		}
	}
}

func TestQueryBatchEmpty(t *testing.T) {
	g := build(2, [][2]graph.VertexID{{0, 1}})
	e, err := Build(g, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if out := e.QueryBatch(nil); out != nil {
		t.Fatalf("QueryBatch(nil) = %v, want nil", out)
	}
	out := e.QueryBatch([]Query{{}, {S: []graph.VertexID{0}}, {T: []graph.VertexID{1}}})
	for i, ans := range out {
		if ans {
			t.Errorf("degenerate query %d answered true", i)
		}
	}
}

// TestQueryZeroAlloc locks the acceptance criterion that the in-process
// Loopback query path stays allocation-free in steady state — with full
// instrumentation enabled (metrics registry, slow-query tracing armed):
// telemetry must be free when idle and allocation-free when hot.
func TestQueryZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 2000, 3)
	reg := obs.NewRegistry()
	e, err := Build(g, Options{K: 4, Metrics: reg, SlowQuery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	S := randomSet(rng, 2000, 8)
	T := randomSet(rng, 2000, 8)
	for i := 0; i < 10; i++ { // warm scratch capacities
		e.Query(S, T)
	}
	if allocs := testing.AllocsPerRun(200, func() { e.Query(S, T) }); allocs != 0 {
		t.Errorf("Query allocates %v/op in steady state with metrics enabled, want 0", allocs)
	}
	if got := reg.Counter("dsr_queries_total").Load(); got < 200 {
		t.Errorf("dsr_queries_total = %d after 200+ queries", got)
	}
	if reg.Histogram("dsr_query_latency_ns").Count() == 0 {
		t.Error("query latency histogram never observed")
	}
}

// TestCloseStopsGoroutines asserts deterministic lifecycle: every
// goroutine the engine started (loopback shard servers) is gone once
// Close returns.
func TestCloseStopsGoroutines(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 500, 2)
	before := runtime.NumGoroutine()
	for iter := 0; iter < 5; iter++ {
		e, err := Build(g, Options{K: 8})
		if err != nil {
			t.Fatal(err)
		}
		e.Query(randomSet(rng, 500, 4), randomSet(rng, 500, 4))
		e.Close()
	}
	// The build pool's goroutines also exit before New returns, but give
	// the scheduler a moment to retire stacks before comparing.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if after := runtime.NumGoroutine(); after <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after Close", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// BenchmarkQueryBatch measures the batched path over Loopback with
// 64-query batches on the same workload as BenchmarkQuery; b.N counts
// individual queries so ns/op is comparable across the two.
func BenchmarkQueryBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 10000
	g := randomGraph(rng, n, 4)
	e, err := Build(g, Options{K: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	const B = 64
	const nq = 256
	batches := make([][]Query, nq/B)
	for bi := range batches {
		batches[bi] = make([]Query, B)
		for i := range batches[bi] {
			batches[bi][i] = Query{S: randomSet(rng, n, 8), T: randomSet(rng, n, 8)}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i += B {
		e.QueryBatch(batches[(i/B)%len(batches)])
	}
}

// BenchmarkQueryWithMetrics is the instrumented twin of BenchmarkQuery:
// single queries over Loopback with a live metrics registry and armed
// slow-query tracing. Its BENCH_baseline entry pins allocs/op at 0, so
// the bench gate fails CI if instrumentation ever puts an allocation on
// the hot path.
func BenchmarkQueryWithMetrics(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 10000
	g := randomGraph(rng, n, 4)
	e, err := Build(g, Options{K: 4, Metrics: obs.NewRegistry(), SlowQuery: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	const nq = 256
	S := make([][]graph.VertexID, nq)
	T := make([][]graph.VertexID, nq)
	for i := range S {
		S[i] = randomSet(rng, n, 8)
		T[i] = randomSet(rng, n, 8)
	}
	for i := 0; i < nq; i++ { // warm scratch so steady state is 0 allocs/op
		e.Query(S[i], T[i])
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Query(S[i%nq], T[i%nq])
	}
}
