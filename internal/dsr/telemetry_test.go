package dsr

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"

	"dsr/internal/graph"
	"dsr/internal/obs"
)

// TestEngineMetrics runs batches through an instrumented in-process
// engine and checks the coordinator's metric catalog fills in: counters
// count, histograms observe, gauges describe the deployment.
func TestEngineMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := randomGraph(rng, 300, 2)
	reg := obs.NewRegistry()
	e, err := Build(g, Options{K: 3, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const rounds = 7
	for r := 0; r < rounds; r++ {
		queries := make([]Query, 4)
		for i := range queries {
			queries[i] = Query{S: randomSet(rng, 300, 4), T: randomSet(rng, 300, 4)}
		}
		e.QueryBatch(queries)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["dsr_batches_total"]; got != rounds {
		t.Errorf("dsr_batches_total = %d, want %d", got, rounds)
	}
	if got := snap.Counters["dsr_queries_total"]; got != rounds*4 {
		t.Errorf("dsr_queries_total = %d, want %d", got, rounds*4)
	}
	if got := snap.Counters["dsr_query_failures_total"]; got != 0 {
		t.Errorf("dsr_query_failures_total = %d on a healthy engine", got)
	}
	if snap.Counters["dsr_rounds_total"] == 0 {
		t.Error("dsr_rounds_total never incremented")
	}
	for _, h := range []string{"dsr_query_latency_ns", "dsr_batch_size", "dsr_fanin_wait_ns", "dsr_boundary_finish_ns", "dsr_summary_fetch_ns"} {
		if snap.Histograms[h].Count == 0 {
			t.Errorf("histogram %s never observed", h)
		}
	}
	lat := snap.Histograms["dsr_query_latency_ns"]
	if lat.P50 == 0 || lat.P99 < lat.P50 || lat.P999 < lat.P99 {
		t.Errorf("latency quantiles not monotone: p50=%d p99=%d p999=%d", lat.P50, lat.P99, lat.P999)
	}
	for p := 0; p < 3; p++ {
		if got := snap.Counters[obs.Name("dsr_rpc_total", "partition", p)]; got == 0 {
			t.Errorf("partition %d: dsr_rpc_total never incremented", p)
		}
		if snap.Histograms[obs.Name("dsr_rpc_latency_ns", "partition", p)].Count == 0 {
			t.Errorf("partition %d: rpc latency never observed", p)
		}
	}
	if got := snap.Gauges["dsr_partitions"]; got != 3 {
		t.Errorf("dsr_partitions = %d, want 3", got)
	}
	if got := snap.Gauges["dsr_boundary_vertices"]; got != int64(e.NumBoundary()) {
		t.Errorf("dsr_boundary_vertices = %d, want %d", got, e.NumBoundary())
	}
	if got := snap.Gauges["dsr_resident_bytes"]; got != int64(e.ResidentBytes()) {
		t.Errorf("dsr_resident_bytes = %d, want %d", got, e.ResidentBytes())
	}
}

// TestSlowQueryLog arms an absurdly low slow-query threshold and checks
// every batch logs its structured span trace at WARN: the root
// query_batch span plus the per-shard rpc spans with partition labels.
func TestSlowQueryLog(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 200, 2)
	var buf bytes.Buffer
	e, err := Build(g, Options{
		K:         2,
		Metrics:   obs.NewRegistry(),
		Log:       obs.NewLogger(&buf, obs.LevelWarn),
		SlowQuery: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// Disjoint fixed seed sets: the query must reach the broadcast round
	// (an S∩T overlap would be answered during assembly, skipping it).
	e.Query([]graph.VertexID{0, 1, 2}, []graph.VertexID{100, 101, 102})

	out := buf.String()
	for _, want := range []string{
		"WARN", "slow batch:", "query_batch", "assemble", "round",
		"rpc part=0", "rpc part=1",
		// Shard-reported compute vs everything else, per partition —
		// present even on the loopback transport, which synthesizes the
		// timing footer from its local search time.
		"server part=0", "server part=1", "net part=0", "net part=1",
		"finish",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("slow-query log missing %q:\n%s", want, out)
		}
	}
}

// TestSlowQueryLogDisabled proves the threshold gate: zero SlowQuery
// (the default) logs nothing, even with a logger attached.
func TestSlowQueryLogDisabled(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randomGraph(rng, 100, 2)
	var buf bytes.Buffer
	e, err := Build(g, Options{K: 2, Log: obs.NewLogger(&buf, obs.LevelWarn)})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Query(randomSet(rng, 100, 4), randomSet(rng, 100, 4))
	if s := buf.String(); strings.Contains(s, "slow batch") {
		t.Errorf("slow-query log emitted with SlowQuery=0:\n%s", s)
	}
}

// TestEngineHealthLoopback pins Health's contract for non-replicated
// transports: nil, not an empty slice.
func TestEngineHealthLoopback(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(rng, 50, 1)
	e, err := Build(g, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if h := e.Health(); h != nil {
		t.Fatalf("Health() on a Loopback engine = %v, want nil", h)
	}
}

// TestConnectLogsProgress checks the connect-time log lines a
// distributed operator sees: one per shard summary, one for the stitch.
func TestConnectLogsProgress(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := randomGraph(rng, 120, 2)
	var buf bytes.Buffer
	e, err := Build(g, Options{K: 3, Log: obs.NewLogger(&buf, obs.LevelInfo)})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	out := buf.String()
	for _, want := range []string{"shard 1/3", "shard 2/3", "shard 3/3", "boundary graph stitched"} {
		if !strings.Contains(out, want) {
			t.Errorf("connect log missing %q:\n%s", want, out)
		}
	}
}
