package dsr

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"dsr/internal/graph"
	"dsr/internal/partition"
	"dsr/internal/partition/locality"
	"dsr/internal/shard"
	"dsr/internal/shard/chaos"
)

// newChaosEngine builds a replicated in-process engine: R chaos-wrapped
// local replicas per partition, each redial producing a fresh replica
// (fresh Shard scratch) exactly like a fresh TCP connection would. The
// coordinator is wired through the same summary path as Build/Connect —
// it learns the boundary structure from whichever replica of each
// partition serves the connect-time summary fetch. Local replicas carry
// no handshake identity, so the global vertex count is pinned
// explicitly, exactly like Build does for its loopback shards.
func newChaosEngine(t testing.TB, g *graph.Graph, strat graph.Partitioner, k, R int,
	f *chaos.Faults, opts shard.ReplicatedOptions) *Engine {
	t.Helper()
	pt, err := strat.Partition(g, k)
	if err != nil {
		t.Fatal(err)
	}
	subs, _ := partition.Extract(g, pt)
	// Pre-warm the lazily cached condensations and reachability indexes:
	// redials may construct Shards concurrently (reconnect loop vs.
	// in-query redial, summary fetches), and the caches themselves are
	// unsynchronized by design.
	for _, sub := range subs {
		sub.Condensation(nil)
		sub.Index(nil)
	}
	groups := make([][]shard.ReplicaDialer, k)
	for p := 0; p < k; p++ {
		for r := 0; r < R; r++ {
			sub := subs[p]
			pp := p
			groups[p] = append(groups[p], f.Dialer(p, r, func(context.Context) (shard.Replica, error) {
				return shard.NewLocalReplica(shard.New(pp, sub)), nil
			}))
		}
	}
	tr, err := shard.NewReplicated(t.Context(), groups, opts)
	if err != nil {
		t.Fatal(err)
	}
	e, err := connect(t.Context(), tr, k, g.NumVertices(), telemetry{})
	if err != nil {
		tr.Close()
		t.Fatal(err)
	}
	return e
}

// chaosSchedule is one cell of the fault matrix.
type chaosSchedule struct {
	name string
	opts func(R int) chaos.Options
}

// chaosSchedules returns fault schedules that always leave replica 0 of
// every partition untouched — the regime where failover must hide every
// fault, so the engine has to agree with the oracle on every query.
func chaosSchedules(k int, seed int64) []chaosSchedule {
	return []chaosSchedule{
		{"clean", func(int) chaos.Options {
			return chaos.Options{Seed: seed}
		}},
		{"drops", func(int) chaos.Options {
			return chaos.Options{Seed: seed, DropProb: 0.35, ProtectFirst: true}
		}},
		{"drops+delays", func(int) chaos.Options {
			return chaos.Options{Seed: seed, DropProb: 0.3, DelayProb: 0.25,
				MaxDelay: 2 * time.Millisecond, ProtectFirst: true}
		}},
		{"scripted-kills", func(R int) chaos.Options {
			// Every non-protected replica dies after a couple of submits
			// and comes back later; the reconnect loop has to pick the
			// revived ones up while queries keep flowing.
			var script []chaos.Event
			for p := 0; p < k; p++ {
				for r := 1; r < R; r++ {
					script = append(script,
						chaos.Event{Part: p, Replica: r, After: 2 + r, Action: chaos.Kill},
						chaos.Event{Part: p, Replica: r, After: 6 + r, Action: chaos.Revive})
				}
			}
			return chaos.Options{Seed: seed, DropProb: 0.1, ProtectFirst: true, Script: script}
		}},
	}
}

// TestChaosDifferentialInProcess is the in-process half of the chaos
// differential matrix: hash/range/locality partitionings × R∈{1,2,3}
// replicas × fault schedules, every answer checked against the
// whole-graph oracle. One replica per partition survives every
// schedule, so failover must make the faults invisible: any error —
// and any wrong answer — fails the test.
func TestChaosDifferentialInProcess(t *testing.T) {
	rng := rand.New(rand.NewSource(20260728))
	strategies := []graph.Partitioner{graph.Hash(), graph.Range(), locality.New(locality.Options{Seed: 20260728})}
	const k = 3
	for _, R := range []int{1, 2, 3} {
		for si, strat := range strategies {
			for _, sched := range chaosSchedules(k, int64(1000*R+si)) {
				t.Run(fmt.Sprintf("R=%d/%s/%s", R, strat.Name(), sched.name), func(t *testing.T) {
					n := 30 + rng.Intn(90)
					g := randomGraph(rng, n, []float64{1, 2, 4}[rng.Intn(3)])
					f := chaos.New(sched.opts(R))
					e := newChaosEngine(t, g, strat, k, R, f,
						shard.ReplicatedOptions{ReconnectEvery: 2 * time.Millisecond})
					defer e.Close()
					for round := 0; round < 4; round++ {
						queries := make([]Query, 12)
						for i := range queries {
							queries[i] = Query{S: randomSet(rng, n, 5), T: randomSet(rng, n, 5)}
						}
						got, err := e.QueryBatchErr(queries)
						if err != nil {
							t.Fatalf("round %d: batch failed despite a live replica per partition: %v", round, err)
						}
						for i, q := range queries {
							if want := NaiveReach(g, q.S, q.T); got[i] != want {
								t.Fatalf("round %d query %d: got %v, oracle %v (S=%v T=%v)",
									round, i, got[i], want, q.S, q.T)
							}
						}
					}
				})
			}
		}
	}
}

// TestChaosPartitionLossNeverWrong drives batches while whole
// partitions die and come back: whatever the fault state, the engine
// must answer with the oracle or fail the query — never answer wrong.
func TestChaosPartitionLossNeverWrong(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const k, n = 3, 80
	for _, R := range []int{1, 2} {
		g := randomGraph(rng, n, 2)
		f := chaos.New(chaos.Options{Seed: int64(R)})
		e := newChaosEngine(t, g, graph.Hash(), k, R, f,
			shard.ReplicatedOptions{ReconnectEvery: -1})
		defer e.Close()

		sawFailure := false
		for round := 0; round < 12; round++ {
			// Rounds 4..7: partition 0 fully dead. Before and after: alive.
			switch round {
			case 4:
				for r := 0; r < R; r++ {
					f.Kill(0, r)
				}
			case 8:
				for r := 0; r < R; r++ {
					f.Revive(0, r)
				}
			}
			queries := make([]Query, 10)
			for i := range queries {
				queries[i] = Query{S: randomSet(rng, n, 4), T: randomSet(rng, n, 4)}
			}
			got, err := e.QueryBatchErr(queries)
			var be *BatchError
			switch {
			case err == nil:
				for i, q := range queries {
					if want := NaiveReach(g, q.S, q.T); got[i] != want {
						t.Fatalf("R=%d round %d query %d: got %v, oracle %v", R, round, i, got[i], want)
					}
				}
			case errors.As(err, &be):
				sawFailure = true
				if len(be.Partitions) != 1 || be.Partitions[0].Partition != 0 {
					t.Fatalf("R=%d round %d: unexpected dead partitions: %v", R, round, err)
				}
				for i, q := range queries {
					want := NaiveReach(g, q.S, q.T)
					if !be.Failed[i] && got[i] != want {
						t.Fatalf("R=%d round %d query %d: unfailed answer wrong: got %v, oracle %v",
							R, round, i, got[i], want)
					}
					// A failed query must never claim true, and a query the
					// engine answered true is by construction correct.
					if be.Failed[i] && got[i] {
						t.Fatalf("R=%d round %d query %d: failed query answered true", R, round, i)
					}
				}
			default:
				t.Fatalf("R=%d round %d: non-partial error: %v", R, round, err)
			}
			if round >= 8 && err != nil {
				t.Fatalf("R=%d round %d: still failing after revival: %v", R, round, err)
			}
		}
		if !sawFailure {
			t.Fatalf("R=%d: partition loss never surfaced — schedule ineffective", R)
		}
		e.Close()
	}
}

// chainEngine builds the deterministic partial-failure fixture: the
// chain 0→1→2→3→4→5 range-partitioned into {0,1},{2,3},{4,5} over
// chaos-wrapped replicas, so tests know exactly which query consults
// which partition.
func chainEngine(t *testing.T, R int) (*Engine, *chaos.Faults) {
	t.Helper()
	g := build(6, [][2]graph.VertexID{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}})
	f := chaos.New(chaos.Options{})
	e := newChaosEngine(t, g, graph.Range(), 3, R, f, shard.ReplicatedOptions{ReconnectEvery: -1})
	return e, f
}

// V is shorthand for a vertex set literal.
func V(vs ...graph.VertexID) []graph.VertexID { return vs }

// TestQueryBatchErrPartialFailure pins the partial-failure contract:
// which queries fail when a partition dies, the error names the dead
// partition exactly once, and every other query in the same batch is
// still answered.
func TestQueryBatchErrPartialFailure(t *testing.T) {
	e, f := chainEngine(t, 1)
	defer e.Close()
	f.Kill(1, 0) // partition 1 = vertices {2, 3}, all replicas down

	queries := []Query{
		{S: V(0), T: V(1)},    // healthy p0 only: local hit
		{S: V(4), T: V(5)},    // healthy p2 only: local hit
		{S: V(2), T: V(3)},    // sources and targets inside the dead partition
		{S: V(0), T: V(5)},    // p0 → p2; p1 is crossed via precomputed summaries only
		{S: V(3), T: V(5)},    // sources in the dead partition: forward search lost
		{S: V(0), T: V(3)},    // targets in the dead partition: backward search lost
		{S: V(2), T: V(2)},    // trivial overlap: answered during assembly, no shard consulted
		{S: nil, T: V(0)},     // degenerate: answered during assembly
		{S: V(3, 0), T: V(1)}, // one source lost with p1, but p0 proves it true anyway
		{S: V(5), T: V(0)},    // healthy partitions, genuinely false
	}
	got, err := e.QueryBatchErr(queries)
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("want *BatchError, got %v", err)
	}
	if len(be.Partitions) != 1 || be.Partitions[0].Partition != 1 || be.Partitions[0].Err == nil {
		t.Fatalf("dead partition not reported exactly once: %+v", be.Partitions)
	}
	wantFailed := []bool{false, false, true, false, true, true, false, false, false, false}
	wantAns := []bool{true, true, false, true, false, false, true, false, true, false}
	for i := range queries {
		if be.Failed[i] != wantFailed[i] {
			t.Errorf("query %d: Failed = %v, want %v", i, be.Failed[i], wantFailed[i])
		}
		if got[i] != wantAns[i] {
			t.Errorf("query %d: answer = %v, want %v", i, got[i], wantAns[i])
		}
	}
	if t.Failed() {
		t.Logf("error was: %v", err)
	}
}

// TestQueryBatchErrMultiplePartitionsDown: one error entry per dead
// partition, in ascending partition order.
func TestQueryBatchErrMultiplePartitionsDown(t *testing.T) {
	e, f := chainEngine(t, 1)
	defer e.Close()
	f.Kill(1, 0)
	f.Kill(2, 0)

	got, err := e.QueryBatchErr([]Query{
		{S: V(0), T: V(1)}, // p0: still answered
		{S: V(2), T: V(5)}, // both dead partitions
	})
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("want *BatchError, got %v", err)
	}
	if len(be.Partitions) != 2 || be.Partitions[0].Partition != 1 || be.Partitions[1].Partition != 2 {
		t.Fatalf("partitions = %+v, want exactly [1, 2]", be.Partitions)
	}
	if be.Failed[0] || !be.Failed[1] {
		t.Fatalf("Failed = %v, want [false true]", be.Failed)
	}
	if !got[0] || got[1] {
		t.Fatalf("answers = %v, want [true false]", got)
	}
}

// TestQueryBatchErrRecoversAfterRevive: once the dead partition's
// replicas are back, the next batch redials on demand and the error
// disappears.
func TestQueryBatchErrRecoversAfterRevive(t *testing.T) {
	e, f := chainEngine(t, 2)
	defer e.Close()
	f.Kill(1, 0)
	f.Kill(1, 1)
	if _, err := e.QueryBatchErr([]Query{{S: V(2), T: V(3)}}); err == nil {
		t.Fatal("fully dead partition did not error")
	}
	f.Revive(1, 0)
	got, err := e.QueryBatchErr([]Query{{S: V(2), T: V(3)}})
	if err != nil {
		t.Fatalf("batch still failing after revive: %v", err)
	}
	if !got[0] {
		t.Fatal("2 ~> 3 answered false after revive")
	}
}

// TestQueryPanicsOnlyWhenAnswerUnknown: the panicking entry points
// tolerate a lost partition when the answer is proven anyway, and
// panic when it is not.
func TestQueryPanicsOnlyWhenAnswerUnknown(t *testing.T) {
	e, f := chainEngine(t, 1)
	defer e.Close()
	f.Kill(1, 0)

	// Healthy-partition query: no panic, right answer.
	if !e.Query(V(0), V(1)) {
		t.Fatal("0 ~> 1 = false")
	}
	// Sound-true query despite the dead partition: no panic.
	if !e.Query(V(3, 0), V(1)) {
		t.Fatal("{3,0} ~> 1 = false")
	}
	// Unknown-answer query: must panic, silence would be a wrong false.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Query on a dead partition did not panic")
			}
		}()
		e.Query(V(2), V(3))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("QueryBatch on a dead partition did not panic")
			}
		}()
		e.QueryBatch([]Query{{S: V(2), T: V(3)}})
	}()
}
