package dsr

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"dsr/internal/graph"
	"dsr/internal/obs"
	"dsr/internal/partition"
	"dsr/internal/shard"
	"dsr/internal/wire"
)

// TestHedgeDelay pins the deadline estimator: Max until every partition
// has enough samples, then the slowest partition's quantile clamped to
// [Min, Max].
func TestHedgeDelay(t *testing.T) {
	opt := HedgeOptions{Enabled: true, Percentile: 0.5, Min: time.Millisecond, Max: 50 * time.Millisecond}
	h := newHedgeState(nil, 2, opt)

	if d := h.delay(); d != 50*time.Millisecond {
		t.Fatalf("cold delay = %v, want Max", d)
	}
	for i := 0; i < hedgeMinSamples; i++ {
		h.observe(0, 2*time.Millisecond)
	}
	if d := h.delay(); d != 50*time.Millisecond {
		t.Fatalf("delay with one cold partition = %v, want Max", d)
	}
	for i := 0; i < hedgeMinSamples; i++ {
		h.observe(1, 4*time.Millisecond)
	}
	// The slowest partition (p1, ~4ms) governs; log-bucketing may round
	// up by one bucket (<= 6.25%).
	d := h.delay()
	if d < 4*time.Millisecond || d > 5*time.Millisecond {
		t.Fatalf("warm delay = %v, want ~4ms (slowest partition's quantile)", d)
	}

	// Clamps: huge samples hit Max, tiny ones hit Min.
	for i := 0; i < hedgeMinSamples; i++ {
		h.observe(0, time.Second)
	}
	if d := h.delay(); d != 50*time.Millisecond {
		t.Fatalf("delay = %v, want Max clamp", d)
	}
	lo := newHedgeState(nil, 1, opt)
	for i := 0; i < hedgeMinSamples; i++ {
		lo.observe(0, 10*time.Microsecond)
	}
	if d := lo.delay(); d != time.Millisecond {
		t.Fatalf("delay = %v, want Min clamp", d)
	}

	// Defaults fill zeros.
	def := HedgeOptions{Enabled: true}.withDefaults()
	if def.Percentile != 0.99 || def.Min != time.Millisecond || def.Max != 100*time.Millisecond {
		t.Fatalf("bad defaults: %+v", def)
	}
}

// slowReplica delays every submit by a fixed amount — a deterministic
// straggler, unlike chaos's seeded delays.
type slowReplica struct {
	inner shard.Replica
	d     time.Duration
}

func (s *slowReplica) Submit(h wire.BatchHeader, tasks []wire.Task, replyc chan<- shard.Reply) {
	time.Sleep(s.d)
	s.inner.Submit(h, tasks, replyc)
}
func (s *slowReplica) Summary(ctx context.Context) (wire.Summary, error) { return s.inner.Summary(ctx) }
func (s *slowReplica) Hello() wire.Hello                                 { return s.inner.Hello() }
func (s *slowReplica) Close() error                                      { return s.inner.Close() }

// newHedgedEngine builds a k-partition R=2 in-process replicated engine
// through the exported ConnectTransport hook: replica 0 of every
// partition answers promptly, replica 1 sleeps `slow` per submit.
func newHedgedEngine(t *testing.T, g *graph.Graph, k int, slow time.Duration, o Options) *Engine {
	t.Helper()
	pt, err := graph.Hash().Partition(g, k)
	if err != nil {
		t.Fatal(err)
	}
	subs, _ := partition.Extract(g, pt)
	for _, sub := range subs {
		sub.Condensation(nil)
		sub.Index(nil)
	}
	groups := make([][]shard.ReplicaDialer, k)
	for p := 0; p < k; p++ {
		sub, pp := subs[p], p
		groups[p] = []shard.ReplicaDialer{
			func(context.Context) (shard.Replica, error) {
				return shard.NewLocalReplica(shard.New(pp, sub)), nil
			},
			func(context.Context) (shard.Replica, error) {
				return &slowReplica{inner: shard.NewLocalReplica(shard.New(pp, sub)), d: slow}, nil
			},
		}
	}
	tr, err := shard.NewReplicated(t.Context(), groups, shard.ReplicatedOptions{ReconnectEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	e, err := ConnectTransport(t.Context(), tr, k, g.NumVertices(), o)
	if err != nil {
		tr.Close()
		t.Fatal(err)
	}
	return e
}

// TestHedgedEngineDifferential: with one deterministically slow replica
// per partition and hedging armed, every answer must still match the
// whole-graph oracle, hedges must actually fire, and at least one hedge
// must win its race (the primary is 30ms slower than the deadline).
func TestHedgedEngineDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	const k, n = 3, 80
	g := randomGraph(rng, n, 2)
	reg := obs.NewRegistry()
	e := newHedgedEngine(t, g, k, 30*time.Millisecond, Options{
		Metrics: reg,
		Hedge:   HedgeOptions{Enabled: true, Percentile: 0.95, Min: time.Millisecond, Max: 2 * time.Millisecond},
	})
	defer e.Close()

	for round := 0; round < 20; round++ {
		queries := make([]Query, 6)
		for i := range queries {
			queries[i] = Query{S: randomSet(rng, n, 4), T: randomSet(rng, n, 4)}
		}
		got, err := e.QueryBatchErr(queries)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i, q := range queries {
			if want := NaiveReach(g, q.S, q.T); got[i] != want {
				t.Fatalf("round %d query %d: got %v, oracle %v (S=%v T=%v)", round, i, got[i], want, q.S, q.T)
			}
		}
	}

	var hedges, wins uint64
	for p := 0; p < k; p++ {
		hedges += reg.Counter(obs.Name("dsr_hedges_total", "partition", p)).Load()
		wins += reg.Counter(obs.Name("dsr_hedge_wins_total", "partition", p)).Load()
	}
	if hedges == 0 {
		t.Fatal("no hedge ever fired despite a 30ms straggler and a 2ms deadline")
	}
	if wins == 0 {
		t.Fatal("no hedge ever won despite the sibling being 30ms faster")
	}
	if wins > hedges {
		t.Fatalf("hedge wins (%d) exceed hedges sent (%d)", wins, hedges)
	}
}

// TestHedgeIgnoredWithoutSiblings: enabling hedging on a transport with
// no sibling replicas (Build's loopback) must quietly disable it, not
// break queries.
func TestHedgeIgnoredWithoutSiblings(t *testing.T) {
	g := build(6, [][2]graph.VertexID{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}})
	e, err := Build(g, Options{K: 3, Hedge: HedgeOptions{Enabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.hedge != nil {
		t.Fatal("hedge state exists on a sibling-less transport")
	}
	if !e.Query(V(0), V(5)) || e.Query(V(5), V(0)) {
		t.Fatal("wrong answers with hedging requested on loopback")
	}
}
