package dsr

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"dsr/internal/graph"
	"dsr/internal/partition"
	"dsr/internal/shard"
	"dsr/internal/shard/chaos"
	"dsr/internal/wire"
)

// interiorGraph builds a two-partition graph whose boundary is constant
// while its interior scales: two chains of m vertices (one per range
// partition half) joined by the single bridge (m-1) -> m, padded with
// extra intra-half edges. Whatever m is, exactly two vertices are
// boundary: exit m-1 and entry m.
func interiorGraph(rng *rand.Rand, m, extraEdges int) *graph.Graph {
	b := graph.NewBuilder(2 * m)
	for v := 0; v < 2*m-1; v++ {
		b.AddEdge(graph.VertexID(v), graph.VertexID(v+1))
	}
	for i := 0; i < extraEdges; i++ {
		half := rng.Intn(2) * m
		b.AddEdge(graph.VertexID(half+rng.Intn(m)), graph.VertexID(half+rng.Intn(m)))
	}
	return b.Build()
}

// TestResidentBytesIndependentOfInterior pins the graph-free property:
// the coordinator's resident footprint is a function of the boundary
// structure alone. Growing the partition interiors 10× — vertices and
// edges that never cross the partition border — must not change
// ResidentBytes at all, because none of it ever reaches the
// coordinator.
func TestResidentBytesIndependentOfInterior(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	small, err := Build(interiorGraph(rng, 1_000, 4_000), Options{K: 2, Partitioner: graph.Range()})
	if err != nil {
		t.Fatal(err)
	}
	defer small.Close()
	big, err := Build(interiorGraph(rng, 10_000, 40_000), Options{K: 2, Partitioner: graph.Range()})
	if err != nil {
		t.Fatal(err)
	}
	defer big.Close()

	if nb := small.NumBoundary(); nb != 2 {
		t.Fatalf("small engine boundary = %d vertices, want 2", nb)
	}
	if small.NumBoundary() != big.NumBoundary() {
		t.Fatalf("boundary grew with the interior: %d vs %d", small.NumBoundary(), big.NumBoundary())
	}
	sb, bb := small.ResidentBytes(), big.ResidentBytes()
	if sb != bb {
		t.Fatalf("coordinator-resident bytes scale with interior size: %d (2k vertices) vs %d (20k vertices)", sb, bb)
	}
	if sb == 0 {
		t.Fatal("ResidentBytes = 0, metric is not wired")
	}
	// And both engines still answer across the bridge.
	if !small.Query([]graph.VertexID{0}, []graph.VertexID{1_999}) {
		t.Fatal("small: 0 should reach the far end")
	}
	if !big.Query([]graph.VertexID{0}, []graph.VertexID{19_999}) {
		t.Fatal("big: 0 should reach the far end")
	}
	if big.Query([]graph.VertexID{19_999}, []graph.VertexID{0}) {
		t.Fatal("big: far end must not reach 0")
	}
}

// TestStitchBoundaryRejectsBadSummaries covers the validation layer
// that keeps the parallel stitch phases safe against inconsistent or
// hostile fleets: overlapping boundary sets, out-of-range vertices,
// edges whose source a shard does not own, and edges into vertices no
// shard declared.
func TestStitchBoundaryRejectsBadSummaries(t *testing.T) {
	cases := []struct {
		name string
		n    int
		sums []wire.Summary
		want string
	}{
		{"overlapping boundaries", 10, []wire.Summary{
			{Boundary: []uint32{1, 3}}, {Boundary: []uint32{3, 5}},
		}, "claimed by two shards"},
		{"boundary out of range", 4, []wire.Summary{
			{Boundary: []uint32{1}}, {Boundary: []uint32{9}},
		}, "out of range"},
		{"unowned edge source", 10, []wire.Summary{
			{Boundary: []uint32{1}, Edges: [][2]uint32{{2, 1}}}, {Boundary: []uint32{2}},
		}, "not one of its boundary vertices"},
		{"unknown cross target", 10, []wire.Summary{
			{Boundary: []uint32{1}, Cross: [][2]uint32{{1, 7}}}, {Boundary: []uint32{2}},
		}, "not a boundary vertex of any shard"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := stitchBoundary(c.n, c.sums)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("stitchBoundary = %v, want error containing %q", err, c.want)
			}
		})
	}
	// The empty fleet degenerates cleanly.
	bg, err := stitchBoundary(5, []wire.Summary{{}, {}})
	if err != nil || len(bg.verts) != 0 {
		t.Fatalf("empty summaries: bg=%v err=%v", bg, err)
	}
}

// TestChaosSummaryFetchFailover kills a replica between transport
// construction and the connect-time summary fetch: the coordinator must
// transparently fetch the partition's summary from the surviving
// sibling and then answer oracle-identical queries. With the dead
// replica revived, later rounds may use either replica.
func TestChaosSummaryFetchFailover(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	const k, R, n = 3, 2, 90
	g := randomGraph(rng, n, 2)
	pt, err := graph.HashPartition(g, k)
	if err != nil {
		t.Fatal(err)
	}
	subs, _ := partition.Extract(g, pt)
	for _, sub := range subs {
		sub.Condensation(nil)
		sub.Index(nil)
	}
	f := chaos.New(chaos.Options{})
	groups := make([][]shard.ReplicaDialer, k)
	for p := 0; p < k; p++ {
		for r := 0; r < R; r++ {
			sub := subs[p]
			pp := p
			groups[p] = append(groups[p], f.Dialer(p, r, func(context.Context) (shard.Replica, error) {
				return shard.NewLocalReplica(shard.New(pp, sub)), nil
			}))
		}
	}
	tr, err := shard.NewReplicated(t.Context(), groups, shard.ReplicatedOptions{ReconnectEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	// The replica the transport dialed for partition 1 dies before the
	// summary fetch; its sibling must serve the summary instead.
	f.Kill(1, 0)
	e, err := connect(t.Context(), tr, k, g.NumVertices(), telemetry{})
	if err != nil {
		tr.Close()
		t.Fatalf("summary fetch did not fail over to the sibling: %v", err)
	}
	defer e.Close()
	f.Revive(1, 0)
	for round := 0; round < 3; round++ {
		queries := make([]Query, 12)
		for i := range queries {
			queries[i] = Query{S: randomSet(rng, n, 5), T: randomSet(rng, n, 5)}
		}
		got, err := e.QueryBatchErr(queries)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i, q := range queries {
			if want := NaiveReach(g, q.S, q.T); got[i] != want {
				t.Fatalf("round %d query %d: got %v, oracle %v", round, i, got[i], want)
			}
		}
	}
}

// BenchmarkCoordinatorBuild measures the coordinator's share of
// engine construction — stitching the global boundary graph from the k
// shipped summaries — and reports the resulting coordinator-resident
// footprint, the headline metric of the graph-free design.
func BenchmarkCoordinatorBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	const n, k = 10000, 4
	g := randomGraph(rng, n, 4)
	pt, err := graph.HashPartition(g, k)
	if err != nil {
		b.Fatal(err)
	}
	subs, _ := partition.Extract(g, pt)
	sums := make([]wire.Summary, k)
	for p := 0; p < k; p++ {
		sums[p] = shard.New(p, subs[p]).Summary()
	}
	var resident int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bg, err := stitchBoundary(n, sums)
		if err != nil {
			b.Fatal(err)
		}
		resident = bg.residentBytes()
	}
	b.ReportMetric(float64(resident), "resident-B")
}
