// Package dsr implements distributed set reachability: given a directed
// graph partitioned into k parts, Query(S, T) answers whether any source
// in S reaches any target in T. The engine follows the DSR decomposition
// from Gurajada & Theobald (SIGMOD 2016):
//
//  1. each partition is compressed into boundary-to-boundary summary
//     edges, which are stitched with the raw cross-partition edges into
//     a global boundary graph;
//  2. at query time, per-partition shards run local searches (forward
//     from S, backward from T) in parallel, and the coordinator finishes
//     with a single search over the small boundary graph.
//
// Any s->t path decomposes as s ~> x0 -> e1 ~> x1 -> ... ek ~> t, where
// each ~> stays inside one partition and each -> is a cross-partition
// edge. The forward local search finds x0, summary edges cover every
// ei ~> xi hop, cross edges cover xi -> e(i+1), and the backward local
// search marks ek; so the boundary search is exact, not approximate.
//
// The coordinator is graph-free: it never holds the full graph. Each
// shard compresses its own partition and ships the result — boundary
// vertices, entry→exit summary edges, outgoing cross-partition edges —
// as a boundary summary at connect time, and the coordinator stitches
// the k summaries into the boundary graph. Its resident state is
// therefore proportional to the boundary, not to the graph: partition
// interiors exist only inside the shards.
//
// Two constructors cover the two deployments. Build partitions a graph
// and runs everything in one process over shard.Loopback (the shards
// still ship summaries — the same code path as the wire). Connect joins
// an existing fleet of shard servers over TCP, knowing nothing but
// their addresses: identity (vertex count, graph fingerprint,
// partitioning digest) comes from the handshake, structure from the
// shipped summaries, and the same QueryBatch path amortizes one
// round-trip per shard across an entire batch of queries.
//
// The coordinator holds no placement data either: every task batch is
// broadcast to all k shards with global vertex IDs, each shard runs the
// seeds it owns and reports how many that was, and the coordinator
// cross-checks those counts against the batch to detect uncovered seeds
// (a shard down, or a fleet that disagrees about placement).
package dsr

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"dsr/internal/graph"
	"dsr/internal/obs"
	"dsr/internal/partition"
	"dsr/internal/shard"
	"dsr/internal/wire"
)

// boundaryGraph is the compressed global view stitched from the shards'
// boundary summaries: vertices are the boundary vertices of the
// partitioned graph, edges are the per-partition entry->exit summaries
// plus the raw cross-partition edges. Global IDs are compressed to
// dense ids (indices into verts); adjacency is one flat CSR arena.
type boundaryGraph struct {
	verts  []uint32 // sorted global IDs of every boundary vertex
	off    []int64  // CSR row offsets into arena, len(verts)+1
	arena  []int32  // concatenated adjacency rows, dense ids
	rowLen []int32  // live prefix of each row after in-place dedupe
}

// dense maps a global vertex ID to its dense boundary id.
func (bg *boundaryGraph) dense(v uint32) (int32, bool) {
	d, ok := slices.BinarySearch(bg.verts, v)
	return int32(d), ok
}

// row returns the adjacency row of dense id d.
func (bg *boundaryGraph) row(d int32) []int32 {
	o := bg.off[d]
	return bg.arena[o : o+int64(bg.rowLen[d])]
}

// residentBytes is the memory footprint of the stitched boundary graph
// — the only per-graph state the coordinator retains.
func (bg *boundaryGraph) residentBytes() int {
	return 4*len(bg.verts) + 8*len(bg.off) + 4*len(bg.arena) + 4*len(bg.rowLen)
}

// parallelParts runs fn(p) for every partition p in [0, k) on a bounded
// pool and waits for all of them.
func parallelParts(k int, fn func(p int)) {
	workers := min(runtime.GOMAXPROCS(0), k)
	if workers <= 1 {
		for p := 0; p < k; p++ {
			fn(p)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				p := int(next.Add(1)) - 1
				if p >= k {
					return
				}
				fn(p)
			}
		}()
	}
	wg.Wait()
}

// stitchBoundary builds the global boundary graph from the k shards'
// boundary summaries — nothing else. n is the global vertex count, used
// only to range-check the summaries; the full graph is never consulted.
//
// The heavy phases are parallel over shards, which is safe because each
// adjacency row is owned by exactly one shard: every stitched edge is
// keyed by its source vertex, and the validation pass proves each
// shard's edge sources lie in that shard's own boundary set before any
// row is touched. The boundary sets themselves cannot overlap — a
// duplicate across shards is rejected as a fleet inconsistency.
func stitchBoundary(n int, sums []wire.Summary) (*boundaryGraph, error) {
	k := len(sums)
	total := 0
	for p := range sums {
		total += len(sums[p].Boundary)
	}
	verts := make([]uint32, 0, total)
	for p := range sums {
		verts = append(verts, sums[p].Boundary...)
	}
	slices.Sort(verts)
	for i := 1; i < len(verts); i++ {
		if verts[i] == verts[i-1] {
			return nil, fmt.Errorf("dsr: boundary vertex %d claimed by two shards — the fleet was not built from one partitioning", verts[i])
		}
	}
	if len(verts) > 0 && int64(verts[len(verts)-1]) >= int64(n) {
		return nil, fmt.Errorf("dsr: boundary vertex %d out of range (graph has %d vertices)", verts[len(verts)-1], n)
	}
	nb := len(verts)
	bg := &boundaryGraph{verts: verts, off: make([]int64, nb+1), rowLen: make([]int32, nb)}

	// Validation before any stitching: each shard's edge sources must be
	// its own boundary vertices (row ownership — the parallel count and
	// fill below stay race-free even against a buggy or hostile shard)
	// and each target must resolve to some shard's boundary vertex.
	errs := make([]error, k)
	parallelParts(k, func(p int) {
		s := &sums[p]
		check := func(pair [2]uint32, what string) error {
			if _, ok := slices.BinarySearch(s.Boundary, pair[0]); !ok {
				return fmt.Errorf("dsr: shard %d %s edge %d->%d: source is not one of its boundary vertices", p, what, pair[0], pair[1])
			}
			if _, ok := bg.dense(pair[1]); !ok {
				return fmt.Errorf("dsr: shard %d %s edge %d->%d: target is not a boundary vertex of any shard", p, what, pair[0], pair[1])
			}
			return nil
		}
		for _, pr := range s.Edges {
			if errs[p] = check(pr, "summary"); errs[p] != nil {
				return
			}
		}
		for _, pr := range s.Cross {
			if errs[p] = check(pr, "cross"); errs[p] != nil {
				return
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Count per-row degrees, lay out the CSR arena, fill rows (deg
	// doubles as the per-row cursor), then sort + dedupe each row in
	// place (multi-edges and entry==exit self-pairs add noise). rowLen
	// records the live prefix, since dedupe shrinks rows inside the
	// shared arena.
	deg := make([]int32, nb)
	parallelParts(k, func(p int) {
		for _, pr := range sums[p].Edges {
			d, _ := bg.dense(pr[0])
			deg[d]++
		}
		for _, pr := range sums[p].Cross {
			d, _ := bg.dense(pr[0])
			deg[d]++
		}
	})
	for i := 0; i < nb; i++ {
		bg.off[i+1] = bg.off[i] + int64(deg[i])
	}
	bg.arena = make([]int32, bg.off[nb])
	clear(deg)
	parallelParts(k, func(p int) {
		put := func(pr [2]uint32) {
			d, _ := bg.dense(pr[0])
			t, _ := bg.dense(pr[1])
			bg.arena[bg.off[d]+int64(deg[d])] = t
			deg[d]++
		}
		for _, pr := range sums[p].Edges {
			put(pr)
		}
		for _, pr := range sums[p].Cross {
			put(pr)
		}
	})
	parallelParts(k, func(p int) {
		for _, v := range sums[p].Boundary {
			d, _ := bg.dense(v)
			row := bg.arena[bg.off[d]:bg.off[d+1]]
			slices.Sort(row)
			bg.rowLen[d] = int32(len(slices.Compact(row)))
		}
	})
	return bg, nil
}

// Query pairs one source set with one target set for QueryBatch.
type Query struct {
	S, T []graph.VertexID
}

// qstate is the coordinator's per-query bookkeeping within one batch.
type qstate struct {
	seeds  []int32 // dense boundary ids reached by forward local searches
	goals  []int32 // dense boundary ids that reach a target locally
	hit    bool    // some partition saw a local S ~> T path
	done   bool    // answered during assembly (trivial/overlap cases)
	ans    bool
	failed bool // coverage shortfall left the answer unproven

	// Coverage accounting for the broadcast protocol: the coordinator
	// expects every deduplicated in-range seed to be owned by exactly
	// one shard. expS/expT count what the batch shipped; gotS/gotT sum
	// the Owned counts the shards reported back. A shortfall means some
	// seed went unsearched — a dead partition, or a fleet that disagrees
	// about placement — and the query's `false` cannot be trusted.
	expS, expT int
	gotS, gotT int
}

// vset is an epoch-marked open-addressing set of vertex IDs, the
// coordinator's per-query dedup structure. Clearing is O(1) (epoch
// bump) and capacity is re-ensured before each query's inserts, so
// steady-state batches allocate nothing. Unlike a direct-mapped mark
// array it is sized to the query, not to the graph — the coordinator
// holds no O(n) state.
type vset struct {
	keys  []int32
	epoch []uint32
	cur   uint32
	mask  uint32
}

// begin clears the set and ensures capacity for n inserts (load factor
// <= 1/2, so probes terminate fast and `has` can stop at an empty slot).
func (s *vset) begin(n int) {
	need := 4
	for need < 2*n {
		need <<= 1
	}
	if need > len(s.keys) {
		s.keys = make([]int32, need)
		s.epoch = make([]uint32, need)
		s.mask = uint32(need - 1)
		s.cur = 0
	}
	s.cur++
	if s.cur == 0 { // epoch wrapped: stale marks would alias, clear them
		clear(s.epoch)
		s.cur = 1
	}
}

// add inserts v, reporting whether it was absent.
func (s *vset) add(v int32) bool {
	i := (uint32(v) * 2654435761) & s.mask
	for {
		if s.epoch[i] != s.cur {
			s.epoch[i] = s.cur
			s.keys[i] = v
			return true
		}
		if s.keys[i] == v {
			return false
		}
		i = (i + 1) & s.mask
	}
}

// has reports whether v is in the set.
func (s *vset) has(v int32) bool {
	i := (uint32(v) * 2654435761) & s.mask
	for {
		if s.epoch[i] != s.cur {
			return false
		}
		if s.keys[i] == v {
			return true
		}
		i = (i + 1) & s.mask
	}
}

// Engine answers set-reachability queries over a partitioned graph. It
// is the graph-free coordinator of the DSR decomposition: its resident
// state is the stitched boundary graph plus per-query scratch — never
// the full graph, never any placement data. Partition interiors live
// exclusively inside the shards, whether those are in-process (Build)
// or remote servers (Connect).
type Engine struct {
	n  int // vertex count of the source graph, from build or handshake
	k  int // partition count
	bg *boundaryGraph
	tr shard.Transport

	mu     sync.Mutex // serializes query rounds: shards hold per-partition scratch
	closed bool

	// Reusable per-round scratch, safe under mu. A round fully drains
	// the reply channel, so all of this — including the seed arena the
	// shards read from — is quiescent between rounds.
	replyc chan shard.Reply
	tset   *vset // per-query T membership + dedup
	sset   *vset // per-query S dedup

	tasks []wire.Task // the round's batch, broadcast to every shard
	arena []int32     // seed storage for the whole round; tasks alias it

	qs     []qstate
	single [1]Query // reusable batch for Query

	// Hedging. hedge is nil unless enabled on a sibling-capable
	// transport; hedged replies arrive on their own channel so a
	// duplicate can never be mistaken for a primary. pround is the
	// hedged fan-in's per-partition ledger, reused across rounds.
	hedge  *hedgeState
	hedgec chan shard.Reply
	pround []partRound
	// stale marks the round scratch (tasks, arena, both reply channels)
	// as still owned by straggler replies the last hedged round stopped
	// waiting for; the next round must start from fresh memory.
	stale bool

	bvisit *partition.Marks // boundary-BFS visited marks
	bgoal  *partition.Marks // boundary-BFS goal marks
	bqueue []int32          // boundary-BFS queue

	// Telemetry. met's instruments are nil (no-op) without a registry;
	// trace is engine-owned scratch reused across batches (safe under
	// mu), so per-query tracing allocates nothing at steady state.
	met   engineMetrics
	trace obs.Trace
	slow  time.Duration // slow-query log threshold, 0 disables
	log   *obs.Logger

	// wantTiming arms the wire-level trace flag: every task batch then
	// asks its shard to self-measure and footer its reply, feeding the
	// net-vs-server split (metrics and slow-query sub-spans). On when
	// either consumer exists — a registry or a slow-query threshold.
	wantTiming bool
	batchID    uint64 // round counter; the wire batch ID (starts at 1)
}

// Options configures Build.
type Options struct {
	// K is the partition count. Ignored when Partitioning is set (it
	// carries its own), except that a non-zero K must agree with it.
	K int
	// Partitioner is the partitioning strategy — graph.Hash(),
	// graph.Range(), or locality.New(opts). Nil means graph.Hash().
	Partitioner graph.Partitioner
	// Partitioning, if non-nil, supplies a precomputed vertex-to-
	// partition assignment instead of a strategy. Only K and Part are
	// consulted; the Entry/Exit boundary marks are recomputed from the
	// edge set, so a hand-rolled partitioning cannot smuggle in marks
	// that disagree with the graph.
	Partitioning *graph.Partitioning
	// Metrics, if non-nil, receives the engine's telemetry (see the
	// catalog in README.md). Nil disables instrumentation at zero cost:
	// every instrument degrades to a no-op.
	Metrics *obs.Registry
	// Log, if non-nil, receives build/connect progress and slow-query
	// traces. Nil logs nothing.
	Log *obs.Logger
	// SlowQuery, if positive, logs a structured span trace (at WARN) for
	// every batch that takes longer end to end. 0 disables.
	SlowQuery time.Duration
	// Hedge configures hedged shard requests. Only effective on
	// transports with sibling replicas (ConnectTransport over a
	// replicated transport); Build's loopback shards have none, so it is
	// ignored there.
	Hedge HedgeOptions
}

// Build partitions g and builds an in-process engine over it: one
// shard.Loopback shard per partition, each of which compresses its
// partition and ships a boundary summary exactly as a remote shard
// would — Build and Connect share the summary-stitching path, the only
// difference is the transport underneath.
func Build(g *graph.Graph, o Options) (*Engine, error) {
	var pt *graph.Partitioning
	var err error
	if o.Partitioning != nil {
		if o.K != 0 && o.K != o.Partitioning.K {
			return nil, fmt.Errorf("dsr: Options.K = %d conflicts with Partitioning.K = %d", o.K, o.Partitioning.K)
		}
		if len(o.Partitioning.Part) != g.NumVertices() {
			return nil, fmt.Errorf("dsr: partitioning covers %d vertices, graph has %d", len(o.Partitioning.Part), g.NumVertices())
		}
		labels := o.Partitioning.Part
		pt, err = graph.PartitionWith(g, o.Partitioning.K, func(v graph.VertexID, _, _ int) int32 { return labels[v] })
	} else {
		p := o.Partitioner
		if p == nil {
			p = graph.Hash()
		}
		pt, err = p.Partition(g, o.K)
	}
	if err != nil {
		return nil, err
	}
	subs, _ := partition.Extract(g, pt)
	shards := make([]*shard.Shard, len(subs))
	for i, s := range subs {
		shards[i] = shard.New(i, s)
	}
	lb := shard.NewLoopback(shards)
	e, err := connect(context.Background(), lb, pt.K, g.NumVertices(), telemetry{
		reg: o.Metrics, log: o.Log, slow: o.SlowQuery,
	})
	if err != nil {
		lb.Close()
		return nil, err
	}
	return e, nil
}

// ClusterSpec describes an existing fleet of shard servers for Connect.
// It carries addresses and optional expectations — no graph: everything
// structural comes from the fleet itself.
type ClusterSpec struct {
	// Groups lists one address spec per partition, in partition order.
	// Groups[i] may name several interchangeable replica servers
	// separated by '|' ("host1:7000|host2:7000"); with replicas the
	// coordinator routes each round to a healthy one, retries on a
	// sibling when a replica fails mid-query, and redials dead replicas,
	// so a partition is only unavailable when every replica is down.
	Groups []string
	// ExpectGraph, if non-zero, pins the graph fingerprint
	// (graph.Fingerprint): any shard built from a different edge set is
	// refused at dial time. Zero trusts the fleet's own cross-check.
	ExpectGraph uint64
	// ExpectDigest, if non-zero, pins the partitioning digest
	// (graph.Partitioning.Digest) the same way.
	ExpectDigest uint64
	// ReconnectEvery is the background redial cadence for dead replicas
	// (replicated deployments only): 0 means the default, negative
	// disables background reconnection (dead replicas are then only
	// redialed on demand, when a round needs them).
	ReconnectEvery time.Duration
	// Log, if non-nil, receives human-readable connect progress — one
	// line per shard summary fetched, one for the stitched result — and
	// slow-query traces after connect.
	Log *obs.Logger
	// Metrics, if non-nil, receives coordinator and transport telemetry
	// (see the catalog in README.md): query latency histograms,
	// per-partition RPC counters, replica retry/failover/redial counts.
	Metrics *obs.Registry
	// SlowQuery, if positive, logs a structured span trace (at WARN) for
	// every batch that takes longer end to end. 0 disables.
	SlowQuery time.Duration
	// Hedge configures hedged shard requests: when a round waits past a
	// high quantile of a partition's usual latency, the batch is re-sent
	// to an idle sibling replica and the first reply wins. Requires
	// replica groups; ignored (with a warning) otherwise.
	Hedge HedgeOptions
}

// Connect joins an existing shard fleet and builds the graph-free
// coordinator over it. The coordinator never sees the graph: shard
// identity (vertex count, graph fingerprint, partitioning digest) comes
// from the TCP handshake, the boundary structure from the summaries
// every shard ships on request, and the k summaries are stitched into
// the boundary graph locally. Shards that disagree with each other
// about the deployment are refused with a *MismatchError.
//
// ctx bounds connecting — dialing, handshakes, and the summary fetch —
// and cancels in-flight redials when the engine is closed; it does not
// bound later queries.
func Connect(ctx context.Context, spec ClusterSpec) (*Engine, error) {
	if len(spec.Groups) == 0 {
		return nil, fmt.Errorf("dsr: no shard addresses")
	}
	groups, err := shard.ParseGroups(spec.Groups)
	if err != nil {
		return nil, err
	}
	replicated := false
	for _, grp := range groups {
		if len(grp) > 1 {
			replicated = true
			break
		}
	}
	var tr shard.Transport
	if replicated {
		tr, err = shard.DialReplicated(ctx, groups, -1, spec.ExpectGraph, spec.ExpectDigest,
			shard.ReplicatedOptions{ReconnectEvery: spec.ReconnectEvery, Metrics: spec.Metrics})
	} else {
		// Single-replica deployments keep the plain per-shard connection:
		// same failure semantics, no per-submit goroutine. Dial the
		// parsed (trimmed) addresses, not the raw specs.
		single := make([]string, len(groups))
		for i, grp := range groups {
			single[i] = grp[0]
		}
		tr, err = shard.Dial(ctx, single, -1, spec.ExpectGraph, spec.ExpectDigest)
	}
	if err != nil {
		return nil, err
	}
	if c, ok := tr.(*shard.Client); ok {
		c.Instrument(spec.Metrics)
	}
	e, err := connect(ctx, tr, len(groups), -1, telemetry{
		reg: spec.Metrics, log: spec.Log, slow: spec.SlowQuery, hedge: spec.Hedge,
	})
	if err != nil {
		tr.Close()
		return nil, err
	}
	return e, nil
}

// ConnectTransport builds the coordinator over an already-constructed
// transport — the hook for embedders (the serving layer's harnesses,
// chaos rigs) that assemble their own replica fleets in process via
// shard.NewReplicated or shard.NewLoopback. k is the partition count tr
// serves; n >= 0 pins the global vertex count, n < 0 derives it from
// the shards' handshake identities (which fails for transports whose
// replicas present none). Only o's telemetry and Hedge fields are
// consulted. On success the engine owns tr (Close closes it); on error
// the caller still owns it.
func ConnectTransport(ctx context.Context, tr shard.Transport, k, n int, o Options) (*Engine, error) {
	return connect(ctx, tr, k, n, telemetry{
		reg: o.Metrics, log: o.Log, slow: o.SlowQuery, hedge: o.Hedge,
	})
}

// telemetry bundles the observability and hedging knobs threaded from
// Build/Connect into the engine. The zero value disables everything.
type telemetry struct {
	reg   *obs.Registry
	log   *obs.Logger
	slow  time.Duration
	hedge HedgeOptions
}

// connect is the shared back half of Build and Connect: fetch every
// shard's boundary summary over tr, cross-check the fleet's handshake
// identities against each other, stitch, and wire the engine. n >= 0
// pins the global vertex count (transports without a handshake, e.g.
// in-process shards); n < 0 derives it from the hellos.
func connect(ctx context.Context, tr shard.Transport, k, n int, tel telemetry) (*Engine, error) {
	infos := make([]shard.SummaryInfo, k)
	errs := make([]error, k)
	sumFetch := tel.reg.Histogram("dsr_summary_fetch_ns")
	parallelParts(k, func(p int) {
		t0 := time.Now()
		infos[p], errs[p] = tr.Summary(ctx, p)
		sumFetch.ObserveSince(t0)
		if errs[p] == nil {
			s := &infos[p].Summary
			tel.log.Infof("shard %d/%d: summary received (%d boundary vertices, %d summary edges, %d cross edges)",
				p+1, k, len(s.Boundary), len(s.Edges), len(s.Cross))
		}
	})
	for p, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("dsr: shard %d summary: %w", p, err)
		}
	}

	// Cross-check: every shard that presented a handshake identity must
	// agree with every other. Shards without one (in-process replicas
	// report a zero Hello) opt out; zero fingerprints/digests mean "not
	// computed" and skip that field, mirroring the handshake itself.
	ref := -1
	for p := range infos {
		h := infos[p].Hello
		if h.NumShards == 0 {
			continue
		}
		if ref < 0 {
			ref = p
			continue
		}
		rh := infos[ref].Hello
		switch {
		case h.NumVertices != rh.NumVertices:
			return nil, &MismatchError{Field: "vertex count", PartA: ref, PartB: p,
				A: uint64(rh.NumVertices), B: uint64(h.NumVertices)}
		case h.Graph != 0 && rh.Graph != 0 && h.Graph != rh.Graph:
			return nil, &MismatchError{Field: "graph fingerprint", PartA: ref, PartB: p, A: rh.Graph, B: h.Graph}
		case h.Partitioning != 0 && rh.Partitioning != 0 && h.Partitioning != rh.Partitioning:
			return nil, &MismatchError{Field: "partitioning digest", PartA: ref, PartB: p, A: rh.Partitioning, B: h.Partitioning}
		}
	}
	if n < 0 {
		if ref < 0 {
			return nil, fmt.Errorf("dsr: no shard reported its identity; cannot derive the vertex count")
		}
		n = int(infos[ref].Hello.NumVertices)
	}
	// Pin the verified fleet identity on the transport, so every future
	// redial of an individual replica is held to what the fleet reported
	// at connect time — not just to what the caller chose to expect.
	if r, ok := tr.(*shard.Replicated); ok && ref >= 0 {
		r.Pin(shard.Expect{
			NumVertices: n,
			Graph:       infos[ref].Hello.Graph,
			Part:        infos[ref].Hello.Partitioning,
		})
	}
	sums := make([]wire.Summary, k)
	for p := range infos {
		sums[p] = infos[p].Summary
	}
	bg, err := stitchBoundary(n, sums)
	if err != nil {
		return nil, err
	}
	tel.log.Infof("boundary graph stitched: %d vertices, %d edges, %d coordinator-resident bytes",
		len(bg.verts), len(bg.arena), bg.residentBytes())
	return newEngine(n, k, bg, tr, tel), nil
}

// newEngine wires a coordinator over an already-stitched boundary graph
// and transport.
func newEngine(n, k int, bg *boundaryGraph, tr shard.Transport, tel telemetry) *Engine {
	e := &Engine{
		n:      n,
		k:      k,
		bg:     bg,
		tr:     tr,
		replyc: make(chan shard.Reply, k),
		tset:   &vset{},
		sset:   &vset{},
		bvisit: partition.NewMarks(len(bg.verts)),
		bgoal:  partition.NewMarks(len(bg.verts)),
		met:    newEngineMetrics(tel.reg, k),
		slow:   tel.slow,
		log:    tel.log,

		wantTiming: tel.reg != nil || tel.slow > 0,
	}
	if tel.hedge.Enabled {
		if ht, ok := tr.(hedgeTransport); ok {
			e.hedge = newHedgeState(ht, k, tel.hedge)
			e.hedgec = make(chan shard.Reply, k)
		} else {
			tel.log.Warnf("hedged requests enabled but the transport has no sibling replicas; hedging disabled")
		}
	}
	e.met.partitions.Set(int64(k))
	e.met.boundaryVerts.Set(int64(len(bg.verts)))
	e.met.residentBytes.Set(int64(bg.residentBytes()))
	return e
}

// Health reports the per-partition replica health of a replicated
// deployment — live replica counts and cumulative retry, failover, and
// redial totals since connect. It returns nil for non-replicated
// transports (in-process engines, single-replica TCP): there is no
// failover machinery to report on.
func (e *Engine) Health() []shard.PartitionHealth {
	if r, ok := e.tr.(*shard.Replicated); ok {
		return r.Health()
	}
	return nil
}

// Endpoints describes the engine's shard endpoints — one entry per
// (partition, replica) with the dialed address, the metrics address
// each shard announced at handshake, and liveness. Nil for transports
// that have no endpoints to describe (in-process engines); the fleet
// metrics aggregator feeds on this.
func (e *Engine) Endpoints() []shard.EndpointInfo {
	if t, ok := e.tr.(interface{ Endpoints() []shard.EndpointInfo }); ok {
		return t.Endpoints()
	}
	return nil
}

// NumPartitions returns the partition count.
func (e *Engine) NumPartitions() int { return e.k }

// NumBoundary returns the number of vertices in the boundary graph.
func (e *Engine) NumBoundary() int { return len(e.bg.verts) }

// ResidentBytes reports the coordinator's per-graph resident footprint:
// the stitched boundary graph. It scales with boundary size only —
// growing partition interiors (vertices and edges that never cross a
// partition border) leaves it unchanged, which is the point of the
// graph-free coordinator.
func (e *Engine) ResidentBytes() int { return e.bg.residentBytes() }

// Close shuts the transport down deterministically: in-process shard
// goroutines have exited (and TCP connections are closed with their
// reader goroutines joined, in-flight redials cancelled) by the time it
// returns. The engine must not be queried after Close.
func (e *Engine) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.closed = true
	e.tr.Close()
}

// Query reports whether any source in S reaches any target in T
// (reachability is reflexive: a vertex reaches itself). Vertices outside
// the graph are ignored; an empty side yields false. Query panics if the
// engine has been closed — a silent false would be indistinguishable
// from a genuine negative answer — and on a transport failure that
// leaves the answer unknown (only possible on distributed engines; use
// QueryBatchErr for recoverable error handling there). A lost partition
// whose absence the query survived — it was proven reachable by the
// partitions that did answer — still returns normally.
func (e *Engine) Query(S, T []graph.VertexID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.single[0] = Query{S: S, T: T}
	err := e.queryBatch(e.single[:])
	e.single[0] = Query{}
	if err != nil {
		var be *BatchError
		if !errors.As(err, &be) || be.Failed[0] {
			panic(fmt.Sprintf("dsr: transport failure: %v", err))
		}
	}
	return e.qs[0].ans
}

// QueryBatch answers many queries in one shard round-trip each way: all
// local searches for the whole batch ship to each shard as a single
// task batch, and every boundary fan-in is answered before replying.
// Batching amortizes per-round transport overhead (one RPC per shard
// instead of one per query per shard) and is the intended way to drive
// distributed engines. It panics on closed engines and on any failure
// that leaves an answer unknown, like Query; QueryBatchErr returns the
// error instead.
func (e *Engine) QueryBatch(queries []Query) []bool {
	out, err := e.QueryBatchErr(queries)
	if err != nil {
		var be *BatchError
		if !errors.As(err, &be) || slices.Contains(be.Failed, true) {
			panic(fmt.Sprintf("dsr: transport failure: %v", err))
		}
	}
	return out
}

// QueryBatchErr is QueryBatch with transport failures reported as an
// error instead of a panic, and with partial-failure semantics: losing
// a partition fails only the queries that needed it, not the batch.
//
// When the error is a *BatchError, the returned answers are still
// valid for every query i with err.Failed[i] == false — queries whose
// seeds the surviving partitions fully covered, plus queries a dead
// partition could not change (a local hit or boundary path already
// proved them true; missing data only ever hides paths). Failed queries
// have no trustworthy answer and read false. A partition counts as dead
// whenever it delivered no usable reply, whether the connection dropped
// or the server reported an error; with replicas, only after every
// replica failed. Any other non-nil error — malformed content in a
// reply that did arrive, or a fleet that fails to cover the batch's
// seeds without any partition erroring — invalidates the whole batch
// and the answers are nil.
func (e *Engine) QueryBatchErr(queries []Query) ([]bool, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	err := e.queryBatch(queries)
	if err != nil {
		var be *BatchError
		if !errors.As(err, &be) {
			return nil, err
		}
	}
	out := make([]bool, len(queries))
	for i := range out {
		out[i] = e.qs[i].ans
	}
	return out, err
}

// queryBatch runs one full coordinator round for the batch, leaving the
// per-query answers in e.qs[i].ans, and wraps it in telemetry: the span
// trace accumulates into engine-owned scratch (no allocation at steady
// state), batch counters and the latency histogram are updated, and a
// batch slower than the SlowQuery threshold logs its trace at WARN.
// Caller holds e.mu.
func (e *Engine) queryBatch(queries []Query) error {
	if e.closed {
		panic("dsr: query on closed Engine")
	}
	e.trace.Begin()
	root := e.trace.Add("query_batch", 0, 0, 0, -1, len(queries))
	err := e.runBatch(queries)
	total := e.trace.Since()
	e.trace.SetDur(root, total)
	e.met.batches.Inc()
	e.met.queries.Add(uint64(len(queries)))
	e.met.batchSize.Observe(int64(len(queries)))
	e.met.latency.Observe(int64(total))
	if err != nil {
		var be *BatchError
		if errors.As(err, &be) {
			for _, f := range be.Failed {
				if f {
					e.met.failed.Inc()
				}
			}
		} else {
			// The whole round was poisoned: no answer is trustworthy.
			e.met.failed.Add(uint64(len(queries)))
		}
	}
	if e.slow > 0 && total > e.slow {
		e.met.slow.Inc()
		if e.log.Enabled(obs.LevelWarn) {
			e.log.Warnf("slow batch: %d queries took %v (threshold %v)\n%s",
				len(queries), total, e.slow, e.trace.String())
		}
	}
	return err
}

// runBatch is the coordinator round itself: assembly, broadcast, fan-in
// drain, boundary finish. Caller holds e.mu.
func (e *Engine) runBatch(queries []Query) error {
	n := graph.VertexID(e.n)
	for len(e.qs) < len(queries) {
		e.qs = append(e.qs, qstate{})
	}
	if e.stale {
		// Stragglers from the previous hedged round still hold the old
		// scratch: their submit goroutines may yet read the old task
		// arena and will deliver into the old (abandoned, buffered)
		// channels. Start this round on fresh memory and let them finish
		// against the old.
		e.stale = false
		e.tasks, e.arena = nil, nil
		e.replyc = make(chan shard.Reply, e.k)
		e.hedgec = make(chan shard.Reply, e.k)
	}
	e.tasks = e.tasks[:0]
	e.arena = e.arena[:0]

	asmStart := e.trace.Since()
	asm := e.trace.Add("assemble", 1, asmStart, 0, -1, 0)

	// Assembly: deduplicate every query's S and T into the shared seed
	// arena and emit one Forward and one Backward task per undecided
	// query, with global vertex IDs. There is no per-partition grouping
	// — the coordinator has no placement data; shards skip the seeds
	// they don't own. Task slices alias the arena; later appends may
	// grow it, but the abandoned backing array keeps the already-written
	// seeds, so earlier slices stay valid.
	for i := range queries {
		q := &queries[i]
		st := &e.qs[i]
		st.seeds, st.goals = st.seeds[:0], st.goals[:0]
		st.hit, st.done, st.ans, st.failed = false, false, false, false
		st.expS, st.expT, st.gotS, st.gotT = 0, 0, 0, 0
		e.tset.begin(len(q.T))
		tOff := len(e.arena)
		for _, t := range q.T {
			if t >= n || !e.tset.add(int32(t)) {
				continue
			}
			e.arena = append(e.arena, int32(t))
		}
		tSl := e.arena[tOff:len(e.arena):len(e.arena)]
		if len(tSl) == 0 {
			st.done = true
			continue
		}
		e.sset.begin(len(q.S))
		sOff := len(e.arena)
		for _, s := range q.S {
			if s >= n || !e.sset.add(int32(s)) {
				continue
			}
			if e.tset.has(int32(s)) {
				st.done, st.ans = true, true
				break
			}
			e.arena = append(e.arena, int32(s))
		}
		if st.done {
			continue
		}
		sSl := e.arena[sOff:len(e.arena):len(e.arena)]
		if len(sSl) == 0 {
			st.done = true
			continue
		}
		e.tasks = append(e.tasks,
			wire.Task{Kind: wire.Forward, Query: uint32(i), Seeds: sSl, Targets: tSl},
			wire.Task{Kind: wire.Backward, Query: uint32(i), Seeds: tSl})
		st.expS, st.expT = len(sSl), len(tSl)
	}
	e.trace.SetDur(asm, e.trace.Since()-asmStart)
	e.trace.SetN(asm, len(e.tasks))

	// Fan out: broadcast the one task batch to every shard. Which shard
	// owns which seed is the shards' business.
	nsub := 0
	var hdr wire.BatchHeader
	var tsub time.Time
	var roundStart time.Duration
	round := -1
	if len(e.tasks) > 0 {
		e.batchID++
		hdr = wire.BatchHeader{Trace: e.wantTiming, Batch: e.batchID}
		tsub = time.Now()
		roundStart = e.trace.Since()
		round = e.trace.Add("round", 1, roundStart, 0, -1, len(e.tasks))
		for p := 0; p < e.k; p++ {
			e.met.rpcs[p].Inc()
			e.tr.Submit(p, hdr, e.tasks, e.replyc)
		}
		nsub = e.k
	}

	// Fan in: exits reached from S seed each query's boundary search;
	// entries that locally reach T are its goals; Owned counts feed the
	// coverage ledger. The reply channel is always drained in full — the
	// shared arena and shard result buffers must be quiescent before the
	// next round rewrites them — and failures are collected rather than
	// aborting the drain. A partition that answered nothing is a partial
	// failure; which queries that actually fails falls out of coverage
	// below. Malformed content inside a reply that did arrive (a shard
	// disagreeing about the batch shape or the boundary set) poisons the
	// whole round via terr: such a shard cannot be trusted retroactively.
	var perr []PartitionError
	var terr error
	if nsub > 0 && e.hedge != nil {
		perr, terr = e.drainHedged(queries, hdr, tsub, roundStart)
	} else {
		perr, terr = e.drainPlain(queries, nsub, tsub, roundStart)
	}
	if round >= 0 {
		wait := e.trace.Since() - roundStart
		e.trace.SetDur(round, wait)
		e.met.faninWait.Observe(int64(wait))
		e.met.rounds.Inc()
	}
	if terr != nil {
		return terr
	}

	// Final pass: one BFS over the compressed boundary graph per
	// undecided query, then the coverage verdict. Queries that lost a
	// partition still run on whatever the survivors reported: results
	// can only be missing, never wrong, so a local hit or a boundary
	// path proves the query true regardless of shortfall — only a
	// `false` built on incomplete coverage is untrustworthy and fails.
	finStart := e.trace.Since()
	fin := e.trace.Add("finish", 1, finStart, 0, -1, 0)
	searches := 0
	anyFailed := false
	for i := range queries {
		st := &e.qs[i]
		if st.done {
			continue
		}
		if st.hit {
			st.ans = true
			continue
		}
		if len(st.seeds) > 0 && len(st.goals) > 0 {
			searches++
			if e.boundaryReach(st.seeds, st.goals) {
				st.ans = true
				continue
			}
		}
		if st.gotS < st.expS || st.gotT < st.expT {
			st.failed = true
			anyFailed = true
		}
	}
	finDur := e.trace.Since() - finStart
	e.trace.SetDur(fin, finDur)
	e.trace.SetN(fin, searches)
	e.met.finish.Observe(int64(finDur))
	if anyFailed && perr == nil {
		// Every shard answered, yet some seed was owned by none of them:
		// the fleet disagrees with itself about placement. That is not a
		// per-partition outage, it poisons the whole round.
		return fmt.Errorf("dsr: fleet does not cover the batch's seeds (inconsistent partitioning across shards)")
	}
	if perr != nil {
		slices.SortFunc(perr, func(a, b PartitionError) int { return a.Partition - b.Partition })
		failed := make([]bool, len(queries))
		for i := range queries {
			failed[i] = e.qs[i].failed
		}
		return &BatchError{Partitions: perr, Failed: failed}
	}
	return nil
}

// drainPlain is the unhedged fan-in: one reply per submitted partition,
// drained in arrival order. Caller holds e.mu.
func (e *Engine) drainPlain(queries []Query, nsub int, tsub time.Time, roundStart time.Duration) ([]PartitionError, error) {
	var perr []PartitionError
	var terr error
	for r := 0; r < nsub; r++ {
		rep := <-e.replyc
		rpcDur := time.Since(tsub)
		e.met.rpcLat[rep.Shard].Observe(int64(rpcDur))
		if rep.Err != nil {
			e.met.rpcErrs[rep.Shard].Inc()
			e.trace.Add("rpc", 2, roundStart, rpcDur, rep.Shard, 0)
			perr = append(perr, PartitionError{Partition: rep.Shard, Err: rep.Err})
			continue
		}
		e.observeReply(&rep, rpcDur, roundStart)
		if err := e.absorb(queries, &rep); err != nil {
			terr = err
		}
	}
	return perr, terr
}

// partRound is one partition's ledger within a hedged fan-in round.
type partRound struct {
	done bool  // a successful reply (primary or hedge) was absorbed
	err  error // first failure seen; cleared once done
}

// drainHedged is the fan-in with hedged requests armed: it drains
// primary replies as usual, but if the round outlasts the hedge
// deadline (a high quantile of primary latency — see hedgeState.delay)
// every partition still outstanding gets its batch re-sent to an idle
// sibling replica, and per partition the first successful reply wins.
// Duplicates are dropped unabsorbed: local searches are idempotent
// reads, so the loser carries the same content, and replies own their
// memory (the replicated transport copies results out of connection
// arenas), so an unread duplicate can't clobber anything.
//
// The round returns the moment every partition is answered — that is
// the entire point of hedging: the coordinator must not wait for a
// straggling (or hung) replica once a sibling's answer is in hand.
// Replies still owed at that point become stragglers: they keep the
// round's buffered channels and task memory (e.stale makes the next
// round start fresh), their replicas stay marked busy inside the
// transport until they actually answer, and their content is never
// read. A partition only fails the round when neither its primary
// chain nor its hedge produced a reply. Caller holds e.mu.
func (e *Engine) drainHedged(queries []Query, hdr wire.BatchHeader, tsub time.Time, roundStart time.Duration) ([]PartitionError, error) {
	if cap(e.pround) < e.k {
		e.pround = make([]partRound, e.k)
	}
	pr := e.pround[:e.k]
	for p := range pr {
		pr[p] = partRound{}
	}
	var terr error
	remaining := e.k // primary replies still owed
	hedges := 0      // hedged replies still owed
	pending := e.k   // partitions not yet answered
	timer := time.NewTimer(e.hedge.delay())
	defer timer.Stop()
	timerC := timer.C
	var thsub time.Time // when the hedges were sent

	handle := func(rep *shard.Reply, hedged bool) {
		p := rep.Shard
		t0 := tsub
		if hedged {
			t0 = thsub
		}
		rpcDur := time.Since(t0)
		if rep.Err != nil {
			e.met.rpcErrs[p].Inc()
			e.trace.Add("rpc", 2, roundStart, rpcDur, p, 0)
			if !pr[p].done && pr[p].err == nil {
				pr[p].err = rep.Err
			}
			return
		}
		if !hedged {
			// Only primary round trips feed the RPC histograms and the
			// hedge deadline estimator: a hedge measures a sibling from a
			// later start, not the partition's true latency.
			e.met.rpcLat[p].Observe(int64(rpcDur))
			e.hedge.observe(p, rpcDur)
		}
		if pr[p].done {
			e.trace.Add("rpc", 2, roundStart, rpcDur, p, 0)
			return // race lost; identical duplicate, drop it
		}
		e.observeReply(rep, rpcDur, roundStart)
		if err := e.absorb(queries, rep); err != nil {
			terr = err
		}
		pr[p].done = true
		pr[p].err = nil
		pending--
		if hedged {
			e.met.hedgeWins[p].Inc()
		}
	}

	for pending > 0 && (remaining > 0 || hedges > 0) {
		select {
		case rep := <-e.replyc:
			remaining--
			handle(&rep, false)
		case rep := <-e.hedgec:
			hedges--
			handle(&rep, true)
		case <-timerC:
			timerC = nil // the deadline fires at most once per round
			thsub = time.Now()
			for p := 0; p < e.k; p++ {
				if !pr[p].done {
					e.met.hedges[p].Inc()
					e.hedge.tr.SubmitHedge(p, hdr, e.tasks, e.hedgec)
					hedges++
				}
			}
		}
	}
	if remaining > 0 || hedges > 0 {
		e.stale = true // stragglers own this round's scratch now
	}
	var perr []PartitionError
	for p := range pr {
		if !pr[p].done && pr[p].err != nil {
			perr = append(perr, PartitionError{Partition: p, Err: pr[p].err})
		}
	}
	return perr, terr
}

// observeReply records a successful reply's frontier and timing
// telemetry. Caller holds e.mu.
func (e *Engine) observeReply(rep *shard.Reply, rpcDur time.Duration, roundStart time.Duration) {
	frontier := 0
	for ri := range rep.Results {
		frontier += len(rep.Results[ri].Boundary)
	}
	e.met.frontier.Observe(int64(frontier))
	e.trace.Add("rpc", 2, roundStart, rpcDur, rep.Shard, frontier)
	if rep.HasTiming {
		// Split the observed round trip into shard compute and
		// everything else (wire time, queueing in the transport, the
		// fan-in wait itself). The server's self-measured total is
		// clamped to the enclosing RPC duration: the two clocks are
		// different machines', and a server span exceeding its RPC
		// span would make the trace unreadable nonsense.
		server := time.Duration(rep.Timing.Total())
		if server > rpcDur {
			server = rpcDur
		}
		net := rpcDur - server
		e.met.rpcServer[rep.Shard].Observe(int64(server))
		e.met.rpcNet[rep.Shard].Observe(int64(net))
		e.trace.Add("server", 3, roundStart, server, rep.Shard, 0)
		e.trace.Add("net", 3, roundStart, net, rep.Shard, 0)
	}
}

// absorb merges one successful reply's content into the round's
// per-query state: Owned counts into the coverage ledger, local hits,
// and reached boundary vertices into each query's seed/goal lists. The
// returned error is the round-poisoning kind — a shard disagreeing
// about the batch identity, its shape, or the boundary set cannot be
// trusted retroactively. Caller holds e.mu.
func (e *Engine) absorb(queries []Query, rep *shard.Reply) error {
	if rep.Batch != 0 && rep.Batch != e.batchID {
		return fmt.Errorf("dsr: shard %d echoed batch %d during batch %d", rep.Shard, rep.Batch, e.batchID)
	}
	if len(rep.Results) != len(e.tasks) {
		return fmt.Errorf("dsr: shard %d answered %d results for a %d-task batch", rep.Shard, len(rep.Results), len(e.tasks))
	}
	var terr error
	for ri := range rep.Results {
		res := &rep.Results[ri]
		if int(res.Query) >= len(queries) {
			terr = fmt.Errorf("dsr: shard %d answered query %d of a %d-query batch", rep.Shard, res.Query, len(queries))
			continue
		}
		st := &e.qs[res.Query]
		// Coverage first, even when the answer is already known: the
		// ledger must reflect every reply that arrived.
		if res.Kind == wire.Forward {
			st.gotS += int(res.Owned)
		} else {
			st.gotT += int(res.Owned)
		}
		if st.hit {
			continue // answer already known; skip the moot bookkeeping
		}
		if res.Hit {
			st.hit = true
			continue
		}
		for _, v := range res.Boundary {
			d, ok := e.bg.dense(v)
			if !ok {
				terr = fmt.Errorf("dsr: shard %d reported non-boundary vertex %d", rep.Shard, v)
				break
			}
			if res.Kind == wire.Forward {
				st.seeds = append(st.seeds, d)
			} else {
				st.goals = append(st.goals, d)
			}
		}
	}
	return terr
}

// boundaryReach runs the boundary-graph BFS from seeds and reports
// whether it touches any goal. The queue is saved back on every return
// path so its capacity survives early true-returns.
func (e *Engine) boundaryReach(seeds, goals []int32) bool {
	e.bgoal.Reset()
	for _, d := range goals {
		e.bgoal.Mark(d)
	}
	e.bvisit.Reset()
	queue := e.bqueue[:0]
	defer func() { e.bqueue = queue }()
	for _, v := range seeds {
		if e.bgoal.Seen(v) {
			return true
		}
		if e.bvisit.Mark(v) {
			queue = append(queue, v)
		}
	}
	for head := 0; head < len(queue); head++ {
		for _, w := range e.bg.row(queue[head]) {
			if e.bvisit.Mark(w) {
				if e.bgoal.Seen(w) {
					return true
				}
				queue = append(queue, w)
			}
		}
	}
	return false
}
