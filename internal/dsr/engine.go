// Package dsr implements distributed set reachability: given a directed
// graph partitioned into k parts, Query(S, T) answers whether any source
// in S reaches any target in T. The engine follows the DSR decomposition
// from Gurajada & Theobald (SIGMOD 2016):
//
//  1. at build time each partition is compressed into boundary-to-boundary
//     summary edges, which are stitched with the raw cross-partition edges
//     into a global boundary graph;
//  2. at query time, per-partition workers run local searches (forward
//     from S, backward from T) in parallel, and the coordinator finishes
//     with a single search over the small boundary graph.
//
// Any s->t path decomposes as s ~> x0 -> e1 ~> x1 -> ... ek ~> t, where
// each ~> stays inside one partition and each -> is a cross-partition
// edge. The forward local search finds x0, summary edges cover every
// ei ~> xi hop, cross edges cover xi -> e(i+1), and the backward local
// search marks ek; so the boundary search is exact, not approximate.
package dsr

import (
	"fmt"
	"runtime"
	"slices"
	"sync"

	"dsr/internal/graph"
	"dsr/internal/partition"
	"dsr/internal/scc"
)

// boundaryGraph is the compressed global view: vertices are the boundary
// vertices of the partitioned graph (dense-reindexed), edges are the
// per-partition entry->exit summaries plus the raw cross-partition edges.
type boundaryGraph struct {
	dense []int32 // global vertex -> dense boundary id, -1 for non-boundary
	adj   [][]int32
}

func buildBoundaryGraph(g *graph.Graph, pt *graph.Partitioning, subs []*partition.Subgraph) *boundaryGraph {
	bg := &boundaryGraph{dense: make([]int32, g.NumVertices())}
	for v := 0; v < g.NumVertices(); v++ {
		if pt.IsBoundary(graph.VertexID(v)) {
			bg.dense[v] = int32(len(bg.adj))
			bg.adj = append(bg.adj, nil)
		} else {
			bg.dense[v] = -1
		}
	}
	add := func(u, v graph.VertexID) {
		du := bg.dense[u]
		bg.adj[du] = append(bg.adj[du], bg.dense[v])
	}
	// Each partition's summary is independent: compress them with a
	// bounded pool, then stitch single-threaded. Every pool goroutine
	// owns one Scratch sized for the largest partition and reuses it
	// (BFS marks, scc workspace) across every partition it compresses.
	summaries := make([][][2]graph.VertexID, len(subs))
	maxN := 0
	for _, s := range subs {
		if n := s.NumVertices(); n > maxN {
			maxN = n
		}
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < min(runtime.GOMAXPROCS(0), len(subs)); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := partition.NewScratch(maxN)
			for p := range work {
				summaries[p] = subs[p].Summary(sc)
			}
		}()
	}
	for p := range subs {
		work <- p
	}
	close(work)
	wg.Wait()
	for _, pairs := range summaries {
		for _, pair := range pairs {
			add(pair[0], pair[1])
		}
	}
	g.Edges(func(u, v graph.VertexID) {
		if pt.Part[u] != pt.Part[v] {
			add(u, v)
		}
	})
	// Dedupe adjacency (multi-edges and entry==exit self-pairs add noise).
	for i, nbrs := range bg.adj {
		slices.Sort(nbrs)
		bg.adj[i] = slices.Compact(nbrs)
	}
	return bg
}

// taskKind selects the local search a worker runs.
type taskKind uint8

const (
	taskForward  taskKind = iota // BFS from S∩p; report local hits and reached exits
	taskBackward                 // reverse BFS from T∩p; report entries that reach T
)

type task struct {
	kind    taskKind
	seeds   []int32 // local IDs
	targets []int32 // local IDs of T∩p, only for taskForward
	reply   chan<- result
}

type result struct {
	kind     taskKind
	hit      bool             // a target was reached without leaving the partition
	boundary []graph.VertexID // reached exits (forward) or reaching entries (backward)
}

// worker owns one partition's subgraph and scratch space, and serves
// local-search tasks from its channel. This is the seam a later PR turns
// into an RPC shard: the coordinator only ever exchanges seed sets and
// boundary-vertex sets with it.
//
// Local searches run over the partition's SCC condensation, not its
// vertices: a BFS visits each component once, so a partition that is one
// big cycle costs O(1) queue work instead of O(V). Vertex-level answers
// (local hits, reached boundary vertices) are read back through the
// component member lists, which enumerate exactly the reachable
// vertices.
//
// All scratch (component marks, queue, result buffers) is owned by the
// worker and reused across tasks with the epoch trick, so steady-state
// queries allocate nothing here. Reuse is safe because the coordinator
// fully drains every query's replies before the next query can send.
type worker struct {
	sub     *partition.Subgraph
	cond    *scc.Condensation
	isEntry []bool
	isExit  []bool
	cvisit  *partition.Marks // component-level BFS visited marks
	cqueue  []int32          // component-level BFS queue
	fbuf    []graph.VertexID // result buffer for forward tasks
	bbuf    []graph.VertexID // result buffer for backward tasks
	tasks   chan task
}

func newWorker(sub *partition.Subgraph) *worker {
	cond := sub.Condensation(nil) // cached from the summary build
	w := &worker{
		sub:     sub,
		cond:    cond,
		isEntry: make([]bool, sub.NumVertices()),
		isExit:  make([]bool, sub.NumVertices()),
		cvisit:  partition.NewMarks(cond.N),
		tasks:   make(chan task, 2), // at most one forward + one backward per query
	}
	for _, e := range sub.Entries {
		w.isEntry[e] = true
	}
	for _, x := range sub.Exits {
		w.isExit[x] = true
	}
	return w
}

// bfs runs a component-level BFS from the components of the given local
// seed vertices, forward or backward over the condensation DAG, and
// returns the visited components. The returned slice aliases w.cqueue
// and the visit marks stay valid until the next call.
func (w *worker) bfs(seeds []int32, forward bool) []int32 {
	w.cvisit.Reset()
	q := w.cqueue[:0]
	for _, v := range seeds {
		if c := w.cond.Comp[v]; w.cvisit.Mark(c) {
			q = append(q, c)
		}
	}
	for head := 0; head < len(q); head++ {
		var nbrs []int32
		if forward {
			nbrs = w.cond.Out(q[head])
		} else {
			nbrs = w.cond.In(q[head])
		}
		for _, d := range nbrs {
			if w.cvisit.Mark(d) {
				q = append(q, d)
			}
		}
	}
	w.cqueue = q
	return q
}

func (w *worker) run() {
	for t := range w.tasks {
		res := result{kind: t.kind}
		switch t.kind {
		case taskForward:
			comps := w.bfs(t.seeds, true)
			for _, v := range t.targets {
				if w.cvisit.Seen(w.cond.Comp[v]) {
					res.hit = true
					break
				}
			}
			buf := w.fbuf[:0]
			for _, c := range comps {
				for _, v := range w.cond.Members(c) {
					if w.isExit[v] {
						buf = append(buf, w.sub.GlobalID(v))
					}
				}
			}
			w.fbuf, res.boundary = buf, buf
		case taskBackward:
			comps := w.bfs(t.seeds, false)
			buf := w.bbuf[:0]
			for _, c := range comps {
				for _, v := range w.cond.Members(c) {
					if w.isEntry[v] {
						buf = append(buf, w.sub.GlobalID(v))
					}
				}
			}
			w.bbuf, res.boundary = buf, buf
		}
		t.reply <- res
	}
}

// Engine answers set-reachability queries over a partitioned graph. It
// does not retain the input *graph.Graph: after construction every edge
// lives in the per-partition subgraphs and the boundary graph, so the
// original CSR can be garbage-collected.
type Engine struct {
	n       int // vertex count of the source graph
	pt      *graph.Partitioning
	local   []int32
	bg      *boundaryGraph
	workers []*worker

	mu     sync.Mutex // serializes queries: workers hold per-partition scratch
	closed bool

	// Reusable per-query scratch, safe under mu. Epoch-marked arrays make
	// reuse O(1): a vertex is marked iff its entry equals the current
	// epoch. Queries fully drain the reply channel, so all of this —
	// including the seed buffers workers read from — is quiescent between
	// queries.
	reply    chan result
	tmark    *partition.Marks // global T-membership marks
	smark    *partition.Marks // global S-dedup marks
	fwdBuf   [][]int32        // per-partition S seeds (local IDs)
	bwdBuf   [][]int32        // per-partition T seeds (local IDs)
	fwdParts []int32          // partitions touched by S this query
	bwdParts []int32          // partitions touched by T this query
	sbuf     []int32          // boundary-BFS seed buffer
	bvisit   *partition.Marks // boundary-BFS visited marks
	bgoal    *partition.Marks // boundary-BFS goal marks
	bqueue   []int32          // boundary-BFS queue
}

// New builds an engine over g split into k partitions with the default
// deterministic hash partitioner.
func New(g *graph.Graph, k int) (*Engine, error) {
	pt, err := graph.HashPartition(g, k)
	if err != nil {
		return nil, err
	}
	return newEngine(g, pt), nil
}

// NewWithPartitioning builds an engine over a pre-partitioned graph.
// Only pt.K and pt.Part are consulted; the Entry/Exit boundary marks are
// recomputed from the edge set, so hand-rolled partitionings cannot
// smuggle in marks that disagree with the graph.
func NewWithPartitioning(g *graph.Graph, pt *graph.Partitioning) (*Engine, error) {
	if len(pt.Part) != g.NumVertices() {
		return nil, fmt.Errorf("dsr: partitioning covers %d vertices, graph has %d", len(pt.Part), g.NumVertices())
	}
	labels := pt.Part
	pt, err := graph.PartitionWith(g, pt.K, func(v graph.VertexID, _, _ int) int32 { return labels[v] })
	if err != nil {
		return nil, err
	}
	return newEngine(g, pt), nil
}

// newEngine trusts pt (labels in range, boundary marks consistent with
// the edges): extracts per-partition subgraphs, compresses them into the
// boundary graph, and starts one worker goroutine per partition.
func newEngine(g *graph.Graph, pt *graph.Partitioning) *Engine {
	subs, local := partition.Extract(g, pt)
	e := &Engine{
		n:      g.NumVertices(),
		pt:     pt,
		local:  local,
		bg:     buildBoundaryGraph(g, pt, subs),
		reply:  make(chan result, 2*pt.K),
		tmark:  partition.NewMarks(g.NumVertices()),
		smark:  partition.NewMarks(g.NumVertices()),
		fwdBuf: make([][]int32, pt.K),
		bwdBuf: make([][]int32, pt.K),
	}
	e.bvisit = partition.NewMarks(len(e.bg.adj))
	e.bgoal = partition.NewMarks(len(e.bg.adj))
	for _, s := range subs {
		w := newWorker(s)
		e.workers = append(e.workers, w)
		go w.run()
	}
	return e
}

// NumPartitions returns the partition count.
func (e *Engine) NumPartitions() int { return e.pt.K }

// NumBoundary returns the number of vertices in the boundary graph.
func (e *Engine) NumBoundary() int { return len(e.bg.adj) }

// Close shuts down the worker goroutines. The engine must not be queried
// after Close.
func (e *Engine) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.closed = true
	for _, w := range e.workers {
		close(w.tasks)
	}
}

// resetSeedBufs truncates the per-partition seed buffers for the next
// query. Only safe once no worker task can still be reading them.
func (e *Engine) resetSeedBufs() {
	for p := range e.fwdBuf {
		e.fwdBuf[p] = e.fwdBuf[p][:0]
		e.bwdBuf[p] = e.bwdBuf[p][:0]
	}
}

// Query reports whether any source in S reaches any target in T
// (reachability is reflexive: a vertex reaches itself). Vertices outside
// the graph are ignored; an empty side yields false. Query panics if the
// engine has been closed — a silent false would be indistinguishable
// from a genuine negative answer.
func (e *Engine) Query(S, T []graph.VertexID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		panic("dsr: Query called on closed Engine")
	}
	n := graph.VertexID(e.n)

	// Fan the query out: group S and T by partition as local seed sets,
	// using epoch marks for T membership and S dedup and reused
	// per-partition buffers instead of per-query maps.
	e.tmark.Reset()
	e.smark.Reset()
	e.fwdParts = e.fwdParts[:0]
	e.bwdParts = e.bwdParts[:0]
	for _, t := range T {
		if t >= n || !e.tmark.Mark(int32(t)) {
			continue
		}
		p := e.pt.Part[t]
		if len(e.bwdBuf[p]) == 0 {
			e.bwdParts = append(e.bwdParts, p)
		}
		e.bwdBuf[p] = append(e.bwdBuf[p], e.local[t])
	}
	if len(e.bwdParts) == 0 {
		e.resetSeedBufs()
		return false
	}
	for _, s := range S {
		// smark dedupes S the way tmark dedupes T: duplicate sources
		// would otherwise inflate the per-partition seed buffers.
		if s >= n || !e.smark.Mark(int32(s)) {
			continue
		}
		if e.tmark.Seen(int32(s)) {
			e.resetSeedBufs()
			return true
		}
		p := e.pt.Part[s]
		if len(e.fwdBuf[p]) == 0 {
			e.fwdParts = append(e.fwdParts, p)
		}
		e.fwdBuf[p] = append(e.fwdBuf[p], e.local[s])
	}
	if len(e.fwdParts) == 0 {
		e.resetSeedBufs()
		return false
	}

	ntasks := len(e.fwdParts) + len(e.bwdParts)
	for _, p := range e.fwdParts {
		e.workers[p].tasks <- task{kind: taskForward, seeds: e.fwdBuf[p], targets: e.bwdBuf[p], reply: e.reply}
	}
	for _, p := range e.bwdParts {
		e.workers[p].tasks <- task{kind: taskBackward, seeds: e.bwdBuf[p], reply: e.reply}
	}

	// Fan in: exits reached from S seed the boundary search; entries that
	// locally reach T are its goals. A purely local hit skips the boundary
	// phase, but the reply channel is still drained in full: the shared
	// seed buffers and worker result buffers must be quiescent before the
	// next query rewrites them.
	e.bvisit.Reset()
	e.bgoal.Reset()
	seeds := e.sbuf[:0]
	defer func() { e.sbuf = seeds }()
	hit := false
	ngoals := 0
	for i := 0; i < ntasks; i++ {
		res := <-e.reply
		if res.hit {
			hit = true
		}
		if hit {
			continue // keep draining, skip the now-moot bookkeeping
		}
		for _, v := range res.boundary {
			d := e.bg.dense[v]
			if res.kind == taskForward {
				seeds = append(seeds, d)
			} else if e.bgoal.Mark(d) {
				ngoals++
			}
		}
	}
	e.resetSeedBufs()
	if hit {
		return true
	}
	if len(seeds) == 0 || ngoals == 0 {
		return false
	}

	// Final pass: BFS over the compressed boundary graph. The queue is
	// saved back on every return path so its capacity survives early
	// true-returns, not just exhausted searches.
	queue := e.bqueue[:0]
	defer func() { e.bqueue = queue }()
	for _, v := range seeds {
		if e.bgoal.Seen(v) {
			return true
		}
		if e.bvisit.Mark(v) {
			queue = append(queue, v)
		}
	}
	for head := 0; head < len(queue); head++ {
		for _, w := range e.bg.adj[queue[head]] {
			if e.bvisit.Mark(w) {
				if e.bgoal.Seen(w) {
					return true
				}
				queue = append(queue, w)
			}
		}
	}
	return false
}
