// Package dsr implements distributed set reachability: given a directed
// graph partitioned into k parts, Query(S, T) answers whether any source
// in S reaches any target in T. The engine follows the DSR decomposition
// from Gurajada & Theobald (SIGMOD 2016):
//
//  1. at build time each partition is compressed into boundary-to-boundary
//     summary edges, which are stitched with the raw cross-partition edges
//     into a global boundary graph;
//  2. at query time, per-partition shards run local searches (forward
//     from S, backward from T) in parallel, and the coordinator finishes
//     with a single search over the small boundary graph.
//
// Any s->t path decomposes as s ~> x0 -> e1 ~> x1 -> ... ek ~> t, where
// each ~> stays inside one partition and each -> is a cross-partition
// edge. The forward local search finds x0, summary edges cover every
// ei ~> xi hop, cross edges cover xi -> e(i+1), and the backward local
// search marks ek; so the boundary search is exact, not approximate.
//
// The coordinator talks to shards only through shard.Transport: with
// shard.Loopback everything runs in-process (goroutine workers, the
// original engine, still allocation-free per query); with shard.Client
// each partition lives in its own shard server process reached over
// TCP, and the same QueryBatch path amortizes one round-trip per shard
// across an entire batch of queries.
package dsr

import (
	"errors"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"dsr/internal/graph"
	"dsr/internal/partition"
	"dsr/internal/shard"
	"dsr/internal/wire"
)

// boundaryGraph is the compressed global view: vertices are the boundary
// vertices of the partitioned graph (dense-reindexed), edges are the
// per-partition entry->exit summaries plus the raw cross-partition edges.
type boundaryGraph struct {
	dense []int32 // global vertex -> dense boundary id, -1 for non-boundary
	adj   [][]int32
}

// parallelParts runs fn(p) for every partition p in [0, k) on a bounded
// pool and waits for all of them.
func parallelParts(k int, fn func(p int)) {
	workers := min(runtime.GOMAXPROCS(0), k)
	if workers <= 1 {
		for p := 0; p < k; p++ {
			fn(p)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				p := int(next.Add(1)) - 1
				if p >= k {
					return
				}
				fn(p)
			}
		}()
	}
	wg.Wait()
}

// buildBoundaryGraph compresses every partition and stitches the global
// boundary graph. All heavy phases are parallel over partitions, which
// is safe because every stitched edge is keyed by its *source* vertex
// and every vertex is owned by exactly one partition: two goroutines
// never touch the same adjacency row, degree counter, or cursor.
func buildBoundaryGraph(g *graph.Graph, pt *graph.Partitioning, subs []*partition.Subgraph) *boundaryGraph {
	bg := &boundaryGraph{dense: make([]int32, g.NumVertices())}
	nb := int32(0)
	for v := 0; v < g.NumVertices(); v++ {
		if pt.IsBoundary(graph.VertexID(v)) {
			bg.dense[v] = nb
			nb++
		} else {
			bg.dense[v] = -1
		}
	}
	bg.adj = make([][]int32, nb)

	// Phase 1: per-partition summaries on a bounded pool. Every pool
	// goroutine owns one Scratch sized for the largest partition and
	// reuses it (BFS marks, scc workspace) across every partition it
	// compresses. The cross-partition edge scan runs on this goroutine
	// in the meantime; it reads only g and pt, which the pool never
	// touches.
	summaries := make([][][2]graph.VertexID, len(subs))
	maxN := 0
	for _, s := range subs {
		if n := s.NumVertices(); n > maxN {
			maxN = n
		}
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < min(runtime.GOMAXPROCS(0), len(subs)); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := partition.NewScratch(maxN)
			for p := range work {
				summaries[p] = subs[p].Summary(sc)
			}
		}()
	}
	go func() {
		for p := range subs {
			work <- p
		}
		close(work)
	}()
	cross := make([][][2]graph.VertexID, pt.K)
	g.Edges(func(u, v graph.VertexID) {
		if pt.Part[u] != pt.Part[v] {
			p := pt.Part[u]
			cross[p] = append(cross[p], [2]graph.VertexID{u, v})
		}
	})
	wg.Wait()

	// Phase 2: count per-row degrees in parallel (rows are owned by the
	// source vertex's partition, so no two goroutines share a counter).
	deg := make([]int32, nb)
	countPart := func(p int) {
		for _, pair := range summaries[p] {
			deg[bg.dense[pair[0]]]++
		}
		for _, pair := range cross[p] {
			deg[bg.dense[pair[0]]]++
		}
	}
	parallelParts(pt.K, countPart)

	// Phase 3: one flat arena with CSR offsets, instead of growing nb
	// separate rows through repeated append.
	off := make([]int64, nb+1)
	for i := int32(0); i < nb; i++ {
		off[i+1] = off[i] + int64(deg[i])
	}
	arena := make([]int32, off[nb])

	// Phase 4: fill rows in parallel, reusing deg as the per-row cursor.
	clear(deg)
	fillPart := func(p int) {
		for _, pair := range summaries[p] {
			d := bg.dense[pair[0]]
			arena[off[d]+int64(deg[d])] = bg.dense[pair[1]]
			deg[d]++
		}
		for _, pair := range cross[p] {
			d := bg.dense[pair[0]]
			arena[off[d]+int64(deg[d])] = bg.dense[pair[1]]
			deg[d]++
		}
	}
	parallelParts(pt.K, fillPart)

	// Phase 5: sort + dedupe every row in parallel (multi-edges and
	// entry==exit self-pairs add noise). Each goroutine walks its own
	// partition's vertices, so row ownership again prevents contention.
	dedupePart := func(p int) {
		s := subs[p]
		for lv := int32(0); lv < int32(s.NumVertices()); lv++ {
			d := bg.dense[s.GlobalID(lv)]
			if d < 0 {
				continue
			}
			row := arena[off[d]:off[d+1]]
			slices.Sort(row)
			bg.adj[d] = slices.Compact(row)
		}
	}
	parallelParts(pt.K, dedupePart)
	return bg
}

// Query pairs one source set with one target set for QueryBatch.
type Query struct {
	S, T []graph.VertexID
}

// qstate is the coordinator's per-query bookkeeping within one batch.
type qstate struct {
	seeds  []int32 // dense boundary ids reached by forward local searches
	goals  []int32 // dense boundary ids that reach a target locally
	hit    bool    // some partition saw a local S ~> T path
	done   bool    // answered during assembly (trivial/overlap cases)
	ans    bool
	failed bool // a partition this query consulted answered nothing
}

// Engine answers set-reachability queries over a partitioned graph. It
// does not retain the input *graph.Graph: after construction every edge
// lives in the per-partition shards and the boundary graph, so the
// original CSR can be garbage-collected.
//
// The engine owns the partitioning, the boundary graph, and a
// shard.Transport; it never touches partition interiors itself. With
// the default Loopback transport the shards are in-process goroutines;
// with a TCP transport (NewDistributed) they are remote processes and
// the engine is the coordinator of a genuinely distributed system.
type Engine struct {
	n     int // vertex count of the source graph
	pt    *graph.Partitioning
	local []int32
	bg    *boundaryGraph
	tr    shard.Transport

	mu     sync.Mutex // serializes query rounds: shards hold per-partition scratch
	closed bool

	// Reusable per-round scratch, safe under mu. Epoch-marked arrays make
	// reuse O(1): a vertex is marked iff its entry equals the current
	// epoch. A round fully drains the reply channel, so all of this —
	// including the seed arenas shards read from — is quiescent between
	// rounds.
	replyc chan shard.Reply
	tmark  *partition.Marks // global T-membership marks (per query)
	smark  *partition.Marks // global S-dedup marks (per query)

	arena  [][]int32     // per-shard seed storage for the whole round
	tasks  [][]wire.Task // per-shard task batches for the round
	tQ, sQ []int32       // per shard: batch-query index that last touched it
	tOff   []int         // per shard: arena offset of the current query's T seeds
	sOff   []int         // per shard: arena offset of the current query's S seeds
	tSl    [][]int32     // per shard: current query's T∩p local-seed slice
	tparts []int32       // shards touched by the current query's T
	sparts []int32       // shards touched by the current query's S

	qs     []qstate
	single [1]Query // reusable batch for Query

	bvisit *partition.Marks // boundary-BFS visited marks
	bgoal  *partition.Marks // boundary-BFS goal marks
	bqueue []int32          // boundary-BFS queue
}

// New builds an engine over g split into k partitions with the default
// deterministic hash partitioner, running on an in-process Loopback
// transport (one goroutine shard per partition).
func New(g *graph.Graph, k int) (*Engine, error) {
	return NewWith(g, k, graph.Hash())
}

// NewWith is New with an explicit partitioning strategy (graph.Hash,
// graph.Range, or locality.New): the strategy decides which vertices
// are boundary vertices, and therefore how small the boundary graph —
// the part of the system every cross-partition query pays for — comes
// out.
func NewWith(g *graph.Graph, k int, p graph.Partitioner) (*Engine, error) {
	pt, err := p.Partition(g, k)
	if err != nil {
		return nil, err
	}
	return newLoopbackEngine(g, pt), nil
}

// NewWithPartitioning builds an engine over a pre-partitioned graph.
// Only pt.K and pt.Part are consulted; the Entry/Exit boundary marks are
// recomputed from the edge set, so hand-rolled partitionings cannot
// smuggle in marks that disagree with the graph.
func NewWithPartitioning(g *graph.Graph, pt *graph.Partitioning) (*Engine, error) {
	if len(pt.Part) != g.NumVertices() {
		return nil, fmt.Errorf("dsr: partitioning covers %d vertices, graph has %d", len(pt.Part), g.NumVertices())
	}
	labels := pt.Part
	pt, err := graph.PartitionWith(g, pt.K, func(v graph.VertexID, _, _ int) int32 { return labels[v] })
	if err != nil {
		return nil, err
	}
	return newLoopbackEngine(g, pt), nil
}

// NewDistributed builds a coordinator over g hash-partitioned into
// len(addrs) parts, where partition i is served by the shard server(s)
// at addrs[i]. See NewDistributedWith for the contract.
func NewDistributed(g *graph.Graph, addrs []string) (*Engine, error) {
	return NewDistributedWith(g, graph.Hash(), addrs)
}

// NewDistributedWith builds a coordinator over g partitioned by p into
// len(addrs) parts, where partition i is served by the shard server at
// addrs[i] — or by a replica group: addrs[i] may name several
// interchangeable servers separated by '|' ("host1:7000|host2:7000"),
// in which case the coordinator routes each round to a healthy replica,
// retries a batch on a sibling when a replica fails mid-query, and
// periodically reconnects dead replicas. With replicas a partition is
// only unavailable (surfacing as QueryBatchErr's *BatchError) when
// every replica of it is down.
//
// The coordinator builds the boundary graph locally (it has the full
// graph anyway) and verifies during the handshake that every shard —
// every replica — was built for the same shard count, vertex count,
// graph fingerprint, and, because every Partitioner is deterministic,
// the same partitioning digest, so both sides agree on vertex placement
// and local IDs without shipping any placement data.
func NewDistributedWith(g *graph.Graph, p graph.Partitioner, addrs []string) (*Engine, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("dsr: no shard addresses")
	}
	groups, err := shard.ParseGroups(addrs)
	if err != nil {
		return nil, err
	}
	pt, err := p.Partition(g, len(addrs))
	if err != nil {
		return nil, err
	}
	subs, local := partition.Extract(g, pt)
	bg := buildBoundaryGraph(g, pt, subs)
	replicated := false
	for _, grp := range groups {
		if len(grp) > 1 {
			replicated = true
			break
		}
	}
	var tr shard.Transport
	if replicated {
		tr, err = shard.DialReplicated(groups, g.NumVertices(), g.Fingerprint(), pt.Digest(), shard.ReplicatedOptions{})
	} else {
		// Single-replica deployments keep the plain per-shard connection:
		// same failure semantics as before, no per-submit goroutine. Dial
		// the parsed (trimmed) addresses, not the raw specs.
		single := make([]string, len(groups))
		for i, grp := range groups {
			single[i] = grp[0]
		}
		tr, err = shard.Dial(single, g.NumVertices(), g.Fingerprint(), pt.Digest())
	}
	if err != nil {
		return nil, err
	}
	return newEngine(g.NumVertices(), pt, local, bg, tr), nil
}

// newLoopbackEngine trusts pt (labels in range, boundary marks
// consistent with the edges): extracts per-partition subgraphs,
// compresses them into the boundary graph, and starts one in-process
// shard per partition.
func newLoopbackEngine(g *graph.Graph, pt *graph.Partitioning) *Engine {
	subs, local := partition.Extract(g, pt)
	bg := buildBoundaryGraph(g, pt, subs)
	shards := make([]*shard.Shard, len(subs))
	for i, s := range subs {
		shards[i] = shard.New(i, s)
	}
	return newEngine(g.NumVertices(), pt, local, bg, shard.NewLoopback(shards))
}

// newEngine wires a coordinator over an already-built boundary graph
// and transport.
func newEngine(n int, pt *graph.Partitioning, local []int32, bg *boundaryGraph, tr shard.Transport) *Engine {
	e := &Engine{
		n:      n,
		pt:     pt,
		local:  local,
		bg:     bg,
		tr:     tr,
		replyc: make(chan shard.Reply, pt.K),
		tmark:  partition.NewMarks(n),
		smark:  partition.NewMarks(n),
		arena:  make([][]int32, pt.K),
		tasks:  make([][]wire.Task, pt.K),
		tQ:     make([]int32, pt.K),
		sQ:     make([]int32, pt.K),
		tOff:   make([]int, pt.K),
		sOff:   make([]int, pt.K),
		tSl:    make([][]int32, pt.K),
	}
	e.bvisit = partition.NewMarks(len(e.bg.adj))
	e.bgoal = partition.NewMarks(len(e.bg.adj))
	return e
}

// NumPartitions returns the partition count.
func (e *Engine) NumPartitions() int { return e.pt.K }

// NumBoundary returns the number of vertices in the boundary graph.
func (e *Engine) NumBoundary() int { return len(e.bg.adj) }

// Close shuts the transport down deterministically: in-process shard
// goroutines have exited (and TCP connections are closed with their
// reader goroutines joined) by the time it returns. The engine must not
// be queried after Close.
func (e *Engine) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.closed = true
	e.tr.Close()
}

// Query reports whether any source in S reaches any target in T
// (reachability is reflexive: a vertex reaches itself). Vertices outside
// the graph are ignored; an empty side yields false. Query panics if the
// engine has been closed — a silent false would be indistinguishable
// from a genuine negative answer — and on a transport failure that
// leaves the answer unknown (only possible on distributed engines; use
// QueryBatchErr for recoverable error handling there). A lost partition
// whose absence the query survived — it was proven reachable by the
// partitions that did answer — still returns normally.
func (e *Engine) Query(S, T []graph.VertexID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.single[0] = Query{S: S, T: T}
	err := e.queryBatch(e.single[:])
	e.single[0] = Query{}
	if err != nil {
		var be *BatchError
		if !errors.As(err, &be) || be.Failed[0] {
			panic(fmt.Sprintf("dsr: transport failure: %v", err))
		}
	}
	return e.qs[0].ans
}

// QueryBatch answers many queries in one shard round-trip each way: all
// local searches for the whole batch ship to each shard as a single
// task batch, and every boundary fan-in is answered before replying.
// Batching amortizes per-round transport overhead (one RPC per shard
// instead of one per query per shard) and is the intended way to drive
// distributed engines. It panics on closed engines and on any failure
// that leaves an answer unknown, like Query; QueryBatchErr returns the
// error instead.
func (e *Engine) QueryBatch(queries []Query) []bool {
	out, err := e.QueryBatchErr(queries)
	if err != nil {
		var be *BatchError
		if !errors.As(err, &be) || slices.Contains(be.Failed, true) {
			panic(fmt.Sprintf("dsr: transport failure: %v", err))
		}
	}
	return out
}

// QueryBatchErr is QueryBatch with transport failures reported as an
// error instead of a panic, and with partial-failure semantics: losing
// a partition fails only the queries that needed it, not the batch.
//
// When the error is a *BatchError, the returned answers are still
// valid for every query i with err.Failed[i] == false — queries that
// never consulted a dead partition, plus queries a dead partition
// could not change (a local hit or boundary path already proved them
// true; missing data only ever hides paths). Failed queries have no
// trustworthy answer and read false. A partition counts as dead
// whenever it delivered no usable reply, whether the connection
// dropped or the server reported an error (e.g. a mismatch it
// detected); with replicas, only after every replica failed. Any other
// non-nil error — malformed content in a reply that did arrive, or a
// closed transport — invalidates the whole batch and the answers are
// nil.
func (e *Engine) QueryBatchErr(queries []Query) ([]bool, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	err := e.queryBatch(queries)
	if err != nil {
		var be *BatchError
		if !errors.As(err, &be) {
			return nil, err
		}
	}
	out := make([]bool, len(queries))
	for i := range out {
		out[i] = e.qs[i].ans
	}
	return out, err
}

// queryBatch runs one full coordinator round for the batch, leaving the
// per-query answers in e.qs[i].ans. Caller holds e.mu.
func (e *Engine) queryBatch(queries []Query) error {
	if e.closed {
		panic("dsr: query on closed Engine")
	}
	n := graph.VertexID(e.n)
	for len(e.qs) < len(queries) {
		e.qs = append(e.qs, qstate{})
	}
	for p := 0; p < e.pt.K; p++ {
		e.arena[p] = e.arena[p][:0]
		e.tasks[p] = e.tasks[p][:0]
		e.tQ[p], e.sQ[p] = -1, -1
	}

	// Assembly: group every query's S and T by partition as local seed
	// sets, using epoch marks for T membership and S dedup and reused
	// per-shard arenas instead of per-query maps. Slices handed to tasks
	// alias the arenas; later appends may grow an arena, but the
	// abandoned backing array keeps the already-written seeds, so
	// earlier slices stay valid.
	for i := range queries {
		q := &queries[i]
		st := &e.qs[i]
		st.seeds, st.goals = st.seeds[:0], st.goals[:0]
		st.hit, st.done, st.ans, st.failed = false, false, false, false
		e.tmark.Reset()
		e.smark.Reset()
		e.tparts = e.tparts[:0]
		e.sparts = e.sparts[:0]
		for _, t := range q.T {
			if t >= n || !e.tmark.Mark(int32(t)) {
				continue
			}
			p := e.pt.Part[t]
			if e.tQ[p] != int32(i) {
				e.tQ[p] = int32(i)
				e.tOff[p] = len(e.arena[p])
				e.tparts = append(e.tparts, p)
			}
			e.arena[p] = append(e.arena[p], e.local[t])
		}
		if len(e.tparts) == 0 {
			st.done = true
			continue
		}
		// Capture the T slices now: the S scan below appends to the same
		// arenas.
		for _, p := range e.tparts {
			e.tSl[p] = e.arena[p][e.tOff[p]:len(e.arena[p])]
		}
		for _, s := range q.S {
			// smark dedupes S the way tmark dedupes T: duplicate sources
			// would otherwise inflate the per-partition seed sets.
			if s >= n || !e.smark.Mark(int32(s)) {
				continue
			}
			if e.tmark.Seen(int32(s)) {
				st.done, st.ans = true, true
				break
			}
			p := e.pt.Part[s]
			if e.sQ[p] != int32(i) {
				e.sQ[p] = int32(i)
				e.sOff[p] = len(e.arena[p])
				e.sparts = append(e.sparts, p)
			}
			e.arena[p] = append(e.arena[p], e.local[s])
		}
		if st.done {
			continue
		}
		if len(e.sparts) == 0 {
			st.done = true
			continue
		}
		for _, p := range e.sparts {
			var targets []int32
			if e.tQ[p] == int32(i) {
				targets = e.tSl[p]
			}
			e.tasks[p] = append(e.tasks[p], wire.Task{
				Kind:    wire.Forward,
				Query:   uint32(i),
				Seeds:   e.arena[p][e.sOff[p]:len(e.arena[p])],
				Targets: targets,
			})
		}
		for _, p := range e.tparts {
			e.tasks[p] = append(e.tasks[p], wire.Task{
				Kind:  wire.Backward,
				Query: uint32(i),
				Seeds: e.tSl[p],
			})
		}
	}

	// Fan out: one Submit per touched shard carries the whole batch.
	nsub := 0
	for p := 0; p < e.pt.K; p++ {
		if len(e.tasks[p]) > 0 {
			e.tr.Submit(p, e.tasks[p], e.replyc)
			nsub++
		}
	}

	// Fan in: exits reached from S seed each query's boundary search;
	// entries that locally reach T are its goals. The reply channel is
	// always drained in full — the shared arenas and shard result
	// buffers must be quiescent before the next round rewrites them —
	// and failures are collected rather than aborting the drain. A
	// partition that answered nothing — connection loss, or a
	// server-reported error that broke the connection; on a replicated
	// transport, every replica failing — is a partial failure marking
	// only the queries that consulted that partition. Malformed content
	// inside a reply that did arrive (a shard disagreeing about the
	// batch shape or the boundary set) poisons the whole round via
	// terr: such a shard cannot be trusted retroactively.
	var perr []PartitionError
	var terr error
	for r := 0; r < nsub; r++ {
		rep := <-e.replyc
		if rep.Err != nil {
			perr = append(perr, PartitionError{Partition: rep.Shard, Err: rep.Err})
			for ti := range e.tasks[rep.Shard] {
				e.qs[e.tasks[rep.Shard][ti].Query].failed = true
			}
			continue
		}
		for ri := range rep.Results {
			res := &rep.Results[ri]
			// A result that doesn't map back onto this batch or the
			// boundary graph means the remote shard disagrees about the
			// graph; fail the round instead of panicking or mis-answering.
			if int(res.Query) >= len(queries) {
				terr = fmt.Errorf("dsr: shard %d answered query %d of a %d-query batch", rep.Shard, res.Query, len(queries))
				continue
			}
			st := &e.qs[res.Query]
			if st.hit {
				continue // answer already known; skip the moot bookkeeping
			}
			if res.Hit {
				st.hit = true
				continue
			}
			for _, v := range res.Boundary {
				if v >= uint32(e.n) || e.bg.dense[v] < 0 {
					terr = fmt.Errorf("dsr: shard %d reported non-boundary vertex %d", rep.Shard, v)
					break
				}
				d := e.bg.dense[v]
				if res.Kind == wire.Forward {
					st.seeds = append(st.seeds, d)
				} else {
					st.goals = append(st.goals, d)
				}
			}
		}
	}
	if terr != nil {
		return terr
	}

	// Final pass: one BFS over the compressed boundary graph per
	// undecided query. Goal/visited marks reset in O(1) per query via
	// epochs, and the queue's capacity is shared across the whole batch.
	// Queries that consulted a dead partition still run on whatever the
	// surviving partitions reported: results can only be missing, never
	// wrong, so reaching a goal proves the query true and un-fails it —
	// only a `false` built on incomplete data stays failed.
	for i := range queries {
		st := &e.qs[i]
		if st.done {
			continue
		}
		if st.hit {
			st.ans, st.failed = true, false
			continue
		}
		if len(st.seeds) == 0 || len(st.goals) == 0 {
			continue
		}
		if e.boundaryReach(st.seeds, st.goals) {
			st.ans, st.failed = true, false
		}
	}
	if perr != nil {
		slices.SortFunc(perr, func(a, b PartitionError) int { return a.Partition - b.Partition })
		failed := make([]bool, len(queries))
		for i := range queries {
			failed[i] = e.qs[i].failed
		}
		return &BatchError{Partitions: perr, Failed: failed}
	}
	return nil
}

// boundaryReach runs the boundary-graph BFS from seeds and reports
// whether it touches any goal. The queue is saved back on every return
// path so its capacity survives early true-returns.
func (e *Engine) boundaryReach(seeds, goals []int32) bool {
	e.bgoal.Reset()
	for _, d := range goals {
		e.bgoal.Mark(d)
	}
	e.bvisit.Reset()
	queue := e.bqueue[:0]
	defer func() { e.bqueue = queue }()
	for _, v := range seeds {
		if e.bgoal.Seen(v) {
			return true
		}
		if e.bvisit.Mark(v) {
			queue = append(queue, v)
		}
	}
	for head := 0; head < len(queue); head++ {
		for _, w := range e.bg.adj[queue[head]] {
			if e.bvisit.Mark(w) {
				if e.bgoal.Seen(w) {
					return true
				}
				queue = append(queue, w)
			}
		}
	}
	return false
}
