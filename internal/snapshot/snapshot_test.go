// Tests live in snapshot_test (not snapshot) because they round-trip
// through internal/shard, which imports this package.
package snapshot_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dsr/internal/dsr"
	"dsr/internal/graph"
	"dsr/internal/partition"
	"dsr/internal/shard"
	"dsr/internal/snapshot"
)

// randomGraph generates a graph with n vertices and ~n*deg random edges.
func randomGraph(rng *rand.Rand, n int, deg float64) *graph.Graph {
	b := graph.NewBuilder(n)
	m := int(float64(n) * deg)
	for i := 0; i < m; i++ {
		b.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)))
	}
	return b.Build()
}

// fixture builds a k-way partitioned fleet from a seeded random graph
// and takes each shard's snapshot.
func fixture(t testing.TB, seed int64, n, k int) (*graph.Graph, *graph.Partitioning, []*shard.Shard, []*snapshot.Snapshot) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := randomGraph(rng, n, 2)
	pt, err := graph.HashPartition(g, k)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]*shard.Shard, k)
	sns := make([]*snapshot.Snapshot, k)
	for i := 0; i < k; i++ {
		shards[i] = shard.New(i, partition.ExtractOne(g, pt, i))
		sns[i] = shards[i].Snapshot(k, g.NumVertices(), g.Fingerprint(), pt.Digest())
	}
	return g, pt, shards, sns
}

// reChecksum recomputes the whole-file FNV-1a checksum (field at bytes
// 48..56 treated as zero) after a test deliberately edits a snapshot,
// so the edit reaches the structural validators instead of tripping the
// checksum line. Layout constants are part of the documented format.
func reChecksum(data []byte) {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i, b := range data {
		if i >= 48 && i < 56 {
			b = 0
		}
		h ^= uint64(b)
		h *= prime64
	}
	binary.LittleEndian.PutUint64(data[48:], h)
}

func TestSnapshotRoundTrip(t *testing.T) {
	g, pt, shards, sns := fixture(t, 1, 120, 3)
	for i, sn := range sns {
		buf, err := snapshot.Encode(sn)
		if err != nil {
			t.Fatalf("shard %d: Encode: %v", i, err)
		}
		dec, err := snapshot.Decode(buf)
		if err != nil {
			t.Fatalf("shard %d: Decode: %v", i, err)
		}
		if dec.Header != sn.Header {
			t.Fatalf("shard %d: header changed: %+v -> %+v", i, sn.Header, dec.Header)
		}
		if err := dec.Expect(i, 3, g.NumVertices(), g.Fingerprint(), pt.Digest()); err != nil {
			t.Fatalf("shard %d: Expect on own deployment: %v", i, err)
		}
		// Re-encoding the decoded state must reproduce the bytes exactly:
		// decode loses nothing, and encoding is deterministic.
		buf2, err := snapshot.Encode(dec)
		if err != nil {
			t.Fatalf("shard %d: re-Encode: %v", i, err)
		}
		if !bytes.Equal(buf, buf2) {
			t.Fatalf("shard %d: decode/encode round trip not byte-identical (%d vs %d bytes)", i, len(buf), len(buf2))
		}
		// The reconstituted shard is indistinguishable from the fresh one.
		restored := shard.FromSnapshot(dec)
		if restored.NumVertices() != shards[i].NumVertices() {
			t.Fatalf("shard %d: NumVertices %d -> %d", i, shards[i].NumVertices(), restored.NumVertices())
		}
		if !reflect.DeepEqual(restored.Summary(), shards[i].Summary()) {
			t.Fatalf("shard %d: summary differs after round trip", i)
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	// Two shards built independently from the same seed must snapshot to
	// identical bytes — the property -snapshot-verify's compare rests on.
	_, _, _, a := fixture(t, 7, 80, 2)
	_, _, _, b := fixture(t, 7, 80, 2)
	for i := range a {
		ba, err := snapshot.Encode(a[i])
		if err != nil {
			t.Fatal(err)
		}
		bb, err := snapshot.Encode(b[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ba, bb) {
			t.Fatalf("shard %d: two builds of the same state encode differently", i)
		}
	}
}

func TestWriteFileReadFile(t *testing.T) {
	_, _, _, sns := fixture(t, 3, 60, 2)
	dir := t.TempDir()
	path := filepath.Join(dir, snapshot.Filename(0, 2))

	if _, err := snapshot.ReadFile(path); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing file: err = %v, want fs.ErrNotExist", err)
	}

	size, err := snapshot.WriteFile(path, sns[0])
	if err != nil {
		t.Fatal(err)
	}
	got, err := snapshot.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size != size || got.Header != sns[0].Header {
		t.Fatalf("ReadFile: size %d (want %d), header %+v", got.Size, size, got.Header)
	}
	// The temp-file+rename left nothing behind but the snapshot itself.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != snapshot.Filename(0, 2) {
		t.Fatalf("directory not clean after WriteFile: %v", ents)
	}
	// Overwriting in place (the rolling-restart path) works too.
	if _, err := snapshot.WriteFile(path, sns[0]); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
}

func TestWriteToWriter(t *testing.T) {
	_, _, _, sns := fixture(t, 21, 30, 2)
	var buf bytes.Buffer
	if err := snapshot.Write(&buf, sns[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := snapshot.Decode(buf.Bytes()); err != nil {
		t.Fatalf("Write output does not decode: %v", err)
	}
	if err := snapshot.Write(failWriter{}, sns[0]); err == nil {
		t.Fatal("Write to a failing writer must error")
	}
	if err := snapshot.Write(&buf, &snapshot.Snapshot{}); err == nil {
		t.Fatal("Write of a nil-subgraph snapshot must error")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestWriteFileErrors(t *testing.T) {
	_, _, _, sns := fixture(t, 22, 30, 2)
	// Unwritable directory: the temp-file creation fails cleanly.
	if _, err := snapshot.WriteFile(filepath.Join(t.TempDir(), "no-such-dir", "x.dsrsnap"), sns[0]); err == nil {
		t.Fatal("WriteFile into a missing directory must error")
	}
	if _, err := snapshot.WriteFile(filepath.Join(t.TempDir(), "x.dsrsnap"), &snapshot.Snapshot{}); err == nil {
		t.Fatal("WriteFile of a nil-subgraph snapshot must error")
	}
	// A bare filename (no directory part) writes into the cwd-relative
	// path; exercise the dir == "" branch from inside a temp dir.
	t.Chdir(t.TempDir())
	if _, err := snapshot.WriteFile("bare.dsrsnap", sns[0]); err != nil {
		t.Fatalf("WriteFile with a bare filename: %v", err)
	}
}

func TestHeaderExpect(t *testing.T) {
	h := snapshot.Header{
		Version: snapshot.FormatVersion, ShardID: 1, ShardCount: 3,
		TotalVertices: 100, GraphFingerprint: 0xabc, PartitioningDigest: 0xdef,
	}
	cases := []struct {
		name                string
		id, count, vertices int
		gsum, psum          uint64
		ok                  bool
	}{
		{"exact", 1, 3, 100, 0xabc, 0xdef, true},
		{"zeros skip graph identity", 1, 3, 0, 0, 0, true},
		{"wrong shard id", 0, 3, 0, 0, 0, false},
		{"wrong shard count", 1, 4, 0, 0, 0, false},
		{"wrong vertex count", 1, 3, 99, 0, 0, false},
		{"wrong fingerprint", 1, 3, 0, 0xbad, 0, false},
		{"wrong digest", 1, 3, 0, 0, 0xbad, false},
	}
	for _, c := range cases {
		err := h.Expect(c.id, c.count, c.vertices, c.gsum, c.psum)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok {
			if !errors.Is(err, snapshot.ErrMismatch) {
				t.Errorf("%s: err = %v, want ErrMismatch", c.name, err)
			}
		}
	}
}

// TestSnapshotCorruption: every tampered variant of a valid snapshot
// must fail to decode — truncation, bit flips anywhere in the file,
// version skew, and structurally invalid state behind a fixed-up
// checksum all surface as load errors, never as a decoded snapshot.
func TestSnapshotCorruption(t *testing.T) {
	_, _, _, sns := fixture(t, 5, 100, 2)
	buf, err := snapshot.Encode(sns[0])
	if err != nil {
		t.Fatal(err)
	}

	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{0, 7, 8, 63, 64, 100, len(buf) / 2, len(buf) - 1} {
			if _, err := snapshot.Decode(buf[:n]); err == nil {
				t.Errorf("Decode of %d/%d bytes succeeded", n, len(buf))
			}
		}
	})

	t.Run("flipped byte", func(t *testing.T) {
		// Every header/table byte, then a stride through the payloads.
		for off := 0; off < len(buf); off += min(13, len(buf)-off) {
			mut := bytes.Clone(buf)
			mut[off] ^= 0x40
			if _, err := snapshot.Decode(mut); err == nil {
				t.Fatalf("Decode succeeded with byte %d flipped", off)
			}
		}
	})

	t.Run("version skew", func(t *testing.T) {
		mut := bytes.Clone(buf)
		binary.LittleEndian.PutUint32(mut[8:], snapshot.FormatVersion+1)
		reChecksum(mut) // a future writer would checksum its own bytes correctly
		_, err := snapshot.Decode(mut)
		if !errors.Is(err, snapshot.ErrVersion) {
			t.Fatalf("err = %v, want ErrVersion", err)
		}
	})

	t.Run("bad magic", func(t *testing.T) {
		mut := bytes.Clone(buf)
		mut[0] = 'X'
		reChecksum(mut)
		if _, err := snapshot.Decode(mut); !errors.Is(err, snapshot.ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})

	t.Run("invalid state behind valid checksum", func(t *testing.T) {
		// Corrupt the component map (section kind 9) and fix the checksum:
		// only the structural validators stand between this file and a
		// wrong answer. Section table rows are 24 bytes from offset 64
		// (documented format layout).
		mut := bytes.Clone(buf)
		row := mut[64+(9-1)*24:]
		off := binary.LittleEndian.Uint64(row[8:])
		count := binary.LittleEndian.Uint64(row[16:])
		if count == 0 {
			t.Skip("empty component map")
		}
		binary.LittleEndian.PutUint32(mut[off:], binary.LittleEndian.Uint32(mut[off:])+1)
		reChecksum(mut)
		if _, err := snapshot.Decode(mut); !errors.Is(err, snapshot.ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})

	t.Run("bad header fields", func(t *testing.T) {
		// DecodeHeader's own range checks (no checksum in its way).
		big := bytes.Clone(buf)
		binary.LittleEndian.PutUint64(big[24:], 1<<40) // vertex count over uint32
		if _, err := snapshot.DecodeHeader(big); !errors.Is(err, snapshot.ErrCorrupt) {
			t.Errorf("oversized vertex count: err = %v, want ErrCorrupt", err)
		}
		oob := bytes.Clone(buf)
		binary.LittleEndian.PutUint32(oob[16:], 9) // shard 9 of 2
		if _, err := snapshot.DecodeHeader(oob); !errors.Is(err, snapshot.ErrCorrupt) {
			t.Errorf("shard id out of range: err = %v, want ErrCorrupt", err)
		}
	})

	t.Run("hostile section table", func(t *testing.T) {
		// Each mutation gets its checksum fixed up, so only the table and
		// payload validators stand between the bytes and a decode.
		row := func(b []byte, kind int) []byte { return b[64+(kind-1)*24:] }
		cases := []struct {
			name string
			mut  func(b []byte)
		}{
			{"wrong section count", func(b []byte) { binary.LittleEndian.PutUint32(b[56:], 16) }},
			{"kind out of order", func(b []byte) { binary.LittleEndian.PutUint32(row(b, 1)[0:], 2) }},
			{"bad element size", func(b []byte) { binary.LittleEndian.PutUint32(row(b, 1)[4:], 2) }},
			{"unaligned offset", func(b []byte) {
				r := row(b, 1)
				binary.LittleEndian.PutUint64(r[8:], binary.LittleEndian.Uint64(r[8:])+4)
			}},
			{"count past end of file", func(b []byte) { binary.LittleEndian.PutUint64(row(b, 1)[16:], 1<<40) }},
			{"odd pair count", func(b []byte) {
				// Cross section (kind 8) holds flattened pairs.
				r := row(b, 8)
				n := binary.LittleEndian.Uint64(r[16:])
				if n < 2 {
					t.Skip("no cross edges in fixture")
				}
				binary.LittleEndian.PutUint64(r[16:], n-1)
			}},
			{"csr offset overflows int64", func(b []byte) {
				r := row(b, 2) // forward CSR offsets, uint64 elements
				off := binary.LittleEndian.Uint64(r[8:])
				binary.LittleEndian.PutUint64(b[off:], ^uint64(0))
			}},
			{"summary edge outside graph", func(b []byte) {
				r := row(b, 17)
				if binary.LittleEndian.Uint64(r[16:]) == 0 {
					t.Skip("no summary edges in fixture")
				}
				off := binary.LittleEndian.Uint64(r[8:])
				binary.LittleEndian.PutUint32(b[off:], 1<<30)
			}},
		}
		for _, c := range cases {
			mut := bytes.Clone(buf)
			c.mut(mut)
			reChecksum(mut)
			if _, err := snapshot.Decode(mut); !errors.Is(err, snapshot.ErrCorrupt) {
				t.Errorf("%s: err = %v, want ErrCorrupt", c.name, err)
			}
		}
	})

	t.Run("readfile names the path", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "bad.dsrsnap")
		mut := bytes.Clone(buf)
		mut[len(mut)-1] ^= 1
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := snapshot.ReadFile(path)
		if !errors.Is(err, snapshot.ErrCorrupt) || !strings.Contains(err.Error(), "bad.dsrsnap") {
			t.Fatalf("err = %v, want ErrCorrupt naming the file", err)
		}
	})
}

// TestSnapshotLoadOrRebuildDifferential is the load-error-then-rebuild
// contract end to end: a fleet boots with one corrupted snapshot, that
// shard falls back to a rebuild while the others load, and the mixed
// fleet answers a randomized query stream identically to the
// whole-graph oracle.
func TestSnapshotLoadOrRebuildDifferential(t *testing.T) {
	const n, k = 200, 3
	g, pt, _, sns := fixture(t, 11, n, k)
	dir := t.TempDir()
	for i, sn := range sns {
		if _, err := snapshot.WriteFile(filepath.Join(dir, snapshot.Filename(i, k)), sn); err != nil {
			t.Fatal(err)
		}
	}
	// Flip one payload byte of shard 1's snapshot.
	badPath := filepath.Join(dir, snapshot.Filename(1, k))
	raw, err := os.ReadFile(badPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x10
	if err := os.WriteFile(badPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Boot: load each snapshot; on any error, rebuild that shard from
	// the graph — the exact dsr-shard fallback.
	rebuilt := 0
	shards := make([]*shard.Shard, k)
	for i := 0; i < k; i++ {
		sn, err := snapshot.ReadFile(filepath.Join(dir, snapshot.Filename(i, k)))
		if err == nil {
			err = sn.Expect(i, k, g.NumVertices(), g.Fingerprint(), pt.Digest())
		}
		if err != nil {
			rebuilt++
			shards[i] = shard.New(i, partition.ExtractOne(g, pt, i))
			continue
		}
		shards[i] = shard.FromSnapshot(sn)
	}
	if rebuilt != 1 {
		t.Fatalf("rebuilt %d shards, want exactly the corrupted one", rebuilt)
	}

	e, err := dsr.ConnectTransport(t.Context(), shard.NewLoopback(shards), k, g.NumVertices(), dsr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rng := rand.New(rand.NewSource(12))
	set := func() []graph.VertexID {
		s := make([]graph.VertexID, 1+rng.Intn(4))
		for i := range s {
			s[i] = graph.VertexID(rng.Intn(n))
		}
		return s
	}
	for q := 0; q < 80; q++ {
		S, T := set(), set()
		if got, want := e.Query(S, T), dsr.NaiveReach(g, S, T); got != want {
			t.Fatalf("query %d: Query(%v, %v) = %v, oracle = %v", q, S, T, got, want)
		}
	}
}

// FuzzDecodeSnapshotHeader throws arbitrary bytes at the decode path:
// DecodeHeader and Decode must return errors, not panic, and anything
// that fully decodes must re-encode.
func FuzzDecodeSnapshotHeader(f *testing.F) {
	_, _, _, sns := fixture(f, 9, 50, 2)
	valid, err := snapshot.Encode(sns[0])
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:64])
	f.Add(valid[:40])
	f.Add([]byte{})
	f.Add([]byte("DSRSNAP\x00garbage"))
	mut := bytes.Clone(valid)
	mut[80] ^= 0xff
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		if _, err := snapshot.DecodeHeader(data); err != nil {
			// Header rejects it; Decode must agree.
			if _, err := snapshot.Decode(data); err == nil {
				t.Fatal("Decode accepted input DecodeHeader rejects")
			}
			return
		}
		sn, err := snapshot.Decode(data)
		if err != nil {
			return
		}
		if _, err := snapshot.Encode(sn); err != nil {
			t.Fatalf("decoded snapshot fails to re-encode: %v", err)
		}
	})
}
