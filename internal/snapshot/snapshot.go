// Package snapshot persists one partition's complete query state — the
// local CSR subgraph, its SCC condensation, the boundary bitset
// reachability index, and the boundary summary edges — in a versioned,
// checksummed, mmap-friendly on-disk layout, so a shard restart is a
// file load instead of an edge-list read plus re-partition plus Tarjan
// plus index build.
//
// # Layout
//
// Everything is little-endian. The file opens with a fixed 64-byte
// header:
//
//	offset  size  field
//	     0     8  magic "DSRSNAP\x00"
//	     8     4  format version (uint32)
//	    12     4  reserved (0)
//	    16     4  shard ID (uint32)
//	    20     4  shard count (uint32)
//	    24     8  total graph vertex count (uint64)
//	    32     8  graph fingerprint (graph.Fingerprint)
//	    40     8  partitioning digest (graph.Partitioning.Digest)
//	    48     8  whole-file checksum (FNV-1a with this field zeroed)
//	    56     4  section count (uint32)
//	    60     4  reserved (0)
//
// followed by a section table (one 24-byte row per section: kind,
// element size, byte offset, element count) and the section payloads,
// each 8-byte aligned so fixed-width arrays can be used straight out of
// a mapping. Sections appear in canonical kind order and exactly once,
// which makes encoding deterministic: two snapshots of the same built
// state are byte-identical (what -snapshot-verify's compare relies on).
//
// The header identity fields mirror the distributed handshake: a
// snapshot for the wrong shard ID/count, a foreign graph, or a foreign
// partitioning is refused via Header.Expect exactly like a mismatched
// hello. The checksum makes corruption a load error — callers fall back
// to a rebuild, never to a wrong answer.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"dsr/internal/graph"
	"dsr/internal/partition"
	"dsr/internal/scc"
)

// FormatVersion is the on-disk format version this package writes. A
// snapshot with any other version is refused with ErrVersion (and the
// caller rebuilds), so a format change never silently misreads old
// files.
const FormatVersion = 1

// Sentinel errors, matched with errors.Is through the wrapped detail.
var (
	// ErrCorrupt marks a file that is not a structurally valid snapshot:
	// bad magic, failed checksum, truncation, or any internal
	// inconsistency found during validation.
	ErrCorrupt = errors.New("corrupt snapshot")
	// ErrVersion marks a structurally plausible snapshot written by a
	// different format version.
	ErrVersion = errors.New("snapshot format version skew")
	// ErrMismatch marks a valid snapshot that belongs to a different
	// deployment: wrong shard ID/count, graph fingerprint, or
	// partitioning digest.
	ErrMismatch = errors.New("snapshot identity mismatch")
)

const (
	headerSize   = 64
	tableRowSize = 24
	magic        = "DSRSNAP\x00"
)

// Section kinds, in canonical file order.
const (
	secGlobal      = iota + 1 // subgraph local->global map (uint32)
	secFOff                   // subgraph forward CSR offsets (uint64)
	secFEdges                 // subgraph forward CSR edges (int32)
	secROff                   // subgraph reverse CSR offsets (uint64)
	secREdges                 // subgraph reverse CSR edges (int32)
	secEntries                // boundary entry local IDs (int32)
	secExits                  // boundary exit local IDs (int32)
	secCross                  // cross-partition edges, flattened pairs (uint32)
	secComp                   // vertex -> SCC component (int32)
	secCondFOff               // condensation forward CSR offsets (int32)
	secCondFEdges             // condensation forward CSR edges (int32)
	secCondROff               // condensation reverse CSR offsets (int32)
	secCondREdges             // condensation reverse CSR edges (int32)
	secCondMOff               // condensation member-list offsets (int32)
	secCondMembers            // condensation member lists (int32)
	secIndexBits              // reachability bitsets, component-major (uint64)
	secSummary                // entry->exit summary edges, flattened pairs (uint32)
	numSections    = secSummary
)

// Header identifies a snapshot: the format version it was written
// with, which partition of which deployment it holds, and the exact
// graph + partitioning it was built from.
type Header struct {
	Version            int
	ShardID            int
	ShardCount         int
	TotalVertices      int
	GraphFingerprint   uint64
	PartitioningDigest uint64
}

// Expect refuses a snapshot whose identity differs from the
// deployment's. Shard ID and count are always checked; totalVertices,
// graphSum, and partSum are skipped when 0 — the same "not computed"
// convention as the wire handshake, since a shard booting from a
// snapshot alone has nothing to compare the graph fields against (the
// coordinator's fleet cross-check covers that case).
func (h Header) Expect(shardID, shardCount, totalVertices int, graphSum, partSum uint64) error {
	if h.ShardID != shardID || h.ShardCount != shardCount {
		return fmt.Errorf("%w: snapshot is shard %d/%d, deployment wants %d/%d",
			ErrMismatch, h.ShardID, h.ShardCount, shardID, shardCount)
	}
	if totalVertices != 0 && h.TotalVertices != totalVertices {
		return fmt.Errorf("%w: snapshot graph has %d vertices, deployment's has %d",
			ErrMismatch, h.TotalVertices, totalVertices)
	}
	if graphSum != 0 && h.GraphFingerprint != graphSum {
		return fmt.Errorf("%w: graph fingerprint %#x, deployment's is %#x",
			ErrMismatch, h.GraphFingerprint, graphSum)
	}
	if partSum != 0 && h.PartitioningDigest != partSum {
		return fmt.Errorf("%w: partitioning digest %#x, deployment's is %#x",
			ErrMismatch, h.PartitioningDigest, partSum)
	}
	return nil
}

// Snapshot is one partition's complete decoded query state plus the
// identity header it was persisted under. Sub carries its condensation
// and reachability index pre-attached, so shard.FromSnapshot derives
// nothing.
type Snapshot struct {
	Header
	Sub *partition.Subgraph
	// SummaryEdges are the entry->exit boundary summary edges (global
	// IDs), in the canonical order Shard.Summary emits.
	SummaryEdges [][2]uint32
	// Size is the encoded byte size; set by ReadFile and WriteFile.
	Size int
}

// Filename returns the canonical snapshot file name for one partition
// of a deployment. Keying the name on both shard ID and count lets one
// directory serve a whole fleet — and keeps a k=3 file from being
// offered to a k=4 boot at all.
func Filename(shardID, shardCount int) string {
	return fmt.Sprintf("part%d-of-%d.dsrsnap", shardID, shardCount)
}

// checksum computes the whole-file FNV-1a digest with the checksum
// field itself treated as zero.
func checksum(data []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i, b := range data {
		if i >= 48 && i < 56 {
			b = 0
		}
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// section describes one payload during encoding.
type section struct {
	kind  uint32
	elem  uint32
	count int
	put   func(dst []byte)
}

func putU32s(dst []byte, vals []int32) {
	for i, v := range vals {
		binary.LittleEndian.PutUint32(dst[4*i:], uint32(v))
	}
}

func putVIDs(dst []byte, vals []graph.VertexID) {
	for i, v := range vals {
		binary.LittleEndian.PutUint32(dst[4*i:], uint32(v))
	}
}

func putU64s(dst []byte, vals []int64) {
	for i, v := range vals {
		binary.LittleEndian.PutUint64(dst[8*i:], uint64(v))
	}
}

// Encode serializes sn to the on-disk format. Encoding the same built
// state twice yields identical bytes. The subgraph's condensation and
// index are built first if the caller has not already forced them.
func Encode(sn *Snapshot) ([]byte, error) {
	if sn.Sub == nil {
		return nil, fmt.Errorf("snapshot: nil subgraph")
	}
	d := sn.Sub.Data()
	cd := sn.Sub.Condensation(nil).Data()
	ixd := sn.Sub.Index(nil).Data()

	secs := []section{
		{secGlobal, 4, len(d.Global), func(b []byte) { putVIDs(b, d.Global) }},
		{secFOff, 8, len(d.FOff), func(b []byte) { putU64s(b, d.FOff) }},
		{secFEdges, 4, len(d.FEdges), func(b []byte) { putU32s(b, d.FEdges) }},
		{secROff, 8, len(d.ROff), func(b []byte) { putU64s(b, d.ROff) }},
		{secREdges, 4, len(d.REdges), func(b []byte) { putU32s(b, d.REdges) }},
		{secEntries, 4, len(d.Entries), func(b []byte) { putU32s(b, d.Entries) }},
		{secExits, 4, len(d.Exits), func(b []byte) { putU32s(b, d.Exits) }},
		{secCross, 4, 2 * len(d.Cross), func(b []byte) {
			for i, pr := range d.Cross {
				binary.LittleEndian.PutUint32(b[8*i:], uint32(pr[0]))
				binary.LittleEndian.PutUint32(b[8*i+4:], uint32(pr[1]))
			}
		}},
		{secComp, 4, len(cd.Comp), func(b []byte) { putU32s(b, cd.Comp) }},
		{secCondFOff, 4, len(cd.FOff), func(b []byte) { putU32s(b, cd.FOff) }},
		{secCondFEdges, 4, len(cd.FEdges), func(b []byte) { putU32s(b, cd.FEdges) }},
		{secCondROff, 4, len(cd.ROff), func(b []byte) { putU32s(b, cd.ROff) }},
		{secCondREdges, 4, len(cd.REdges), func(b []byte) { putU32s(b, cd.REdges) }},
		{secCondMOff, 4, len(cd.MOff), func(b []byte) { putU32s(b, cd.MOff) }},
		{secCondMembers, 4, len(cd.Members), func(b []byte) { putU32s(b, cd.Members) }},
		{secIndexBits, 8, len(ixd.Bits), func(b []byte) {
			for i, w := range ixd.Bits {
				binary.LittleEndian.PutUint64(b[8*i:], w)
			}
		}},
		{secSummary, 4, 2 * len(sn.SummaryEdges), func(b []byte) {
			for i, pr := range sn.SummaryEdges {
				binary.LittleEndian.PutUint32(b[8*i:], pr[0])
				binary.LittleEndian.PutUint32(b[8*i+4:], pr[1])
			}
		}},
	}

	// Lay out: header, table, then 8-aligned payloads.
	off := headerSize + numSections*tableRowSize
	offsets := make([]int, len(secs))
	for i, s := range secs {
		off = (off + 7) &^ 7
		offsets[i] = off
		off += s.count * int(s.elem)
	}
	buf := make([]byte, (off+7)&^7)

	copy(buf[0:8], magic)
	binary.LittleEndian.PutUint32(buf[8:], FormatVersion)
	binary.LittleEndian.PutUint32(buf[16:], uint32(sn.ShardID))
	binary.LittleEndian.PutUint32(buf[20:], uint32(sn.ShardCount))
	binary.LittleEndian.PutUint64(buf[24:], uint64(sn.TotalVertices))
	binary.LittleEndian.PutUint64(buf[32:], sn.GraphFingerprint)
	binary.LittleEndian.PutUint64(buf[40:], sn.PartitioningDigest)
	binary.LittleEndian.PutUint32(buf[56:], numSections)
	for i, s := range secs {
		row := buf[headerSize+i*tableRowSize:]
		binary.LittleEndian.PutUint32(row[0:], s.kind)
		binary.LittleEndian.PutUint32(row[4:], s.elem)
		binary.LittleEndian.PutUint64(row[8:], uint64(offsets[i]))
		binary.LittleEndian.PutUint64(row[16:], uint64(s.count))
		s.put(buf[offsets[i] : offsets[i]+s.count*int(s.elem)])
	}
	binary.LittleEndian.PutUint64(buf[48:], checksum(buf))
	return buf, nil
}

// Write encodes sn and writes it to w.
func Write(w io.Writer, sn *Snapshot) error {
	buf, err := Encode(sn)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// WriteFile atomically persists sn at path via a temp file in the same
// directory, fsync, and rename — a reader never observes a partial
// snapshot, and a crash mid-write leaves any previous snapshot intact.
// It returns the encoded byte size.
func WriteFile(path string, sn *Snapshot) (int, error) {
	buf, err := Encode(sn)
	if err != nil {
		return 0, err
	}
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, err
	}
	sn.Size = len(buf)
	return len(buf), nil
}

// DecodeHeader parses and validates only the fixed header: magic,
// version, and the identity fields. It never touches the payload, so
// it is safe and cheap on arbitrary input — the fuzz target's entry
// point, and what callers use to identify a snapshot without decoding
// it.
func DecodeHeader(data []byte) (Header, error) {
	if len(data) < headerSize {
		return Header{}, fmt.Errorf("%w: %d bytes, header needs %d", ErrCorrupt, len(data), headerSize)
	}
	if string(data[0:8]) != magic {
		return Header{}, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	version := binary.LittleEndian.Uint32(data[8:])
	if version != FormatVersion {
		return Header{}, fmt.Errorf("%w: file is version %d, this build reads %d", ErrVersion, version, FormatVersion)
	}
	h := Header{
		Version:            int(version),
		ShardID:            int(binary.LittleEndian.Uint32(data[16:])),
		ShardCount:         int(binary.LittleEndian.Uint32(data[20:])),
		GraphFingerprint:   binary.LittleEndian.Uint64(data[32:]),
		PartitioningDigest: binary.LittleEndian.Uint64(data[40:]),
	}
	tv := binary.LittleEndian.Uint64(data[24:])
	if tv > math.MaxUint32 {
		return Header{}, fmt.Errorf("%w: total vertex count %d overflows uint32", ErrCorrupt, tv)
	}
	h.TotalVertices = int(tv)
	if h.ShardCount < 1 || h.ShardID < 0 || h.ShardID >= h.ShardCount {
		return Header{}, fmt.Errorf("%w: shard %d of %d out of range", ErrCorrupt, h.ShardID, h.ShardCount)
	}
	return h, nil
}

// rawSections extracts and bounds-checks the section table, returning
// the payload byte slices indexed by kind.
func rawSections(data []byte) ([numSections + 1][]byte, [numSections + 1]int, error) {
	var payload [numSections + 1][]byte
	var counts [numSections + 1]int
	if got := binary.LittleEndian.Uint32(data[56:]); got != numSections {
		return payload, counts, fmt.Errorf("%w: %d sections, want %d", ErrCorrupt, got, numSections)
	}
	if len(data) < headerSize+numSections*tableRowSize {
		return payload, counts, fmt.Errorf("%w: truncated section table", ErrCorrupt)
	}
	prevEnd := headerSize + numSections*tableRowSize
	for i := 0; i < numSections; i++ {
		row := data[headerSize+i*tableRowSize:]
		kind := binary.LittleEndian.Uint32(row[0:])
		elem := binary.LittleEndian.Uint32(row[4:])
		off := binary.LittleEndian.Uint64(row[8:])
		count := binary.LittleEndian.Uint64(row[16:])
		if kind != uint32(i+1) {
			return payload, counts, fmt.Errorf("%w: section %d has kind %d, want canonical order", ErrCorrupt, i, kind)
		}
		if elem != 4 && elem != 8 {
			return payload, counts, fmt.Errorf("%w: section %d element size %d", ErrCorrupt, kind, elem)
		}
		// Bounds before any allocation: count*elem cannot exceed the
		// file, so a hostile table cannot make us allocate beyond it.
		if off%8 != 0 || off < uint64(prevEnd) || off > uint64(len(data)) ||
			count > uint64(len(data)) || off+count*uint64(elem) > uint64(len(data)) {
			return payload, counts, fmt.Errorf("%w: section %d spans [%d, %d+%d*%d) outside file of %d bytes",
				ErrCorrupt, kind, off, off, count, elem, len(data))
		}
		payload[kind] = data[off : off+count*uint64(elem)]
		counts[kind] = int(count)
		prevEnd = int(off + count*uint64(elem))
	}
	return payload, counts, nil
}

func decodeU32s(raw []byte, count int) []int32 {
	out := make([]int32, count)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return out
}

func decodeVIDs(raw []byte, count int) []graph.VertexID {
	out := make([]graph.VertexID, count)
	for i := range out {
		out[i] = graph.VertexID(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return out
}

func decodeOffsets(raw []byte, count int) ([]int64, error) {
	out := make([]int64, count)
	for i := range out {
		v := binary.LittleEndian.Uint64(raw[8*i:])
		if v > math.MaxInt64 {
			return nil, fmt.Errorf("%w: CSR offset %d overflows int64", ErrCorrupt, v)
		}
		out[i] = int64(v)
	}
	return out, nil
}

func decodePairs(raw []byte, count int) ([][2]uint32, error) {
	if count%2 != 0 {
		return nil, fmt.Errorf("%w: odd element count %d in a pair section", ErrCorrupt, count)
	}
	out := make([][2]uint32, count/2)
	for i := range out {
		out[i][0] = binary.LittleEndian.Uint32(raw[8*i:])
		out[i][1] = binary.LittleEndian.Uint32(raw[8*i+4:])
	}
	return out, nil
}

// Decode parses and fully validates a snapshot. Any deviation — failed
// checksum, truncation, version skew, or state that violates the
// invariants the query path relies on — is an error; a Snapshot that
// decodes is safe to serve from. Errors wrap ErrCorrupt, ErrVersion,
// or ErrMismatch for callers that care which.
func Decode(data []byte) (*Snapshot, error) {
	h, err := DecodeHeader(data)
	if err != nil {
		return nil, err
	}
	if got, want := checksum(data), binary.LittleEndian.Uint64(data[48:]); got != want {
		return nil, fmt.Errorf("%w: checksum %#x, file claims %#x", ErrCorrupt, got, want)
	}
	payload, counts, err := rawSections(data)
	if err != nil {
		return nil, err
	}

	foff, err := decodeOffsets(payload[secFOff], counts[secFOff])
	if err != nil {
		return nil, err
	}
	roff, err := decodeOffsets(payload[secROff], counts[secROff])
	if err != nil {
		return nil, err
	}
	cross32, err := decodePairs(payload[secCross], counts[secCross])
	if err != nil {
		return nil, err
	}
	cross := make([][2]graph.VertexID, len(cross32))
	for i, pr := range cross32 {
		cross[i] = [2]graph.VertexID{graph.VertexID(pr[0]), graph.VertexID(pr[1])}
	}
	summary, err := decodePairs(payload[secSummary], counts[secSummary])
	if err != nil {
		return nil, err
	}

	cd := scc.CondensationData{
		Comp:    decodeU32s(payload[secComp], counts[secComp]),
		FOff:    decodeU32s(payload[secCondFOff], counts[secCondFOff]),
		FEdges:  decodeU32s(payload[secCondFEdges], counts[secCondFEdges]),
		ROff:    decodeU32s(payload[secCondROff], counts[secCondROff]),
		REdges:  decodeU32s(payload[secCondREdges], counts[secCondREdges]),
		MOff:    decodeU32s(payload[secCondMOff], counts[secCondMOff]),
		Members: decodeU32s(payload[secCondMembers], counts[secCondMembers]),
	}
	cond, err := scc.CondensationFromData(cd)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}

	sd := partition.SubgraphData{
		ID:      h.ShardID,
		Global:  decodeVIDs(payload[secGlobal], counts[secGlobal]),
		FOff:    foff,
		FEdges:  decodeU32s(payload[secFEdges], counts[secFEdges]),
		ROff:    roff,
		REdges:  decodeU32s(payload[secREdges], counts[secREdges]),
		Entries: decodeU32s(payload[secEntries], counts[secEntries]),
		Exits:   decodeU32s(payload[secExits], counts[secExits]),
		Cross:   cross,
	}
	bits := make([]uint64, counts[secIndexBits])
	for i := range bits {
		bits[i] = binary.LittleEndian.Uint64(payload[secIndexBits][8*i:])
	}
	ix, err := scc.IndexFromData(cond, scc.IndexData{Exits: sd.Exits, Bits: bits})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	sub, err := partition.SubgraphFromData(sd, cond, ix)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	// Cross-object checks against the header: every global ID this
	// partition mentions must exist in the deployment's graph.
	for i, gv := range sd.Global {
		if int(gv) >= h.TotalVertices {
			return nil, fmt.Errorf("%w: local vertex %d is global %d, graph has %d", ErrCorrupt, i, gv, h.TotalVertices)
		}
	}
	for i, pr := range cross {
		if int(pr[0]) >= h.TotalVertices || int(pr[1]) >= h.TotalVertices {
			return nil, fmt.Errorf("%w: cross edge %d (%d->%d) outside graph of %d vertices", ErrCorrupt, i, pr[0], pr[1], h.TotalVertices)
		}
	}
	for i, pr := range summary {
		if int(pr[0]) >= h.TotalVertices || int(pr[1]) >= h.TotalVertices {
			return nil, fmt.Errorf("%w: summary edge %d (%d->%d) outside graph of %d vertices", ErrCorrupt, i, pr[0], pr[1], h.TotalVertices)
		}
	}
	return &Snapshot{Header: h, Sub: sub, SummaryEdges: summary, Size: len(data)}, nil
}

// ReadFile loads and decodes the snapshot at path. A missing file
// surfaces as an fs.ErrNotExist-wrapping error, distinct from
// corruption.
func ReadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sn, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sn, nil
}
