package snapshot_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dsr/internal/graph"
	"dsr/internal/partition"
	"dsr/internal/shard"
	"dsr/internal/snapshot"
)

// benchState holds the shared 50k-vertex fixture: an edge-list file on
// disk (cold builds must pay the parse, exactly like a real boot) and
// the corresponding snapshot file. Built once per test binary.
type benchState struct {
	graphPath string
	snapPath  string
	vertices  int
	shards    int
}

var benchOnce sync.Once
var bench benchState

func benchSetup(tb testing.TB) *benchState {
	tb.Helper()
	benchOnce.Do(func() {
		const n, k = 50_000, 4
		dir, err := os.MkdirTemp("", "dsr-snapshot-bench")
		if err != nil {
			tb.Fatal(err)
		}
		// No tb.Cleanup here: the fixture outlives any one (sub)benchmark.
		// Mostly-local edges + range partitioning keep the boundary (and
		// so the bitset index) proportional to the cut, not the graph —
		// the regime the partitioned design targets.
		rng := rand.New(rand.NewSource(50))
		b := graph.NewBuilder(n)
		for i := 0; i < 4*n; i++ {
			u := rng.Intn(n)
			v := u - 64 + rng.Intn(129)
			if v < 0 || v >= n {
				v = rng.Intn(n)
			}
			b.AddEdge(graph.VertexID(u), graph.VertexID(v))
		}
		g := b.Build()
		graphPath := filepath.Join(dir, "bench.txt")
		f, err := os.Create(graphPath)
		if err != nil {
			tb.Fatal(err)
		}
		if err := graph.WriteEdgeList(f, g); err != nil {
			tb.Fatal(err)
		}
		if err := f.Close(); err != nil {
			tb.Fatal(err)
		}
		pt, err := graph.RangePartition(g, k)
		if err != nil {
			tb.Fatal(err)
		}
		sh := shard.New(0, partition.ExtractOne(g, pt, 0))
		sn := sh.Snapshot(k, n, g.Fingerprint(), pt.Digest())
		snapPath := filepath.Join(dir, snapshot.Filename(0, k))
		if _, err := snapshot.WriteFile(snapPath, sn); err != nil {
			tb.Fatal(err)
		}
		bench = benchState{graphPath: graphPath, snapPath: snapPath, vertices: n, shards: k}
	})
	return &bench
}

// coldBuild is the no-snapshot boot path: read and parse the edge
// list, partition the whole graph, extract this shard's partition, run
// Tarjan + the bitset index, and emit the boundary summary.
func (st *benchState) coldBuild(tb testing.TB) *shard.Shard {
	tb.Helper()
	g, err := graph.LoadEdgeListFile(st.graphPath)
	if err != nil {
		tb.Fatal(err)
	}
	pt, err := graph.RangePartition(g, st.shards)
	if err != nil {
		tb.Fatal(err)
	}
	sh := shard.New(0, partition.ExtractOne(g, pt, 0))
	sh.Summary()
	return sh
}

// load is the snapshot boot path: read, checksum, validate, and preset
// the summary — no graph file, no partitioner, no Tarjan.
func (st *benchState) load(tb testing.TB) *shard.Shard {
	tb.Helper()
	sn, err := snapshot.ReadFile(st.snapPath)
	if err != nil {
		tb.Fatal(err)
	}
	sh := shard.FromSnapshot(sn)
	sh.Summary()
	return sh
}

func BenchmarkColdBuild(b *testing.B) {
	st := benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st.coldBuild(b)
	}
}

func BenchmarkSnapshotLoad(b *testing.B) {
	st := benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st.load(b)
	}
}

// TestSnapshotLoadBeatsColdBuild enforces the headline property the
// subsystem exists for: booting a 50k-vertex shard from its snapshot is
// at least 5x faster than rebuilding from the edge list. The real ratio
// is far larger (the load skips parsing 100k edge lines and partitioning
// the whole graph), so the 5x floor has wide scheduling margin; best-of-3
// on each side absorbs the rest.
func TestSnapshotLoadBeatsColdBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 50k-vertex fixture")
	}
	st := benchSetup(t)
	best := func(f func(testing.TB) *shard.Shard) time.Duration {
		var b time.Duration
		for i := 0; i < 3; i++ {
			t0 := time.Now()
			f(t)
			if d := time.Since(t0); i == 0 || d < b {
				b = d
			}
		}
		return b
	}
	buildT := best(st.coldBuild)
	loadT := best(st.load)
	t.Logf("cold build %v, snapshot load %v (%.1fx)", buildT, loadT, float64(buildT)/float64(loadT))
	if loadT*5 > buildT {
		t.Fatalf("snapshot load (%v) is not >=5x faster than cold build (%v)", loadT, buildT)
	}
}
