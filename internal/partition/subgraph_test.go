package partition

import (
	"math/rand"
	"sort"
	"testing"

	"dsr/internal/graph"
)

// twoBlock builds the 8-vertex fixture graph (two 4-cycles with a bridge
// 3->4) range-partitioned into 2 parts: {0..3} and {4..7}.
func twoBlock(t *testing.T) (*graph.Graph, *graph.Partitioning) {
	t.Helper()
	b := graph.NewBuilder(8)
	edges := [][2]graph.VertexID{
		{0, 1}, {1, 2}, {2, 3}, {3, 0}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 4},
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	g := b.Build()
	pt, err := graph.RangePartition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	return g, pt
}

func TestExtractShape(t *testing.T) {
	g, pt := twoBlock(t)
	subs, local := Extract(g, pt)
	if len(subs) != 2 {
		t.Fatalf("got %d subgraphs, want 2", len(subs))
	}
	if subs[0].NumVertices() != 4 || subs[1].NumVertices() != 4 {
		t.Fatalf("subgraph sizes %d/%d, want 4/4", subs[0].NumVertices(), subs[1].NumVertices())
	}
	// Each vertex maps back to itself through (partition, local).
	for v := 0; v < g.NumVertices(); v++ {
		s := subs[pt.Part[v]]
		if got := s.GlobalID(local[v]); got != graph.VertexID(v) {
			t.Errorf("GlobalID(local[%d]) = %d", v, got)
		}
	}
	// Partition 0 has no entries (nothing crosses into it) and one exit (3).
	if len(subs[0].Entries) != 0 {
		t.Errorf("partition 0 entries = %v, want none", subs[0].Entries)
	}
	if len(subs[0].Exits) != 1 || subs[0].GlobalID(subs[0].Exits[0]) != 3 {
		t.Errorf("partition 0 exits wrong")
	}
	// Partition 1 has one entry (4) and no exits.
	if len(subs[1].Entries) != 1 || subs[1].GlobalID(subs[1].Entries[0]) != 4 {
		t.Errorf("partition 1 entries wrong")
	}
	if len(subs[1].Exits) != 0 {
		t.Errorf("partition 1 exits = %v, want none", subs[1].Exits)
	}
}

func TestReachForwardBackward(t *testing.T) {
	g, pt := twoBlock(t)
	subs, local := Extract(g, pt)
	s0 := subs[pt.Part[0]]
	sc := NewScratch(s0.NumVertices())

	reach := s0.ReachForward([]int32{local[0]}, sc)
	if len(reach) != 4 {
		t.Fatalf("forward reach from 0 inside cycle = %d vertices, want 4", len(reach))
	}
	back := s0.ReachBackward([]int32{local[0]}, sc)
	if len(back) != 4 {
		t.Fatalf("backward reach from 0 inside cycle = %d vertices, want 4", len(back))
	}
}

func TestReachStaysInPartition(t *testing.T) {
	g, pt := twoBlock(t)
	subs, local := Extract(g, pt)
	s0 := subs[pt.Part[3]]
	sc := NewScratch(s0.NumVertices())
	// The bridge 3->4 is cross-partition: forward reach from 3 must not
	// include any vertex of partition 1.
	for _, v := range s0.ReachForward([]int32{local[3]}, sc) {
		if gid := s0.GlobalID(v); gid >= 4 {
			t.Fatalf("local reach escaped partition: reached global %d", gid)
		}
	}
}

func TestSummaryCompression(t *testing.T) {
	// Chain across three range partitions of {0,1},{2,3},{4,5}:
	// 0->1->2->3->4->5. Middle partition: entry 2 reaches exit 3.
	b := graph.NewBuilder(6)
	for i := 0; i < 5; i++ {
		b.AddEdge(graph.VertexID(i), graph.VertexID(i+1))
	}
	g := b.Build()
	pt, err := graph.RangePartition(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	subs, _ := Extract(g, pt)
	pairs := subs[1].Summary(nil)
	if len(pairs) != 1 || pairs[0] != [2]graph.VertexID{2, 3} {
		t.Fatalf("middle partition summary = %v, want [[2 3]]", pairs)
	}
	// First partition has no entries -> empty summary; last has no exits.
	if got := subs[0].Summary(nil); len(got) != 0 {
		t.Fatalf("first partition summary = %v, want empty", got)
	}
	if got := subs[2].Summary(nil); len(got) != 0 {
		t.Fatalf("last partition summary = %v, want empty", got)
	}
}

func TestSummaryEntryIsExit(t *testing.T) {
	// 0 -> 1 -> 2 with singleton middle partition {1}: vertex 1 is both
	// entry and exit, so its summary must contain the pair (1, 1).
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	pt, err := graph.RangePartition(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	subs, _ := Extract(g, pt)
	pairs := subs[1].Summary(nil)
	if len(pairs) != 1 || pairs[0] != [2]graph.VertexID{1, 1} {
		t.Fatalf("singleton boundary summary = %v, want [[1 1]]", pairs)
	}
}

func TestSummaryDisconnectedBoundary(t *testing.T) {
	// Partition {2,3} of 0->2, 3->4 (range k=3 over 5 vertices... build
	// explicitly): entry 2 cannot reach exit 3, so no summary edge.
	b := graph.NewBuilder(6)
	b.AddEdge(0, 2) // into middle partition
	b.AddEdge(3, 4) // out of middle partition
	g := b.Build()
	pt, err := graph.RangePartition(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	subs, _ := Extract(g, pt)
	if got := subs[1].Summary(nil); len(got) != 0 {
		t.Fatalf("disconnected boundary summary = %v, want empty", got)
	}
}

func sortPairs(p [][2]graph.VertexID) {
	sort.Slice(p, func(i, j int) bool {
		if p[i][0] != p[j][0] {
			return p[i][0] < p[j][0]
		}
		return p[i][1] < p[j][1]
	})
}

func TestSummaryMultipleExits(t *testing.T) {
	// Middle partition {2,3} with entry 2, internal edge 2->3, and both
	// 2 and 3 exiting: summary must contain (2,2) and (2,3).
	b := graph.NewBuilder(6)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	b.AddEdge(2, 4)
	b.AddEdge(3, 5)
	g := b.Build()
	pt, err := graph.RangePartition(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	subs, _ := Extract(g, pt)
	pairs := subs[1].Summary(nil)
	sortPairs(pairs)
	want := [][2]graph.VertexID{{2, 2}, {2, 3}}
	if len(pairs) != 2 || pairs[0] != want[0] || pairs[1] != want[1] {
		t.Fatalf("summary = %v, want %v", pairs, want)
	}
}

// TestSummaryIndexVsBFSDifferential pits the SCC-bitset-index summary
// against the per-entry-BFS reference on randomized graphs across both
// partitioners: after sorting, the pair sets must be identical. One
// shared Scratch serves every partition of every graph, exercising the
// scratch-reuse path as well.
func TestSummaryIndexVsBFSDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(20260728))
	const graphs = 220
	const maxN = 120
	sc := NewScratch(maxN)
	checkedPartitions := 0
	for gi := 0; gi < graphs; gi++ {
		n := 1 + rng.Intn(maxN)
		deg := []float64{0.5, 1, 2, 4}[rng.Intn(4)]
		b := graph.NewBuilder(n)
		for i := 0; i < int(float64(n)*deg); i++ {
			b.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)))
		}
		g := b.Build()
		k := 2 + rng.Intn(4)
		var pt *graph.Partitioning
		var err error
		if rng.Intn(2) == 0 {
			pt, err = graph.HashPartition(g, k)
		} else {
			pt, err = graph.RangePartition(g, k)
		}
		if err != nil {
			t.Fatal(err)
		}
		subs, _ := Extract(g, pt)
		for _, s := range subs {
			got := s.Summary(sc)
			want := s.SummaryBFS(sc)
			sortPairs(got)
			sortPairs(want)
			if len(got) != len(want) {
				t.Fatalf("graph %d partition %d: index summary has %d pairs, BFS has %d\nindex: %v\nbfs:   %v",
					gi, s.ID, len(got), len(want), got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("graph %d partition %d: pair %d differs: index %v, BFS %v",
						gi, s.ID, i, got[i], want[i])
				}
			}
			checkedPartitions++
		}
	}
	if checkedPartitions < 200 {
		t.Fatalf("only %d partitions checked, want >= 200", checkedPartitions)
	}
}
