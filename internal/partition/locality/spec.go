package locality

import (
	"fmt"
	"strconv"
	"strings"

	"dsr/internal/graph"
)

// ParseSpec resolves a -partitioner flag value to a Partitioner:
//
//	hash
//	range
//	locality
//	locality:seed=7,rounds=12,balance=1.2,refine=4
//
// Every process of a deployment must pass the identical spec — the
// partitioners are deterministic, so identical specs mean identical
// placements, and the handshake's partitioning digest rejects anything
// else. refine=-1 disables refinement (0 keeps the default).
func ParseSpec(spec string) (graph.Partitioner, error) {
	name, rest, hasOpts := strings.Cut(spec, ":")
	switch name {
	case "hash":
		if hasOpts {
			return nil, fmt.Errorf("partitioner %q takes no options", name)
		}
		return graph.Hash(), nil
	case "range":
		if hasOpts {
			return nil, fmt.Errorf("partitioner %q takes no options", name)
		}
		return graph.Range(), nil
	case "locality":
		opts, err := parseOpts(rest)
		if err != nil {
			return nil, err
		}
		return New(opts), nil
	default:
		return nil, fmt.Errorf("unknown partitioner %q (want hash, range, or locality[:k=v,...])", name)
	}
}

func parseOpts(s string) (Options, error) {
	var opts Options
	if s == "" {
		return opts, nil
	}
	for _, kv := range strings.Split(s, ",") {
		key, val, found := strings.Cut(kv, "=")
		if !found {
			return opts, fmt.Errorf("locality option %q: want key=value", kv)
		}
		var err error
		switch key {
		case "seed":
			opts.Seed, err = strconv.ParseInt(val, 10, 64)
		case "rounds":
			opts.Rounds, err = strconv.Atoi(val)
		case "refine":
			opts.RefinePasses, err = strconv.Atoi(val)
		case "balance":
			opts.Balance, err = strconv.ParseFloat(val, 64)
		default:
			return opts, fmt.Errorf("unknown locality option %q (want seed, rounds, refine, or balance)", key)
		}
		if err != nil {
			return opts, fmt.Errorf("locality option %q: %v", kv, err)
		}
	}
	return opts, nil
}
