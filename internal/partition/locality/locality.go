// Package locality implements a locality-aware graph partitioner: a
// multilevel scheme that minimizes the number of boundary vertices (and
// cut edges), which is exactly what the DSR boundary graph's size — and
// therefore cross-partition query traffic — depends on. Hash
// partitioning makes nearly every vertex a boundary vertex on graphs
// with community structure; this partitioner finds the communities.
//
// Three phases, all deterministic for a fixed Options.Seed:
//
//  1. Coarsening — iterative label propagation (LPA): every vertex
//     repeatedly adopts the most frequent label among its undirected
//     neighbors, subject to a cluster-size cap so no cluster outgrows a
//     partition. Rounds visit vertices in a seeded random order (LPA
//     degenerates badly under a fixed scan order) and stop early when a
//     round moves nothing.
//  2. Cluster placement — greedy bin-packing of clusters onto the k
//     partitions, largest cluster first, each placed on the partition
//     it shares the most edge weight with among those with room
//     (clusters that fit nowhere whole are split vertex-by-vertex, so
//     the size cap holds unconditionally).
//  3. Refinement — Fiduccia–Mattheyses-style single-vertex moves: passes
//     over the vertices move any vertex whose cut-edge gain (cross
//     edges removed minus cross edges added) is strictly positive and
//     whose destination partition has room, until a pass moves nothing.
//
// The output is an ordinary *graph.Partitioning, so everything
// downstream (subgraph extraction, boundary compression, shards) is
// untouched; New adapts it to the graph.Partitioner interface used by
// core and the CLIs.
package locality

import (
	"fmt"
	"math"
	"sort"

	"dsr/internal/graph"
)

// Options tunes the partitioner. The zero value selects defaults; all
// fields are optional.
type Options struct {
	// Seed drives vertex visit order and tie-breaking. Coordinator and
	// shards must use the same seed (the handshake's partitioning digest
	// catches disagreement). Default 0 is a valid seed.
	Seed int64
	// Rounds caps LPA iterations. Default 10.
	Rounds int
	// Balance caps partition (and cluster) size at Balance * n/k.
	// Default 1.15. Values <= 1 would make exact packing impossible and
	// are rejected.
	Balance float64
	// RefinePasses caps refinement sweeps. Default 6; 0 means default,
	// negative disables refinement.
	RefinePasses int
}

func (o Options) withDefaults() Options {
	if o.Rounds == 0 {
		o.Rounds = 10
	}
	if o.Balance == 0 {
		o.Balance = 1.15
	}
	if o.RefinePasses == 0 {
		o.RefinePasses = 6
	}
	return o
}

// partitioner adapts Partition to graph.Partitioner.
type partitioner struct{ opts Options }

// New returns a graph.Partitioner running the locality-aware scheme
// with the given options.
func New(opts Options) graph.Partitioner { return partitioner{opts} }

func (p partitioner) Name() string { return "locality" }
func (p partitioner) Partition(g *graph.Graph, k int) (*graph.Partitioning, error) {
	return Partition(g, k, p.opts)
}

// Partition splits g into k parts, minimizing boundary vertices and cut
// edges. It is deterministic for fixed (g, k, opts).
func Partition(g *graph.Graph, k int, opts Options) (*graph.Partitioning, error) {
	if k < 1 {
		return nil, fmt.Errorf("locality: partition count must be >= 1, got %d", k)
	}
	opts = opts.withDefaults()
	if opts.Balance <= 1 {
		return nil, fmt.Errorf("locality: balance must be > 1, got %g", opts.Balance)
	}
	if opts.Rounds < 1 {
		return nil, fmt.Errorf("locality: rounds must be >= 1, got %d", opts.Rounds)
	}
	n := g.NumVertices()
	labels := make([]int32, n)
	if k == 1 || n == 0 {
		// Single partition (or empty graph): nothing to optimize.
		return finish(g, k, labels)
	}
	// capacity is the hard per-partition (and per-cluster: a cluster
	// larger than a partition could never be placed) size cap. It is
	// always >= ceil(n/k), so packing every vertex is always possible.
	capacity := int32(math.Ceil(opts.Balance * float64(n) / float64(k)))
	if ideal := int32((n + k - 1) / k); capacity < ideal {
		capacity = ideal
	}

	rng := newSplitMix(uint64(opts.Seed))
	coarsen(g, labels, capacity, opts.Rounds, rng)
	part := pack(g, labels, k, capacity)
	if opts.RefinePasses > 0 {
		refine(g, part, k, capacity, opts.RefinePasses)
	}
	return finish(g, k, part)
}

// finish runs the labels through graph.PartitionWith, which validates
// them and computes the entry/exit boundary marks from the edge set.
func finish(g *graph.Graph, k int, part []int32) (*graph.Partitioning, error) {
	return graph.PartitionWith(g, k, func(v graph.VertexID, _, _ int) int32 { return part[v] })
}

// coarsen runs capped label propagation over the undirected view of g,
// leaving the cluster label of every vertex in labels. Labels are drawn
// from the vertex-ID space (a cluster is named after some member).
func coarsen(g *graph.Graph, labels []int32, capacity int32, rounds int, rng *splitMix) {
	n := len(labels)
	for v := range labels {
		labels[v] = int32(v)
	}
	size := make([]int32, n) // cluster label -> member count
	for v := range size {
		size[v] = 1
	}
	// count is an epoch-free scratch: count[l] is only meaningful for
	// labels recorded in touched, and is re-zeroed after every vertex.
	count := make([]int32, n)
	touched := make([]int32, 0, 64)
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	for round := 0; round < rounds; round++ {
		rng.shuffle(order)
		moved := 0
		for _, v := range order {
			cur := labels[v]
			touched = touched[:0]
			for _, w := range g.Out(graph.VertexID(v)) {
				if int32(w) == v {
					continue
				}
				l := labels[w]
				if count[l] == 0 {
					touched = append(touched, l)
				}
				count[l]++
			}
			for _, w := range g.In(graph.VertexID(v)) {
				if int32(w) == v {
					continue
				}
				l := labels[w]
				if count[l] == 0 {
					touched = append(touched, l)
				}
				count[l]++
			}
			// Pick the heaviest neighbor label with room; prefer the
			// current label on ties (stability), then the smallest label
			// (determinism regardless of visit order).
			best, bestCount := cur, count[cur]
			for _, l := range touched {
				if l == cur || size[l] >= capacity {
					continue
				}
				c := count[l]
				// Only a strictly heavier label displaces the current one
				// (stability); among equally-heavy challengers the smallest
				// label wins (determinism regardless of visit order).
				if c > bestCount || (c == bestCount && best != cur && l < best) {
					best, bestCount = l, c
				}
			}
			for _, l := range touched {
				count[l] = 0
			}
			if best != cur {
				size[cur]--
				size[best]++
				labels[v] = best
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}

// pack densifies the cluster labels and greedily bin-packs clusters
// onto k partitions: clusters in decreasing size order, each placed on
// the partition it shares the most inter-cluster edge weight with among
// partitions with room. A cluster no partition can hold whole (packing
// fragmentation) is split across least-loaded partitions vertex by
// vertex, so the capacity cap holds unconditionally. Returns the
// per-vertex partition assignment.
func pack(g *graph.Graph, labels []int32, k int, capacity int32) []int32 {
	n := len(labels)
	// Densify cluster IDs.
	dense := make([]int32, n) // label -> dense cluster id, lazily assigned
	for i := range dense {
		dense[i] = -1
	}
	var sizes []int32
	cluster := make([]int32, n) // vertex -> dense cluster id
	for v := 0; v < n; v++ {
		l := labels[v]
		if dense[l] < 0 {
			dense[l] = int32(len(sizes))
			sizes = append(sizes, 0)
		}
		cluster[v] = dense[l]
		sizes[cluster[v]]++
	}
	nc := len(sizes)

	// Inter-cluster edge weights, as adjacency lists (a -> (b, weight)).
	type cnbr struct {
		to int32
		w  int64
	}
	weight := map[uint64]int64{}
	g.Edges(func(u, v graph.VertexID) {
		a, b := cluster[u], cluster[v]
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		weight[uint64(a)<<32|uint64(uint32(b))]++
	})
	cadj := make([][]cnbr, nc)
	for key, w := range weight {
		a, b := int32(key>>32), int32(uint32(key))
		cadj[a] = append(cadj[a], cnbr{b, w})
		cadj[b] = append(cadj[b], cnbr{a, w})
	}

	// Largest-first placement. Sorting is (size desc, id asc): fully
	// deterministic, and big clusters claim whole partitions before the
	// remnants are used as filler.
	orderC := make([]int32, nc)
	for i := range orderC {
		orderC[i] = int32(i)
	}
	sort.Slice(orderC, func(i, j int) bool {
		a, b := orderC[i], orderC[j]
		if sizes[a] != sizes[b] {
			return sizes[a] > sizes[b]
		}
		return a < b
	})
	assign := make([]int32, nc)
	for i := range assign {
		assign[i] = -1
	}
	load := make([]int32, k)
	aff := make([]int64, k)
	for _, c := range orderC {
		for p := range aff {
			aff[p] = 0
		}
		for _, nb := range cadj[c] {
			if a := assign[nb.to]; a >= 0 {
				aff[a] += nb.w
			}
		}
		best := int32(-1)
		for p := 0; p < k; p++ {
			if load[p]+sizes[c] > capacity {
				continue
			}
			if best < 0 || aff[p] > aff[best] ||
				(aff[p] == aff[best] && load[p] < load[best]) {
				best = int32(p)
			}
		}
		// best < 0 means bin-packing fragmentation: every partition has
		// room left, just not sizes[c] of it in one place (e.g. three
		// size-4 clusters into two capacity-7 partitions). The cluster is
		// split vertex-by-vertex below instead of dumped whole onto one
		// partition, which would silently blow the Balance cap.
		if best >= 0 {
			assign[c] = best
			load[best] += sizes[c]
		}
	}
	part := make([]int32, n)
	for v := 0; v < n; v++ {
		c := cluster[v]
		if assign[c] >= 0 {
			part[v] = assign[c]
			continue
		}
		// Split-cluster vertex: least-loaded partition with room. One
		// always exists — capacity >= ceil(n/k), so all k partitions at
		// capacity would already hold every vertex.
		best := int32(-1)
		for p := int32(0); p < int32(k); p++ {
			if load[p] < capacity && (best < 0 || load[p] < load[best]) {
				best = p
			}
		}
		part[v] = best
		load[best]++
	}
	return part
}

// refine performs FM-style single-vertex moves over the undirected view:
// a vertex moves to the partition holding most of its neighbors when
// that strictly reduces the number of cut edges and the destination has
// room. Each pass scans vertices in ID order; passes stop early once
// nothing moves. Total cut weight strictly decreases with every move,
// so termination is guaranteed without FM's tenure bookkeeping.
func refine(g *graph.Graph, part []int32, k int, capacity int32, passes int) {
	n := len(part)
	load := make([]int32, k)
	for _, p := range part {
		load[p]++
	}
	ext := make([]int64, k) // neighbors of v per partition, rebuilt per vertex
	for pass := 0; pass < passes; pass++ {
		moved := 0
		for v := 0; v < n; v++ {
			p := part[v]
			for q := range ext {
				ext[q] = 0
			}
			deg := 0
			for _, w := range g.Out(graph.VertexID(v)) {
				if int(w) != v {
					ext[part[w]]++
					deg++
				}
			}
			for _, w := range g.In(graph.VertexID(v)) {
				if int(w) != v {
					ext[part[w]]++
					deg++
				}
			}
			if deg == 0 || int64(deg) == ext[p] {
				continue // isolated, or fully internal already
			}
			best, bestGain := p, int64(0)
			for q := int32(0); q < int32(k); q++ {
				if q == p || load[q]+1 > capacity {
					continue
				}
				// gain = cut edges removed - cut edges added when v moves
				// p -> q: edges to q stop being cut, edges to p start.
				if gain := ext[q] - ext[p]; gain > bestGain {
					best, bestGain = q, gain
				}
			}
			if best != p {
				load[p]--
				load[best]++
				part[v] = best
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}

// splitMix is a tiny deterministic PRNG (splitmix64) used for visit
// order shuffles; math/rand would also work, but an explicit generator
// makes the determinism contract obvious and dependency-free.
type splitMix struct{ state uint64 }

func newSplitMix(seed uint64) *splitMix {
	// Avoid the all-zero fixed point families by pre-mixing the seed.
	return &splitMix{state: seed + 0x9E3779B97F4A7C15}
}

func (s *splitMix) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// shuffle is a Fisher–Yates shuffle driven by next().
func (s *splitMix) shuffle(xs []int32) {
	for i := len(xs) - 1; i > 0; i-- {
		j := int(s.next() % uint64(i+1))
		xs[i], xs[j] = xs[j], xs[i]
	}
}
