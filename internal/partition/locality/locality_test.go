package locality_test

import (
	"fmt"
	"slices"
	"testing"

	"dsr/internal/graph"
	"dsr/internal/graph/gen"
	"dsr/internal/partition"
	"dsr/internal/partition/locality"
)

// plantedFixture is the shared clustered benchmark graph: 50k vertices,
// 4 planted communities, dense inside (intra out-degree 8), sparse
// between (inter out-degree 0.05), community membership scattered
// across the ID space so nothing but the edges reveals the structure.
func plantedFixture(tb testing.TB) (*graph.Graph, []int32) {
	tb.Helper()
	g, truth, err := gen.Planted(gen.PlantedConfig{
		N: 50000, K: 4, IntraDeg: 8, InterDeg: 0.05, Seed: 42, Shuffle: true,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return g, truth
}

// TestLocalityBeatsHashOnClusteredGraph is the PR's acceptance
// criterion: on a 50k-vertex planted-partition graph with k=4, the
// locality partitioner must cut the boundary-vertex count by at least
// 3x versus hash partitioning. (In practice the margin is far larger:
// hash makes essentially every vertex boundary, locality only the
// vertices with inter-community edges.)
func TestLocalityBeatsHashOnClusteredGraph(t *testing.T) {
	g, _ := plantedFixture(t)
	const k = 4

	hashPt, err := graph.HashPartition(g, k)
	if err != nil {
		t.Fatal(err)
	}
	locPt, err := locality.Partition(g, k, locality.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hs := partition.ComputeStats(g, hashPt)
	ls := partition.ComputeStats(g, locPt)
	t.Logf("hash:     %v", hs)
	t.Logf("locality: %v", ls)

	if ls.BoundaryVertices*3 > hs.BoundaryVertices {
		t.Errorf("locality boundary %d not >= 3x better than hash boundary %d",
			ls.BoundaryVertices, hs.BoundaryVertices)
	}
	if ls.CutEdges >= hs.CutEdges {
		t.Errorf("locality cut edges %d not better than hash %d", ls.CutEdges, hs.CutEdges)
	}
	if ls.MaxPart > int(1.15*float64(g.NumVertices())/k)+1 {
		t.Errorf("locality max partition %d violates balance cap", ls.MaxPart)
	}
	if ls.MinPart == 0 {
		t.Errorf("locality left a partition empty on a 4-community graph")
	}
}

// TestPartitionDeterminism: identical inputs must give identical
// assignments — the distributed deployment depends on it — and a
// different seed is allowed to (and here does) give a different one.
func TestPartitionDeterminism(t *testing.T) {
	g, _, err := gen.Planted(gen.PlantedConfig{
		N: 2000, K: 3, IntraDeg: 6, InterDeg: 0.5, Seed: 7, Shuffle: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := locality.Partition(g, 3, locality.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := locality.Partition(g, 3, locality.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(a.Part, b.Part) {
		t.Fatal("same seed produced different partitionings")
	}
	if a.Digest() != b.Digest() {
		t.Fatal("same partitioning, different digests")
	}
}

func TestPartitionEdgeCases(t *testing.T) {
	empty := graph.NewBuilder(0).Build()
	if pt, err := locality.Partition(empty, 4, locality.Options{}); err != nil || pt.K != 4 {
		t.Fatalf("empty graph: %v, %v", pt, err)
	}

	// k=1: everything lands in partition 0, nothing is boundary.
	line := graph.NewBuilder(0)
	for i := 0; i < 10; i++ {
		line.AddEdge(graph.VertexID(i), graph.VertexID(i+1))
	}
	lg := line.Build()
	pt, err := locality.Partition(lg, 1, locality.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if nb := pt.NumBoundary(); nb != 0 {
		t.Fatalf("k=1 has %d boundary vertices, want 0", nb)
	}

	// More partitions than vertices: valid, some partitions stay empty.
	pt, err = locality.Partition(lg, 64, locality.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := partition.ComputeStats(lg, pt); got.NumVertices != 11 {
		t.Fatalf("k>n stats: %v", got)
	}

	// Bad options are rejected, not silently clamped.
	if _, err := locality.Partition(lg, 0, locality.Options{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := locality.Partition(lg, 2, locality.Options{Balance: 0.9}); err == nil {
		t.Error("balance <= 1 accepted")
	}
	if _, err := locality.Partition(lg, 2, locality.Options{Rounds: -1}); err == nil {
		t.Error("negative rounds accepted")
	}
}

// TestPartitionBalanceCap: even on a graph that "wants" one giant
// cluster, no partition may exceed the balance cap.
func TestPartitionBalanceCap(t *testing.T) {
	// A dense 300-vertex random-ish community: LPA would happily make it
	// one cluster, but the cap must split it across k=3.
	b := graph.NewBuilder(300)
	for v := 0; v < 300; v++ {
		for j := 1; j <= 5; j++ {
			b.AddEdge(graph.VertexID(v), graph.VertexID((v*7+j*13)%300))
		}
	}
	g := b.Build()
	pt, err := locality.Partition(g, 3, locality.Options{Balance: 1.1})
	if err != nil {
		t.Fatal(err)
	}
	st := partition.ComputeStats(g, pt)
	if cap := int32(110); int32(st.MaxPart) > cap {
		t.Fatalf("max partition %d exceeds cap %d: %v", st.MaxPart, cap, st)
	}
}

// TestPartitionPackingFragmentation: three tight 4-cliques into two
// partitions of capacity ceil(1.15*12/2)=7 — no partition can hold two
// whole clusters, so one cluster must be split rather than dumped onto
// a partition past the Balance cap (the bug this test pins: the old
// fallback assigned the leftover cluster whole, producing an 8-vertex
// partition against a documented cap of 7).
func TestPartitionPackingFragmentation(t *testing.T) {
	b := graph.NewBuilder(12)
	for c := 0; c < 3; c++ {
		base := graph.VertexID(c * 4)
		for i := graph.VertexID(0); i < 4; i++ {
			for j := graph.VertexID(0); j < 4; j++ {
				if i != j {
					b.AddEdge(base+i, base+j)
				}
			}
		}
	}
	g := b.Build()
	pt, err := locality.Partition(g, 2, locality.Options{Balance: 1.15})
	if err != nil {
		t.Fatal(err)
	}
	st := partition.ComputeStats(g, pt)
	if st.MaxPart > 7 {
		t.Fatalf("max partition %d exceeds capacity 7 (balance cap violated): %v", st.MaxPart, st)
	}
	if st.MinPart < 5 {
		t.Errorf("split fallback left partitions unbalanced: %v", st)
	}
}

func TestParseSpec(t *testing.T) {
	for _, c := range []struct {
		spec, name string
	}{
		{"hash", "hash"},
		{"range", "range"},
		{"locality", "locality"},
		{"locality:seed=9,rounds=12,balance=1.2,refine=-1", "locality"},
	} {
		p, err := locality.ParseSpec(c.spec)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.spec, err)
			continue
		}
		if p.Name() != c.name {
			t.Errorf("ParseSpec(%q).Name() = %q, want %q", c.spec, p.Name(), c.name)
		}
	}
	for _, bad := range []string{
		"", "metis", "hash:seed=1", "range:x", "locality:seed", "locality:seed=abc",
		"locality:nope=1",
	} {
		if _, err := locality.ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
	// The parsed locality partitioner must behave like the direct call.
	g, _, err := gen.Planted(gen.PlantedConfig{N: 500, K: 2, IntraDeg: 4, InterDeg: 0.2, Seed: 3, Shuffle: true})
	if err != nil {
		t.Fatal(err)
	}
	p, err := locality.ParseSpec("locality:seed=5")
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := locality.Partition(g, 2, locality.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got.Part, want.Part) {
		t.Fatal("ParseSpec(locality:seed=5) disagrees with Partition(Options{Seed: 5})")
	}
}

// BenchmarkPartitionQuality measures partitioner quality (not just
// speed) on the planted clustered graph: boundary vertices, cut edges,
// and balance are reported as custom metrics, so the benchmark JSON
// artifacts record partition quality per commit alongside ns/op.
func BenchmarkPartitionQuality(b *testing.B) {
	g, _ := plantedFixture(b)
	const k = 4
	for _, bc := range []struct {
		name string
		part func() (*graph.Partitioning, error)
	}{
		{"hash", func() (*graph.Partitioning, error) { return graph.HashPartition(g, k) }},
		{"range", func() (*graph.Partitioning, error) { return graph.RangePartition(g, k) }},
		{"locality", func() (*graph.Partitioning, error) { return locality.Partition(g, k, locality.Options{}) }},
	} {
		b.Run(bc.name, func(b *testing.B) {
			var st partition.Stats
			for i := 0; i < b.N; i++ {
				pt, err := bc.part()
				if err != nil {
					b.Fatal(err)
				}
				st = partition.ComputeStats(g, pt)
			}
			b.ReportMetric(float64(st.BoundaryVertices), "boundary")
			b.ReportMetric(float64(st.CutEdges), "cutedges")
			b.ReportMetric(st.Balance, "balance")
		})
	}
}

// ExampleParseSpec documents the flag syntax.
func ExampleParseSpec() {
	p, _ := locality.ParseSpec("locality:seed=7")
	fmt.Println(p.Name())
	// Output: locality
}
