package partition

import (
	"fmt"
	"slices"

	"dsr/internal/graph"
	"dsr/internal/scc"
)

// SubgraphData is the raw array content of a Subgraph, exposed so a
// persisted index snapshot can round-trip the extracted partition
// without re-reading the edge list or re-running ExtractOne. Data
// returns live views (no copies); SubgraphFromData validates and
// reassembles, attaching an already-reconstructed condensation and
// reachability index so nothing is re-derived on load.
type SubgraphData struct {
	ID             int
	Global         []graph.VertexID // local -> global, strictly increasing
	FOff           []int64
	FEdges         []int32
	ROff           []int64
	REdges         []int32
	Entries, Exits []int32
	Cross          [][2]graph.VertexID
}

// Data returns views of the subgraph's raw arrays. Callers must treat
// them as read-only: they alias the live subgraph.
func (s *Subgraph) Data() SubgraphData {
	return SubgraphData{
		ID:      s.ID,
		Global:  s.global,
		FOff:    s.foff,
		FEdges:  s.fedges,
		ROff:    s.roff,
		REdges:  s.redges,
		Entries: s.Entries,
		Exits:   s.Exits,
		Cross:   s.Cross,
	}
}

// checkLocalCSR validates one CSR half of the subgraph: offsets start
// at 0, never decrease, end exactly at the edge-array length, and every
// edge target is a valid local vertex.
func checkLocalCSR(name string, off []int64, edges []int32, n int) error {
	if len(off) != n+1 {
		return fmt.Errorf("partition: %s offsets have %d entries for %d vertices", name, len(off), n)
	}
	if off[0] != 0 {
		return fmt.Errorf("partition: %s offsets must start at 0", name)
	}
	for i := 1; i <= n; i++ {
		if off[i] < off[i-1] {
			return fmt.Errorf("partition: %s offsets decrease at %d", name, i)
		}
	}
	if int(off[n]) != len(edges) {
		return fmt.Errorf("partition: %s offsets end at %d, want %d", name, off[n], len(edges))
	}
	for i, e := range edges {
		if e < 0 || int(e) >= n {
			return fmt.Errorf("partition: %s edge %d targets %d, want [0,%d)", name, i, e, n)
		}
	}
	return nil
}

// checkBoundaryList validates an Entries/Exits list: strictly
// increasing local IDs (the order Extract and ExtractOne produce, which
// Summary and the canonical wire encoding rely on) within [0, n).
func checkBoundaryList(name string, list []int32, n int) error {
	for i, v := range list {
		if v < 0 || int(v) >= n {
			return fmt.Errorf("partition: %s[%d] = %d, want [0,%d)", name, i, v, n)
		}
		if i > 0 && list[i-1] >= v {
			return fmt.Errorf("partition: %s not strictly increasing at %d", name, i)
		}
	}
	return nil
}

// SubgraphFromData validates d and reassembles a Subgraph with cond and
// ix installed as its cached condensation and reachability index. The
// slices are retained, not copied. Validation covers the invariants the
// query path depends on: a strictly increasing local->global map (the
// ownership binary search), well-formed forward/reverse CSR halves that
// are transposes of each other, ordered boundary lists, cross-partition
// edges whose sources are owned and destinations are not, and a
// condensation sized for this subgraph.
func SubgraphFromData(d SubgraphData, cond *scc.Condensation, ix *scc.Index) (*Subgraph, error) {
	n := len(d.Global)
	for i := 1; i < n; i++ {
		if d.Global[i-1] >= d.Global[i] {
			return nil, fmt.Errorf("partition: local->global map not strictly increasing at %d", i)
		}
	}
	if err := checkLocalCSR("forward", d.FOff, d.FEdges, n); err != nil {
		return nil, err
	}
	if err := checkLocalCSR("reverse", d.ROff, d.REdges, n); err != nil {
		return nil, err
	}
	if len(d.FEdges) != len(d.REdges) {
		return nil, fmt.Errorf("partition: %d forward edges vs %d reverse", len(d.FEdges), len(d.REdges))
	}
	// Transpose consistency between the halves, by degree counts.
	indeg := make([]int32, n)
	for _, e := range d.FEdges {
		indeg[e]++
	}
	outdeg := make([]int32, n)
	for _, e := range d.REdges {
		outdeg[e]++
	}
	for v := 0; v < n; v++ {
		if got := int32(d.ROff[v+1] - d.ROff[v]); got != indeg[v] {
			return nil, fmt.Errorf("partition: vertex %d has %d reverse edges but forward in-degree %d", v, got, indeg[v])
		}
		if got := int32(d.FOff[v+1] - d.FOff[v]); got != outdeg[v] {
			return nil, fmt.Errorf("partition: vertex %d has %d forward edges but reverse out-degree %d", v, got, outdeg[v])
		}
	}
	if err := checkBoundaryList("Entries", d.Entries, n); err != nil {
		return nil, err
	}
	if err := checkBoundaryList("Exits", d.Exits, n); err != nil {
		return nil, err
	}
	for i, pr := range d.Cross {
		if _, ok := slices.BinarySearch(d.Global, pr[0]); !ok {
			return nil, fmt.Errorf("partition: cross edge %d source %d not owned by the partition", i, pr[0])
		}
		if _, ok := slices.BinarySearch(d.Global, pr[1]); ok {
			return nil, fmt.Errorf("partition: cross edge %d destination %d owned by the partition", i, pr[1])
		}
	}
	if cond == nil || ix == nil {
		return nil, fmt.Errorf("partition: nil condensation or index")
	}
	if len(cond.Comp) != n {
		return nil, fmt.Errorf("partition: condensation covers %d vertices, subgraph has %d", len(cond.Comp), n)
	}
	return &Subgraph{
		ID:      d.ID,
		global:  d.Global,
		foff:    d.FOff,
		fedges:  d.FEdges,
		roff:    d.ROff,
		redges:  d.REdges,
		Entries: d.Entries,
		Exits:   d.Exits,
		Cross:   d.Cross,
		cond:    cond,
		index:   ix,
	}, nil
}
