package partition

import (
	"math/rand"
	"slices"
	"testing"

	"dsr/internal/graph"
)

// TestExtractOneMatchesExtract differentially checks the single-
// partition extraction (what shard servers use) against the full
// Extract on randomized graphs: identical vertex sets, adjacency,
// and boundary lists for every partition.
func TestExtractOneMatchesExtract(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 80; iter++ {
		n := 1 + rng.Intn(80)
		b := graph.NewBuilder(n)
		m := rng.Intn(4 * n)
		for i := 0; i < m; i++ {
			b.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)))
		}
		g := b.Build()
		k := 1 + rng.Intn(5)
		var pt *graph.Partitioning
		var err error
		if rng.Intn(2) == 0 {
			pt, err = graph.HashPartition(g, k)
		} else {
			pt, err = graph.RangePartition(g, k)
		}
		if err != nil {
			t.Fatal(err)
		}
		subs, _ := Extract(g, pt)
		for p := 0; p < k; p++ {
			one := ExtractOne(g, pt, p)
			want := subs[p]
			if one.NumVertices() != want.NumVertices() {
				t.Fatalf("iter %d part %d: %d vertices, want %d", iter, p, one.NumVertices(), want.NumVertices())
			}
			for lv := int32(0); lv < int32(want.NumVertices()); lv++ {
				if one.GlobalID(lv) != want.GlobalID(lv) {
					t.Fatalf("iter %d part %d: GlobalID(%d) = %d, want %d", iter, p, lv, one.GlobalID(lv), want.GlobalID(lv))
				}
				if !sameEdgeSet(one.Out(lv), want.Out(lv)) {
					t.Fatalf("iter %d part %d vertex %d: Out %v, want %v", iter, p, lv, one.Out(lv), want.Out(lv))
				}
				if !sameEdgeSet(one.In(lv), want.In(lv)) {
					t.Fatalf("iter %d part %d vertex %d: In %v, want %v", iter, p, lv, one.In(lv), want.In(lv))
				}
			}
			if !slices.Equal(one.Entries, want.Entries) {
				t.Fatalf("iter %d part %d: Entries %v, want %v", iter, p, one.Entries, want.Entries)
			}
			if !slices.Equal(one.Exits, want.Exits) {
				t.Fatalf("iter %d part %d: Exits %v, want %v", iter, p, one.Exits, want.Exits)
			}
			if !samePairSet(one.Cross, want.Cross) {
				t.Fatalf("iter %d part %d: Cross %v, want %v", iter, p, one.Cross, want.Cross)
			}
			for lv := int32(0); lv < int32(want.NumVertices()); lv++ {
				if got, ok := one.Local(one.GlobalID(lv)); !ok || got != lv {
					t.Fatalf("iter %d part %d: Local(GlobalID(%d)) = %d,%v", iter, p, lv, got, ok)
				}
			}
			for v := 0; v < g.NumVertices(); v++ {
				_, owned := one.Local(graph.VertexID(v))
				if owned != (pt.Part[v] == int32(p)) {
					t.Fatalf("iter %d part %d: Local(%d) ownership %v, want %v", iter, p, v, owned, !owned)
				}
			}
		}
	}
}

// samePairSet compares cross-edge lists as multisets: Extract collects
// them in global edge-scan order, ExtractOne per source vertex.
func samePairSet(a, b [][2]graph.VertexID) bool {
	if len(a) != len(b) {
		return false
	}
	as, bs := slices.Clone(a), slices.Clone(b)
	cmp := func(x, y [2]graph.VertexID) int {
		if x[0] != y[0] {
			return int(x[0]) - int(y[0])
		}
		return int(x[1]) - int(y[1])
	}
	slices.SortFunc(as, cmp)
	slices.SortFunc(bs, cmp)
	return slices.Equal(as, bs)
}

// sameEdgeSet compares adjacency lists as multisets: Extract orders
// edges by global edge scan, ExtractOne per source vertex — both list
// the same neighbors, possibly in different order.
func sameEdgeSet(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	as, bs := slices.Clone(a), slices.Clone(b)
	slices.Sort(as)
	slices.Sort(bs)
	return slices.Equal(as, bs)
}
