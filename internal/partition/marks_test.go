package partition

import "testing"

func TestMarksFreshIsUnmarked(t *testing.T) {
	// A fresh Marks must treat every index as unmarked without a Reset.
	m := NewMarks(3)
	if m.Seen(0) || m.Seen(2) {
		t.Fatal("fresh Marks should see nothing")
	}
	if !m.Mark(0) {
		t.Fatal("Mark on fresh Marks should be new")
	}
	if !m.Seen(0) {
		t.Fatal("Mark on fresh Marks should stick")
	}
}

func TestMarksGenerations(t *testing.T) {
	m := NewMarks(4)
	m.Reset()
	if !m.Mark(1) {
		t.Fatal("first Mark(1) should be new")
	}
	if m.Mark(1) {
		t.Fatal("second Mark(1) should not be new")
	}
	if !m.Seen(1) || m.Seen(2) {
		t.Fatal("Seen wrong within generation")
	}
	m.Reset()
	if m.Seen(1) {
		t.Fatal("Reset should clear marks")
	}
	if !m.Mark(1) {
		t.Fatal("Mark(1) should be new again after Reset")
	}
}

func TestMarksEpochWrap(t *testing.T) {
	m := NewMarks(2)
	m.Mark(0)
	m.epoch = ^uint32(0) // force the next Reset to wrap
	m.Reset()
	if m.epoch != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", m.epoch)
	}
	if m.Seen(0) || m.Seen(1) {
		t.Fatal("wrap must clear all marks")
	}
	if !m.Mark(0) {
		t.Fatal("Mark after wrap should be new")
	}
}
