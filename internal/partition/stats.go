package partition

import (
	"fmt"

	"dsr/internal/graph"
)

// Stats quantifies the quality of a partitioning for DSR: the boundary
// graph's vertex set is exactly the boundary vertices, and every cut
// edge is a stitched cross-partition edge, so both numbers directly
// bound cross-partition query traffic. Balance measures how evenly the
// vertices spread (1.0 is perfect).
type Stats struct {
	K                int
	NumVertices      int
	NumEdges         int
	BoundaryVertices int     // vertices with any cross-partition edge
	CutEdges         int     // directed edges whose endpoints differ in partition
	MaxPart, MinPart int     // largest and smallest partition sizes
	Balance          float64 // MaxPart / (NumVertices/K); 0 for empty graphs
}

// ComputeStats measures pt over g. pt must cover g's vertices.
func ComputeStats(g *graph.Graph, pt *graph.Partitioning) Stats {
	n := g.NumVertices()
	st := Stats{K: pt.K, NumVertices: n, NumEdges: g.NumEdges()}
	sizes := make([]int, pt.K)
	for _, p := range pt.Part {
		sizes[p]++
	}
	st.MaxPart, st.MinPart = 0, n
	for _, s := range sizes {
		if s > st.MaxPart {
			st.MaxPart = s
		}
		if s < st.MinPart {
			st.MinPart = s
		}
	}
	if n > 0 {
		st.Balance = float64(st.MaxPart) * float64(pt.K) / float64(n)
	} else {
		st.MinPart = 0
	}
	st.BoundaryVertices = pt.NumBoundary()
	g.Edges(func(u, v graph.VertexID) {
		if pt.Part[u] != pt.Part[v] {
			st.CutEdges++
		}
	})
	return st
}

// String renders the stats compactly for logs.
func (st Stats) String() string {
	return fmt.Sprintf("k=%d vertices=%d edges=%d boundary=%d cut=%d balance=%.3f (max=%d min=%d)",
		st.K, st.NumVertices, st.NumEdges, st.BoundaryVertices, st.CutEdges, st.Balance, st.MaxPart, st.MinPart)
}
