package partition_test

import (
	"path/filepath"
	"testing"

	"dsr/internal/graph"
	"dsr/internal/partition"
	"dsr/internal/partition/locality"
)

// TestStatsGoldenTiny pins partition-quality stats for all three
// partitioners on the tiny fixture (two 4-cycles joined by the bridge
// 3->4, k=2). The numbers are golden: they change only if a
// partitioner's assignment changes, which in a deployment would strand
// every running shard — exactly the kind of silent drift this test
// exists to catch. The fixture also documents the quality ordering:
// hash cuts the cycles to pieces, range happens to respect the ID
// layout, and locality *discovers* the two cycles from the edges alone
// (boundary = the bridge's two endpoints, cut = the bridge).
func TestStatsGoldenTiny(t *testing.T) {
	g, err := graph.LoadEdgeListFile(filepath.Join("..", "graph", "testdata", "tiny.txt"))
	if err != nil {
		t.Fatal(err)
	}
	const k = 2
	cases := []struct {
		name string
		part func() (*graph.Partitioning, error)
		want partition.Stats
	}{
		{
			"hash",
			func() (*graph.Partitioning, error) { return graph.HashPartition(g, k) },
			partition.Stats{K: 2, NumVertices: 8, NumEdges: 9, BoundaryVertices: 7, CutEdges: 4, MaxPart: 5, MinPart: 3, Balance: 1.25},
		},
		{
			"range",
			func() (*graph.Partitioning, error) { return graph.RangePartition(g, k) },
			partition.Stats{K: 2, NumVertices: 8, NumEdges: 9, BoundaryVertices: 2, CutEdges: 1, MaxPart: 4, MinPart: 4, Balance: 1},
		},
		{
			"locality",
			func() (*graph.Partitioning, error) { return locality.Partition(g, k, locality.Options{}) },
			partition.Stats{K: 2, NumVertices: 8, NumEdges: 9, BoundaryVertices: 2, CutEdges: 1, MaxPart: 4, MinPart: 4, Balance: 1},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			pt, err := c.part()
			if err != nil {
				t.Fatal(err)
			}
			if got := partition.ComputeStats(g, pt); got != c.want {
				t.Errorf("stats drifted:\n got  %+v\n want %+v", got, c.want)
			}
		})
	}
}

// TestStatsDegenerate covers the empty graph and the k=1 identities.
func TestStatsDegenerate(t *testing.T) {
	empty := graph.NewBuilder(0).Build()
	pt, err := graph.HashPartition(empty, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := partition.ComputeStats(empty, pt); got != (partition.Stats{K: 3}) {
		t.Errorf("empty graph stats: %+v", got)
	}

	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Build()
	pt, err = graph.HashPartition(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := partition.ComputeStats(g, pt)
	want := partition.Stats{K: 1, NumVertices: 4, NumEdges: 2, MaxPart: 4, MinPart: 4, Balance: 1}
	if got != want {
		t.Errorf("k=1 stats: got %+v, want %+v", got, want)
	}
}
