package partition

// Marks is a reusable epoch-based visited set over a fixed index range.
// Clearing between generations is O(1): bump the epoch and every index
// reads as unmarked. The wrap-around case (once per 2^32 generations)
// zeroes the array and restarts, so stale marks can never alias a new
// generation.
type Marks struct {
	mark  []uint32
	epoch uint32
}

// NewMarks returns a mark set over indices [0, n), ready to use: the
// epoch starts at 1 so a zeroed array reads as unmarked even before the
// first Reset.
func NewMarks(n int) *Marks { return &Marks{mark: make([]uint32, n), epoch: 1} }

// Reset starts a new generation; all indices become unmarked.
func (m *Marks) Reset() {
	m.epoch++
	if m.epoch == 0 { // wrapped: clear and restart
		clear(m.mark)
		m.epoch = 1
	}
}

// Mark marks v and reports whether it was newly marked this generation.
func (m *Marks) Mark(v int32) bool {
	if m.mark[v] == m.epoch {
		return false
	}
	m.mark[v] = m.epoch
	return true
}

// Seen reports whether v has been marked this generation.
func (m *Marks) Seen(v int32) bool { return m.mark[v] == m.epoch }
