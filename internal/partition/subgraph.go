// Package partition extracts per-partition subgraphs from a partitioned
// graph and compresses each one into a small boundary-to-boundary edge
// set: for every boundary in-node (entry) of the partition, the set of
// boundary out-nodes (exits) it can reach without leaving the partition.
// These summaries are what the DSR engine stitches into the global
// boundary graph, so cross-partition query traffic only ever involves
// boundary vertices.
package partition

import (
	"dsr/internal/graph"
)

// Subgraph is the induced subgraph of one partition with dense local
// vertex IDs and both forward and reverse CSR adjacency over the
// intra-partition edges only.
type Subgraph struct {
	ID     int
	global []graph.VertexID // local -> global
	foff   []int64
	fedges []int32
	roff   []int64
	redges []int32
	// Entries and Exits are local IDs of boundary in-/out-nodes.
	Entries []int32
	Exits   []int32
}

// NumVertices returns the number of vertices in the partition.
func (s *Subgraph) NumVertices() int { return len(s.global) }

// GlobalID maps a local vertex ID back to the global ID.
func (s *Subgraph) GlobalID(local int32) graph.VertexID { return s.global[local] }

// Extract splits g into one Subgraph per partition. The returned local
// slice maps every global vertex to its local ID within its partition.
func Extract(g *graph.Graph, pt *graph.Partitioning) ([]*Subgraph, []int32) {
	n := g.NumVertices()
	local := make([]int32, n)
	subs := make([]*Subgraph, pt.K)
	for p := range subs {
		subs[p] = &Subgraph{ID: p}
	}
	for v := 0; v < n; v++ {
		s := subs[pt.Part[v]]
		local[v] = int32(len(s.global))
		s.global = append(s.global, graph.VertexID(v))
	}
	for _, s := range subs {
		s.foff = make([]int64, s.NumVertices()+1)
		s.roff = make([]int64, s.NumVertices()+1)
	}
	// Two passes over the edge set: count, then fill.
	g.Edges(func(u, v graph.VertexID) {
		if pt.Part[u] == pt.Part[v] {
			s := subs[pt.Part[u]]
			s.foff[local[u]+1]++
			s.roff[local[v]+1]++
		}
	})
	for _, s := range subs {
		for i := 1; i <= s.NumVertices(); i++ {
			s.foff[i] += s.foff[i-1]
			s.roff[i] += s.roff[i-1]
		}
		s.fedges = make([]int32, s.foff[s.NumVertices()])
		s.redges = make([]int32, s.roff[s.NumVertices()])
	}
	fcur := make([]int64, n)
	rcur := make([]int64, n)
	g.Edges(func(u, v graph.VertexID) {
		if pt.Part[u] == pt.Part[v] {
			s := subs[pt.Part[u]]
			lu, lv := local[u], local[v]
			s.fedges[s.foff[lu]+fcur[u]] = lv
			fcur[u]++
			s.redges[s.roff[lv]+rcur[v]] = lu
			rcur[v]++
		}
	})
	// Absent Entry/Exit marks (a hand-rolled Partitioning) read as
	// non-boundary, matching Partitioning.IsBoundary.
	for v := 0; v < n; v++ {
		s := subs[pt.Part[v]]
		if v < len(pt.Entry) && pt.Entry[v] {
			s.Entries = append(s.Entries, local[v])
		}
		if v < len(pt.Exit) && pt.Exit[v] {
			s.Exits = append(s.Exits, local[v])
		}
	}
	return subs, local
}

// Scratch is reusable per-worker BFS state: an epoch-marked visited set
// plus the BFS queue.
type Scratch struct {
	marks *Marks
	queue []int32
}

// NewScratch returns scratch sized for a subgraph with n vertices.
func NewScratch(n int) *Scratch { return &Scratch{marks: NewMarks(n)} }

func (sc *Scratch) reset() {
	sc.marks.Reset()
	sc.queue = sc.queue[:0]
}

// ReachForward returns every local vertex reachable from seeds (seeds
// included) following intra-partition edges forward. The returned slice
// aliases sc and is valid until the next call with the same Scratch.
func (s *Subgraph) ReachForward(seeds []int32, sc *Scratch) []int32 {
	return s.reach(seeds, sc, s.foff, s.fedges)
}

// ReachBackward is ReachForward over reversed edges: every local vertex
// that can reach one of seeds inside the partition.
func (s *Subgraph) ReachBackward(seeds []int32, sc *Scratch) []int32 {
	return s.reach(seeds, sc, s.roff, s.redges)
}

func (s *Subgraph) reach(seeds []int32, sc *Scratch, off []int64, edges []int32) []int32 {
	sc.reset()
	for _, v := range seeds {
		if sc.marks.Mark(v) {
			sc.queue = append(sc.queue, v)
		}
	}
	for head := 0; head < len(sc.queue); head++ {
		v := sc.queue[head]
		for _, w := range edges[off[v]:off[v+1]] {
			if sc.marks.Mark(w) {
				sc.queue = append(sc.queue, w)
			}
		}
	}
	return sc.queue
}

// Summary compresses the partition into boundary-to-boundary edges: one
// (entry, exit) pair of global IDs for every exit reachable from each
// entry without leaving the partition. An entry that is itself an exit
// yields the pair (e, e).
func (s *Subgraph) Summary() [][2]graph.VertexID {
	sc := NewScratch(s.NumVertices())
	isExit := make([]bool, s.NumVertices())
	for _, x := range s.Exits {
		isExit[x] = true
	}
	var pairs [][2]graph.VertexID
	seed := make([]int32, 1)
	for _, e := range s.Entries {
		seed[0] = e
		for _, v := range s.ReachForward(seed, sc) {
			if isExit[v] {
				pairs = append(pairs, [2]graph.VertexID{s.global[e], s.global[v]})
			}
		}
	}
	return pairs
}
