// Package partition extracts per-partition subgraphs from a partitioned
// graph and compresses each one into a small boundary-to-boundary edge
// set: for every boundary in-node (entry) of the partition, the set of
// boundary out-nodes (exits) it can reach without leaving the partition.
// These summaries are what the DSR engine stitches into the global
// boundary graph, so cross-partition query traffic only ever involves
// boundary vertices.
package partition

import (
	"slices"

	"dsr/internal/graph"
	"dsr/internal/scc"
)

// Subgraph is the induced subgraph of one partition with dense local
// vertex IDs and both forward and reverse CSR adjacency over the
// intra-partition edges only.
type Subgraph struct {
	ID     int
	global []graph.VertexID // local -> global
	foff   []int64
	fedges []int32
	roff   []int64
	redges []int32
	// Entries and Exits are local IDs of boundary in-/out-nodes.
	Entries []int32
	Exits   []int32
	// Cross holds the cross-partition edges whose source lies in this
	// partition, as (source, destination) global-ID pairs. Together
	// with the entry→exit summaries these are the partition's whole
	// contribution to the global boundary graph, which is what a shard
	// ships to a graph-free coordinator.
	Cross [][2]graph.VertexID

	// Lazily built and cached by Condensation/Index. Not synchronized:
	// concurrent builders must each own distinct subgraphs (as the
	// engine's build pool does).
	cond  *scc.Condensation
	index *scc.Index
}

// NumVertices returns the number of vertices in the partition.
func (s *Subgraph) NumVertices() int { return len(s.global) }

// GlobalID maps a local vertex ID back to the global ID.
func (s *Subgraph) GlobalID(local int32) graph.VertexID { return s.global[local] }

// Local maps a global vertex ID to its local ID within the partition,
// or reports false if the vertex is not owned by it. The local→global
// map is strictly increasing by construction (both Extract and
// ExtractOne assign local IDs in global order), so a binary search
// answers ownership without any per-vertex placement table — which is
// what lets task seeds be global IDs that every shard resolves for
// itself.
func (s *Subgraph) Local(gv graph.VertexID) (int32, bool) {
	lv, ok := slices.BinarySearch(s.global, gv)
	return int32(lv), ok
}

// Out returns the local out-neighbors of v over intra-partition edges.
// Together with NumVertices it implements scc.Adjacency. Callers must
// not mutate the returned slice.
func (s *Subgraph) Out(v int32) []int32 { return s.fedges[s.foff[v]:s.foff[v+1]] }

// In returns the local in-neighbors of v over intra-partition edges.
// Callers must not mutate the returned slice.
func (s *Subgraph) In(v int32) []int32 { return s.redges[s.roff[v]:s.roff[v+1]] }

// Condensation returns the SCC condensation of the subgraph, building
// and caching it on first call. sc may be nil; when non-nil its scc
// workspace is reused for the build.
func (s *Subgraph) Condensation(sc *Scratch) *scc.Condensation {
	if s.cond == nil {
		s.cond = scc.Condense(s, sc.sccWorkspace())
	}
	return s.cond
}

// Index returns the bitset reachability index over the subgraph's
// exits, building and caching it (and the condensation) on first call.
// sc may be nil.
func (s *Subgraph) Index(sc *Scratch) *scc.Index {
	if s.index == nil {
		s.index = scc.BuildIndex(s.Condensation(sc), s.Exits)
	}
	return s.index
}

// Extract splits g into one Subgraph per partition. The returned local
// slice maps every global vertex to its local ID within its partition.
func Extract(g *graph.Graph, pt *graph.Partitioning) ([]*Subgraph, []int32) {
	n := g.NumVertices()
	local := make([]int32, n)
	subs := make([]*Subgraph, pt.K)
	for p := range subs {
		subs[p] = &Subgraph{ID: p}
	}
	for v := 0; v < n; v++ {
		s := subs[pt.Part[v]]
		local[v] = int32(len(s.global))
		s.global = append(s.global, graph.VertexID(v))
	}
	for _, s := range subs {
		s.foff = make([]int64, s.NumVertices()+1)
		s.roff = make([]int64, s.NumVertices()+1)
	}
	// Two passes over the edge set: count, then fill. Cross-partition
	// edges are collected (keyed by their source's partition) on the
	// count pass.
	g.Edges(func(u, v graph.VertexID) {
		if pt.Part[u] == pt.Part[v] {
			s := subs[pt.Part[u]]
			s.foff[local[u]+1]++
			s.roff[local[v]+1]++
		} else {
			s := subs[pt.Part[u]]
			s.Cross = append(s.Cross, [2]graph.VertexID{u, v})
		}
	})
	for _, s := range subs {
		s.finishOffsets()
	}
	fcur := make([]int64, n)
	rcur := make([]int64, n)
	g.Edges(func(u, v graph.VertexID) {
		if pt.Part[u] == pt.Part[v] {
			s := subs[pt.Part[u]]
			lu, lv := local[u], local[v]
			s.fedges[s.foff[lu]+fcur[u]] = lv
			fcur[u]++
			s.redges[s.roff[lv]+rcur[v]] = lu
			rcur[v]++
		}
	})
	for v := 0; v < n; v++ {
		subs[pt.Part[v]].markBoundary(pt, graph.VertexID(v), local[v])
	}
	return subs, local
}

// finishOffsets turns the per-vertex degree counts accumulated in
// foff/roff (at index i+1) into prefix-sum offsets and allocates the
// edge arrays — the step between the count pass and the fill pass of
// CSR construction.
func (s *Subgraph) finishOffsets() {
	for i := 1; i <= s.NumVertices(); i++ {
		s.foff[i] += s.foff[i-1]
		s.roff[i] += s.roff[i-1]
	}
	s.fedges = make([]int32, s.foff[s.NumVertices()])
	s.redges = make([]int32, s.roff[s.NumVertices()])
}

// markBoundary appends local vertex lv (global gv) to the Entries/Exits
// lists according to the partitioning's boundary marks. Absent marks (a
// hand-rolled Partitioning) read as non-boundary, matching
// Partitioning.IsBoundary.
func (s *Subgraph) markBoundary(pt *graph.Partitioning, gv graph.VertexID, lv int32) {
	if int(gv) < len(pt.Entry) && pt.Entry[gv] {
		s.Entries = append(s.Entries, lv)
	}
	if int(gv) < len(pt.Exit) && pt.Exit[gv] {
		s.Exits = append(s.Exits, lv)
	}
}

// ExtractOne builds only partition id's Subgraph — what a standalone
// shard server needs. Unlike Extract it never materializes the other
// partitions' CSR copies: peak extra memory is one int32 per graph
// vertex for the local-ID map plus this partition's own adjacency, so
// shard-process startup memory scales with the shard's share of the
// graph, not with all k partitions.
func ExtractOne(g *graph.Graph, pt *graph.Partitioning, id int) *Subgraph {
	n := g.NumVertices()
	s := &Subgraph{ID: id}
	local := make([]int32, n)
	for v := 0; v < n; v++ {
		if pt.Part[v] == int32(id) {
			local[v] = int32(len(s.global))
			s.global = append(s.global, graph.VertexID(v))
		}
	}
	s.foff = make([]int64, s.NumVertices()+1)
	s.roff = make([]int64, s.NumVertices()+1)
	// Two passes over this partition's out-edges only: count, then fill.
	// Every intra-partition edge has its source here, so this covers the
	// reverse adjacency too — and every cross-partition edge this
	// partition contributes to the boundary graph has its source here,
	// so the count pass collects them.
	for _, u := range s.global {
		for _, v := range g.Out(u) {
			if pt.Part[v] == int32(id) {
				s.foff[local[u]+1]++
				s.roff[local[v]+1]++
			} else {
				s.Cross = append(s.Cross, [2]graph.VertexID{u, v})
			}
		}
	}
	s.finishOffsets()
	fcur := make([]int64, s.NumVertices())
	rcur := make([]int64, s.NumVertices())
	for _, u := range s.global {
		lu := local[u]
		for _, v := range g.Out(u) {
			if pt.Part[v] == int32(id) {
				lv := local[v]
				s.fedges[s.foff[lu]+fcur[lu]] = lv
				fcur[lu]++
				s.redges[s.roff[lv]+rcur[lv]] = lu
				rcur[lv]++
			}
		}
	}
	for _, u := range s.global {
		s.markBoundary(pt, u, local[u])
	}
	return s
}

// Scratch is reusable per-worker working memory: an epoch-marked
// visited set plus BFS queue for local searches, exit-membership marks
// for SummaryBFS, and an scc workspace for condensation builds. Every
// piece is created on first use, so callers that exercise only one path
// (e.g. the index-based Summary, which needs just the scc workspace)
// pay for nothing else. A Scratch sized for n vertices works for any
// subgraph with at most n vertices, so one scratch can serve many
// partitions.
type Scratch struct {
	n     int
	marks *Marks // BFS visited set, lazy
	queue []int32
	xmark *Marks // exit membership for SummaryBFS, lazy
	scc   *scc.Workspace
}

// NewScratch returns scratch sized for a subgraph with n vertices.
func NewScratch(n int) *Scratch { return &Scratch{n: n} }

// searchMarks returns the BFS visited set, creating it on first use.
func (sc *Scratch) searchMarks() *Marks {
	if sc.marks == nil {
		sc.marks = NewMarks(sc.n)
	}
	return sc.marks
}

// exitMarks returns the exit-membership set, creating it on first use.
func (sc *Scratch) exitMarks() *Marks {
	if sc.xmark == nil {
		sc.xmark = NewMarks(sc.n)
	}
	return sc.xmark
}

// sccWorkspace returns the scratch's scc workspace, creating it on
// first use. A nil receiver yields a nil workspace, which the scc
// package accepts as "allocate privately".
func (sc *Scratch) sccWorkspace() *scc.Workspace {
	if sc == nil {
		return nil
	}
	if sc.scc == nil {
		sc.scc = &scc.Workspace{}
	}
	return sc.scc
}

func (sc *Scratch) reset() {
	sc.searchMarks().Reset()
	sc.queue = sc.queue[:0]
}

// ReachForward returns every local vertex reachable from seeds (seeds
// included) following intra-partition edges forward. The returned slice
// aliases sc and is valid until the next call with the same Scratch.
func (s *Subgraph) ReachForward(seeds []int32, sc *Scratch) []int32 {
	return s.reach(seeds, sc, s.foff, s.fedges)
}

// ReachBackward is ReachForward over reversed edges: every local vertex
// that can reach one of seeds inside the partition.
func (s *Subgraph) ReachBackward(seeds []int32, sc *Scratch) []int32 {
	return s.reach(seeds, sc, s.roff, s.redges)
}

func (s *Subgraph) reach(seeds []int32, sc *Scratch, off []int64, edges []int32) []int32 {
	sc.reset()
	marks := sc.marks
	for _, v := range seeds {
		if marks.Mark(v) {
			sc.queue = append(sc.queue, v)
		}
	}
	for head := 0; head < len(sc.queue); head++ {
		v := sc.queue[head]
		for _, w := range edges[off[v]:off[v+1]] {
			if marks.Mark(w) {
				sc.queue = append(sc.queue, w)
			}
		}
	}
	return sc.queue
}

// Summary compresses the partition into boundary-to-boundary edges: one
// (entry, exit) pair of global IDs for every exit reachable from each
// entry without leaving the partition. An entry that is itself an exit
// yields the pair (e, e). It reads off the SCC bitset index — one
// O(V+E) condensation plus word-parallel propagation covers all
// entries, instead of one BFS per entry. sc, which may be nil, provides
// reusable working memory for the index build.
func (s *Subgraph) Summary(sc *Scratch) [][2]graph.VertexID {
	ix := s.Index(sc)
	var pairs [][2]graph.VertexID
	var buf []int32
	for _, e := range s.Entries {
		buf = ix.AppendExitsFrom(e, buf[:0])
		for _, x := range buf {
			pairs = append(pairs, [2]graph.VertexID{s.global[e], s.global[x]})
		}
	}
	return pairs
}

// SummaryBFS is the reference implementation of Summary: one forward
// BFS per entry, O(B·(V+E)) for B boundary entries. It is kept for
// differential testing against the index-based path. sc, which may be
// nil, provides reusable BFS scratch so repeated calls (e.g. across the
// partitions of one graph) allocate nothing per call.
func (s *Subgraph) SummaryBFS(sc *Scratch) [][2]graph.VertexID {
	if sc == nil {
		sc = NewScratch(s.NumVertices())
	}
	xmark := sc.exitMarks()
	xmark.Reset()
	for _, x := range s.Exits {
		xmark.Mark(x)
	}
	var pairs [][2]graph.VertexID
	seed := make([]int32, 1)
	for _, e := range s.Entries {
		seed[0] = e
		for _, v := range s.ReachForward(seed, sc) {
			if xmark.Seen(v) {
				pairs = append(pairs, [2]graph.VertexID{s.global[e], s.global[v]})
			}
		}
	}
	return pairs
}
