package partition

import (
	"math/rand"
	"reflect"
	"testing"

	"dsr/internal/graph"
)

// dataFixture extracts one partition of a random hash-partitioned graph
// and forces its condensation and index, ready for a Data round trip.
func dataFixture(t *testing.T, seed int64, n, k, id int) *Subgraph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < 2*n; i++ {
		b.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)))
	}
	g := b.Build()
	pt, err := graph.HashPartition(g, k)
	if err != nil {
		t.Fatal(err)
	}
	sub := ExtractOne(g, pt, id)
	sub.Condensation(nil)
	sub.Index(nil)
	return sub
}

// TestSubgraphDataRoundTrip: Data -> SubgraphFromData rebuilds a
// subgraph indistinguishable from the original, cached condensation and
// index included.
func TestSubgraphDataRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		sub := dataFixture(t, seed, 40+int(seed)*7, 3, int(seed)%3)
		got, err := SubgraphFromData(sub.Data(), sub.Condensation(nil), sub.Index(nil))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(sub, got) {
			t.Fatalf("seed %d: round trip changed the subgraph", seed)
		}
		// The reassembled subgraph answers searches identically.
		sc1, sc2 := NewScratch(sub.NumVertices()), NewScratch(got.NumVertices())
		for v := int32(0); v < int32(sub.NumVertices()); v++ {
			a := append([]int32{}, sub.ReachForward([]int32{v}, sc1)...)
			b := got.ReachForward([]int32{v}, sc2)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("seed %d: ReachForward(%d) differs: %v vs %v", seed, v, a, b)
			}
		}
	}
}

// TestSubgraphFromDataRejects: every invariant the ownership search and
// query path rely on is enforced on load.
func TestSubgraphFromDataRejects(t *testing.T) {
	g, pt := twoBlock(t)
	sub := ExtractOne(g, pt, 0)
	cond, ix := sub.Condensation(nil), sub.Index(nil)

	cases := []struct {
		name string
		mut  func(*SubgraphData)
	}{
		{"global map not increasing", func(d *SubgraphData) { d.Global[0], d.Global[1] = d.Global[1], d.Global[0] }},
		{"offsets decrease", func(d *SubgraphData) { d.FOff[1] = d.FOff[len(d.FOff)-1] + 1 }},
		{"edge out of range", func(d *SubgraphData) { d.FEdges[0] = int32(len(d.Global)) }},
		{"transpose mismatch", func(d *SubgraphData) {
			for i := 1; i < len(d.ROff); i++ {
				d.ROff[i]--
			}
			d.REdges = d.REdges[1:]
		}},
		{"exit list not increasing", func(d *SubgraphData) { d.Exits = []int32{1, 0} }},
		{"entry out of range", func(d *SubgraphData) { d.Entries = []int32{99} }},
		{"cross source not owned", func(d *SubgraphData) { d.Cross = [][2]graph.VertexID{{7, 5}} }},
		{"cross destination owned", func(d *SubgraphData) { d.Cross = [][2]graph.VertexID{{3, 2}} }},
	}
	for _, c := range cases {
		d := sub.Data()
		d.Global = append([]graph.VertexID{}, d.Global...)
		d.FOff = append([]int64{}, d.FOff...)
		d.FEdges = append([]int32{}, d.FEdges...)
		d.ROff = append([]int64{}, d.ROff...)
		d.REdges = append([]int32{}, d.REdges...)
		c.mut(&d)
		if _, err := SubgraphFromData(d, cond, ix); err == nil {
			t.Errorf("%s: accepted invalid data", c.name)
		}
	}

	// Condensation sized for a different subgraph, or missing outright.
	other := dataFixture(t, 99, 30, 2, 0)
	if _, err := SubgraphFromData(sub.Data(), other.Condensation(nil), other.Index(nil)); err == nil {
		t.Error("accepted condensation for a different subgraph")
	}
	if _, err := SubgraphFromData(sub.Data(), nil, nil); err == nil {
		t.Error("accepted nil condensation and index")
	}
}
