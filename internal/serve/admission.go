package serve

import (
	"fmt"
	"sync/atomic"

	"dsr/internal/obs"
)

// OverloadError is the typed rejection admission control returns when
// a query cannot be accepted right now. Scope says which limit fired:
// "client" (the connection has too many queries outstanding — a
// fairness bound, so one pipelining client can't starve the rest) or
// "server" (the shared queue is full — the process as a whole is
// saturated). Clients should back off and retry; the wire form is
// "error overload: <scope>" and Client.Recv rehydrates it.
type OverloadError struct {
	Scope string
}

// Error names the limit that shed the query.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("serve: overloaded (%s limit)", e.Scope)
}

// admission is the server's load-shedding gate: a server-wide bound on
// queries admitted but not yet answered (the queue), plus a per-client
// bound that keeps any one connection from monopolizing it. Both are
// enforced with add-then-check on atomics, so the bounds are strict
// even under concurrent admits.
type admission struct {
	maxQueued    int64
	maxPerClient int64
	queued       atomic.Int64

	depth      *obs.Gauge
	shedClient *obs.Counter
	shedServer *obs.Counter
}

func newAdmission(maxQueued, maxPerClient int, reg *obs.Registry) *admission {
	return &admission{
		maxQueued:    int64(maxQueued),
		maxPerClient: int64(maxPerClient),
		depth:        reg.Gauge("dsr_serve_queue_depth"),
		shedClient:   reg.Counter(obs.Name("dsr_serve_shed_total", "scope", "client")),
		shedServer:   reg.Counter(obs.Name("dsr_serve_shed_total", "scope", "server")),
	}
}

// admit claims one slot for sess, or reports the typed overload. The
// per-client bound is checked first so a greedy client is told it is
// the problem, not the server.
func (a *admission) admit(sess *session) error {
	if sess.outstanding.Add(1) > a.maxPerClient {
		sess.outstanding.Add(-1)
		a.shedClient.Inc()
		return &OverloadError{Scope: "client"}
	}
	q := a.queued.Add(1)
	if q > a.maxQueued {
		a.queued.Add(-1)
		sess.outstanding.Add(-1)
		a.shedServer.Inc()
		return &OverloadError{Scope: "server"}
	}
	a.depth.Set(q)
	return nil
}

// release returns the slot admit claimed, once the query's answer (or
// error) is settled.
func (a *admission) release(sess *session) {
	sess.outstanding.Add(-1)
	a.depth.Set(a.queued.Add(-1))
}
