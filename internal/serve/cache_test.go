package serve

import (
	"testing"

	"dsr/internal/graph"
	"dsr/internal/obs"
)

func ids(vs ...graph.VertexID) []graph.VertexID { return vs }

// TestKeyCanonical pins the cache-key contract: order and duplication
// within a side are irrelevant, but the two sides are not
// interchangeable and their boundary is unambiguous.
func TestKeyCanonical(t *testing.T) {
	if Key(ids(3, 1, 2, 2), ids(5)) != Key(ids(1, 2, 3), ids(5, 5)) {
		t.Fatal("permuted/duplicated sets should share a key")
	}
	if Key(ids(1), ids(2)) == Key(ids(2), ids(1)) {
		t.Fatal("S and T must not be interchangeable")
	}
	// The count prefix keeps {1,2}|{3} distinct from {1}|{2,3}.
	if Key(ids(1, 2), ids(3)) == Key(ids(1), ids(2, 3)) {
		t.Fatal("set boundary must be part of the key")
	}
}

func TestCacheHitPromoteEvict(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCache(8, reg) // probation 2, protected 6

	if _, ok := c.Get(Key(ids(1), ids(2))); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(Key(ids(1), ids(2)), true)
	if ans, ok := c.Get(Key(ids(1), ids(2))); !ok || !ans {
		t.Fatalf("got (%v,%v), want cached true", ans, ok)
	}

	// The hit above promoted 1|2 to protected; two more one-off keys
	// fill probation and a third evicts the oldest one-off — never the
	// promoted entry.
	c.Put(Key(ids(10), ids(11)), false)
	c.Put(Key(ids(20), ids(21)), false)
	c.Put(Key(ids(30), ids(31)), false)
	if _, ok := c.Get(Key(ids(10), ids(11))); ok {
		t.Fatal("oldest probation entry should have been evicted")
	}
	if ans, ok := c.Get(Key(ids(1), ids(2))); !ok || !ans {
		t.Fatal("promoted entry must survive probation churn")
	}
	if got := reg.Counter("dsr_cache_evictions_total").Load(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}

	hits := reg.Counter("dsr_cache_hits_total").Load()
	misses := reg.Counter("dsr_cache_misses_total").Load()
	if hits != 2 || misses != 2 {
		t.Fatalf("hits=%d misses=%d, want 2/2", hits, misses)
	}
}

func TestCacheEpochInvalidates(t *testing.T) {
	c := NewCache(8, nil)
	k := Key(ids(1), ids(9))
	c.Put(k, true)
	c.SetEpoch(1)
	if _, ok := c.Get(k); ok {
		t.Fatal("entry from epoch 0 must miss after SetEpoch(1)")
	}
	if c.Len() != 0 {
		t.Fatalf("dead entry should be swept on lookup, Len=%d", c.Len())
	}
	c.Put(k, false)
	if ans, ok := c.Get(k); !ok || ans {
		t.Fatal("fresh entry at the new epoch must hit")
	}
}

// TestCacheEpochNeverRegresses: once snapshots and restarts make epoch
// regressions possible, an epoch lower than the current one must not be
// accepted — it would resurrect entries that were already invalidated.
func TestCacheEpochNeverRegresses(t *testing.T) {
	c := NewCache(8, nil)
	stale := Key(ids(1), ids(9))
	c.Put(stale, true)
	c.SetEpoch(5) // invalidates stale
	fresh := Key(ids(2), ids(9))
	c.Put(fresh, true)

	c.SetEpoch(3) // a lagging caller announces an old epoch: clamped away
	if _, ok := c.Get(stale); ok {
		t.Fatal("backwards SetEpoch resurrected an invalidated entry")
	}
	if _, ok := c.Get(fresh); !ok {
		t.Fatal("backwards SetEpoch must not disturb current-epoch entries")
	}
	// The epoch really stayed at 5: entries stored now survive a later
	// SetEpoch(4) but not SetEpoch(6).
	c.SetEpoch(4)
	if _, ok := c.Get(fresh); !ok {
		t.Fatal("SetEpoch(4) after clamp must still be a no-op")
	}
	c.SetEpoch(6)
	if _, ok := c.Get(fresh); ok {
		t.Fatal("advancing the epoch must still invalidate")
	}
}

// TestCacheRefreshInPlace: Put on an existing key updates answer and
// epoch without duplicating the entry.
func TestCacheRefreshInPlace(t *testing.T) {
	c := NewCache(8, nil)
	k := Key(ids(4), ids(5))
	c.Put(k, false)
	c.SetEpoch(3)
	c.Put(k, true)
	if ans, ok := c.Get(k); !ok || !ans {
		t.Fatal("refreshed entry should hit with the new answer")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

// TestCacheDisabled: non-positive capacity returns a nil cache whose
// methods are all safe no-ops.
func TestCacheDisabled(t *testing.T) {
	for _, capn := range []int{0, -1} {
		c := NewCache(capn, obs.NewRegistry())
		if c != nil {
			t.Fatalf("NewCache(%d) = %v, want nil", capn, c)
		}
		c.Put("k", true)
		if _, ok := c.Get("k"); ok {
			t.Fatal("nil cache hit")
		}
		c.SetEpoch(7)
		if c.Len() != 0 {
			t.Fatal("nil cache Len != 0")
		}
	}
}

// TestCacheProtectedEviction: the protected segment is LRU-bounded too.
func TestCacheProtectedEviction(t *testing.T) {
	c := NewCache(4, nil) // probation 1, protected 3
	keys := make([]string, 5)
	for i := range keys {
		keys[i] = Key(ids(graph.VertexID(i)), ids(100))
		c.Put(keys[i], true)
		c.Get(keys[i]) // promote immediately
	}
	// 5 promoted entries through a 3-slot protected segment: the two
	// least recently used are gone.
	live := 0
	for _, k := range keys {
		if _, ok := c.Get(k); ok {
			live++
		}
	}
	if live != 3 {
		t.Fatalf("%d protected entries live, want 3", live)
	}
}
