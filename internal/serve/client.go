package serve

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"

	"dsr/internal/graph"
)

// Client speaks the serving protocol over one TCP connection. Query is
// the simple call; Send/Recv expose the two halves separately so a
// caller can pipeline — fire N requests, then collect N responses in
// order — which is both the high-throughput mode and how load tests
// push a server into shedding. A Client is not safe for concurrent
// use; open one per goroutine.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a dsr-serve address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// Send writes one query line and flushes it. Pair each Send with one
// later Recv, in order.
func (c *Client) Send(S, T []graph.VertexID) error {
	writeIDs(c.w, S)
	c.w.WriteString("| ")
	writeIDs(c.w, T)
	c.w.WriteByte('\n')
	return c.w.Flush()
}

func writeIDs(w *bufio.Writer, ids []graph.VertexID) {
	for _, v := range ids {
		w.WriteString(strconv.FormatUint(uint64(v), 10))
		w.WriteByte(' ')
	}
}

// Recv reads one response line. Server-side rejections come back as
// errors: overload responses as *OverloadError (check with errors.As
// to implement backoff), everything else as a plain error carrying the
// server's line.
func (c *Client) Recv() (bool, error) {
	line, err := c.r.ReadString('\n')
	if err != nil {
		return false, err
	}
	line = strings.TrimSpace(line)
	switch {
	case line == "true":
		return true, nil
	case line == "false":
		return false, nil
	case strings.HasPrefix(line, "error overload: "):
		return false, &OverloadError{Scope: strings.TrimPrefix(line, "error overload: ")}
	case strings.HasPrefix(line, "error"):
		return false, errors.New("serve: server reported " + strconv.Quote(line))
	default:
		return false, fmt.Errorf("serve: malformed response %q", line)
	}
}

// Query sends one query and waits for its answer.
func (c *Client) Query(S, T []graph.VertexID) (bool, error) {
	if err := c.Send(S, T); err != nil {
		return false, err
	}
	return c.Recv()
}

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }
