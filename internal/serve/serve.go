// Package serve is the always-on serving layer over a DSR engine: a
// TCP server speaking the dsr-query line protocol ("s1 s2 | t1 t2" in,
// "true"/"false"/"error <kind>" out) that multiplexes many concurrent
// clients onto one coordinator. Four mechanisms make it a service
// rather than a socket wrapper:
//
//   - Cross-client batching (batcher): queries arriving within a short
//     window — from any connection — share one engine round, so shard
//     RPC fan-out is paid per batch, not per query.
//   - Result caching (Cache): a 2Q LRU over canonicalized (S, T) keys,
//     sound because the served graph is immutable, epoch-tagged for
//     future graph swaps. Hits bypass batching and admission entirely.
//   - Admission control (admission): a server-wide queue bound and a
//     per-client outstanding bound shed load with a typed
//     OverloadError instead of letting latency collapse.
//   - Hedged requests: configured on the engine itself (core.Connect
//     with HedgeOptions); the server's batches inherit straggler
//     re-sends transparently.
//
// Per connection, requests are answered in order even though their
// batches complete out of order: a reader goroutine parses and admits,
// a writer goroutine replies in arrival sequence as each answer
// settles.
package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dsr/internal/core"
	"dsr/internal/graph"
	"dsr/internal/obs"
)

// Querier is the engine capability the server needs: batch queries
// with partial-failure reporting. *core.Engine satisfies it.
type Querier interface {
	QueryBatchErr(queries []core.Query) ([]bool, error)
}

// ErrServerClosed is returned by Serve after Shutdown, and is the
// error pending queries settle with when the server stops first.
var ErrServerClosed = errors.New("serve: server closed")

// errParse marks protocol violations on the request line; the writer
// renders them as "error parse: ...".
var errParse = errors.New("parse")

// Options tunes the serving layer. The zero value serves: every field
// has a production default, and tests override only what they pin.
type Options struct {
	// BatchWindow is how long the first query of a batch waits for
	// company before the batch departs. 0 means 250µs — long enough to
	// merge concurrent clients, short enough to be noise against an RPC
	// round. Negative is treated as 0 (depart at the next timer tick).
	BatchWindow time.Duration
	// MaxBatch departs a batch early once it holds this many queries.
	// 0 means 64.
	MaxBatch int
	// CacheEntries bounds the result cache. 0 means 4096; negative
	// disables caching.
	CacheEntries int
	// MaxQueued bounds queries admitted but not yet answered across all
	// clients; beyond it the server sheds with OverloadError{"server"}.
	// 0 means 1024.
	MaxQueued int
	// MaxPerClient bounds one connection's outstanding queries; beyond
	// it that client is shed with OverloadError{"client"}. 0 means 256.
	MaxPerClient int
	// MaxInFlight caps concurrent engine batch rounds; excess batches
	// wait in the batcher. 0 means 4.
	MaxInFlight int
	// Metrics receives the dsr_serve_* and dsr_cache_* instruments.
	// Nil disables metrics.
	Metrics *obs.Registry
	// Log receives connection-lifecycle and shutdown logging. Nil
	// disables logging.
	Log *obs.Logger
}

func (o Options) withDefaults() Options {
	if o.BatchWindow == 0 {
		o.BatchWindow = 250 * time.Microsecond
	}
	if o.BatchWindow < 0 {
		o.BatchWindow = 0
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 4096
	}
	if o.MaxQueued <= 0 {
		o.MaxQueued = 1024
	}
	if o.MaxPerClient <= 0 {
		o.MaxPerClient = 256
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 4
	}
	return o
}

// session is one client connection's server-side state: its admission
// accounting plus the ordered hand-off from reader to writer.
type session struct {
	conn        net.Conn
	outstanding atomic.Int64
	writec      chan *pending
}

// Server accepts dsr-query protocol connections and answers them
// through a shared Querier. Construct with New, run with Serve, stop
// with Shutdown; all methods are safe for concurrent use.
type Server struct {
	opt   Options
	cache *Cache
	batch *batcher
	adm   *admission
	log   *obs.Logger

	queries   *obs.Counter
	parseErrs *obs.Counter
	latency   *obs.Histogram
	clients   *obs.Gauge

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// New builds a server over q. The engine behind q stays owned by the
// caller: Shutdown stops the server but does not Close the engine.
func New(q Querier, o Options) *Server {
	o = o.withDefaults()
	cache := NewCache(o.CacheEntries, o.Metrics)
	return &Server{
		opt:       o,
		cache:     cache,
		batch:     newBatcher(q, cache, o),
		adm:       newAdmission(o.MaxQueued, o.MaxPerClient, o.Metrics),
		log:       o.Log,
		queries:   o.Metrics.Counter("dsr_serve_queries_total"),
		parseErrs: o.Metrics.Counter("dsr_serve_parse_errors_total"),
		latency:   o.Metrics.Histogram("dsr_serve_latency_ns"),
		clients:   o.Metrics.Gauge("dsr_serve_clients"),
		conns:     make(map[net.Conn]struct{}),
	}
}

// Cache exposes the server's result cache, principally for SetEpoch
// when the deployment behind the Querier is swapped. Nil when caching
// is disabled.
func (s *Server) Cache() *Cache { return s.cache }

// Serve accepts connections on ln until Shutdown, spawning one handler
// per connection. It returns ErrServerClosed after Shutdown, or the
// accept error that stopped it.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

// Shutdown stops accepting, half-closes every connection's read side
// (so in-flight requests finish and their answers still go out), and
// waits for handlers to drain, up to ctx. On ctx expiry remaining
// connections are force-closed and ctx.Err() is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		if cr, ok := c.(interface{ CloseRead() error }); ok {
			cr.CloseRead()
		} else {
			c.Close()
		}
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.batch.close()
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		s.batch.close()
		return ctx.Err()
	}
}

// handleConn runs a connection's reader inline and its writer as a
// goroutine. The reader parses, admits, and enqueues in arrival order;
// the writer replies in that same order, blocking on each pending's
// settle. The bounded hand-off channel means a client that stops
// reading responses eventually stops being read from — backpressure
// ends at the socket, not in server memory.
func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	s.clients.Add(1)
	sess := &session{
		conn:   conn,
		writec: make(chan *pending, s.opt.MaxPerClient+16),
	}

	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		s.writeLoop(sess)
	}()

	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		sess.writec <- s.begin(sess, line)
	}
	close(sess.writec)
	writerWG.Wait()
	conn.Close()

	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	s.clients.Add(-1)
}

// begin takes one request line from parse to cache to admission to
// batch, returning the pending the writer will answer. Cache hits and
// rejections come back already settled.
func (s *Server) begin(sess *session, line string) *pending {
	s.queries.Inc()
	start := time.Now()
	S, T, err := parseQuery(line)
	if err != nil {
		s.parseErrs.Inc()
		return settled(err, start)
	}
	key := Key(S, T)
	if ans, ok := s.cache.Get(key); ok {
		p := settled(nil, start)
		p.ans = ans
		return p
	}
	if err := s.adm.admit(sess); err != nil {
		return settled(err, start)
	}
	p := &pending{
		q:     core.Query{S: S, T: T},
		key:   key,
		ready: make(chan struct{}),
		done:  func() { s.adm.release(sess) },
		start: start,
	}
	s.batch.enqueue(p)
	return p
}

// settled builds a pending that is already answered (cache hit) or
// already failed (parse error, overload) — the writer won't block.
func settled(err error, start time.Time) *pending {
	p := &pending{err: err, ready: make(chan struct{}), start: start}
	close(p.ready)
	return p
}

// writeLoop replies to sess's requests in arrival order, waiting for
// each answer to settle before formatting it.
func (s *Server) writeLoop(sess *session) {
	w := bufio.NewWriter(sess.conn)
	for p := range sess.writec {
		<-p.ready
		s.latency.ObserveSince(p.start)
		fmt.Fprintln(w, respond(p))
		// Flush when no answer is immediately available to append —
		// batches the writes of a pipelining client for free.
		if len(sess.writec) == 0 {
			w.Flush()
		}
	}
	w.Flush()
}

// respond renders one settled pending in the response grammar: "true",
// "false", or "error <kind>[: detail]" with kind one of parse,
// overload, unavailable.
func respond(p *pending) string {
	if p.err == nil {
		if p.ans {
			return "true"
		}
		return "false"
	}
	var oe *OverloadError
	switch {
	case errors.As(p.err, &oe):
		return "error overload: " + oe.Scope
	case errors.Is(p.err, errParse):
		return "error " + p.err.Error()
	default:
		return "error unavailable"
	}
}

// parseQuery parses the request line "s1 s2 ... | t1 t2 ...": two
// whitespace-separated lists of vertex IDs split by a pipe. This is
// the same grammar dsr-query reads on stdin.
func parseQuery(line string) (S, T []graph.VertexID, err error) {
	left, right, ok := strings.Cut(line, "|")
	if !ok {
		return nil, nil, fmt.Errorf("%w: missing '|' separator", errParse)
	}
	if S, err = parseIDs(left); err != nil {
		return nil, nil, err
	}
	if T, err = parseIDs(right); err != nil {
		return nil, nil, err
	}
	if len(S) == 0 || len(T) == 0 {
		return nil, nil, fmt.Errorf("%w: empty vertex set", errParse)
	}
	return S, T, nil
}

func parseIDs(s string) ([]graph.VertexID, error) {
	fields := strings.Fields(s)
	ids := make([]graph.VertexID, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseUint(f, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("%w: bad vertex id %q", errParse, f)
		}
		ids[i] = graph.VertexID(v)
	}
	return ids, nil
}
