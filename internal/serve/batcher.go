package serve

import (
	"errors"
	"sync"
	"time"

	"dsr/internal/core"
	"dsr/internal/obs"
)

// pending is one in-flight query: what to ask, where its answer goes,
// and the channel its connection's writer blocks on. The batcher owns
// ans/err until it closes ready; after that they are immutable and the
// writer may read them.
type pending struct {
	q     core.Query
	key   string // canonical cache key; "" when the query skipped the cache
	ans   bool
	err   error
	ready chan struct{}
	done  func() // admission release hook; nil for unadmitted pendings
	start time.Time
}

// settle publishes the outcome: runs the admission release hook and
// unblocks the writer. Must be called exactly once.
func (p *pending) settle() {
	if p.done != nil {
		p.done()
	}
	close(p.ready)
}

// batcher assembles queries from every connection into shared batches:
// the first query to arrive opens a window (BatchWindow); everything
// that lands before it expires — from any client — rides the same
// engine round, and a batch that reaches MaxBatch departs early. One
// shard RPC round thus serves many clients, which is the point: the
// engine's per-round cost is dominated by fan-out/fan-in, not by batch
// size. The in-flight semaphore caps concurrent engine rounds so a
// burst queues here (where admission can see and bound it) instead of
// piling onto the engine.
type batcher struct {
	q        Querier
	cache    *Cache
	window   time.Duration
	maxBatch int
	sem      chan struct{} // in-flight engine rounds

	mu     sync.Mutex
	cur    []*pending
	timer  *time.Timer
	closed bool

	batches   *obs.Counter
	batchSize *obs.Histogram
}

func newBatcher(q Querier, cache *Cache, o Options) *batcher {
	return &batcher{
		q:         q,
		cache:     cache,
		window:    o.BatchWindow,
		maxBatch:  o.MaxBatch,
		sem:       make(chan struct{}, o.MaxInFlight),
		batches:   o.Metrics.Counter("dsr_serve_batches_total"),
		batchSize: o.Metrics.Histogram("dsr_serve_batch_size"),
	}
}

// enqueue adds p to the forming batch. The first entry arms the window
// timer; reaching maxBatch flushes immediately.
func (b *batcher) enqueue(p *pending) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		p.err = ErrServerClosed
		p.settle()
		return
	}
	b.cur = append(b.cur, p)
	if len(b.cur) >= b.maxBatch {
		batch := b.takeLocked()
		b.mu.Unlock()
		go b.run(batch)
		return
	}
	if len(b.cur) == 1 {
		b.timer = time.AfterFunc(b.window, b.windowExpired)
	}
	b.mu.Unlock()
}

// takeLocked detaches the forming batch and disarms its timer.
func (b *batcher) takeLocked() []*pending {
	batch := b.cur
	b.cur = nil
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return batch
}

// windowExpired runs in the timer goroutine; the batch departs with
// whatever accumulated.
func (b *batcher) windowExpired() {
	b.mu.Lock()
	batch := b.takeLocked()
	b.mu.Unlock()
	if len(batch) > 0 {
		b.run(batch)
	}
}

// run executes one shared batch against the engine and demuxes the
// answers back to each pending. Partial failures (*core.BatchError)
// fail only the queries the error's mask flags; the rest are answered
// and cached normally.
func (b *batcher) run(batch []*pending) {
	b.sem <- struct{}{}
	defer func() { <-b.sem }()

	b.batches.Inc()
	b.batchSize.Observe(int64(len(batch)))
	queries := make([]core.Query, len(batch))
	for i, p := range batch {
		queries[i] = p.q
	}
	answers, err := b.q.QueryBatchErr(queries)

	var be *core.BatchError
	switch {
	case err == nil:
		for i, p := range batch {
			p.ans = answers[i]
			b.cache.Put(p.key, p.ans)
			p.settle()
		}
	case errors.As(err, &be):
		for i, p := range batch {
			if be.Failed[i] {
				p.err = err
			} else {
				p.ans = answers[i]
				b.cache.Put(p.key, p.ans)
			}
			p.settle()
		}
	default:
		for _, p := range batch {
			p.err = err
			p.settle()
		}
	}
}

// close rejects future enqueues and flushes anything still forming, so
// no writer is left waiting on a batch that will never depart.
func (b *batcher) close() {
	b.mu.Lock()
	b.closed = true
	batch := b.takeLocked()
	b.mu.Unlock()
	if len(batch) > 0 {
		b.run(batch)
	}
}
