package serve

import (
	"encoding/binary"
	"slices"
	"sync"

	"dsr/internal/graph"
	"dsr/internal/obs"
)

// Key canonicalizes a query's source and target sets into a cache key:
// each side is sorted and deduplicated, then count-prefixed and
// uvarint-packed. Two queries with the same S and T sets — in any
// order, with any duplication — therefore share one key, which is what
// makes caching set-reachability answers sound: the answer depends only
// on the sets and the (immutable) graph.
func Key(S, T []graph.VertexID) string {
	buf := make([]byte, 0, 8+5*(len(S)+len(T)))
	for _, side := range [2][]graph.VertexID{S, T} {
		vs := slices.Clone(side)
		slices.Sort(vs)
		vs = slices.Compact(vs)
		buf = binary.AppendUvarint(buf, uint64(len(vs)))
		for _, v := range vs {
			buf = binary.AppendUvarint(buf, uint64(v))
		}
	}
	return string(buf)
}

// centry is one cached answer, threaded onto either the probation FIFO
// or the protected LRU list (sentinel-rooted, so unlink is branch-free).
type centry struct {
	key        string
	ans        bool
	epoch      uint64
	protected  bool
	prev, next *centry
}

// clist is a sentinel-rooted doubly linked list; front is most recent.
type clist struct {
	root centry
	n    int
}

func (l *clist) init() {
	l.root.prev, l.root.next = &l.root, &l.root
	l.n = 0
}

func (l *clist) pushFront(e *centry) {
	e.prev, e.next = &l.root, l.root.next
	e.prev.next, e.next.prev = e, e
	l.n++
}

func (l *clist) unlink(e *centry) {
	e.prev.next, e.next.prev = e.next, e.prev
	e.prev, e.next = nil, nil
	l.n--
}

// back returns the least recently touched entry, or nil when empty.
func (l *clist) back() *centry {
	if l.n == 0 {
		return nil
	}
	return l.root.prev
}

// Cache is the serving layer's result cache: a 2Q-style LRU over
// canonicalized query keys. New keys enter a small probation FIFO
// (scan-resistance: a one-off query can only ever displace other
// one-offs); a second touch promotes to the protected LRU segment,
// which holds the hot working set. Soundness rests on graph
// immutability — a deployment's answer for a (S, T) pair never changes
// — plus epoch tagging: every entry is stamped with the epoch current
// at insert, and SetEpoch invalidates all earlier entries lazily, the
// hook for future graph-epoch support.
//
// All methods are safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	epoch   uint64
	entries map[string]*centry
	prob    clist // probation FIFO (first touch)
	prot    clist // protected LRU (second touch and later)
	probCap int
	protCap int

	hits, misses, evictions *obs.Counter
}

// NewCache builds a cache bounded to capacity entries across both
// segments (a quarter probation, the rest protected). capacity <= 0
// returns a nil cache, on which every method is a no-op miss — callers
// never branch on "cache enabled".
func NewCache(capacity int, reg *obs.Registry) *Cache {
	if capacity <= 0 {
		return nil
	}
	probCap := max(capacity/4, 1)
	c := &Cache{
		entries:   make(map[string]*centry, capacity),
		probCap:   probCap,
		protCap:   max(capacity-probCap, 1),
		hits:      reg.Counter("dsr_cache_hits_total"),
		misses:    reg.Counter("dsr_cache_misses_total"),
		evictions: reg.Counter("dsr_cache_evictions_total"),
	}
	c.prob.init()
	c.prot.init()
	return c
}

// Get looks the key up, reporting (answer, true) on a hit. A hit in
// probation promotes the entry to the protected segment; an entry from
// a past epoch is dead — removed and reported as a miss.
func (c *Cache) Get(key string) (bool, bool) {
	if c == nil {
		return false, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if e == nil {
		c.misses.Inc()
		return false, false
	}
	if e.epoch != c.epoch {
		c.removeLocked(e)
		c.misses.Inc()
		return false, false
	}
	if e.protected {
		c.prot.unlink(e)
		c.prot.pushFront(e)
	} else {
		c.prob.unlink(e)
		e.protected = true
		c.prot.pushFront(e)
		c.evictProtLocked()
	}
	c.hits.Inc()
	return e.ans, true
}

// Put stores the answer under key at the current epoch. Existing
// entries are refreshed in place (answer, epoch) without changing
// segment.
func (c *Cache) Put(key string, ans bool) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.entries[key]; e != nil {
		e.ans, e.epoch = ans, c.epoch
		return
	}
	e := &centry{key: key, ans: ans, epoch: c.epoch}
	c.entries[key] = e
	c.prob.pushFront(e)
	if c.prob.n > c.probCap {
		c.evictions.Inc()
		c.removeLocked(c.prob.back())
	}
}

// SetEpoch advances the cache epoch: every entry stored under an
// earlier epoch is invalid from now on (dropped lazily on lookup).
// Setting the current or an earlier epoch is a no-op — the epoch never
// moves backwards, so a restarted or lagging caller announcing an old
// epoch cannot resurrect entries that were already invalidated.
func (c *Cache) SetEpoch(epoch uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if epoch > c.epoch {
		c.epoch = epoch
	}
	c.mu.Unlock()
}

// Len reports how many entries the cache holds (including any
// not-yet-swept dead-epoch entries).
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func (c *Cache) evictProtLocked() {
	for c.prot.n > c.protCap {
		c.evictions.Inc()
		c.removeLocked(c.prot.back())
	}
}

func (c *Cache) removeLocked(e *centry) {
	if e.protected {
		c.prot.unlink(e)
	} else {
		c.prob.unlink(e)
	}
	delete(c.entries, e.key)
}
