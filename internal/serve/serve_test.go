package serve

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"dsr/internal/core"
	"dsr/internal/dsr"
	"dsr/internal/graph"
	"dsr/internal/obs"
)

// chainGraph builds 0 -> 1 -> ... -> n-1.
func chainGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for v := 0; v < n-1; v++ {
		b.AddEdge(graph.VertexID(v), graph.VertexID(v+1))
	}
	return b.Build()
}

// startServer boots a server over an in-process engine on a loopback
// listener and tears both down with the test.
func startServer(t *testing.T, g *graph.Graph, o Options) (*Server, string, *core.Engine) {
	t.Helper()
	eng, err := core.Build(g, core.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	srv := New(eng, o)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	servec := make(chan error, 1)
	go func() { servec <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-servec; !errors.Is(err, ErrServerClosed) {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	})
	return srv, ln.Addr().String(), eng
}

func TestServeBasic(t *testing.T) {
	reg := obs.NewRegistry()
	_, addr, _ := startServer(t, chainGraph(t, 8), Options{Metrics: reg})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if ans, err := c.Query(ids(0), ids(7)); err != nil || !ans {
		t.Fatalf("0->7 = (%v, %v), want true", ans, err)
	}
	if ans, err := c.Query(ids(7), ids(0)); err != nil || ans {
		t.Fatalf("7->0 = (%v, %v), want false", ans, err)
	}
	// Same sets, permuted: must be a cache hit.
	before := reg.Counter("dsr_cache_hits_total").Load()
	if ans, err := c.Query(ids(0), ids(7)); err != nil || !ans {
		t.Fatalf("repeat 0->7 = (%v, %v), want true", ans, err)
	}
	if got := reg.Counter("dsr_cache_hits_total").Load(); got != before+1 {
		t.Fatalf("cache hits %d -> %d, want +1", before, got)
	}
	if got := reg.Counter("dsr_serve_queries_total").Load(); got != 3 {
		t.Fatalf("dsr_serve_queries_total = %d, want 3", got)
	}
}

// TestServeParseErrors: malformed lines get an in-order "error parse"
// response and never reach the engine; the connection stays usable.
func TestServeParseErrors(t *testing.T) {
	reg := obs.NewRegistry()
	_, addr, _ := startServer(t, chainGraph(t, 8), Options{Metrics: reg})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	lines := "no separator here\n0 | \nx | 7\n0 | 7\n"
	if _, err := conn.Write([]byte(lines)); err != nil {
		t.Fatal(err)
	}
	r := make([]byte, 0, 256)
	buf := make([]byte, 256)
	for !strings.HasSuffix(string(r), "true\n") {
		n, err := conn.Read(buf)
		if err != nil {
			t.Fatalf("read: %v (got %q)", err, r)
		}
		r = append(r, buf[:n]...)
	}
	got := strings.Split(strings.TrimSpace(string(r)), "\n")
	if len(got) != 4 {
		t.Fatalf("got %d responses %q, want 4", len(got), got)
	}
	for i := 0; i < 3; i++ {
		if !strings.HasPrefix(got[i], "error parse") {
			t.Fatalf("response %d = %q, want error parse", i, got[i])
		}
	}
	if got[3] != "true" {
		t.Fatalf("response 3 = %q, want true", got[3])
	}
	if got := reg.Counter("dsr_serve_parse_errors_total").Load(); got != 3 {
		t.Fatalf("parse errors = %d, want 3", got)
	}
}

// TestServePipelinedOrder: a client that fires many requests before
// reading gets its answers back in request order.
func TestServePipelinedOrder(t *testing.T) {
	g := chainGraph(t, 32)
	_, addr, _ := startServer(t, g, Options{CacheEntries: -1})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const q = 24
	want := make([]bool, q)
	for i := 0; i < q; i++ {
		s, tt := graph.VertexID(i%32), graph.VertexID((i*7)%32)
		want[i] = s <= tt // chain reachability
		if err := c.Send(ids(s), ids(tt)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < q; i++ {
		ans, err := c.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if ans != want[i] {
			t.Fatalf("query %d: got %v, want %v", i, ans, want[i])
		}
	}
}

// TestServeCrossClientBatching: two clients, one shared engine round.
// MaxBatch 2 with a long window means the batch departs exactly when
// the second client's query lands — if batching were per-connection,
// each query would wait out the full window alone and form its own
// batch.
func TestServeCrossClientBatching(t *testing.T) {
	reg := obs.NewRegistry()
	_, addr, _ := startServer(t, chainGraph(t, 8), Options{
		Metrics:      reg,
		BatchWindow:  5 * time.Second,
		MaxBatch:     2,
		CacheEntries: -1,
	})

	var wg sync.WaitGroup
	answers := make([]bool, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			answers[i], errs[i] = c.Query(ids(graph.VertexID(i)), ids(7))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		if !answers[i] {
			t.Fatalf("client %d: got false, want true", i)
		}
	}
	if got := reg.Counter("dsr_serve_batches_total").Load(); got != 1 {
		t.Fatalf("dsr_serve_batches_total = %d, want 1 shared batch", got)
	}
	if got := reg.Histogram("dsr_serve_batch_size").Count(); got != 1 {
		t.Fatalf("batch size samples = %d, want 1", got)
	}
}

// TestServeOverloadPerClient: with MaxPerClient 1 and a window long
// enough to hold the first query open, a pipelining client's second
// and third requests are shed with the client scope — and still
// answered in order.
func TestServeOverloadPerClient(t *testing.T) {
	reg := obs.NewRegistry()
	_, addr, _ := startServer(t, chainGraph(t, 8), Options{
		Metrics:      reg,
		BatchWindow:  300 * time.Millisecond,
		MaxPerClient: 1,
		CacheEntries: -1,
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 3; i++ {
		if err := c.Send(ids(0), ids(graph.VertexID(5+i))); err != nil {
			t.Fatal(err)
		}
	}
	if ans, err := c.Recv(); err != nil || !ans {
		t.Fatalf("first query = (%v, %v), want true", ans, err)
	}
	for i := 0; i < 2; i++ {
		_, err := c.Recv()
		var oe *OverloadError
		if !errors.As(err, &oe) || oe.Scope != "client" {
			t.Fatalf("shed query %d: err = %v, want OverloadError{client}", i, err)
		}
	}
	if got := reg.Counter(obs.Name("dsr_serve_shed_total", "scope", "client")).Load(); got != 2 {
		t.Fatalf("client sheds = %d, want 2", got)
	}
}

// TestServeOverloadServer: the server-wide queue bound sheds with the
// server scope once total outstanding crosses MaxQueued.
func TestServeOverloadServer(t *testing.T) {
	reg := obs.NewRegistry()
	_, addr, _ := startServer(t, chainGraph(t, 8), Options{
		Metrics:      reg,
		BatchWindow:  300 * time.Millisecond,
		MaxQueued:    1,
		MaxPerClient: 8,
		CacheEntries: -1,
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	c.Send(ids(0), ids(5))
	c.Send(ids(0), ids(6))
	if ans, err := c.Recv(); err != nil || !ans {
		t.Fatalf("first query = (%v, %v), want true", ans, err)
	}
	_, err = c.Recv()
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Scope != "server" {
		t.Fatalf("err = %v, want OverloadError{server}", err)
	}
	if got := reg.Counter(obs.Name("dsr_serve_shed_total", "scope", "server")).Load(); got != 1 {
		t.Fatalf("server sheds = %d, want 1", got)
	}
}

// fakeQuerier scripts QueryBatchErr for batcher-level tests.
type fakeQuerier struct {
	answers []bool
	err     error
	calls   int
}

func (f *fakeQuerier) QueryBatchErr(queries []core.Query) ([]bool, error) {
	f.calls++
	if f.answers != nil {
		return f.answers[:len(queries)], f.err
	}
	return make([]bool, len(queries)), f.err
}

// TestBatcherPartialFailure: a *dsr.BatchError fails exactly the
// flagged queries; the rest are answered and cached.
func TestBatcherPartialFailure(t *testing.T) {
	be := &dsr.BatchError{
		Partitions: []dsr.PartitionError{{Partition: 1, Err: errors.New("down")}},
		Failed:     []bool{false, true},
	}
	fq := &fakeQuerier{answers: []bool{true, false}, err: be}
	cache := NewCache(8, nil)
	b := newBatcher(fq, cache, Options{MaxInFlight: 1}.withDefaults())

	ps := []*pending{
		{q: core.Query{S: ids(0), T: ids(1)}, key: "a", ready: make(chan struct{})},
		{q: core.Query{S: ids(2), T: ids(3)}, key: "b", ready: make(chan struct{})},
	}
	b.run(ps)

	<-ps[0].ready
	if ps[0].err != nil || !ps[0].ans {
		t.Fatalf("query 0 = (%v, %v), want clean true", ps[0].ans, ps[0].err)
	}
	if _, ok := cache.Get("a"); !ok {
		t.Fatal("clean answer not cached")
	}
	<-ps[1].ready
	if !errors.Is(ps[1].err, error(be)) {
		t.Fatalf("query 1 err = %v, want the batch error", ps[1].err)
	}
	if _, ok := cache.Get("b"); ok {
		t.Fatal("failed answer must not be cached")
	}
}

// TestBatcherTotalFailure: a non-BatchError failure fails every query
// and caches nothing.
func TestBatcherTotalFailure(t *testing.T) {
	boom := errors.New("engine gone")
	fq := &fakeQuerier{err: boom}
	cache := NewCache(8, nil)
	b := newBatcher(fq, cache, Options{MaxInFlight: 1}.withDefaults())
	p := &pending{q: core.Query{S: ids(0), T: ids(1)}, key: "a", ready: make(chan struct{})}
	b.run([]*pending{p})
	<-p.ready
	if !errors.Is(p.err, boom) {
		t.Fatalf("err = %v, want %v", p.err, boom)
	}
	if cache.Len() != 0 {
		t.Fatal("failure cached")
	}
}

// TestBatcherClosedRejects: enqueue after close settles immediately
// with ErrServerClosed instead of stranding the writer.
func TestBatcherClosedRejects(t *testing.T) {
	b := newBatcher(&fakeQuerier{}, nil, Options{}.withDefaults())
	b.close()
	p := &pending{ready: make(chan struct{})}
	b.enqueue(p)
	select {
	case <-p.ready:
	case <-time.After(time.Second):
		t.Fatal("pending not settled after enqueue on closed batcher")
	}
	if !errors.Is(p.err, ErrServerClosed) {
		t.Fatalf("err = %v, want ErrServerClosed", p.err)
	}
}

func TestParseQuery(t *testing.T) {
	S, T, err := parseQuery("3 1 2 | 9 8")
	if err != nil {
		t.Fatal(err)
	}
	if len(S) != 3 || len(T) != 2 || S[0] != 3 || T[1] != 8 {
		t.Fatalf("parsed S=%v T=%v", S, T)
	}
	for _, bad := range []string{"1 2 3", "| 1", "1 |", "a | 1", "1 | 4294967296"} {
		if _, _, err := parseQuery(bad); !errors.Is(err, errParse) {
			t.Fatalf("parseQuery(%q) err = %v, want parse error", bad, err)
		}
	}
}
