package serve

import (
	"context"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"dsr/internal/dsr"
	"dsr/internal/graph"
	"dsr/internal/obs"
	"dsr/internal/partition"
	"dsr/internal/shard"
	"dsr/internal/wire"
)

// lagReplica delays every submit by a fixed amount: the deterministic
// straggler the hedging path needs a sibling to outrun.
type lagReplica struct {
	inner shard.Replica
	d     time.Duration
}

func (s *lagReplica) Submit(h wire.BatchHeader, tasks []wire.Task, replyc chan<- shard.Reply) {
	time.Sleep(s.d)
	s.inner.Submit(h, tasks, replyc)
}
func (s *lagReplica) Summary(ctx context.Context) (wire.Summary, error) { return s.inner.Summary(ctx) }
func (s *lagReplica) Hello() wire.Hello                                 { return s.inner.Hello() }
func (s *lagReplica) Close() error                                      { return s.inner.Close() }

func soakGraph(rng *rand.Rand, n, deg int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for d := 0; d < deg; d++ {
			b.AddEdge(graph.VertexID(v), graph.VertexID(rng.Intn(n)))
		}
	}
	return b.Build()
}

func soakSet(rng *rand.Rand, n, size int) []graph.VertexID {
	s := make([]graph.VertexID, size)
	for i := range s {
		s[i] = graph.VertexID(rng.Intn(n))
	}
	return s
}

// TestServeSoak is the serving layer's end-to-end: N concurrent
// clients hammer one server backed by a k=3, R=2 replicated engine
// whose second replica lags 20ms, with hedging armed at a 2ms ceiling.
// Every answer must match the whole-graph oracle, the shared cache
// must actually hit, hedges must fire (and win) against the laggard,
// and nothing may be shed at these limits.
func TestServeSoak(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	const k, n = 3, 120
	g := soakGraph(rng, n, 2)

	pt, err := graph.Hash().Partition(g, k)
	if err != nil {
		t.Fatal(err)
	}
	subs, _ := partition.Extract(g, pt)
	for _, sub := range subs {
		sub.Condensation(nil)
		sub.Index(nil)
	}
	groups := make([][]shard.ReplicaDialer, k)
	for p := 0; p < k; p++ {
		sub, pp := subs[p], p
		groups[p] = []shard.ReplicaDialer{
			func(context.Context) (shard.Replica, error) {
				return shard.NewLocalReplica(shard.New(pp, sub)), nil
			},
			func(context.Context) (shard.Replica, error) {
				return &lagReplica{inner: shard.NewLocalReplica(shard.New(pp, sub)), d: 20 * time.Millisecond}, nil
			},
		}
	}
	tr, err := shard.NewReplicated(t.Context(), groups, shard.ReplicatedOptions{ReconnectEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	eng, err := dsr.ConnectTransport(t.Context(), tr, k, n, dsr.Options{
		Metrics: reg,
		Hedge:   dsr.HedgeOptions{Enabled: true, Percentile: 0.95, Min: time.Millisecond, Max: 2 * time.Millisecond},
	})
	if err != nil {
		tr.Close()
		t.Fatal(err)
	}
	defer eng.Close()

	srv := New(eng, Options{
		Metrics:     reg,
		BatchWindow: time.Millisecond,
		MaxBatch:    32,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	servec := make(chan error, 1)
	go func() { servec <- srv.Serve(ln) }()

	// A fixed pool of queries with precomputed oracle answers: clients
	// drawing from a shared pool is what makes the cache (and
	// cross-client batch sharing) observable.
	type pq struct {
		S, T []graph.VertexID
		want bool
	}
	pool := make([]pq, 40)
	for i := range pool {
		S, T := soakSet(rng, n, 3), soakSet(rng, n, 3)
		pool[i] = pq{S: S, T: T, want: dsr.NaiveReach(g, S, T)}
	}

	const clients, perClient = 8, 60
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			crng := rand.New(rand.NewSource(seed))
			c, err := Dial(ln.Addr().String())
			if err != nil {
				errc <- err
				return
			}
			defer c.Close()
			for i := 0; i < perClient; i++ {
				q := pool[crng.Intn(len(pool))]
				ans, err := c.Query(q.S, q.T)
				if err != nil {
					errc <- err
					return
				}
				if ans != q.want {
					t.Errorf("client query %v|%v: got %v, oracle %v", q.S, q.T, ans, q.want)
				}
			}
		}(int64(ci) + 1)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-servec; err != ErrServerClosed {
		t.Fatalf("Serve returned %v", err)
	}

	total := clients * perClient
	if got := reg.Counter("dsr_serve_queries_total").Load(); got != uint64(total) {
		t.Fatalf("dsr_serve_queries_total = %d, want %d", got, total)
	}
	hits := reg.Counter("dsr_cache_hits_total").Load()
	if hits == 0 {
		t.Fatal("cache never hit despite clients sharing a 40-query pool")
	}
	batches := reg.Counter("dsr_serve_batches_total").Load()
	misses := reg.Counter("dsr_cache_misses_total").Load()
	if batches == 0 || batches > misses {
		t.Fatalf("batches = %d (misses %d): every batch should carry >= 1 missed query", batches, misses)
	}
	var hedges, wins uint64
	for p := 0; p < k; p++ {
		hedges += reg.Counter(obs.Name("dsr_hedges_total", "partition", p)).Load()
		wins += reg.Counter(obs.Name("dsr_hedge_wins_total", "partition", p)).Load()
	}
	if hedges == 0 {
		t.Fatal("no hedge fired despite a 20ms laggard replica and a 2ms deadline")
	}
	if wins == 0 {
		t.Fatal("no hedge won despite the sibling being 20ms faster")
	}
	shed := reg.Counter(obs.Name("dsr_serve_shed_total", "scope", "client")).Load() +
		reg.Counter(obs.Name("dsr_serve_shed_total", "scope", "server")).Load()
	if shed != 0 {
		t.Fatalf("%d queries shed at default limits", shed)
	}
}
