// Package core is the public façade over the DSR engine. Two entry
// points cover the two deployments:
//
// Build partitions a graph and answers queries in one process:
//
//	g := ...                                   // *graph.Graph
//	eng, err := core.Build(g, core.Options{K: 4})
//	defer eng.Close()
//	ok := eng.Query([]graph.VertexID{0, 1}, []graph.VertexID{9})
//
// Connect joins a running fleet of dsr-shard servers, graph-free: the
// coordinator needs nothing but the shard addresses. Each shard ships
// its boundary summary at connect time and the coordinator stitches
// them into the global boundary graph — the full graph never exists on
// the coordinator, whose resident state scales with the boundary, not
// the graph:
//
//	eng, err := core.Connect(ctx, core.ClusterSpec{
//	    Groups: []string{"host1:7000", "host2:7000", "host3:7000"},
//	})
//	defer eng.Close()
//	answers, err := eng.QueryBatchErr([]core.Query{{S: s0, T: t0}, {S: s1, T: t1}})
package core

import (
	"context"

	"dsr/internal/dsr"
	"dsr/internal/graph"
	"dsr/internal/shard"
)

// Query pairs one source set with one target set for QueryBatch.
type Query = dsr.Query

// Options configures Build: partition count, partitioning strategy
// (nil means graph.Hash()), or a precomputed Partitioning.
type Options = dsr.Options

// ClusterSpec describes an existing shard fleet for Connect: one
// address spec per partition ("host:port", or "a:port|b:port" replica
// groups), plus optional pinned expectations (graph fingerprint,
// partitioning digest) and connect-progress logging.
type ClusterSpec = dsr.ClusterSpec

// HedgeOptions configures hedged shard requests for replicated
// deployments: rounds that outlast a high quantile of a partition's
// usual latency are re-sent to an idle sibling replica, first reply
// wins. Sound because local searches are idempotent reads.
type HedgeOptions = dsr.HedgeOptions

// BatchError is QueryBatchErr's partial-failure report: one entry per
// unavailable partition plus a per-query Failed mask; answers for
// queries with Failed[i] == false remain valid.
type BatchError = dsr.BatchError

// PartitionError is one unavailable partition inside a BatchError.
type PartitionError = dsr.PartitionError

// MismatchError reports a fleet whose shards disagree with each other
// about the deployment they serve (vertex count, graph fingerprint, or
// partitioning digest); Connect refuses such a fleet outright.
type MismatchError = dsr.MismatchError

// PartitionHealth is one partition's replica-health snapshot from
// Engine.Health: configured and live replica counts plus cumulative
// retry/failover/redial totals since connect.
type PartitionHealth = shard.PartitionHealth

// EndpointInfo is one shard replica's identity as Engine.Endpoints
// reports it: partition, replica slot, RPC address, the ops address it
// announced at handshake (empty if none), and liveness.
type EndpointInfo = shard.EndpointInfo

// Engine answers set-reachability queries over a partitioned graph.
type Engine struct {
	inner *dsr.Engine
}

// Build partitions g per opts and starts an in-process engine over it:
// one shard per partition, each shipping its boundary summary to the
// coordinator over the same summary path a remote fleet uses.
func Build(g *graph.Graph, opts Options) (*Engine, error) {
	inner, err := dsr.Build(g, opts)
	if err != nil {
		return nil, err
	}
	return &Engine{inner: inner}, nil
}

// Connect joins the shard fleet described by spec and builds the
// graph-free coordinator over it: identity comes from the handshake,
// boundary structure from the summaries the shards ship, and shards
// that disagree with each other are refused with a *MismatchError.
// With replica groups the coordinator routes rounds to healthy
// replicas, retries mid-query failures on siblings, and redials dead
// replicas; a partition is only unavailable once every replica of it is
// down, and even then QueryBatchErr fails just the queries that needed
// it (see BatchError).
//
// ctx bounds connecting (dials, handshakes, summary fetches) and
// cancels in-flight redials on Close; it does not bound later queries.
func Connect(ctx context.Context, spec ClusterSpec) (*Engine, error) {
	inner, err := dsr.Connect(ctx, spec)
	if err != nil {
		return nil, err
	}
	return &Engine{inner: inner}, nil
}

// Query reports whether any source in S reaches any target in T. It
// panics if the engine has been closed or a shard transport fails.
func (e *Engine) Query(S, T []graph.VertexID) bool { return e.inner.Query(S, T) }

// QueryBatch answers a batch of queries in one shard round-trip each
// way, amortizing transport overhead; answers are positional. It panics
// on closed engines and transport failures.
func (e *Engine) QueryBatch(queries []Query) []bool { return e.inner.QueryBatch(queries) }

// QueryBatchErr is QueryBatch with transport failures returned as an
// error — the form to use against remote shards. When the error is a
// *BatchError (one or more partitions unavailable), the answers are
// still valid for every query the error's Failed mask doesn't flag.
func (e *Engine) QueryBatchErr(queries []Query) ([]bool, error) {
	return e.inner.QueryBatchErr(queries)
}

// NumPartitions returns the partition count.
func (e *Engine) NumPartitions() int { return e.inner.NumPartitions() }

// NumBoundary returns the size of the compressed boundary graph.
func (e *Engine) NumBoundary() int { return e.inner.NumBoundary() }

// ResidentBytes reports the coordinator's per-graph resident footprint
// — the stitched boundary graph. It scales with the boundary, never
// with partition interiors.
func (e *Engine) ResidentBytes() int { return e.inner.ResidentBytes() }

// Endpoints lists the shard replicas behind the engine — RPC address,
// announced ops address, liveness — for fleet-wide metrics scraping.
// Nil for in-process engines, whose shards have no addresses.
func (e *Engine) Endpoints() []EndpointInfo { return e.inner.Endpoints() }

// Health reports per-partition replica health for replicated
// deployments (live counts, retries, failovers, redials since connect);
// nil for in-process and single-replica engines.
func (e *Engine) Health() []PartitionHealth { return e.inner.Health() }

// Close shuts the engine down deterministically: in-process shard
// goroutines have exited and remote connections are closed when it
// returns.
func (e *Engine) Close() { e.inner.Close() }
