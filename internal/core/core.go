// Package core is the public façade over the DSR engine: build a graph
// (or load one from an edge list), pick a partition count, and ask
// set-reachability questions.
//
//	g := ...                       // *graph.Graph
//	eng, err := core.New(g, 4)     // 4 partitions, hash-partitioned
//	defer eng.Close()
//	ok := eng.Query([]graph.VertexID{0, 1}, []graph.VertexID{9})
package core

import (
	"dsr/internal/dsr"
	"dsr/internal/graph"
)

// Engine answers set-reachability queries over a partitioned graph.
type Engine struct {
	inner *dsr.Engine
}

// New builds an engine over g split into k hash-partitioned parts and
// starts its per-partition workers.
func New(g *graph.Graph, k int) (*Engine, error) {
	inner, err := dsr.New(g, k)
	if err != nil {
		return nil, err
	}
	return &Engine{inner: inner}, nil
}

// NewWithPartitioning builds an engine over a caller-supplied
// partitioning (e.g. graph.RangePartition output).
func NewWithPartitioning(g *graph.Graph, pt *graph.Partitioning) (*Engine, error) {
	inner, err := dsr.NewWithPartitioning(g, pt)
	if err != nil {
		return nil, err
	}
	return &Engine{inner: inner}, nil
}

// Query reports whether any source in S reaches any target in T. It
// panics if the engine has been closed.
func (e *Engine) Query(S, T []graph.VertexID) bool { return e.inner.Query(S, T) }

// NumPartitions returns the partition count.
func (e *Engine) NumPartitions() int { return e.inner.NumPartitions() }

// NumBoundary returns the size of the compressed boundary graph.
func (e *Engine) NumBoundary() int { return e.inner.NumBoundary() }

// Close stops the engine's worker goroutines.
func (e *Engine) Close() { e.inner.Close() }
