package core
