// Package core is the public façade over the DSR engine: build a graph
// (or load one from an edge list), pick a partition count, and ask
// set-reachability questions — in one process or against a fleet of
// shard servers.
//
//	g := ...                       // *graph.Graph
//	eng, err := core.New(g, 4)     // 4 partitions, in-process
//	defer eng.Close()
//	ok := eng.Query([]graph.VertexID{0, 1}, []graph.VertexID{9})
//
// Distributed, against running dsr-shard servers (shard i at addrs[i],
// all built from the same graph):
//
//	eng, err := core.NewDistributed(g, "host1:7000", "host2:7000", "host3:7000")
//	defer eng.Close()
//	answers, err := eng.QueryBatchErr([]core.Query{{S: s0, T: t0}, {S: s1, T: t1}})
package core

import (
	"dsr/internal/dsr"
	"dsr/internal/graph"
)

// Query pairs one source set with one target set for QueryBatch.
type Query = dsr.Query

// BatchError is QueryBatchErr's partial-failure report: one entry per
// unavailable partition plus a per-query Failed mask; answers for
// queries with Failed[i] == false remain valid.
type BatchError = dsr.BatchError

// PartitionError is one unavailable partition inside a BatchError.
type PartitionError = dsr.PartitionError

// Engine answers set-reachability queries over a partitioned graph.
type Engine struct {
	inner *dsr.Engine
}

// New builds an engine over g split into k hash-partitioned parts and
// starts its per-partition in-process shards.
func New(g *graph.Graph, k int) (*Engine, error) {
	return NewWithPartitioner(g, k, graph.Hash())
}

// NewWithPartitioner is New with an explicit partitioning strategy —
// graph.Hash(), graph.Range(), or locality.New(opts) for the
// boundary-minimizing partitioner. The strategy determines how small
// the compressed boundary graph comes out, which is what every
// cross-partition query pays for.
func NewWithPartitioner(g *graph.Graph, k int, p graph.Partitioner) (*Engine, error) {
	inner, err := dsr.NewWith(g, k, p)
	if err != nil {
		return nil, err
	}
	return &Engine{inner: inner}, nil
}

// NewWithPartitioning builds an engine over a caller-supplied
// partitioning (e.g. graph.RangePartition output).
func NewWithPartitioning(g *graph.Graph, pt *graph.Partitioning) (*Engine, error) {
	inner, err := dsr.NewWithPartitioning(g, pt)
	if err != nil {
		return nil, err
	}
	return &Engine{inner: inner}, nil
}

// NewDistributed builds a coordinator over g hash-partitioned into
// len(addrs) parts, with partition i served by the dsr-shard server at
// addrs[i] — or by a replica group: addrs[i] may list several
// interchangeable servers separated by '|' ("h1:7000|h2:7000"). With
// replicas the coordinator load-balances rounds across healthy
// replicas, retries a batch on a sibling when a replica fails
// mid-query, and reconnects dead replicas in the background; a
// partition is only unavailable once every replica of it is down, and
// even then QueryBatchErr fails just the queries that needed it (see
// BatchError). Every shard must have been started from the same graph
// (and the same shard count); the handshake rejects mismatched
// deployments, replica by replica.
func NewDistributed(g *graph.Graph, addrs ...string) (*Engine, error) {
	inner, err := dsr.NewDistributed(g, addrs)
	if err != nil {
		return nil, err
	}
	return &Engine{inner: inner}, nil
}

// NewDistributedWithPartitioner is NewDistributed with an explicit
// partitioning strategy. Every shard server must have been started with
// the identical strategy (same -partitioner spec, including any
// locality seed): partitioners are deterministic, so identical specs
// mean identical placements, and the handshake's partitioning digest
// rejects anything else.
func NewDistributedWithPartitioner(g *graph.Graph, p graph.Partitioner, addrs ...string) (*Engine, error) {
	inner, err := dsr.NewDistributedWith(g, p, addrs)
	if err != nil {
		return nil, err
	}
	return &Engine{inner: inner}, nil
}

// Query reports whether any source in S reaches any target in T. It
// panics if the engine has been closed or a shard transport fails.
func (e *Engine) Query(S, T []graph.VertexID) bool { return e.inner.Query(S, T) }

// QueryBatch answers a batch of queries in one shard round-trip each
// way, amortizing transport overhead; answers are positional. It panics
// on closed engines and transport failures.
func (e *Engine) QueryBatch(queries []Query) []bool { return e.inner.QueryBatch(queries) }

// QueryBatchErr is QueryBatch with transport failures returned as an
// error — the form to use against remote shards. When the error is a
// *BatchError (one or more partitions unavailable), the answers are
// still valid for every query the error's Failed mask doesn't flag.
func (e *Engine) QueryBatchErr(queries []Query) ([]bool, error) {
	return e.inner.QueryBatchErr(queries)
}

// NumPartitions returns the partition count.
func (e *Engine) NumPartitions() int { return e.inner.NumPartitions() }

// NumBoundary returns the size of the compressed boundary graph.
func (e *Engine) NumBoundary() int { return e.inner.NumBoundary() }

// Close shuts the engine down deterministically: in-process shard
// goroutines have exited and remote connections are closed when it
// returns.
func (e *Engine) Close() { e.inner.Close() }
