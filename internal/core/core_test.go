package core

import (
	"path/filepath"
	"testing"

	"dsr/internal/graph"
)

func TestFacadeEndToEnd(t *testing.T) {
	g, err := graph.LoadEdgeListFile(filepath.Join("..", "graph", "testdata", "tiny.txt"))
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if got := e.NumPartitions(); got != 2 {
		t.Fatalf("NumPartitions = %d, want 2", got)
	}
	// The bridge 3->4 is one-way: the first cycle reaches the second,
	// never the reverse.
	if !e.Query([]graph.VertexID{0}, []graph.VertexID{7}) {
		t.Error("0 should reach 7 across the bridge")
	}
	if e.Query([]graph.VertexID{7}, []graph.VertexID{0}) {
		t.Error("7 must not reach 0 against the bridge")
	}
}

func TestFacadeWithRangePartitioning(t *testing.T) {
	b := graph.NewBuilder(6)
	for i := 0; i < 5; i++ {
		b.AddEdge(graph.VertexID(i), graph.VertexID(i+1))
	}
	g := b.Build()
	pt, err := graph.RangePartition(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewWithPartitioning(g, pt)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if !e.Query([]graph.VertexID{0}, []graph.VertexID{5}) {
		t.Error("chain head should reach tail across three partitions")
	}
	if e.NumBoundary() == 0 {
		t.Error("chain across partitions must have boundary vertices")
	}
}

func TestFacadeRejectsBadK(t *testing.T) {
	g := graph.NewBuilder(2).Build()
	if _, err := New(g, 0); err == nil {
		t.Fatal("want error for k=0")
	}
}
