package core

import (
	"net"
	"path/filepath"
	"sync"
	"testing"

	"dsr/internal/graph"
	"dsr/internal/partition"
	"dsr/internal/partition/locality"
	"dsr/internal/shard"
)

func TestFacadeEndToEnd(t *testing.T) {
	g, err := graph.LoadEdgeListFile(filepath.Join("..", "graph", "testdata", "tiny.txt"))
	if err != nil {
		t.Fatal(err)
	}
	e, err := Build(g, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if got := e.NumPartitions(); got != 2 {
		t.Fatalf("NumPartitions = %d, want 2", got)
	}
	// The bridge 3->4 is one-way: the first cycle reaches the second,
	// never the reverse.
	if !e.Query([]graph.VertexID{0}, []graph.VertexID{7}) {
		t.Error("0 should reach 7 across the bridge")
	}
	if e.Query([]graph.VertexID{7}, []graph.VertexID{0}) {
		t.Error("7 must not reach 0 against the bridge")
	}
}

func TestFacadeWithRangePartitioning(t *testing.T) {
	b := graph.NewBuilder(6)
	for i := 0; i < 5; i++ {
		b.AddEdge(graph.VertexID(i), graph.VertexID(i+1))
	}
	g := b.Build()
	pt, err := graph.RangePartition(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Build(g, Options{Partitioning: pt})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if !e.Query([]graph.VertexID{0}, []graph.VertexID{5}) {
		t.Error("chain head should reach tail across three partitions")
	}
	if e.NumBoundary() == 0 {
		t.Error("chain across partitions must have boundary vertices")
	}
}

func TestFacadeRejectsBadK(t *testing.T) {
	g := graph.NewBuilder(2).Build()
	if _, err := Build(g, Options{}); err == nil {
		t.Fatal("want error for k=0")
	}
}

// TestFacadeWithPartitioner: the façade accepts a partitioning strategy
// and the locality partitioner answers exactly like hash does — it only
// changes where the boundary lands. On the tiny fixture (two 4-cycles
// and one bridge) it finds the bridge: 2 boundary vertices vs hash's 7.
func TestFacadeWithPartitioner(t *testing.T) {
	g, err := graph.LoadEdgeListFile(filepath.Join("..", "graph", "testdata", "tiny.txt"))
	if err != nil {
		t.Fatal(err)
	}
	hashEng, err := Build(g, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer hashEng.Close()
	locEng, err := Build(g, Options{K: 2, Partitioner: locality.New(locality.Options{})})
	if err != nil {
		t.Fatal(err)
	}
	defer locEng.Close()
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			S, T := []graph.VertexID{graph.VertexID(s)}, []graph.VertexID{graph.VertexID(d)}
			if h, l := hashEng.Query(S, T), locEng.Query(S, T); h != l {
				t.Fatalf("partitioners disagree on %d->%d: hash %v, locality %v", s, d, h, l)
			}
		}
	}
	if hb, lb := hashEng.NumBoundary(), locEng.NumBoundary(); lb >= hb {
		t.Errorf("locality boundary %d not smaller than hash %d on the clustered fixture", lb, hb)
	}
}

// TestFacadeDistributedTCP drives the distributed entry point: three
// shard servers on localhost, a graph-free Connect coordinator built
// from their addresses alone, and both query paths.
func TestFacadeDistributedTCP(t *testing.T) {
	g, err := graph.LoadEdgeListFile(filepath.Join("..", "graph", "testdata", "tiny.txt"))
	if err != nil {
		t.Fatal(err)
	}
	const k = 3
	pt, err := graph.HashPartition(g, k)
	if err != nil {
		t.Fatal(err)
	}
	subs, _ := partition.Extract(g, pt)
	var addrs []string
	var wg sync.WaitGroup
	var servers []*shard.Server
	for i := 0; i < k; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, ln.Addr().String())
		srv := shard.NewServer(shard.New(i, subs[i]), k, g.NumVertices(), g.Fingerprint(), pt.Digest())
		servers = append(servers, srv)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := srv.Serve(ln); err != nil {
				t.Errorf("serve: %v", err)
			}
		}()
	}
	defer func() {
		for _, srv := range servers {
			srv.Close()
		}
		wg.Wait()
	}()

	e, err := Connect(t.Context(), ClusterSpec{Groups: addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if !e.Query([]graph.VertexID{0}, []graph.VertexID{7}) {
		t.Error("0 should reach 7 across the bridge")
	}
	if e.Query([]graph.VertexID{7}, []graph.VertexID{0}) {
		t.Error("7 must not reach 0 against the bridge")
	}
	answers, err := e.QueryBatchErr([]Query{
		{S: []graph.VertexID{0}, T: []graph.VertexID{7}},
		{S: []graph.VertexID{7}, T: []graph.VertexID{0}},
		{S: []graph.VertexID{4}, T: []graph.VertexID{4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true}
	for i := range want {
		if answers[i] != want[i] {
			t.Errorf("batch query %d = %v, want %v", i, answers[i], want[i])
		}
	}
}

// TestFacadeReplicatedTCP drives the replica-group syntax end to end:
// two servers per partition behind one "a|b" spec, a replica of every
// partition killed mid-session, queries still answered.
func TestFacadeReplicatedTCP(t *testing.T) {
	g, err := graph.LoadEdgeListFile(filepath.Join("..", "graph", "testdata", "tiny.txt"))
	if err != nil {
		t.Fatal(err)
	}
	const k, R = 3, 2
	pt, err := graph.HashPartition(g, k)
	if err != nil {
		t.Fatal(err)
	}
	subs, _ := partition.Extract(g, pt)
	specs := make([]string, k)
	servers := make([][]*shard.Server, k)
	var wg sync.WaitGroup
	for p := 0; p < k; p++ {
		var addrs []string
		for r := 0; r < R; r++ {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			srv := shard.NewServer(shard.New(p, subs[p]), k, g.NumVertices(), g.Fingerprint(), pt.Digest())
			servers[p] = append(servers[p], srv)
			addrs = append(addrs, ln.Addr().String())
			wg.Add(1)
			go func() {
				defer wg.Done()
				srv.Serve(ln)
			}()
		}
		specs[p] = addrs[0] + "|" + addrs[1]
	}
	defer func() {
		for _, row := range servers {
			for _, srv := range row {
				srv.Close()
			}
		}
		wg.Wait()
	}()

	e, err := Connect(t.Context(), ClusterSpec{Groups: specs})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	check := func(stage string) {
		t.Helper()
		answers, err := e.QueryBatchErr([]Query{
			{S: []graph.VertexID{0}, T: []graph.VertexID{7}},
			{S: []graph.VertexID{7}, T: []graph.VertexID{0}},
		})
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		if !answers[0] || answers[1] {
			t.Fatalf("%s: answers = %v, want [true false]", stage, answers)
		}
	}
	check("all replicas up")
	// Kill one replica of every partition: the fleet must keep working.
	for p := 0; p < k; p++ {
		servers[p][0].Close()
	}
	for i := 0; i < 10; i++ { // enough rounds for round-robin to hit every corpse
		check("one replica per partition down")
	}
}
