package shard

import (
	"slices"
	"testing"

	"dsr/internal/graph"
	"dsr/internal/partition"
	"dsr/internal/wire"
)

// buildShards extracts per-partition shards from a small graph.
func buildShards(t testing.TB, n int, edges [][2]graph.VertexID, k int) ([]*Shard, *graph.Partitioning) {
	t.Helper()
	b := graph.NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	g := b.Build()
	pt, err := graph.RangePartition(g, k)
	if err != nil {
		t.Fatal(err)
	}
	subs, _ := partition.Extract(g, pt)
	shards := make([]*Shard, len(subs))
	for i, s := range subs {
		shards[i] = New(i, s)
	}
	return shards, pt
}

// chainFixture is 0->1->2->3->4->5 range-split into 3 partitions of two
// vertices each: 1, 3, 5 are never entries; 2, 4 are entries; 1, 3 are
// exits.
func chainFixture(t testing.TB) ([]*Shard, *graph.Partitioning) {
	return buildShards(t, 6, [][2]graph.VertexID{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}}, 3)
}

func TestShardRunForwardBackward(t *testing.T) {
	shards, _ := chainFixture(t)

	// Forward from global 0 in shard 0: reaches exit 1, no local target.
	res := shards[0].Run([]wire.Task{
		{Kind: wire.Forward, Query: 7, Seeds: []int32{0}},
	})
	if len(res) != 1 {
		t.Fatalf("got %d results, want 1", len(res))
	}
	if res[0].Query != 7 || res[0].Kind != wire.Forward || res[0].Hit {
		t.Fatalf("bad result header: %+v", res[0])
	}
	if res[0].Owned != 1 {
		t.Fatalf("Owned = %d, want 1", res[0].Owned)
	}
	if !slices.Equal(res[0].Boundary, []uint32{1}) {
		t.Fatalf("forward boundary = %v, want [1]", res[0].Boundary)
	}

	// Forward with a local target: 0 reaches 1 inside the partition.
	res = shards[0].Run([]wire.Task{
		{Kind: wire.Forward, Query: 0, Seeds: []int32{0}, Targets: []int32{1}},
	})
	if !res[0].Hit {
		t.Fatal("expected local hit 0 ~> 1")
	}

	// Backward from global 5 in shard 2: entry 4 reaches it.
	res = shards[2].Run([]wire.Task{
		{Kind: wire.Backward, Query: 3, Seeds: []int32{5}},
	})
	if !slices.Equal(res[0].Boundary, []uint32{4}) {
		t.Fatalf("backward boundary = %v, want [4]", res[0].Boundary)
	}

	// A batch mixes kinds and returns results in task order.
	res = shards[1].Run([]wire.Task{
		{Kind: wire.Forward, Query: 1, Seeds: []int32{2}},
		{Kind: wire.Backward, Query: 2, Seeds: []int32{3}},
	})
	if len(res) != 2 || res[0].Query != 1 || res[1].Query != 2 {
		t.Fatalf("batch order broken: %+v", res)
	}
	if !slices.Equal(res[0].Boundary, []uint32{3}) { // 2 ~> exit 3
		t.Fatalf("batch forward boundary = %v, want [3]", res[0].Boundary)
	}
	if !slices.Equal(res[1].Boundary, []uint32{2}) { // entry 2 ~> 3
		t.Fatalf("batch backward boundary = %v, want [2]", res[1].Boundary)
	}
}

// TestShardSkipsUnownedSeeds pins the broadcast contract: seeds (and
// targets) are global IDs, a shard silently skips the ones it doesn't
// hold, and Owned reports exactly how many it did — including zero for
// a batch aimed entirely at other partitions or out of range.
func TestShardSkipsUnownedSeeds(t *testing.T) {
	shards, _ := chainFixture(t)

	// Shard 0 owns {0,1}: of seeds {0, 4, 99} it holds only 0, and the
	// target 5 (owned by shard 2) must not count as a local hit.
	res := shards[0].Run([]wire.Task{
		{Kind: wire.Forward, Query: 1, Seeds: []int32{0, 4, 99}, Targets: []int32{5}},
	})
	if res[0].Owned != 1 {
		t.Fatalf("Owned = %d, want 1", res[0].Owned)
	}
	if res[0].Hit {
		t.Fatal("unowned target counted as local hit")
	}
	if !slices.Equal(res[0].Boundary, []uint32{1}) {
		t.Fatalf("boundary = %v, want [1]", res[0].Boundary)
	}

	// A batch aimed entirely elsewhere: Owned 0, empty search.
	res = shards[1].Run([]wire.Task{
		{Kind: wire.Forward, Query: 2, Seeds: []int32{0, 5}},
		{Kind: wire.Backward, Query: 3, Seeds: []int32{-1, 100}},
	})
	for i, r := range res {
		if r.Owned != 0 {
			t.Fatalf("task %d: Owned = %d, want 0", i, r.Owned)
		}
		if r.Hit || len(r.Boundary) != 0 {
			t.Fatalf("task %d: empty search produced %+v", i, r)
		}
	}
}

// TestShardSummary pins the boundary summary on the chain fixture:
// boundary vertices in strictly increasing global order, entry->exit
// summary edges, and outgoing cross-partition edges.
func TestShardSummary(t *testing.T) {
	shards, _ := chainFixture(t)

	// Shard 0 ({0,1}): 1 is an exit, nothing is an entry; no internal
	// entry->exit pair; one cross edge 1->2.
	s0 := shards[0].Summary()
	if !slices.Equal(s0.Boundary, []uint32{1}) {
		t.Fatalf("shard 0 boundary = %v, want [1]", s0.Boundary)
	}
	if len(s0.Edges) != 0 {
		t.Fatalf("shard 0 summary edges = %v, want none", s0.Edges)
	}
	if !slices.Equal(s0.Cross, [][2]uint32{{1, 2}}) {
		t.Fatalf("shard 0 cross = %v, want [[1 2]]", s0.Cross)
	}

	// Shard 1 ({2,3}): entry 2, exit 3, summary edge 2->3, cross 3->4.
	s1 := shards[1].Summary()
	if !slices.Equal(s1.Boundary, []uint32{2, 3}) {
		t.Fatalf("shard 1 boundary = %v, want [2 3]", s1.Boundary)
	}
	if !slices.Equal(s1.Edges, [][2]uint32{{2, 3}}) {
		t.Fatalf("shard 1 summary edges = %v, want [[2 3]]", s1.Edges)
	}
	if !slices.Equal(s1.Cross, [][2]uint32{{3, 4}}) {
		t.Fatalf("shard 1 cross = %v, want [[3 4]]", s1.Cross)
	}

	// Shard 2 ({4,5}): entry 4, no exits, no cross edges out.
	s2 := shards[2].Summary()
	if !slices.Equal(s2.Boundary, []uint32{4}) {
		t.Fatalf("shard 2 boundary = %v, want [4]", s2.Boundary)
	}
	if len(s2.Edges) != 0 || len(s2.Cross) != 0 {
		t.Fatalf("shard 2 edges/cross = %v/%v, want none", s2.Edges, s2.Cross)
	}

	// Cached: the second call returns the identical slices.
	again := shards[1].Summary()
	if &again.Boundary[0] != &s1.Boundary[0] {
		t.Fatal("Summary rebuilt instead of returning the cached value")
	}
}

func TestLoopbackTransport(t *testing.T) {
	shards, _ := chainFixture(t)
	lb := NewLoopback(shards)
	defer lb.Close()
	if lb.NumShards() != 3 {
		t.Fatalf("NumShards = %d, want 3", lb.NumShards())
	}
	replyc := make(chan Reply, 3)
	lb.Submit(0, wire.BatchHeader{}, []wire.Task{{Kind: wire.Forward, Query: 0, Seeds: []int32{0}}}, replyc)
	lb.Submit(2, wire.BatchHeader{}, []wire.Task{{Kind: wire.Backward, Query: 0, Seeds: []int32{5}}}, replyc)
	seen := map[int][]uint32{}
	for i := 0; i < 2; i++ {
		rep := <-replyc
		if rep.Err != nil {
			t.Fatal(rep.Err)
		}
		seen[rep.Shard] = slices.Clone(rep.Results[0].Boundary)
	}
	if !slices.Equal(seen[0], []uint32{1}) || !slices.Equal(seen[2], []uint32{4}) {
		t.Fatalf("loopback replies = %v", seen)
	}
}

func TestLoopbackCloseIdempotent(t *testing.T) {
	shards, _ := chainFixture(t)
	lb := NewLoopback(shards)
	if err := lb.Close(); err != nil {
		t.Fatal(err)
	}
	if err := lb.Close(); err != nil {
		t.Fatal(err)
	}
}
