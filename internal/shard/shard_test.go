package shard

import (
	"slices"
	"testing"

	"dsr/internal/graph"
	"dsr/internal/partition"
	"dsr/internal/wire"
)

// buildShards extracts per-partition shards from a small graph.
func buildShards(t testing.TB, n int, edges [][2]graph.VertexID, k int) ([]*Shard, *graph.Partitioning, []int32) {
	t.Helper()
	b := graph.NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	g := b.Build()
	pt, err := graph.RangePartition(g, k)
	if err != nil {
		t.Fatal(err)
	}
	subs, local := partition.Extract(g, pt)
	shards := make([]*Shard, len(subs))
	for i, s := range subs {
		shards[i] = New(i, s)
	}
	return shards, pt, local
}

// chainFixture is 0->1->2->3->4->5 range-split into 3 partitions of two
// vertices each: 1, 3, 5 are never entries; 2, 4 are entries; 1, 3 are
// exits.
func chainFixture(t testing.TB) ([]*Shard, *graph.Partitioning, []int32) {
	return buildShards(t, 6, [][2]graph.VertexID{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}}, 3)
}

func TestShardRunForwardBackward(t *testing.T) {
	shards, _, local := chainFixture(t)

	// Forward from global 0 in shard 0: reaches exit 1, no local target.
	res := shards[0].Run([]wire.Task{
		{Kind: wire.Forward, Query: 7, Seeds: []int32{local[0]}},
	})
	if len(res) != 1 {
		t.Fatalf("got %d results, want 1", len(res))
	}
	if res[0].Query != 7 || res[0].Kind != wire.Forward || res[0].Hit {
		t.Fatalf("bad result header: %+v", res[0])
	}
	if !slices.Equal(res[0].Boundary, []uint32{1}) {
		t.Fatalf("forward boundary = %v, want [1]", res[0].Boundary)
	}

	// Forward with a local target: 0 reaches 1 inside the partition.
	res = shards[0].Run([]wire.Task{
		{Kind: wire.Forward, Query: 0, Seeds: []int32{local[0]}, Targets: []int32{local[1]}},
	})
	if !res[0].Hit {
		t.Fatal("expected local hit 0 ~> 1")
	}

	// Backward from global 5 in shard 2: entry 4 reaches it.
	res = shards[2].Run([]wire.Task{
		{Kind: wire.Backward, Query: 3, Seeds: []int32{local[5]}},
	})
	if !slices.Equal(res[0].Boundary, []uint32{4}) {
		t.Fatalf("backward boundary = %v, want [4]", res[0].Boundary)
	}

	// A batch mixes kinds and returns results in task order.
	res = shards[1].Run([]wire.Task{
		{Kind: wire.Forward, Query: 1, Seeds: []int32{local[2]}},
		{Kind: wire.Backward, Query: 2, Seeds: []int32{local[3]}},
	})
	if len(res) != 2 || res[0].Query != 1 || res[1].Query != 2 {
		t.Fatalf("batch order broken: %+v", res)
	}
	if !slices.Equal(res[0].Boundary, []uint32{3}) { // 2 ~> exit 3
		t.Fatalf("batch forward boundary = %v, want [3]", res[0].Boundary)
	}
	if !slices.Equal(res[1].Boundary, []uint32{2}) { // entry 2 ~> 3
		t.Fatalf("batch backward boundary = %v, want [2]", res[1].Boundary)
	}
}

func TestShardValidTask(t *testing.T) {
	shards, _, _ := chainFixture(t)
	ok := wire.Task{Kind: wire.Forward, Seeds: []int32{0, 1}}
	if !shards[0].ValidTask(&ok) {
		t.Error("in-range task rejected")
	}
	for _, bad := range []wire.Task{
		{Kind: wire.Forward, Seeds: []int32{2}},
		{Kind: wire.Forward, Seeds: []int32{-1}},
		{Kind: wire.Forward, Seeds: []int32{0}, Targets: []int32{99}},
	} {
		if shards[0].ValidTask(&bad) {
			t.Errorf("out-of-range task accepted: %+v", bad)
		}
	}
}

func TestLoopbackTransport(t *testing.T) {
	shards, _, local := chainFixture(t)
	lb := NewLoopback(shards)
	defer lb.Close()
	if lb.NumShards() != 3 {
		t.Fatalf("NumShards = %d, want 3", lb.NumShards())
	}
	replyc := make(chan Reply, 3)
	lb.Submit(0, []wire.Task{{Kind: wire.Forward, Query: 0, Seeds: []int32{local[0]}}}, replyc)
	lb.Submit(2, []wire.Task{{Kind: wire.Backward, Query: 0, Seeds: []int32{local[5]}}}, replyc)
	seen := map[int][]uint32{}
	for i := 0; i < 2; i++ {
		rep := <-replyc
		if rep.Err != nil {
			t.Fatal(rep.Err)
		}
		seen[rep.Shard] = slices.Clone(rep.Results[0].Boundary)
	}
	if !slices.Equal(seen[0], []uint32{1}) || !slices.Equal(seen[2], []uint32{4}) {
		t.Fatalf("loopback replies = %v", seen)
	}
}

func TestLoopbackCloseIdempotent(t *testing.T) {
	shards, _, _ := chainFixture(t)
	lb := NewLoopback(shards)
	if err := lb.Close(); err != nil {
		t.Fatal(err)
	}
	if err := lb.Close(); err != nil {
		t.Fatal(err)
	}
}
