package shard

import (
	"context"
	"errors"
	"slices"
	"sync/atomic"
	"testing"
	"time"

	"dsr/internal/wire"
)

// gatedReplica blocks every Submit until the gate is released — a
// deterministic "slow replica" for hedging tests.
type gatedReplica struct {
	inner   Replica
	gate    chan struct{}
	submits atomic.Int32
}

func (g *gatedReplica) Submit(h wire.BatchHeader, tasks []wire.Task, replyc chan<- Reply) {
	g.submits.Add(1)
	<-g.gate
	g.inner.Submit(h, tasks, replyc)
}

func (g *gatedReplica) Summary(ctx context.Context) (wire.Summary, error) {
	return g.inner.Summary(ctx)
}
func (g *gatedReplica) Hello() wire.Hello { return g.inner.Hello() }
func (g *gatedReplica) Close() error      { return g.inner.Close() }

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSubmitHedgeGoesToIdleSibling: with the primary submit stuck on a
// slow replica, a hedge is answered — correctly — by the idle sibling,
// and the slow primary still delivers once released (the caller drains
// both).
func TestSubmitHedgeGoesToIdleSibling(t *testing.T) {
	shardsA, _ := chainFixture(t)
	shardsB, _ := chainFixture(t)
	slow := &gatedReplica{inner: NewLocalReplica(shardsA[0]), gate: make(chan struct{})}
	groups := [][]ReplicaDialer{{
		func(ctx context.Context) (Replica, error) { return slow, nil },
		func(ctx context.Context) (Replica, error) { return NewLocalReplica(shardsB[0]), nil },
	}}
	tr, err := NewReplicated(t.Context(), groups, ReplicatedOptions{ReconnectEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	tasks := []wire.Task{{Kind: wire.Forward, Query: 1, Seeds: []int32{0}}}
	replyc := make(chan Reply, 2)
	tr.Submit(0, wire.BatchHeader{}, tasks, replyc)
	waitFor(t, "primary submit to reach the slow replica", func() bool { return slow.submits.Load() == 1 })

	hedgec := make(chan Reply, 1)
	tr.SubmitHedge(0, wire.BatchHeader{}, tasks, hedgec)
	select {
	case rep := <-hedgec:
		if rep.Err != nil {
			t.Fatalf("hedge did not reach the idle sibling: %v", rep.Err)
		}
		if rep.Shard != 0 || len(rep.Results) != 1 || !slices.Equal(rep.Results[0].Boundary, []uint32{1}) {
			t.Fatalf("hedge answered wrong: %+v", rep)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("hedge reply never arrived while primary was stuck")
	}

	close(slow.gate)
	select {
	case rep := <-replyc:
		if rep.Err != nil || len(rep.Results) != 1 || !slices.Equal(rep.Results[0].Boundary, []uint32{1}) {
			t.Fatalf("released primary answered wrong: %+v", rep)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("primary reply never arrived after release")
	}
	if got := slow.submits.Load(); got != 1 {
		t.Fatalf("slow replica served %d submits, want 1 (hedge must not queue behind it)", got)
	}
}

// TestSubmitHedgeNoIdleSibling: a hedge fails fast with
// ErrNoIdleSibling when the partition's only replica is already
// serving the primary, and never redials dead siblings.
func TestSubmitHedgeNoIdleSibling(t *testing.T) {
	shards, _ := chainFixture(t)
	slow := &gatedReplica{inner: NewLocalReplica(shards[0]), gate: make(chan struct{})}
	dials := atomic.Int32{}
	groups := [][]ReplicaDialer{{
		func(ctx context.Context) (Replica, error) { return slow, nil },
		func(ctx context.Context) (Replica, error) {
			// A dead sibling: fails at construction and on every redial.
			dials.Add(1)
			return nil, errors.New("endpoint down")
		},
	}}
	tr, err := NewReplicated(t.Context(), groups, ReplicatedOptions{ReconnectEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	dialsAtStart := dials.Load()

	tasks := []wire.Task{{Kind: wire.Forward, Query: 1, Seeds: []int32{0}}}
	replyc := make(chan Reply, 1)
	tr.Submit(0, wire.BatchHeader{}, tasks, replyc)
	waitFor(t, "primary submit to reach the slow replica", func() bool { return slow.submits.Load() == 1 })

	hedgec := make(chan Reply, 1)
	tr.SubmitHedge(0, wire.BatchHeader{}, tasks, hedgec)
	rep := <-hedgec
	if !errors.Is(rep.Err, ErrNoIdleSibling) {
		t.Fatalf("hedge error = %v, want ErrNoIdleSibling", rep.Err)
	}
	if dials.Load() != dialsAtStart {
		t.Fatal("hedge redialed a dead sibling; hedges must not dial")
	}

	close(slow.gate)
	if rep := <-replyc; rep.Err != nil {
		t.Fatalf("primary: %v", rep.Err)
	}

	tr.Close()
	tr.SubmitHedge(0, wire.BatchHeader{}, tasks, hedgec)
	if rep := <-hedgec; !errors.Is(rep.Err, ErrClosed) {
		t.Fatalf("hedge on closed transport = %v, want ErrClosed", rep.Err)
	}
}

// TestReplicatedReplyOwnsMemory: a Reply from the replica-aware
// transport must stay valid after further submits to the same
// partition — with hedging, two batches for one partition are in
// flight at once, so replies cannot alias replica decode buffers.
func TestReplicatedReplyOwnsMemory(t *testing.T) {
	shards, _ := chainFixture(t)
	groups := [][]ReplicaDialer{{
		func(ctx context.Context) (Replica, error) { return NewLocalReplica(shards[0]), nil },
	}}
	tr, err := NewReplicated(t.Context(), groups, ReplicatedOptions{ReconnectEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	first := submitOne(t, tr, 0, 0)
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	// A different batch on the same replica would scribble over the
	// first reply's arena if run didn't copy results out.
	second := submitOne(t, tr, 0, 1)
	if second.Err != nil {
		t.Fatal(second.Err)
	}
	if len(first.Results) != 1 || !slices.Equal(first.Results[0].Boundary, []uint32{1}) {
		t.Fatalf("first reply mutated by a later submit: %+v", first.Results)
	}
}
