package shard

import (
	"dsr/internal/snapshot"
	"dsr/internal/wire"
)

// Snapshot captures the shard's complete query state for persistence:
// the subgraph with its condensation and reachability index, plus the
// boundary summary edges, under a header carrying the deployment
// identity (shard count, total vertex count, graph fingerprint,
// partitioning digest — the same fields the hello handshake checks).
// It forces the index and summary to be built first, so a snapshot
// taken right after construction persists the finished state.
func (s *Shard) Snapshot(shardCount, totalVertices int, graphSum, partSum uint64) *snapshot.Snapshot {
	sum := s.Summary()
	return &snapshot.Snapshot{
		Header: snapshot.Header{
			Version:            snapshot.FormatVersion,
			ShardID:            s.id,
			ShardCount:         shardCount,
			TotalVertices:      totalVertices,
			GraphFingerprint:   graphSum,
			PartitioningDigest: partSum,
		},
		Sub:          s.sub,
		SummaryEdges: sum.Edges,
	}
}

// FromSnapshot reconstitutes a Shard from a decoded snapshot without
// re-deriving anything: the condensation and index arrive attached to
// the subgraph, and the boundary summary is preset from the persisted
// edges (its boundary-vertex and cross-edge parts are re-emitted from
// already-loaded state in output-linear time). The result is
// byte-identical on the wire to a freshly built shard.
func FromSnapshot(sn *snapshot.Snapshot) *Shard {
	s := New(sn.ShardID, sn.Sub)
	var sum wire.Summary
	for lv := int32(0); lv < int32(s.sub.NumVertices()); lv++ {
		if s.isEntry[lv] || s.isExit[lv] {
			sum.Boundary = append(sum.Boundary, uint32(s.sub.GlobalID(lv)))
		}
	}
	sum.Edges = sn.SummaryEdges
	for _, pr := range s.sub.Cross {
		sum.Cross = append(sum.Cross, [2]uint32{uint32(pr[0]), uint32(pr[1])})
	}
	s.PresetSummary(sum)
	return s
}

// PresetSummary installs a prebuilt boundary summary, skipping the
// index-driven build Summary would otherwise perform on first call. A
// no-op if the summary was already built or preset.
func (s *Shard) PresetSummary(sum wire.Summary) {
	s.sumOnce.Do(func() { s.sum = sum })
}
