package chaos

import (
	"encoding/binary"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"dsr/internal/wire"
)

// ProxyOptions tunes one fault-injecting proxy.
type ProxyOptions struct {
	// Seed derives a per-connection rng (salted with the connection's
	// accept sequence number and direction), so frame-level decisions
	// replay for a fixed seed regardless of goroutine interleaving.
	Seed int64
	// CutProb is the per-forwarded-frame probability that the frame is
	// truncated mid-payload and both sides of the proxied connection
	// are closed — the mid-query disconnect a coordinator must survive
	// by retrying on a sibling replica.
	CutProb float64
	// DelayProb and MaxDelay hold a frame back uniformly in
	// (0, MaxDelay] before forwarding it.
	DelayProb float64
	MaxDelay  time.Duration
}

// Proxy is a frame-granular chaos TCP proxy for one replica endpoint:
// it listens on an ephemeral localhost port, forwards whole wire
// frames to the target shard server, and injects faults between (and
// inside) frames. Kill drops every live connection and refuses new
// ones until Revive — a replica crash and restart as seen from the
// network, without touching the real server.
type Proxy struct {
	target string
	opts   ProxyOptions
	ln     net.Listener

	mu     sync.Mutex
	killed bool
	closed bool
	nconns int64
	conns  map[net.Conn]struct{} // accepted client conns; closing one tears down its pair
	wg     sync.WaitGroup
}

// NewProxy starts a proxy in front of the shard server at target.
func NewProxy(target string, opts ProxyOptions) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{target: target, opts: opts, ln: ln, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the address coordinators should dial instead of the target.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Kill severs every proxied connection and refuses new ones until
// Revive: the replica is dead as far as any dialer is concerned.
func (p *Proxy) Kill() {
	p.mu.Lock()
	p.killed = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
}

// Revive lets the proxy accept and forward again.
func (p *Proxy) Revive() {
	p.mu.Lock()
	p.killed = false
	p.mu.Unlock()
}

// Close shuts the proxy down for good and waits for its goroutines.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return nil
	}
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.ln.Close()
	p.wg.Wait()
	return nil
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		if p.closed || p.killed {
			p.mu.Unlock()
			c.Close()
			continue
		}
		p.nconns++
		seq := p.nconns
		p.conns[c] = struct{}{}
		p.wg.Add(1)
		p.mu.Unlock()
		go p.serve(c, seq)
	}
}

func (p *Proxy) dropConn(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
	c.Close()
}

// serve pairs the accepted client conn with a fresh conn to the target
// and pumps frames both ways until either side (or a fault) ends it.
func (p *Proxy) serve(client net.Conn, seq int64) {
	defer p.wg.Done()
	defer p.dropConn(client)
	server, err := net.DialTimeout("tcp", p.target, 10*time.Second)
	if err != nil {
		return
	}
	defer server.Close()

	var pumps sync.WaitGroup
	pumps.Add(2)
	// Both directions carry wire frames; each gets its own rng so its
	// decisions depend only on (seed, conn seq, direction, frame index).
	go func() {
		defer pumps.Done()
		p.pump(client, server, p.rng(seq, 0))
		server.Close()
		client.Close()
	}()
	go func() {
		defer pumps.Done()
		p.pump(server, client, p.rng(seq, 1))
		server.Close()
		client.Close()
	}()
	pumps.Wait()
}

func (p *Proxy) rng(seq, dir int64) *rand.Rand {
	return rand.New(rand.NewSource(p.opts.Seed + seq*104_729 + dir*15_485_863))
}

// pump forwards frames from src to dst, one wire frame at a time,
// rolling the rng per frame: forward, delay-then-forward, or truncate
// mid-payload and kill the connection.
func (p *Proxy) pump(src, dst net.Conn, rng *rand.Rand) {
	var hdr [4]byte
	var buf []byte
	for {
		if _, err := io.ReadFull(src, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n == 0 || n > wire.MaxFrame {
			return // not a sane frame; kill the conn rather than stream blindly
		}
		if uint32(cap(buf)) < n {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(src, buf); err != nil {
			return
		}
		if p.opts.DelayProb > 0 && rng.Float64() < p.opts.DelayProb && p.opts.MaxDelay > 0 {
			time.Sleep(time.Duration(1 + rng.Int63n(int64(p.opts.MaxDelay))))
		}
		if p.opts.CutProb > 0 && rng.Float64() < p.opts.CutProb {
			// Mid-frame cut: the peer sees a length prefix, half a
			// payload, then a dead socket.
			dst.Write(hdr[:])
			dst.Write(buf[:len(buf)/2])
			return
		}
		if _, err := dst.Write(hdr[:]); err != nil {
			return
		}
		if _, err := dst.Write(buf); err != nil {
			return
		}
	}
}
