// Package chaos is the deterministic fault-injection harness for the
// DSR replication tests: seeded, reproducible faults at the two layers
// where a distributed deployment actually breaks.
//
//   - Faults wraps shard.Replica / shard.ReplicaDialer with per-submit
//     drops, delays, scripted kill/revive schedules, and manual kills —
//     the in-process harness that drives every failover path of the
//     replica-aware transport without a socket in sight.
//   - Proxy (proxy.go) sits between a coordinator and a real TCP shard
//     server and injects faults at frame granularity — delayed frames,
//     connections cut mid-frame, whole replicas killed and revived —
//     so the same failover paths are exercised over genuine TCP.
//
// All randomized decisions come from rngs derived from Options.Seed,
// one per (partition, replica) pair — decisions for a replica depend
// only on the seed and that replica's own submit sequence, never on
// how goroutines interleave globally, so a failing schedule replays.
package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"dsr/internal/obs"
	"dsr/internal/shard"
	"dsr/internal/wire"
)

// Action is what a scripted Event does to its replica.
type Action uint8

const (
	// Kill marks the replica dead: submits fail and redials are refused
	// until a Revive.
	Kill Action = iota
	// Revive brings a killed replica back: redials succeed again.
	Revive
)

// Event is one scripted fault: when replica (Part, Replica) has
// handled After submits, Action fires. Scheduling on the replica's own
// submit count (not wall time) keeps schedules deterministic.
type Event struct {
	Part, Replica int
	After         int
	Action        Action
}

// Options configures a Faults injector.
type Options struct {
	// Seed derives every per-replica rng. Two injectors with the same
	// seed make identical decisions for identical submit sequences.
	Seed int64
	// DropProb is the per-submit probability that the submit fails with
	// an injected transport error instead of reaching the replica —
	// the mid-query send/recv failure the transport must retry on a
	// sibling.
	DropProb float64
	// DelayProb and MaxDelay inject latency: with probability
	// DelayProb a submit sleeps uniformly in (0, MaxDelay] first.
	DelayProb float64
	MaxDelay  time.Duration
	// Script is the deterministic kill/revive schedule.
	Script []Event
	// ProtectFirst exempts replica 0 of every partition from seeded
	// drops/delays and scripted kills. Differential suites use it to
	// guarantee one survivor per partition, which is exactly the regime
	// where failover must still produce oracle-identical answers.
	// Manual Kill is not exempted — tests that take a whole partition
	// down do it explicitly.
	ProtectFirst bool
	// Metrics, when non-nil, records every injected fault into the
	// registry: chaos_drops_total, chaos_delays_total, and
	// chaos_kills_total, each labeled {partition,replica}. Because every
	// decision is deterministic in (Seed, per-replica submit counts),
	// these counters are exactly reproducible — the differential test
	// replays a schedule and demands identical registries.
	Metrics *obs.Registry
}

// Faults injects deterministic faults into wrapped replicas. One
// Faults instance spans a whole deployment: per-replica state (submit
// counts, dead flags, script cursors) survives redials, so a replica
// the transport kills and re-dials keeps its place in the schedule.
type Faults struct {
	opts Options
	mu   sync.Mutex
	reps map[[2]int]*replicaFaults
}

type replicaFaults struct {
	rng     *rand.Rand
	submits int
	dead    bool
	script  []Event // this replica's events, in Script order
	next    int
	// Fault counters (nil without Options.Metrics; nil-safe no-ops).
	drops, delays, kills *obs.Counter
}

// New builds an injector from opts.
func New(opts Options) *Faults {
	return &Faults{opts: opts, reps: make(map[[2]int]*replicaFaults)}
}

func (f *Faults) state(part, replica int) *replicaFaults {
	key := [2]int{part, replica}
	rf := f.reps[key]
	if rf == nil {
		rf = &replicaFaults{
			rng:    rand.New(rand.NewSource(f.opts.Seed + int64(part)*1_000_003 + int64(replica)*7_919)),
			drops:  f.opts.Metrics.Counter(obs.Name("chaos_drops_total", "partition", part, "replica", replica)),
			delays: f.opts.Metrics.Counter(obs.Name("chaos_delays_total", "partition", part, "replica", replica)),
			kills:  f.opts.Metrics.Counter(obs.Name("chaos_kills_total", "partition", part, "replica", replica)),
		}
		for _, ev := range f.opts.Script {
			if ev.Part == part && ev.Replica == replica {
				rf.script = append(rf.script, ev)
			}
		}
		f.reps[key] = rf
	}
	return rf
}

// Kill manually marks a replica dead (submits fail, redials refused)
// until Revive. Unlike scripted kills, Kill applies even to replicas
// protected by ProtectFirst — taking a whole partition down is always
// an explicit act.
func (f *Faults) Kill(part, replica int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	rf := f.state(part, replica)
	if !rf.dead {
		rf.kills.Inc()
	}
	rf.dead = true
}

// Revive reverses a Kill (manual or scripted).
func (f *Faults) Revive(part, replica int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.state(part, replica).dead = false
}

// Submits reports how many submits the replica has handled (across
// redials) — observability for tests.
func (f *Faults) Submits(part, replica int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.state(part, replica).submits
}

// decide advances the replica's schedule by one submit and returns the
// injected delay and/or failure for it.
func (f *Faults) decide(part, replica int) (time.Duration, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	rf := f.state(part, replica)
	protected := f.opts.ProtectFirst && replica == 0
	for rf.next < len(rf.script) && rf.script[rf.next].After <= rf.submits {
		ev := rf.script[rf.next]
		rf.next++
		if ev.Action == Kill && protected {
			continue
		}
		if ev.Action == Kill && !rf.dead {
			rf.kills.Inc()
		}
		rf.dead = ev.Action == Kill
	}
	rf.submits++
	if rf.dead {
		return 0, fmt.Errorf("chaos: partition %d replica %d is killed", part, replica)
	}
	if protected {
		return 0, nil
	}
	var delay time.Duration
	if f.opts.DelayProb > 0 && rf.rng.Float64() < f.opts.DelayProb && f.opts.MaxDelay > 0 {
		delay = time.Duration(1 + rf.rng.Int63n(int64(f.opts.MaxDelay)))
		rf.delays.Inc()
	}
	if f.opts.DropProb > 0 && rf.rng.Float64() < f.opts.DropProb {
		rf.drops.Inc()
		return delay, fmt.Errorf("chaos: injected drop (partition %d replica %d submit %d)", part, replica, rf.submits)
	}
	return delay, nil
}

// dead reports whether the replica is currently killed, without
// advancing its schedule — the dialer's view.
func (f *Faults) isDead(part, replica int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.state(part, replica).dead
}

// Replica wraps inner with this injector's faults for (part, replica).
func (f *Faults) Replica(part, replica int, inner shard.Replica) shard.Replica {
	return &chaosReplica{f: f, part: part, replica: replica, inner: inner}
}

// Dialer wraps inner: dials are refused while the replica is killed
// (so a reconnect loop cannot resurrect it until the schedule revives
// it), and the dialed replica is fault-wrapped.
func (f *Faults) Dialer(part, replica int, inner shard.ReplicaDialer) shard.ReplicaDialer {
	return func(ctx context.Context) (shard.Replica, error) {
		if f.isDead(part, replica) {
			return nil, fmt.Errorf("chaos: partition %d replica %d is killed (dial refused)", part, replica)
		}
		rep, err := inner(ctx)
		if err != nil {
			return nil, err
		}
		return f.Replica(part, replica, rep), nil
	}
}

type chaosReplica struct {
	f             *Faults
	part, replica int
	inner         shard.Replica
}

func (cr *chaosReplica) Submit(h wire.BatchHeader, tasks []wire.Task, replyc chan<- shard.Reply) {
	delay, err := cr.f.decide(cr.part, cr.replica)
	if delay > 0 {
		time.Sleep(delay)
	}
	if err != nil {
		replyc <- shard.Reply{Shard: cr.part, Err: err}
		return
	}
	cr.inner.Submit(h, tasks, replyc)
}

// Summary fails only while the replica is killed; it deliberately does
// NOT run decide(). Scripted schedules are keyed on per-replica submit
// counts, and summary fetches happen at connect time — letting them
// advance the schedule would shift every subsequent scripted event by
// however many summary fetches the coordinator happened to make. A
// mid-fetch death is instead injected with a manual Kill.
func (cr *chaosReplica) Summary(ctx context.Context) (wire.Summary, error) {
	if cr.f.isDead(cr.part, cr.replica) {
		return wire.Summary{}, fmt.Errorf("chaos: partition %d replica %d is killed", cr.part, cr.replica)
	}
	return cr.inner.Summary(ctx)
}

func (cr *chaosReplica) Hello() wire.Hello { return cr.inner.Hello() }

func (cr *chaosReplica) Close() error { return cr.inner.Close() }
