package chaos

import (
	"context"
	"maps"
	"net"
	"slices"
	"strings"
	"sync"
	"testing"
	"time"

	"dsr/internal/graph"
	"dsr/internal/obs"
	"dsr/internal/partition"
	"dsr/internal/shard"
	"dsr/internal/wire"
)

// stubReplica answers every submit successfully with a canned result.
type stubReplica struct{}

func (stubReplica) Submit(h wire.BatchHeader, tasks []wire.Task, replyc chan<- shard.Reply) {
	replyc <- shard.Reply{Results: []wire.Result{{Query: 42}}}
}
func (stubReplica) Summary(ctx context.Context) (wire.Summary, error) {
	return wire.Summary{Boundary: []uint32{42}}, nil
}
func (stubReplica) Hello() wire.Hello { return wire.Hello{} }
func (stubReplica) Close() error      { return nil }

// submit pushes one dummy task through a replica and reports whether it
// succeeded.
func submit(t *testing.T, rep shard.Replica) error {
	t.Helper()
	replyc := make(chan shard.Reply, 1)
	rep.Submit(wire.BatchHeader{}, []wire.Task{{Kind: wire.Forward}}, replyc)
	select {
	case r := <-replyc:
		return r.Err
	case <-time.After(10 * time.Second):
		t.Fatal("no reply")
		return nil
	}
}

// decisions runs n submits through a fresh injector and records which
// ones were dropped.
func decisions(t *testing.T, opts Options, part, replica, n int) []bool {
	t.Helper()
	f := New(opts)
	rep := f.Replica(part, replica, stubReplica{})
	out := make([]bool, n)
	for i := range out {
		out[i] = submit(t, rep) != nil
	}
	return out
}

// TestFaultsDeterministic: identical seeds make identical decisions;
// the sequence actually mixes drops and successes; a different seed
// diverges.
func TestFaultsDeterministic(t *testing.T) {
	opts := Options{Seed: 42, DropProb: 0.5}
	a := decisions(t, opts, 1, 2, 200)
	b := decisions(t, opts, 1, 2, 200)
	if !slices.Equal(a, b) {
		t.Fatal("same seed produced different fault sequences")
	}
	drops := 0
	for _, d := range a {
		if d {
			drops++
		}
	}
	if drops == 0 || drops == len(a) {
		t.Fatalf("degenerate sequence: %d drops of %d", drops, len(a))
	}
	if c := decisions(t, Options{Seed: 43, DropProb: 0.5}, 1, 2, 200); slices.Equal(a, c) {
		t.Fatal("different seeds produced identical fault sequences")
	}
	// Replica identity salts the rng too: another replica of the same
	// partition sees its own sequence.
	if d := decisions(t, opts, 1, 3, 200); slices.Equal(a, d) {
		t.Fatal("different replicas produced identical fault sequences")
	}
}

// TestFaultsScript: a kill/revive schedule keyed on submit counts fires
// exactly where scripted, refuses dials while dead, and state survives
// redials.
func TestFaultsScript(t *testing.T) {
	f := New(Options{Script: []Event{
		{Part: 0, Replica: 1, After: 2, Action: Kill},
		{Part: 0, Replica: 1, After: 5, Action: Revive},
	}})
	dialer := f.Dialer(0, 1, func(ctx context.Context) (shard.Replica, error) { return stubReplica{}, nil })
	rep, err := dialer(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	var got []bool
	for i := 0; i < 8; i++ {
		failed := submit(t, rep) != nil
		got = append(got, failed)
		if failed {
			// The transport would redial after a failure; while dead the
			// dial must be refused, afterwards it must succeed and the
			// schedule must pick up where it left off.
			fresh, derr := dialer(t.Context())
			if f.isDead(0, 1) {
				if derr == nil || !strings.Contains(derr.Error(), "killed") {
					t.Fatalf("submit %d: dial of killed replica: %v", i, derr)
				}
			} else if derr != nil {
				t.Fatalf("submit %d: dial of revived replica failed: %v", i, derr)
			} else {
				rep = fresh
			}
		}
	}
	want := []bool{false, false, true, true, true, false, false, false}
	if !slices.Equal(got, want) {
		t.Fatalf("schedule fired wrong: got %v, want %v", got, want)
	}
	if n := f.Submits(0, 1); n != 8 {
		t.Fatalf("Submits = %d, want 8", n)
	}
	// An unscripted replica of the same partition is untouched.
	other := f.Replica(0, 0, stubReplica{})
	if err := submit(t, other); err != nil {
		t.Fatalf("unscripted replica faulted: %v", err)
	}
}

// TestFaultsProtectFirst: replica 0 is exempt from seeded drops and
// scripted kills but not from manual Kill.
func TestFaultsProtectFirst(t *testing.T) {
	f := New(Options{
		Seed:         7,
		DropProb:     1,
		ProtectFirst: true,
		Script:       []Event{{Part: 2, Replica: 0, After: 0, Action: Kill}},
	})
	r0 := f.Replica(2, 0, stubReplica{})
	r1 := f.Replica(2, 1, stubReplica{})
	for i := 0; i < 20; i++ {
		if err := submit(t, r0); err != nil {
			t.Fatalf("protected replica 0 faulted: %v", err)
		}
		if err := submit(t, r1); err == nil {
			t.Fatal("unprotected replica 1 never dropped at DropProb=1")
		}
	}
	f.Kill(2, 0)
	if err := submit(t, r0); err == nil {
		t.Fatal("manual Kill did not override protection")
	}
	f.Revive(2, 0)
	if err := submit(t, r0); err != nil {
		t.Fatalf("revived replica still dead: %v", err)
	}
}

// TestFaultCountersMatchSchedule: with Metrics set, every injected
// fault lands in the registry — and because every decision is a pure
// function of (Seed, per-replica submit counts), a second injector
// with identical Options replayed over the recorded submit counts must
// produce the exact same counters. That differential proves the
// telemetry reports the seeded schedule, not goroutine luck.
func TestFaultCountersMatchSchedule(t *testing.T) {
	opts := Options{
		Seed:      99,
		DropProb:  0.3,
		DelayProb: 0.25,
		MaxDelay:  time.Microsecond,
		Script: []Event{
			{Part: 1, Replica: 1, After: 5, Action: Kill},
			{Part: 1, Replica: 1, After: 9, Action: Revive},
		},
	}
	type pr struct{ p, r int }
	replicas := []pr{{0, 0}, {0, 1}, {1, 0}, {1, 1}}

	regA := obs.NewRegistry()
	oa := opts
	oa.Metrics = regA
	f := New(oa)
	drops := make(map[pr]uint64)
	for _, x := range replicas {
		rep := f.Replica(x.p, x.r, stubReplica{})
		for i := 0; i < 40; i++ {
			if err := submit(t, rep); err != nil && strings.Contains(err.Error(), "injected drop") {
				drops[x]++
			}
		}
	}
	// The registry must agree exactly with what the transport saw.
	for _, x := range replicas {
		name := obs.Name("chaos_drops_total", "partition", x.p, "replica", x.r)
		if got := regA.Counter(name).Load(); got != drops[x] {
			t.Errorf("%s = %d, transport observed %d drops", name, got, drops[x])
		}
	}
	if got := regA.Counter(obs.Name("chaos_kills_total", "partition", 1, "replica", 1)).Load(); got != 1 {
		t.Errorf("scripted kill counted %d times, want 1", got)
	}
	if regA.Counter(obs.Name("chaos_delays_total", "partition", 0, "replica", 0)).Load() == 0 {
		t.Error("no delays counted at DelayProb=0.25 over 40 submits")
	}

	// Replay: a fresh injector, same Options, driven by the recorded
	// per-replica submit counts, must fill an identical registry.
	regB := obs.NewRegistry()
	ob := opts
	ob.Metrics = regB
	g := New(ob)
	for _, x := range replicas {
		rep := g.Replica(x.p, x.r, stubReplica{})
		for i := 0; i < f.Submits(x.p, x.r); i++ {
			submit(t, rep)
		}
	}
	a, b := regA.Snapshot().Counters, regB.Snapshot().Counters
	if !maps.Equal(a, b) {
		t.Fatalf("replayed fault counters diverge:\n first: %v\nreplay: %v", a, b)
	}
}

// TestFaultCountersManualKill: chaos_kills_total counts dead
// transitions, not Kill calls — a double Kill is one kill, a
// revive-then-kill is two — and a submit rejected by a dead replica is
// not a drop.
func TestFaultCountersManualKill(t *testing.T) {
	reg := obs.NewRegistry()
	f := New(Options{Metrics: reg})
	rep := f.Replica(3, 0, stubReplica{})
	kills := reg.Counter(obs.Name("chaos_kills_total", "partition", 3, "replica", 0))
	drops := reg.Counter(obs.Name("chaos_drops_total", "partition", 3, "replica", 0))
	f.Kill(3, 0)
	f.Kill(3, 0) // already dead: not a new transition
	if got := kills.Load(); got != 1 {
		t.Fatalf("kills after double Kill = %d, want 1", got)
	}
	if err := submit(t, rep); err == nil {
		t.Fatal("submit to killed replica succeeded")
	}
	if got := drops.Load(); got != 0 {
		t.Fatalf("dead-replica rejection counted as a drop: %d", got)
	}
	f.Revive(3, 0)
	f.Kill(3, 0)
	if got := kills.Load(); got != 2 {
		t.Fatalf("kills after revive+kill = %d, want 2", got)
	}
}

// TestFaultsDelay: delays fire without breaking the reply path.
func TestFaultsDelay(t *testing.T) {
	f := New(Options{Seed: 1, DelayProb: 1, MaxDelay: time.Millisecond})
	rep := f.Replica(0, 0, stubReplica{})
	for i := 0; i < 5; i++ {
		if err := submit(t, rep); err != nil {
			t.Fatalf("delayed submit errored: %v", err)
		}
	}
}

// bootShard starts one real TCP shard server over a 3-vertex chain
// (0->1->2, one partition) and returns its address and a stop func.
func bootShard(t *testing.T) (string, func()) {
	t.Helper()
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	pt, err := graph.RangePartition(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	subs, _ := partition.Extract(g, pt)
	srv := shard.NewServer(shard.New(0, subs[0]), 1, 3, 0, 0)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.Serve(ln)
	}()
	return ln.Addr().String(), func() {
		srv.Close()
		wg.Wait()
	}
}

// TestProxyForwardsKillsRevives: a clean proxy is transparent to the
// dial handshake and the request/response loop; Kill severs and
// refuses, Revive restores.
func TestProxyForwardsKillsRevives(t *testing.T) {
	addr, stop := bootShard(t)
	defer stop()
	px, err := NewProxy(addr, ProxyOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	dial := shard.TCPReplicaDialer(0, px.Addr(), 1, 3, 0, 0)
	rep, err := dial(t.Context())
	if err != nil {
		t.Fatalf("dial through proxy: %v", err)
	}
	if err := submit(t, rep); err != nil {
		t.Fatalf("submit through proxy: %v", err)
	}

	px.Kill()
	// The live connection must die...
	deadline := time.Now().Add(10 * time.Second)
	for submit(t, rep) == nil {
		if time.Now().After(deadline) {
			t.Fatal("connection survived proxy Kill")
		}
		time.Sleep(time.Millisecond)
	}
	rep.Close()
	// ...and new dials must fail while killed.
	if fresh, err := dial(t.Context()); err == nil {
		fresh.Close()
		t.Fatal("dial succeeded through a killed proxy")
	}

	px.Revive()
	rep2, err := dial(t.Context())
	if err != nil {
		t.Fatalf("dial after Revive: %v", err)
	}
	defer rep2.Close()
	if err := submit(t, rep2); err != nil {
		t.Fatalf("submit after Revive: %v", err)
	}
}

// TestProxyCutsMidFrame: with CutProb=1 the very first frame (the
// server hello) is truncated mid-payload — the dialer must fail with a
// clean error, never hang or accept a short frame.
func TestProxyCutsMidFrame(t *testing.T) {
	addr, stop := bootShard(t)
	defer stop()
	px, err := NewProxy(addr, ProxyOptions{Seed: 9, CutProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	done := make(chan error, 1)
	go func() {
		rep, err := shard.TCPReplicaDialer(0, px.Addr(), 1, 3, 0, 0)(context.Background())
		if err == nil {
			rep.Close()
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("handshake succeeded across a cut frame")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("dial hung on a cut frame")
	}
}
