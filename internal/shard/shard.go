// Package shard is the DSR execution runtime: a Shard executes local
// searches over one partition's subgraph, and a Transport carries task
// batches from the coordinator to shards — in-process (Loopback) or
// over TCP (Client/Server) with the internal/wire protocol. The
// coordinator in internal/dsr only ever speaks Transport, so the
// single-process engine is literally the distributed one running over
// Loopback.
package shard

import (
	"dsr/internal/partition"
	"dsr/internal/scc"
	"dsr/internal/wire"
)

// Shard executes local-search tasks against one partition. Searches run
// over the partition's SCC condensation, not its vertices: a BFS visits
// each component once, so a partition that is one big cycle costs O(1)
// queue work instead of O(V). Vertex-level answers (local hits, reached
// boundary vertices) are read back through the component member lists.
//
// All scratch (component marks, queue, result and boundary buffers) is
// owned by the Shard and reused across Run calls with the epoch trick,
// so steady-state batches allocate nothing here. A Shard is not safe
// for concurrent Run calls; every Transport serializes them.
type Shard struct {
	id      int
	sub     *partition.Subgraph
	cond    *scc.Condensation
	isEntry []bool
	isExit  []bool

	cvisit  *partition.Marks // component-level BFS visited marks
	cqueue  []int32          // component-level BFS queue
	results []wire.Result    // reused result batch
	arena   []uint32         // reused boundary-vertex storage
}

// New builds a Shard over one partition's subgraph, building (or
// reusing the cached) SCC condensation.
func New(id int, sub *partition.Subgraph) *Shard {
	cond := sub.Condensation(nil)
	s := &Shard{
		id:      id,
		sub:     sub,
		cond:    cond,
		isEntry: make([]bool, sub.NumVertices()),
		isExit:  make([]bool, sub.NumVertices()),
		cvisit:  partition.NewMarks(cond.N),
	}
	for _, e := range sub.Entries {
		s.isEntry[e] = true
	}
	for _, x := range sub.Exits {
		s.isExit[x] = true
	}
	return s
}

// ID returns the shard's partition index.
func (s *Shard) ID() int { return s.id }

// NumVertices returns the partition's vertex count.
func (s *Shard) NumVertices() int { return s.sub.NumVertices() }

// bfs runs a component-level BFS from the components of the given local
// seed vertices, forward or backward over the condensation DAG, and
// returns the visited components. The returned slice aliases s.cqueue
// and the visit marks stay valid until the next call.
func (s *Shard) bfs(seeds []int32, forward bool) []int32 {
	s.cvisit.Reset()
	q := s.cqueue[:0]
	for _, v := range seeds {
		if c := s.cond.Comp[v]; s.cvisit.Mark(c) {
			q = append(q, c)
		}
	}
	for head := 0; head < len(q); head++ {
		var nbrs []int32
		if forward {
			nbrs = s.cond.Out(q[head])
		} else {
			nbrs = s.cond.In(q[head])
		}
		for _, d := range nbrs {
			if s.cvisit.Mark(d) {
				q = append(q, d)
			}
		}
	}
	s.cqueue = q
	return q
}

// Run executes every task in the batch in order and returns one result
// per task. The returned slice and the Boundary slices inside it alias
// Shard-owned buffers: they are valid until the next Run. Seeds and
// targets are local vertex IDs; a task whose seeds are out of range for
// this partition indicates a coordinator/shard graph mismatch and
// panics rather than answering wrong.
func (s *Shard) Run(tasks []wire.Task) []wire.Result {
	res := s.results[:0]
	arena := s.arena[:0]
	for i := range tasks {
		t := &tasks[i]
		r := wire.Result{Kind: t.Kind, Query: t.Query}
		switch t.Kind {
		case wire.Forward:
			comps := s.bfs(t.Seeds, true)
			for _, v := range t.Targets {
				if s.cvisit.Seen(s.cond.Comp[v]) {
					r.Hit = true
					break
				}
			}
			start := len(arena)
			for _, c := range comps {
				for _, v := range s.cond.Members(c) {
					if s.isExit[v] {
						arena = append(arena, s.sub.GlobalID(v))
					}
				}
			}
			r.Boundary = arena[start:len(arena):len(arena)]
		case wire.Backward:
			comps := s.bfs(t.Seeds, false)
			start := len(arena)
			for _, c := range comps {
				for _, v := range s.cond.Members(c) {
					if s.isEntry[v] {
						arena = append(arena, s.sub.GlobalID(v))
					}
				}
			}
			r.Boundary = arena[start:len(arena):len(arena)]
		}
		res = append(res, r)
	}
	s.results, s.arena = res, arena
	return res
}

// ValidTask reports whether every seed and target in t is a valid local
// vertex ID for this shard. The TCP server checks this before Run so a
// mismatched client gets a protocol error instead of crashing the
// shard.
func (s *Shard) ValidTask(t *wire.Task) bool {
	n := int32(s.sub.NumVertices())
	for _, v := range t.Seeds {
		if v < 0 || v >= n {
			return false
		}
	}
	for _, v := range t.Targets {
		if v < 0 || v >= n {
			return false
		}
	}
	return true
}
