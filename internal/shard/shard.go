// Package shard is the DSR execution runtime: a Shard executes local
// searches over one partition's subgraph, and a Transport carries task
// batches from the coordinator to shards — in-process (Loopback) or
// over TCP (Client/Server) with the internal/wire protocol. The
// coordinator in internal/dsr only ever speaks Transport, so the
// single-process engine is literally the distributed one running over
// Loopback.
package shard

import (
	"sync"

	"dsr/internal/graph"
	"dsr/internal/partition"
	"dsr/internal/scc"
	"dsr/internal/wire"
)

// Shard executes local-search tasks against one partition. Searches run
// over the partition's SCC condensation, not its vertices: a BFS visits
// each component once, so a partition that is one big cycle costs O(1)
// queue work instead of O(V). Vertex-level answers (local hits, reached
// boundary vertices) are read back through the component member lists.
//
// All scratch (component marks, queue, result and boundary buffers) is
// owned by the Shard and reused across Run calls with the epoch trick,
// so steady-state batches allocate nothing here. A Shard is not safe
// for concurrent Run calls; every Transport serializes them.
type Shard struct {
	id      int
	sub     *partition.Subgraph
	cond    *scc.Condensation
	isEntry []bool
	isExit  []bool

	cvisit  *partition.Marks // component-level BFS visited marks
	cqueue  []int32          // component-level BFS queue
	lseeds  []int32          // reused local-seed translation buffer
	results []wire.Result    // reused result batch
	arena   []uint32         // reused boundary-vertex storage

	sumOnce sync.Once // guards the lazily built boundary summary
	sum     wire.Summary
}

// New builds a Shard over one partition's subgraph, building (or
// reusing the cached) SCC condensation.
func New(id int, sub *partition.Subgraph) *Shard {
	cond := sub.Condensation(nil)
	s := &Shard{
		id:      id,
		sub:     sub,
		cond:    cond,
		isEntry: make([]bool, sub.NumVertices()),
		isExit:  make([]bool, sub.NumVertices()),
		cvisit:  partition.NewMarks(cond.N),
	}
	for _, e := range sub.Entries {
		s.isEntry[e] = true
	}
	for _, x := range sub.Exits {
		s.isExit[x] = true
	}
	return s
}

// ID returns the shard's partition index.
func (s *Shard) ID() int { return s.id }

// NumVertices returns the partition's vertex count.
func (s *Shard) NumVertices() int { return s.sub.NumVertices() }

// bfs runs a component-level BFS from the components of the given local
// seed vertices, forward or backward over the condensation DAG, and
// returns the visited components. The returned slice aliases s.cqueue
// and the visit marks stay valid until the next call.
func (s *Shard) bfs(seeds []int32, forward bool) []int32 {
	s.cvisit.Reset()
	q := s.cqueue[:0]
	for _, v := range seeds {
		if c := s.cond.Comp[v]; s.cvisit.Mark(c) {
			q = append(q, c)
		}
	}
	for head := 0; head < len(q); head++ {
		var nbrs []int32
		if forward {
			nbrs = s.cond.Out(q[head])
		} else {
			nbrs = s.cond.In(q[head])
		}
		for _, d := range nbrs {
			if s.cvisit.Mark(d) {
				q = append(q, d)
			}
		}
	}
	s.cqueue = q
	return q
}

// Run executes every task in the batch in order and returns one result
// per task. The returned slice and the Boundary slices inside it alias
// Shard-owned buffers: they are valid until the next Run.
//
// Seeds and targets are global vertex IDs: the coordinator broadcasts
// the same batch to every shard, and each shard resolves ownership for
// itself (binary search over its sorted local→global map), silently
// skipping seeds it does not hold. The per-task Owned count reports how
// many seeds this shard did hold, which is how a placement-free
// coordinator knows the fleet collectively covered every seed.
func (s *Shard) Run(tasks []wire.Task) []wire.Result {
	res := s.results[:0]
	arena := s.arena[:0]
	for i := range tasks {
		t := &tasks[i]
		r := wire.Result{Kind: t.Kind, Query: t.Query}
		lseeds := s.lseeds[:0]
		for _, v := range t.Seeds {
			if lv, ok := s.sub.Local(graph.VertexID(v)); ok {
				lseeds = append(lseeds, lv)
			}
		}
		s.lseeds = lseeds
		r.Owned = uint32(len(lseeds))
		switch t.Kind {
		case wire.Forward:
			comps := s.bfs(lseeds, true)
			for _, v := range t.Targets {
				if lv, ok := s.sub.Local(graph.VertexID(v)); ok && s.cvisit.Seen(s.cond.Comp[lv]) {
					r.Hit = true
					break
				}
			}
			start := len(arena)
			for _, c := range comps {
				for _, v := range s.cond.Members(c) {
					if s.isExit[v] {
						arena = append(arena, s.sub.GlobalID(v))
					}
				}
			}
			r.Boundary = arena[start:len(arena):len(arena)]
		case wire.Backward:
			comps := s.bfs(lseeds, false)
			start := len(arena)
			for _, c := range comps {
				for _, v := range s.cond.Members(c) {
					if s.isEntry[v] {
						arena = append(arena, s.sub.GlobalID(v))
					}
				}
			}
			r.Boundary = arena[start:len(arena):len(arena)]
		}
		res = append(res, r)
	}
	s.results, s.arena = res, arena
	return res
}

// Summary returns the shard's boundary summary — its boundary-vertex
// set, entry→exit summary edges, and outgoing cross-partition edges,
// all as global IDs. This is everything a graph-free coordinator needs
// from this partition to stitch the global boundary graph. Built once
// (the first call builds the SCC reachability index) and cached;
// subsequent calls are free and safe concurrently with each other.
func (s *Shard) Summary() wire.Summary {
	s.sumOnce.Do(func() {
		var sum wire.Summary
		// Walking local IDs in order yields globals in strictly
		// increasing order — the canonical form DecodeSummary enforces.
		for lv := int32(0); lv < int32(s.sub.NumVertices()); lv++ {
			if s.isEntry[lv] || s.isExit[lv] {
				sum.Boundary = append(sum.Boundary, uint32(s.sub.GlobalID(lv)))
			}
		}
		for _, pr := range s.sub.Summary(nil) {
			sum.Edges = append(sum.Edges, [2]uint32{uint32(pr[0]), uint32(pr[1])})
		}
		for _, pr := range s.sub.Cross {
			sum.Cross = append(sum.Cross, [2]uint32{uint32(pr[0]), uint32(pr[1])})
		}
		s.sum = sum
	})
	return s.sum
}
