package shard

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"dsr/internal/obs"
	"dsr/internal/wire"
)

// TestTCPFrameCounters: instrumented server and client count every
// frame on both sides of the protocol — and since the client's peer is
// the server, the two sides' frame counts must mirror each other.
func TestTCPFrameCounters(t *testing.T) {
	shards, _ := chainFixture(t)
	reg := obs.NewRegistry()
	var logbuf bytes.Buffer
	log := obs.NewLogger(&logbuf, obs.LevelWarn)

	addrs := make([]string, len(shards))
	servers := make([]*Server, len(shards))
	var done []chan struct{}
	for i, sh := range shards {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		srv := NewServer(sh, len(shards), 6, testGraphSum, testPartSum)
		srv.Instrument(reg, log) // one registry: fleet-wide net_server_* totals
		servers[i] = srv
		ch := make(chan struct{})
		done = append(done, ch)
		go func() {
			defer close(ch)
			srv.Serve(ln)
		}()
	}
	defer func() {
		for i, srv := range servers {
			srv.Close()
			<-done[i]
		}
	}()

	cl, err := Dial(t.Context(), addrs, 6, testGraphSum, testPartSum)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Instrument(reg)

	replyc := make(chan Reply, 1)
	for i := 0; i < 3; i++ {
		cl.Submit(0, wire.BatchHeader{}, []wire.Task{{Kind: wire.Forward, Query: uint32(i), Seeds: []int32{0}}}, replyc)
		if rep := <-replyc; rep.Err != nil {
			t.Fatal(rep.Err)
		}
	}
	if _, err := cl.Summary(t.Context(), 0); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	for _, c := range []string{
		"net_client_frames_out_total", "net_client_frames_in_total",
		"net_client_bytes_out_total", "net_client_bytes_in_total",
		"net_server_frames_out_total", "net_server_frames_in_total",
		"net_server_bytes_out_total", "net_server_bytes_in_total",
	} {
		if snap.Counters[c] == 0 {
			t.Errorf("%s = 0 after an active session", c)
		}
	}
	// Mirror property: every frame the client sent arrived at the server
	// (the server's in count excludes nothing on a clean loopback).
	if co, si := snap.Counters["net_client_frames_out_total"], snap.Counters["net_server_frames_in_total"]; co != si {
		t.Errorf("client sent %d frames, server counted %d in", co, si)
	}
	// Byte counters include the 4-byte length prefix per frame.
	if b, f := snap.Counters["net_client_bytes_out_total"], snap.Counters["net_client_frames_out_total"]; b < 4*f {
		t.Errorf("bytes_out %d < 4 bytes/frame over %d frames", b, f)
	}

	// A protocol violation counts a decode error and logs the drop.
	c, err := net.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := wire.ReadFrame(c, nil); err != nil { // hello
		t.Fatal(err)
	}
	if err := wire.WriteFrame(c, wire.AppendHello(nil, wire.Hello{})); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ReadFrame(c, nil); err != nil { // MsgError answer
		t.Fatal(err)
	}
	if _, err := wire.ReadFrame(c, nil); err == nil {
		t.Fatal("connection survived a protocol error")
	}
	if got := reg.Counter("net_server_decode_errors_total").Load(); got != 1 {
		t.Errorf("net_server_decode_errors_total = %d, want 1", got)
	}
	if out := logbuf.String(); !strings.Contains(out, "dropping connection") {
		t.Errorf("protocol failure not logged:\n%s", out)
	}
}

// TestServerTimingAndEndpoints: a traced batch comes back with the
// server's self-measured timing footer and the batch ID echoed; an
// untraced one carries neither — but the server-side breakdown
// histograms measure every batch regardless, feeding the shard's own
// /metrics. The client surfaces each connection's identity (address,
// announced ops endpoint, liveness) through Endpoints().
func TestServerTimingAndEndpoints(t *testing.T) {
	shards, _ := chainFixture(t)
	reg := obs.NewRegistry()
	addrs := make([]string, len(shards))
	servers := make([]*Server, len(shards))
	var done []chan struct{}
	for i, sh := range shards {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		srv := NewServer(sh, len(shards), 6, testGraphSum, testPartSum)
		srv.Instrument(reg, nil)
		srv.AnnounceMetrics(fmt.Sprintf("10.0.0.%d:9090", i))
		// An oversized announce must be ignored, not clobber the real one.
		srv.AnnounceMetrics(strings.Repeat("a", 300))
		servers[i] = srv
		ch := make(chan struct{})
		done = append(done, ch)
		go func() {
			defer close(ch)
			srv.Serve(ln)
		}()
	}
	defer func() {
		for i, srv := range servers {
			srv.Close()
			<-done[i]
		}
	}()

	cl, err := Dial(t.Context(), addrs, 6, testGraphSum, testPartSum)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	replyc := make(chan Reply, 1)
	task := []wire.Task{{Kind: wire.Forward, Query: 1, Seeds: []int32{0}}}
	cl.Submit(0, wire.BatchHeader{Trace: true, Batch: 42}, task, replyc)
	rep := <-replyc
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if !rep.HasTiming || rep.Batch != 42 {
		t.Fatalf("traced batch reply: hasTiming=%v batch=%d, want footer and batch 42", rep.HasTiming, rep.Batch)
	}
	if rep.Timing.Total() == 0 {
		t.Errorf("timing footer is all zeros: %+v", rep.Timing)
	}

	cl.Submit(0, wire.BatchHeader{}, task, replyc)
	rep = <-replyc
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if rep.HasTiming || rep.Batch != 0 {
		t.Fatalf("untraced batch reply: hasTiming=%v batch=%d, want neither", rep.HasTiming, rep.Batch)
	}

	snap := reg.Snapshot()
	for _, name := range []string{
		"shard_server_decode_ns", "shard_server_queue_ns",
		"shard_server_search_ns", "shard_server_encode_ns",
	} {
		if got := snap.Histograms[name].Count; got != 2 {
			t.Errorf("%s observed %d batches, want 2 (traced and untraced)", name, got)
		}
	}

	eps := cl.Endpoints()
	if len(eps) != len(shards) {
		t.Fatalf("Endpoints() has %d entries, want %d", len(eps), len(shards))
	}
	for i, ep := range eps {
		if ep.Partition != i || ep.Replica != 0 || !ep.Live {
			t.Errorf("endpoint %d = %+v, want live p%d/r0", i, ep, i)
		}
		if ep.Addr != addrs[i] {
			t.Errorf("endpoint %d addr = %q, want %q", i, ep.Addr, addrs[i])
		}
		if want := fmt.Sprintf("10.0.0.%d:9090", i); ep.MetricsAddr != want {
			t.Errorf("endpoint %d metrics addr = %q, want %q", i, ep.MetricsAddr, want)
		}
	}
}

// TestReplicatedEndpoints: the replicated transport lists every
// replica slot of every partition, in order.
func TestReplicatedEndpoints(t *testing.T) {
	groups, _ := localGroups(t, 2)
	tr, err := NewReplicated(t.Context(), groups, ReplicatedOptions{ReconnectEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	eps := tr.Endpoints()
	if len(eps) != len(groups)*2 {
		t.Fatalf("Endpoints() has %d entries, want %d", len(eps), len(groups)*2)
	}
	for i, ep := range eps {
		if ep.Partition != i/2 || ep.Replica != i%2 || !ep.Live {
			t.Errorf("endpoint %d = %+v, want live p%d/r%d", i, ep, i/2, i%2)
		}
	}
}

// TestReplicatedHealthAndCounters: Health() and the registry report the
// same failover story — a mid-query replica failure shows up as a
// retry plus a failover, the reconnect loop's redial revives the
// replica, and the per-partition counters in the registry agree with
// the Health snapshot exactly.
func TestReplicatedHealthAndCounters(t *testing.T) {
	groups, flaky := localGroups(t, 2)
	reg := obs.NewRegistry()
	tr, err := NewReplicated(t.Context(), groups, ReplicatedOptions{
		ReconnectEvery: time.Millisecond,
		Metrics:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	h := tr.Health()
	if len(h) != 3 {
		t.Fatalf("Health() has %d partitions, want 3", len(h))
	}
	for _, ph := range h {
		if ph.Replicas != 2 || ph.Live != 2 {
			t.Fatalf("healthy fleet: partition %d reports %d/%d live", ph.Partition, ph.Live, ph.Replicas)
		}
		if ph.Retries != 0 || ph.Failovers != 0 {
			t.Fatalf("counters non-zero before any fault: %+v", ph)
		}
	}
	if got := reg.Gauge(obs.Name("shard_replicas_live", "partition", 0)).Load(); got != 2 {
		t.Fatalf("shard_replicas_live{partition=0} = %d, want 2", got)
	}

	// Arm one replica to fail its next submit. Round-robin reaches it
	// within a couple of submits; the failure is retried on the healthy
	// sibling, the failed replica is marked dead (a failover) and then
	// revived by the reconnect loop (a redial).
	flaky[0][0].failNext.Store(1)
	for i := 0; i < 10 && tr.Health()[0].Retries == 0; i++ {
		if rep := submitOne(t, tr, 0, 0); rep.Err != nil {
			t.Fatalf("failover did not rescue the batch: %v", rep.Err)
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		ph := tr.Health()[0]
		if ph.Retries > 0 && ph.Failovers > 0 && ph.Redials > 0 && ph.Live == 2 {
			// Health and the registry are two views of the same counters.
			if got := reg.Counter(obs.Name("shard_retries_total", "partition", 0)).Load(); got != ph.Retries {
				t.Fatalf("registry retries %d != Health retries %d", got, ph.Retries)
			}
			if got := reg.Counter(obs.Name("shard_failovers_total", "partition", 0)).Load(); got != ph.Failovers {
				t.Fatalf("registry failovers %d != Health failovers %d", got, ph.Failovers)
			}
			if got := reg.Counter(obs.Name("shard_redials_total", "partition", 0)).Load(); got != ph.Redials {
				t.Fatalf("registry redials %d != Health redials %d", got, ph.Redials)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("failover never fully recorded: %+v", ph)
		}
		time.Sleep(time.Millisecond)
	}
	// Untouched partitions stay clean.
	if ph := tr.Health()[1]; ph.Retries != 0 || ph.Failovers != 0 {
		t.Errorf("partition 1 counted faults it never had: %+v", ph)
	}
}

// TestReplicatedHealthWithoutRegistry: counters still count with no
// registry attached (Health is not telemetry-gated).
func TestReplicatedHealthWithoutRegistry(t *testing.T) {
	groups, flaky := localGroups(t, 2)
	tr, err := NewReplicated(t.Context(), groups, ReplicatedOptions{ReconnectEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	flaky[2][0].failNext.Store(1)
	for i := 0; i < 10 && tr.Health()[2].Retries == 0; i++ {
		if rep := submitOne(t, tr, 2, 4); rep.Err != nil {
			t.Fatalf("failover did not rescue the batch: %v", rep.Err)
		}
	}
	ph := tr.Health()[2]
	if ph.Retries == 0 || ph.Failovers == 0 {
		t.Errorf("registry-free transport lost its counts: %+v", ph)
	}
}

// TestTCPReplicaDialerHandshake: the exported dialer runs the full
// handshake per dial and produces a working replica.
func TestTCPReplicaDialerHandshake(t *testing.T) {
	shards, _ := chainFixture(t)
	addrs, stop := serveShards(t, shards, 6)
	defer stop()
	rep, err := TCPReplicaDialer(0, addrs[0], 3, 6, testGraphSum, testPartSum)(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	replyc := make(chan Reply, 1)
	rep.Submit(wire.BatchHeader{}, []wire.Task{{Kind: wire.Forward, Query: 7, Seeds: []int32{0}}}, replyc)
	if r := <-replyc; r.Err != nil || len(r.Results) != 1 || r.Results[0].Query != 7 {
		t.Fatalf("bad reply through TCPReplicaDialer: %+v", r)
	}
	if h := rep.Hello(); h.NumShards != 3 {
		t.Fatalf("dialed replica's hello: %+v", h)
	}
}
