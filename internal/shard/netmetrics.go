package shard

import (
	"sync/atomic"

	"dsr/internal/obs"
)

// netMetrics counts the frames and bytes crossing one side of the TCP
// protocol, plus frames that failed to decode. A nil *netMetrics is a
// valid no-op, so the frame paths record unconditionally. Byte counts
// include the 4-byte length prefix — they are wire bytes, not payload
// bytes.
type netMetrics struct {
	framesIn   *obs.Counter
	framesOut  *obs.Counter
	bytesIn    *obs.Counter
	bytesOut   *obs.Counter
	decodeErrs *obs.Counter
}

// newNetMetrics binds the frame counters for one endpoint side under
// prefix ("net_server" or "net_client"). Nil registry yields nil.
func newNetMetrics(reg *obs.Registry, prefix string) *netMetrics {
	if reg == nil {
		return nil
	}
	return &netMetrics{
		framesIn:   reg.Counter(prefix + "_frames_in_total"),
		framesOut:  reg.Counter(prefix + "_frames_out_total"),
		bytesIn:    reg.Counter(prefix + "_bytes_in_total"),
		bytesOut:   reg.Counter(prefix + "_bytes_out_total"),
		decodeErrs: reg.Counter(prefix + "_decode_errors_total"),
	}
}

// frameIn records one received frame with an n-byte payload.
func (m *netMetrics) frameIn(n int) {
	if m == nil {
		return
	}
	m.framesIn.Inc()
	m.bytesIn.Add(uint64(n) + 4)
}

// frameOut records one written frame with an n-byte payload.
func (m *netMetrics) frameOut(n int) {
	if m == nil {
		return
	}
	m.framesOut.Inc()
	m.bytesOut.Add(uint64(n) + 4)
}

// decodeErr records a frame that arrived but failed to decode.
func (m *netMetrics) decodeErr() {
	if m == nil {
		return
	}
	m.decodeErrs.Inc()
}

// netInstruments is the swappable telemetry slot shared by Server and
// clientConn: Instrument may be called while reader goroutines are
// already running, so the pointer is installed and read atomically.
type netInstruments struct {
	p atomic.Pointer[netMetrics]
}

func (ni *netInstruments) set(m *netMetrics) {
	if m != nil {
		ni.p.Store(m)
	}
}

func (ni *netInstruments) get() *netMetrics { return ni.p.Load() }
