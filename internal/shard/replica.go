package shard

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"dsr/internal/wire"
)

// Replica is one endpoint serving a single partition's local-search
// task batches. It is the unit the replica-aware transport
// (Replicated) fails over between: every replica of a partition holds
// the same subgraph and index, so any of them can answer any batch for
// that partition. Submit follows the Transport contract, minus the
// partition index (a Replica serves exactly one partition): exactly
// one Reply per call, Results aliasing replica-owned buffers that stay
// valid until the next Submit to the same replica. Close releases the
// replica's resources; a closed replica answers every further Submit
// with an error Reply.
type Replica interface {
	Submit(h wire.BatchHeader, tasks []wire.Task, replyc chan<- Reply)
	// Summary fetches the replica's boundary summary. Same arena
	// contract as Results: the slices stay valid until the next Submit
	// or Summary on this replica.
	Summary(ctx context.Context) (wire.Summary, error)
	// Hello reports the identity the replica presented at dial time. A
	// zero Hello (NumShards == 0) means the replica has no handshake
	// identity (in-process replicas) and opts out of fleet cross-checks.
	Hello() wire.Hello
	Close() error
}

// ReplicaDialer establishes a live Replica for one endpoint, or
// reports why it cannot (host down, handshake mismatch). The
// replica-aware transport calls it at construction, again from its
// periodic reconnect loop for endpoints marked dead, and as a last
// resort during a query when a partition has no live replica left. ctx
// bounds the dial attempt; redials triggered by Close-cancelled
// transports abort promptly.
type ReplicaDialer func(ctx context.Context) (Replica, error)

// TCPReplicaDialer returns a dialer for a dsr-shard server at addr
// serving partition p of a numShards-wide deployment. Every dial runs
// the full hello handshake — shard identity, deployment shape, graph
// fingerprint, partitioning digest — so a replica that comes back
// wrong (restarted from a different graph or partitioning spec) is
// refused on reconnect exactly like at first contact.
func TCPReplicaDialer(p int, addr string, numShards, wantVertices int, wantGraph, wantPart uint64) ReplicaDialer {
	return tcpReplicaDialer(p, addr, numShards, wantVertices, wantGraph, wantPart, nil)
}

// tcpReplicaDialer is TCPReplicaDialer with a client-side frame-counter
// attachment; DialReplicated uses it so every replica connection — both
// at construction and on every redial — shares the transport's
// net_client_* counters.
func tcpReplicaDialer(p int, addr string, numShards, wantVertices int, wantGraph, wantPart uint64, met *netMetrics) ReplicaDialer {
	return func(ctx context.Context) (Replica, error) {
		return dialShard(ctx, p, addr, numShards, wantVertices, wantGraph, wantPart, met)
	}
}

// localReplica serves one partition's batches on a dedicated in-process
// Shard. It exists for the replication test harnesses (and any embedder
// that wants replicated semantics without TCP): R local replicas of a
// partition are R independent Shard instances over the same subgraph,
// so failing over between them is exercised with real buffer ownership.
type localReplica struct {
	sh     *Shard
	mu     sync.Mutex // serializes Run and guards closed
	closed bool
}

// NewLocalReplica wraps sh as a Replica. The Replica takes ownership of
// sh's scratch: callers must not Run the shard themselves, and replicas
// of the same partition need distinct Shard instances (they may execute
// concurrently during failover).
func NewLocalReplica(sh *Shard) Replica {
	return &localReplica{sh: sh}
}

func (lr *localReplica) Submit(h wire.BatchHeader, tasks []wire.Task, replyc chan<- Reply) {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	if lr.closed {
		replyc <- Reply{Shard: lr.sh.ID(), Err: ErrClosed}
		return
	}
	replyc <- serveLocal(lr.sh, h, tasks)
}

func (lr *localReplica) Summary(ctx context.Context) (wire.Summary, error) {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	if lr.closed {
		return wire.Summary{}, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return wire.Summary{}, err
	}
	return lr.sh.Summary(), nil
}

// Hello returns the zero Hello: in-process replicas have no handshake
// identity, which consumers treat as opting out of fleet cross-checks.
func (lr *localReplica) Hello() wire.Hello { return wire.Hello{} }

func (lr *localReplica) Close() error {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	lr.closed = true
	return nil
}

// ParseGroups expands replica address groups: addrs[p] holds partition
// p's endpoints separated by '|' ("host1:7000|host2:7000"). Whitespace
// around endpoints is trimmed; empty endpoints (or empty groups) are
// rejected so a typo like "a||b" cannot silently shrink a replica set.
func ParseGroups(addrs []string) ([][]string, error) {
	groups := make([][]string, len(addrs))
	for p, spec := range addrs {
		for _, a := range strings.Split(spec, "|") {
			a = strings.TrimSpace(a)
			if a == "" {
				return nil, fmt.Errorf("shard: partition %d: empty replica address in %q", p, spec)
			}
			groups[p] = append(groups[p], a)
		}
	}
	return groups, nil
}
