package shard

import (
	"context"
	"slices"
	"strings"
	"testing"

	"dsr/internal/wire"
)

// TestLoopbackSummary: the in-process transport serves the same
// boundary summaries a TCP fleet would ship, with a position-only Hello
// (nothing to cross-check against — the coordinator built the shards).
func TestLoopbackSummary(t *testing.T) {
	shards, _ := chainFixture(t)
	total := 0
	for _, sh := range shards {
		total += sh.NumVertices()
	}
	if total != 6 {
		t.Fatalf("shards own %d vertices in total, want 6", total)
	}
	lb := NewLoopback(shards)
	defer lb.Close()
	for p := 0; p < 3; p++ {
		info, err := lb.Summary(t.Context(), p)
		if err != nil {
			t.Fatalf("shard %d: %v", p, err)
		}
		if info.Hello.ShardID != uint32(p) || info.Hello.NumShards != 3 ||
			info.Hello.NumVertices != 0 || info.Hello.Graph != 0 || info.Hello.Partitioning != 0 {
			t.Fatalf("shard %d: hello %+v, want position-only", p, info.Hello)
		}
		want := shards[p].Summary()
		if !slices.Equal(info.Summary.Boundary, want.Boundary) ||
			!slices.Equal(info.Summary.Edges, want.Edges) ||
			!slices.Equal(info.Summary.Cross, want.Cross) {
			t.Fatalf("shard %d: summary %+v, want %+v", p, info.Summary, want)
		}
	}
	ctx, cancel := context.WithCancel(t.Context())
	cancel()
	if _, err := lb.Summary(ctx, 0); err == nil {
		t.Fatal("cancelled context not honored")
	}
}

// TestReplicatedPinSweepsMismatches: Pin must kill currently-live
// replicas whose dial-time hello contradicts the pinned fleet identity,
// for each identity field, and keep matching replicas serving.
func TestReplicatedPinSweepsMismatches(t *testing.T) {
	probe := func(t *testing.T, r *Replicated) error {
		t.Helper()
		replyc := make(chan Reply, 1)
		r.Submit(0, wire.BatchHeader{}, []wire.Task{{Kind: wire.Forward, Query: 0, Seeds: []int32{0}}}, replyc)
		return (<-replyc).Err
	}
	cases := []struct {
		name    string
		pin     Expect
		wantErr string // "" means the fleet must keep serving
	}{
		{"matching pin keeps serving", Expect{NumVertices: 6, Graph: testGraphSum, Part: testPartSum}, ""},
		{"skipped fields keep serving", Expect{NumVertices: -1}, ""},
		{"vertex count mismatch", Expect{NumVertices: 5, Graph: testGraphSum, Part: testPartSum}, "vertices"},
		{"graph fingerprint mismatch", Expect{NumVertices: 6, Graph: testGraphSum + 1, Part: testPartSum}, "different graph"},
		{"partitioning digest mismatch", Expect{NumVertices: 6, Graph: testGraphSum, Part: testPartSum + 1}, "different partitioning"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			shards, _ := chainFixture(t)
			addrs, stop := serveShards(t, shards, 6)
			defer stop()
			groups := make([][]string, len(addrs))
			for i, a := range addrs {
				groups[i] = []string{a}
			}
			r, err := DialReplicated(t.Context(), groups, 6, testGraphSum, testPartSum,
				ReplicatedOptions{ReconnectEvery: -1})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			r.Pin(c.pin)
			err = probe(t, r)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("fleet stopped serving after matching pin: %v", err)
				}
				return
			}
			// The sweep killed the replica, and the pinned identity also
			// blocks the in-query redial of the same server.
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("probe error = %v, want mention of %q", err, c.wantErr)
			}
		})
	}
}

// TestReplicatedPinExemptsLocalReplicas: in-process replicas present no
// handshake identity (hello NumShards == 0), so any pin leaves them
// alone.
func TestReplicatedPinExemptsLocalReplicas(t *testing.T) {
	shards, _ := chainFixture(t)
	groups := make([][]ReplicaDialer, len(shards))
	for p, sh := range shards {
		sh := sh
		groups[p] = []ReplicaDialer{func(context.Context) (Replica, error) {
			return NewLocalReplica(sh), nil
		}}
	}
	r, err := NewReplicated(t.Context(), groups, ReplicatedOptions{ReconnectEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.Pin(Expect{NumVertices: 999, Graph: 1, Part: 1})
	replyc := make(chan Reply, 1)
	r.Submit(0, wire.BatchHeader{}, []wire.Task{{Kind: wire.Forward, Query: 0, Seeds: []int32{0}}}, replyc)
	if rep := <-replyc; rep.Err != nil {
		t.Fatalf("local replica killed by pin it is exempt from: %v", rep.Err)
	}
}
