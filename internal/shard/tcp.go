package shard

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dsr/internal/obs"
	"dsr/internal/wire"
)

// handshakeTimeout bounds how long a dialing coordinator waits for the
// shard's hello frame.
const handshakeTimeout = 10 * time.Second

// drainTimeout bounds how long a graceful Shutdown lets a busy
// connection finish writing its in-flight response. Without it a peer
// that stops draining its socket would block Shutdown — and a
// SIGTERMed dsr-shard — forever on a full send buffer.
const drainTimeout = 30 * time.Second

// Server serves one shard's local-search RPCs over TCP: per connection,
// a hello frame identifying the shard, then a request/response loop of
// MsgTasks -> MsgResults frames — plus MsgSummaryRequest -> MsgSummary,
// which ships the partition's boundary summary to a graph-free
// coordinator at connect time. Protocol violations get a MsgError
// frame and the connection is dropped; the server itself keeps running.
//
// Connections share the one Shard, so Run (and the encoding of its
// aliasing results) is serialized under a mutex.
type Server struct {
	sh      *Shard
	hello   wire.Hello
	summary []byte // pre-encoded MsgSummary frame payload, immutable

	runMu sync.Mutex // serializes Shard.Run + result encoding

	mu       sync.Mutex // guards ln, conns, closed, draining
	ln       net.Listener
	conns    map[net.Conn]*connState
	closed   bool
	draining bool
	wg       sync.WaitGroup

	met  netInstruments             // net_server_* frame counters
	tim  atomic.Pointer[srvTimings] // shard_server_* phase histograms
	logp atomic.Pointer[obs.Logger] // protocol-failure logging
}

// srvTimings holds the server's per-batch phase histograms: the same
// four numbers the timing footer ships to the coordinator, kept locally
// so a shard's own /metrics shows where its batches spend time even
// when no coordinator asks for footers.
type srvTimings struct {
	decode *obs.Histogram
	queue  *obs.Histogram
	search *obs.Histogram
	encode *obs.Histogram
}

func newSrvTimings(reg *obs.Registry) *srvTimings {
	if reg == nil {
		return nil
	}
	return &srvTimings{
		decode: reg.Histogram("shard_server_decode_ns"),
		queue:  reg.Histogram("shard_server_queue_ns"),
		search: reg.Histogram("shard_server_search_ns"),
		encode: reg.Histogram("shard_server_encode_ns"),
	}
}

func (st *srvTimings) observe(t wire.ServerTiming) {
	if st == nil {
		return
	}
	st.decode.Observe(int64(t.Decode))
	st.queue.Observe(int64(t.Queue))
	st.search.Observe(int64(t.Search))
	st.encode.Observe(int64(t.Encode))
}

// Instrument wires telemetry into the server: frame and byte counters
// under net_server_* in reg, and a logger for connection-level protocol
// failures. Safe to call at any time — before Serve in the normal case,
// or while serving (the slots are swapped atomically). A nil argument
// leaves its slot untouched.
func (s *Server) Instrument(reg *obs.Registry, log *obs.Logger) {
	s.met.set(newNetMetrics(reg, "net_server"))
	if t := newSrvTimings(reg); t != nil {
		s.tim.Store(t)
	}
	if log != nil {
		s.logp.Store(log)
	}
}

// AnnounceMetrics records the shard's ops-endpoint address in the hello
// frame, so a connecting coordinator learns where to scrape this shard's
// /metrics registry without separate service discovery. Call before
// Serve; addresses longer than the wire cap are truncated to nothing
// (an unannounceable address is worse than none).
func (s *Server) AnnounceMetrics(addr string) {
	if len(addr) > 256 {
		return
	}
	s.hello.MetricsAddr = addr
}

// logger returns the instrumented logger (nil, a no-op, by default).
func (s *Server) logger() *obs.Logger { return s.logp.Load() }

// connState tracks whether a connection is between batches (idle) or
// mid-batch (busy): a graceful Shutdown closes idle connections
// immediately but lets busy ones finish writing their response.
type connState struct {
	busy bool
}

// NewServer returns a server for sh. numShards and numVertices describe
// the whole deployment, graphSum fingerprints the exact edge set the
// shard was built from (graph.Fingerprint), and partSum digests the
// vertex-to-partition assignment (graph.Partitioning.Digest) — the
// check that catches a coordinator running a different partitioner (or
// the same locality partitioner with a different seed) over the same
// graph. 0 disables either check. All of it is echoed in the hello
// frame so a mismatched coordinator refuses the shard instead of
// silently mis-answering.
func NewServer(sh *Shard, numShards, numVertices int, graphSum, partSum uint64) *Server {
	return &Server{
		sh: sh,
		hello: wire.Hello{
			ShardID:      uint32(sh.ID()),
			NumShards:    uint32(numShards),
			NumVertices:  uint32(numVertices),
			Graph:        graphSum,
			Partitioning: partSum,
		},
		// Encode the boundary summary once, eagerly: this builds the SCC
		// reachability index at startup (not on the first coordinator's
		// connect), and every MsgSummaryRequest is answered by writing the
		// same immutable payload — no lock, no re-encoding.
		summary: wire.AppendSummary(nil, sh.Summary()),
		conns:   make(map[net.Conn]*connState),
	}
}

// Serve accepts connections on ln until Close. It returns nil after
// Close, or the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		ln.Close()
		return ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			stopping := s.closed || s.draining
			s.mu.Unlock()
			if stopping {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed || s.draining {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[c] = &connState{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(c)
	}
}

// Close stops accepting, closes every live connection, and waits for
// all connection handlers to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

// Shutdown drains the server gracefully: the listener is closed so new
// connections are refused, idle connections (waiting between batches)
// are closed, and connections mid-batch finish executing and writing
// their response before their handler exits. When Shutdown returns, no
// handler is running and every accepted batch has been answered —
// SIGTERM handling in cmd/dsr-shard rides on this, and a coordinator
// with replicas fails the dropped connections over to a sibling. Safe
// to call more than once and concurrently with Close.
func (s *Server) Shutdown() error {
	s.mu.Lock()
	already := s.closed || s.draining
	s.draining = true
	ln := s.ln
	if !already {
		for c, st := range s.conns {
			if !st.busy {
				c.Close()
			} else {
				// Busy handlers get drainTimeout to flush their response;
				// a peer that won't read loses the conn instead of wedging
				// the drain.
				c.SetDeadline(time.Now().Add(drainTimeout))
			}
		}
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

// beginBatch marks c busy; it reports false (and the handler must hang
// up without answering) when the server started draining before the
// batch began executing.
func (s *Server) beginBatch(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.draining {
		return false
	}
	if st, ok := s.conns[c]; ok {
		st.busy = true
	}
	return true
}

// endBatch marks c idle again; it reports false when the server is
// draining, telling the handler to exit now that its in-flight batch
// has been fully answered.
func (s *Server) endBatch(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.conns[c]; ok {
		st.busy = false
	}
	return !(s.closed || s.draining)
}

func (s *Server) dropConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	c.Close()
	s.wg.Done()
}

func (s *Server) handle(c net.Conn) {
	defer s.dropConn(c)
	bw := bufio.NewWriter(c)
	br := bufio.NewReader(c)
	var rbuf, wbuf []byte
	var tasks []wire.Task
	var seedArena []int32

	wbuf = wire.AppendHello(wbuf[:0], s.hello)
	if err := wire.WriteFrame(bw, wbuf); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}
	s.met.get().frameOut(len(wbuf))

	fail := func(msg string) {
		s.logger().Warnf("dropping connection from %s: %s", c.RemoteAddr(), msg)
		wbuf = wire.AppendError(wbuf[:0], msg)
		if wire.WriteFrame(bw, wbuf) == nil {
			bw.Flush()
			s.met.get().frameOut(len(wbuf))
		}
	}
	for {
		p, err := wire.ReadFrame(br, rbuf)
		if err != nil {
			return // EOF or broken conn: just drop it
		}
		met := s.met.get()
		met.frameIn(len(p))
		if !s.beginBatch(c) {
			return // draining: refuse batches that haven't started executing
		}
		rbuf = p
		ty, err := wire.MsgType(p)
		switch {
		case err == nil && ty == wire.MsgSummaryRequest:
			// Served from the immutable pre-encoded frame; no shard lock.
			if err := wire.WriteFrame(bw, s.summary); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}
			met.frameOut(len(s.summary))
		case err == nil && ty == wire.MsgTasks:
			// Each phase is timed: the breakdown feeds the shard's own
			// shard_server_* histograms on every batch, and rides back to
			// the coordinator as a footer when the batch asked for it.
			t0 := time.Now()
			var hdr wire.BatchHeader
			hdr, tasks, seedArena, err = wire.DecodeTasks(p, tasks[:0], seedArena[:0])
			if err != nil {
				met.decodeErr()
				fail(fmt.Sprintf("shard %d: bad task batch: %v", s.sh.ID(), err))
				return
			}
			t1 := time.Now()
			// Run and encode under one lock: the results alias shard-owned
			// buffers that the next Run (possibly from another connection)
			// rewrites. Seeds are global IDs; the shard skips unowned ones
			// and reports coverage via Owned, so no validity pre-check.
			s.runMu.Lock()
			t2 := time.Now()
			results := s.sh.Run(tasks)
			t3 := time.Now()
			wbuf = wire.AppendResults(wbuf[:0], hdr.Batch, hdr.Trace, results)
			t4 := time.Now()
			s.runMu.Unlock()
			timing := wire.ServerTiming{
				Decode: uint64(t1.Sub(t0)),
				Queue:  uint64(t2.Sub(t1)),
				Search: uint64(t3.Sub(t2)),
				Encode: uint64(t4.Sub(t3)),
			}
			s.tim.Load().observe(timing)
			if hdr.Trace {
				wbuf = wire.AppendServerTiming(wbuf, timing)
			}
			if err := wire.WriteFrame(bw, wbuf); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}
			met.frameOut(len(wbuf))
		default:
			met.decodeErr()
			fail(fmt.Sprintf("shard %d: want MsgTasks or MsgSummaryRequest, got %#02x", s.sh.ID(), ty))
			return
		}
		if !s.endBatch(c) {
			return // draining: this request was answered, now hang up
		}
	}
}

// Client is the TCP Transport: one connection per shard, requests
// written in Submit order and responses matched back FIFO (the server
// answers a connection's requests strictly in order).
type Client struct {
	conns []*clientConn
	once  sync.Once
}

// clientConn is one live connection to a shard server. It implements
// Replica, which is how the replica-aware transport (Replicated) holds
// one clientConn per replica endpoint and fails batches over between
// them; the plain Client is the degenerate one-replica-per-partition
// arrangement of the same type.
type clientConn struct {
	shard int
	addr  string
	c     net.Conn
	bw    *bufio.Writer
	hello wire.Hello // the identity the server presented at dial time

	mu      sync.Mutex // guards writes, pending, broken
	pending []pendingReq
	broken  error
	wbuf    []byte

	met netInstruments // net_client_* frame counters

	done chan struct{} // closed when the reader goroutine exits
}

// pendingReq is one in-flight request awaiting its response frame.
// Exactly one of replyc (a task batch) and sumc (a summary request) is
// non-nil; the reader uses the tag to decide which decoder a response
// frame feeds.
type pendingReq struct {
	replyc chan<- Reply
	sumc   chan summaryReply
}

type summaryReply struct {
	sum wire.Summary
	err error
}

// Dial connects to one shard server per address (addrs[i] must be shard
// i), verifies each hello against the expected deployment shape, and
// returns the transport. ctx bounds the whole dial sequence.
// wantVertices < 0 skips the vertex-count check; wantGraph is the
// caller's graph fingerprint and wantPart its partitioning digest — for
// either, 0 skips the check (either side not computing one opts out,
// since a server may also send 0).
func Dial(ctx context.Context, addrs []string, wantVertices int, wantGraph, wantPart uint64) (*Client, error) {
	cl := &Client{}
	for i, addr := range addrs {
		cc, err := dialShard(ctx, i, addr, len(addrs), wantVertices, wantGraph, wantPart, nil)
		if err != nil {
			cl.Close()
			return nil, err
		}
		cl.conns = append(cl.conns, cc)
	}
	return cl, nil
}

// Instrument wires the client's frame and byte counters (net_client_*)
// into reg. Safe to call while connections are live — reader goroutines
// pick the instruments up atomically. Nil reg is a no-op.
func (cl *Client) Instrument(reg *obs.Registry) {
	met := newNetMetrics(reg, "net_client")
	for _, cc := range cl.conns {
		cc.met.set(met)
	}
}

func dialShard(ctx context.Context, i int, addr string, numShards, wantVertices int, wantGraph, wantPart uint64, met *netMetrics) (*clientConn, error) {
	d := net.Dialer{Timeout: handshakeTimeout}
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("shard %d (%s): %w", i, addr, err)
	}
	helloDeadline := time.Now().Add(handshakeTimeout)
	if dl, ok := ctx.Deadline(); ok && dl.Before(helloDeadline) {
		helloDeadline = dl
	}
	c.SetReadDeadline(helloDeadline)
	p, err := wire.ReadFrame(c, nil)
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("shard %d (%s): hello: %w", i, addr, err)
	}
	h, err := wire.DecodeHello(p)
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("shard %d (%s): hello: %w", i, addr, err)
	}
	if int(h.ShardID) != i {
		c.Close()
		return nil, fmt.Errorf("shard %d (%s): server identifies as shard %d", i, addr, h.ShardID)
	}
	if int(h.NumShards) != numShards {
		c.Close()
		return nil, fmt.Errorf("shard %d (%s): server built for %d shards, dialing %d", i, addr, h.NumShards, numShards)
	}
	if wantVertices >= 0 && int(h.NumVertices) != wantVertices {
		c.Close()
		return nil, fmt.Errorf("shard %d (%s): server graph has %d vertices, coordinator has %d", i, addr, h.NumVertices, wantVertices)
	}
	if wantGraph != 0 && h.Graph != 0 && h.Graph != wantGraph {
		c.Close()
		return nil, fmt.Errorf("shard %d (%s): server built from a different graph (fingerprint %#x, coordinator %#x)", i, addr, h.Graph, wantGraph)
	}
	if wantPart != 0 && h.Partitioning != 0 && h.Partitioning != wantPart {
		c.Close()
		return nil, fmt.Errorf("shard %d (%s): server built with a different partitioning (digest %#x, coordinator %#x — same -partitioner spec everywhere?)", i, addr, h.Partitioning, wantPart)
	}
	c.SetReadDeadline(time.Time{})
	cc := &clientConn{shard: i, addr: addr, c: c, bw: bufio.NewWriter(c), hello: h, done: make(chan struct{})}
	cc.met.set(met)
	cc.met.get().frameIn(len(p)) // the hello frame consumed above
	go cc.readLoop()
	return cc, nil
}

// NumShards returns the shard count.
func (cl *Client) NumShards() int { return len(cl.conns) }

// Submit encodes and writes the batch to shard p's connection. The
// Reply arrives on replyc when the response frame is read (or an error
// Reply immediately if the connection is broken).
func (cl *Client) Submit(p int, h wire.BatchHeader, tasks []wire.Task, replyc chan<- Reply) {
	cl.conns[p].Submit(h, tasks, replyc)
}

// Endpoints describes every connection: one entry per partition (the
// plain Client has exactly one replica per partition), carrying the
// dialed address, the metrics address the server announced in its
// hello, and whether the connection is still live.
func (cl *Client) Endpoints() []EndpointInfo {
	eps := make([]EndpointInfo, len(cl.conns))
	for i, cc := range cl.conns {
		cc.mu.Lock()
		live := cc.broken == nil
		cc.mu.Unlock()
		eps[i] = EndpointInfo{
			Partition:   i,
			Addr:        cc.addr,
			MetricsAddr: cc.hello.MetricsAddr,
			Live:        live,
		}
	}
	return eps
}

// Summary fetches shard p's boundary summary over its connection,
// paired with the hello identity the server presented at dial time.
func (cl *Client) Summary(ctx context.Context, p int) (SummaryInfo, error) {
	cc := cl.conns[p]
	sum, err := cc.Summary(ctx)
	if err != nil {
		return SummaryInfo{}, err
	}
	return SummaryInfo{Hello: cc.hello, Summary: sum}, nil
}

// Close closes every connection and waits for the reader goroutines to
// exit; outstanding Submits receive error replies.
func (cl *Client) Close() error {
	cl.once.Do(func() {
		for _, cc := range cl.conns {
			cc.fail(ErrClosed)
			cc.c.Close()
		}
		for _, cc := range cl.conns {
			<-cc.done
		}
	})
	return nil
}

// Submit encodes and writes the batch to the connection (Replica
// interface). The Reply arrives on replyc when the response frame is
// read, or immediately with an error if the connection is broken.
func (cc *clientConn) Submit(h wire.BatchHeader, tasks []wire.Task, replyc chan<- Reply) {
	cc.mu.Lock()
	if cc.broken != nil {
		err := cc.broken
		cc.mu.Unlock()
		replyc <- Reply{Shard: cc.shard, Err: err}
		return
	}
	// Register before writing: the reader pops pending FIFO as response
	// frames arrive, and a response can only follow a completed write.
	cc.pending = append(cc.pending, pendingReq{replyc: replyc})
	cc.wbuf = wire.AppendTasks(cc.wbuf[:0], h, tasks)
	err := wire.WriteFrame(cc.bw, cc.wbuf)
	if err == nil {
		err = cc.bw.Flush()
	}
	if err != nil {
		err = fmt.Errorf("shard %d (%s): write: %w", cc.shard, cc.addr, err)
		cc.broken = err
		cc.pending = cc.pending[:len(cc.pending)-1]
		cc.mu.Unlock()
		cc.c.Close() // wake the reader so it fails any earlier pending
		replyc <- Reply{Shard: cc.shard, Err: err}
		return
	}
	cc.met.get().frameOut(len(cc.wbuf))
	cc.mu.Unlock()
}

// Summary requests the shard's boundary summary and waits for the
// response frame (Replica interface). The returned slices alias the
// reader's decode buffers: valid until the next Submit or Summary on
// this connection. On ctx cancellation the connection is torn down —
// the protocol has no way to abandon one in-flight request without
// desynchronizing the FIFO.
func (cc *clientConn) Summary(ctx context.Context) (wire.Summary, error) {
	sumc := make(chan summaryReply, 1)
	cc.mu.Lock()
	if cc.broken != nil {
		err := cc.broken
		cc.mu.Unlock()
		return wire.Summary{}, err
	}
	cc.pending = append(cc.pending, pendingReq{sumc: sumc})
	cc.wbuf = wire.AppendSummaryRequest(cc.wbuf[:0])
	err := wire.WriteFrame(cc.bw, cc.wbuf)
	if err == nil {
		err = cc.bw.Flush()
	}
	if err != nil {
		err = fmt.Errorf("shard %d (%s): write: %w", cc.shard, cc.addr, err)
		cc.broken = err
		cc.pending = cc.pending[:len(cc.pending)-1]
		cc.mu.Unlock()
		cc.c.Close()
		return wire.Summary{}, err
	}
	cc.met.get().frameOut(len(cc.wbuf))
	cc.mu.Unlock()
	select {
	case sr := <-sumc:
		return sr.sum, sr.err
	case <-ctx.Done():
		cc.fail(ctx.Err())
		cc.c.Close()
		// fail (here or in the reader) delivers exactly one summaryReply
		// to the buffered channel; drain it so nothing dangles.
		sr := <-sumc
		if sr.err == nil {
			return sr.sum, nil // response raced the cancellation and won
		}
		return wire.Summary{}, ctx.Err()
	}
}

// Hello reports the identity the server presented at dial time (Replica
// interface).
func (cc *clientConn) Hello() wire.Hello { return cc.hello }

// Endpoint reports the dialed address and dial-time hello; Replicated
// detects it to cache endpoint identity for its Endpoints() view.
func (cc *clientConn) Endpoint() (string, wire.Hello) { return cc.addr, cc.hello }

// Close closes the connection and waits for its reader goroutine to
// exit; pending Submits receive error replies (Replica interface).
func (cc *clientConn) Close() error {
	cc.fail(ErrClosed)
	cc.c.Close()
	<-cc.done
	return nil
}

// fail marks the connection broken and delivers err to every pending
// request — task batches get an error Reply, summary requests an error
// summaryReply.
func (cc *clientConn) fail(err error) {
	cc.mu.Lock()
	if cc.broken == nil {
		cc.broken = err
	} else {
		err = cc.broken
	}
	pending := cc.pending
	cc.pending = nil
	cc.mu.Unlock()
	for _, pr := range pending {
		if pr.replyc != nil {
			pr.replyc <- Reply{Shard: cc.shard, Err: err}
		} else {
			pr.sumc <- summaryReply{err: err}
		}
	}
}

func (cc *clientConn) readLoop() {
	defer close(cc.done)
	br := bufio.NewReader(cc.c)
	var rbuf []byte
	var results []wire.Result
	var arena []uint32
	for {
		p, err := wire.ReadFrame(br, rbuf)
		if err != nil {
			cc.fail(fmt.Errorf("shard %d (%s): read: %w", cc.shard, cc.addr, err))
			return
		}
		cc.met.get().frameIn(len(p))
		rbuf = p
		ty, err := wire.MsgType(p)
		if err == nil && ty == wire.MsgError {
			msg, derr := wire.DecodeError(p)
			if derr != nil {
				msg = "undecodable server error"
			}
			cc.fail(fmt.Errorf("shard %d (%s): server error: %s", cc.shard, cc.addr, msg))
			return
		}
		// Match the frame to the oldest pending request BEFORE decoding:
		// the decode reuses results/arena, whose previous contents the
		// coordinator may still be reading — only a response matching a
		// pending request guarantees those buffers are quiescent (the
		// engine consumes a round fully before submitting the next). The
		// request's tag decides which decoder the frame must satisfy.
		// pending can only grow between this peek and the pop, since only
		// this goroutine pops.
		cc.mu.Lock()
		var head pendingReq
		if len(cc.pending) > 0 {
			head = cc.pending[0]
		}
		cc.mu.Unlock()
		switch {
		case head.replyc == nil && head.sumc == nil:
			cc.fail(fmt.Errorf("shard %d (%s): unsolicited response frame", cc.shard, cc.addr))
			return
		case head.sumc != nil:
			sum, err := wire.DecodeSummary(p)
			if err != nil {
				cc.met.get().decodeErr()
				cc.fail(fmt.Errorf("shard %d (%s): bad summary: %w", cc.shard, cc.addr, err))
				return
			}
			if cc.pop() {
				head.sumc <- summaryReply{sum: sum}
			}
		default:
			var info wire.ResultsInfo
			info, results, arena, err = wire.DecodeResults(p, results[:0], arena[:0])
			if err != nil {
				cc.met.get().decodeErr()
				cc.fail(fmt.Errorf("shard %d (%s): bad response: %w", cc.shard, cc.addr, err))
				return
			}
			if cc.pop() {
				head.replyc <- Reply{
					Shard:     cc.shard,
					Results:   results,
					Batch:     info.Batch,
					HasTiming: info.HasTiming,
					Timing:    info.Timing,
				}
			}
		}
	}
}

// pop removes the head pending request, reporting whether the caller
// now owns delivering its response. It reports false when a concurrent
// fail (Close, or a cancelled Summary) already consumed the queue and
// delivered errors — the response is then dropped, never double-sent.
func (cc *clientConn) pop() bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if len(cc.pending) == 0 {
		return false
	}
	cc.pending = cc.pending[1:]
	return true
}
