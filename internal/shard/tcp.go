package shard

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"dsr/internal/wire"
)

// handshakeTimeout bounds how long a dialing coordinator waits for the
// shard's hello frame.
const handshakeTimeout = 10 * time.Second

// drainTimeout bounds how long a graceful Shutdown lets a busy
// connection finish writing its in-flight response. Without it a peer
// that stops draining its socket would block Shutdown — and a
// SIGTERMed dsr-shard — forever on a full send buffer.
const drainTimeout = 30 * time.Second

// Server serves one shard's local-search RPCs over TCP: per connection,
// a hello frame identifying the shard, then a request/response loop of
// MsgTasks -> MsgResults frames. Protocol violations get a MsgError
// frame and the connection is dropped; the server itself keeps running.
//
// Connections share the one Shard, so Run (and the encoding of its
// aliasing results) is serialized under a mutex.
type Server struct {
	sh    *Shard
	hello wire.Hello

	runMu sync.Mutex // serializes Shard.Run + result encoding

	mu       sync.Mutex // guards ln, conns, closed, draining
	ln       net.Listener
	conns    map[net.Conn]*connState
	closed   bool
	draining bool
	wg       sync.WaitGroup
}

// connState tracks whether a connection is between batches (idle) or
// mid-batch (busy): a graceful Shutdown closes idle connections
// immediately but lets busy ones finish writing their response.
type connState struct {
	busy bool
}

// NewServer returns a server for sh. numShards and numVertices describe
// the whole deployment, graphSum fingerprints the exact edge set the
// shard was built from (graph.Fingerprint), and partSum digests the
// vertex-to-partition assignment (graph.Partitioning.Digest) — the
// check that catches a coordinator running a different partitioner (or
// the same locality partitioner with a different seed) over the same
// graph. 0 disables either check. All of it is echoed in the hello
// frame so a mismatched coordinator refuses the shard instead of
// silently mis-answering.
func NewServer(sh *Shard, numShards, numVertices int, graphSum, partSum uint64) *Server {
	return &Server{
		sh: sh,
		hello: wire.Hello{
			ShardID:      uint32(sh.ID()),
			NumShards:    uint32(numShards),
			NumVertices:  uint32(numVertices),
			Graph:        graphSum,
			Partitioning: partSum,
		},
		conns: make(map[net.Conn]*connState),
	}
}

// Serve accepts connections on ln until Close. It returns nil after
// Close, or the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		ln.Close()
		return ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			stopping := s.closed || s.draining
			s.mu.Unlock()
			if stopping {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed || s.draining {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[c] = &connState{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(c)
	}
}

// Close stops accepting, closes every live connection, and waits for
// all connection handlers to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

// Shutdown drains the server gracefully: the listener is closed so new
// connections are refused, idle connections (waiting between batches)
// are closed, and connections mid-batch finish executing and writing
// their response before their handler exits. When Shutdown returns, no
// handler is running and every accepted batch has been answered —
// SIGTERM handling in cmd/dsr-shard rides on this, and a coordinator
// with replicas fails the dropped connections over to a sibling. Safe
// to call more than once and concurrently with Close.
func (s *Server) Shutdown() error {
	s.mu.Lock()
	already := s.closed || s.draining
	s.draining = true
	ln := s.ln
	if !already {
		for c, st := range s.conns {
			if !st.busy {
				c.Close()
			} else {
				// Busy handlers get drainTimeout to flush their response;
				// a peer that won't read loses the conn instead of wedging
				// the drain.
				c.SetDeadline(time.Now().Add(drainTimeout))
			}
		}
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

// beginBatch marks c busy; it reports false (and the handler must hang
// up without answering) when the server started draining before the
// batch began executing.
func (s *Server) beginBatch(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.draining {
		return false
	}
	if st, ok := s.conns[c]; ok {
		st.busy = true
	}
	return true
}

// endBatch marks c idle again; it reports false when the server is
// draining, telling the handler to exit now that its in-flight batch
// has been fully answered.
func (s *Server) endBatch(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.conns[c]; ok {
		st.busy = false
	}
	return !(s.closed || s.draining)
}

func (s *Server) dropConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	c.Close()
	s.wg.Done()
}

func (s *Server) handle(c net.Conn) {
	defer s.dropConn(c)
	bw := bufio.NewWriter(c)
	br := bufio.NewReader(c)
	var rbuf, wbuf []byte
	var tasks []wire.Task
	var seedArena []int32

	wbuf = wire.AppendHello(wbuf[:0], s.hello)
	if err := wire.WriteFrame(bw, wbuf); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}

	fail := func(msg string) {
		wbuf = wire.AppendError(wbuf[:0], msg)
		if wire.WriteFrame(bw, wbuf) == nil {
			bw.Flush()
		}
	}
	for {
		p, err := wire.ReadFrame(br, rbuf)
		if err != nil {
			return // EOF or broken conn: just drop it
		}
		if !s.beginBatch(c) {
			return // draining: refuse batches that haven't started executing
		}
		rbuf = p
		ty, err := wire.MsgType(p)
		if err != nil || ty != wire.MsgTasks {
			fail(fmt.Sprintf("shard %d: want MsgTasks, got %#02x", s.sh.ID(), ty))
			return
		}
		tasks, seedArena, err = wire.DecodeTasks(p, tasks[:0], seedArena[:0])
		if err != nil {
			fail(fmt.Sprintf("shard %d: bad task batch: %v", s.sh.ID(), err))
			return
		}
		for i := range tasks {
			if !s.sh.ValidTask(&tasks[i]) {
				fail(fmt.Sprintf("shard %d: task %d references vertices outside the partition (graph/partitioning mismatch?)", s.sh.ID(), i))
				return
			}
		}
		// Run and encode under one lock: the results alias shard-owned
		// buffers that the next Run (possibly from another connection)
		// rewrites.
		s.runMu.Lock()
		results := s.sh.Run(tasks)
		wbuf = wire.AppendResults(wbuf[:0], results)
		s.runMu.Unlock()
		if err := wire.WriteFrame(bw, wbuf); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
		if !s.endBatch(c) {
			return // draining: this batch was answered, now hang up
		}
	}
}

// Client is the TCP Transport: one connection per shard, requests
// written in Submit order and responses matched back FIFO (the server
// answers a connection's requests strictly in order).
type Client struct {
	conns []*clientConn
	once  sync.Once
}

// clientConn is one live connection to a shard server. It implements
// Replica, which is how the replica-aware transport (Replicated) holds
// one clientConn per replica endpoint and fails batches over between
// them; the plain Client is the degenerate one-replica-per-partition
// arrangement of the same type.
type clientConn struct {
	shard int
	addr  string
	c     net.Conn
	bw    *bufio.Writer

	mu      sync.Mutex // guards writes, pending, broken
	pending []chan<- Reply
	broken  error
	wbuf    []byte

	done chan struct{} // closed when the reader goroutine exits
}

// Dial connects to one shard server per address (addrs[i] must be shard
// i), verifies each hello against the expected deployment shape, and
// returns the transport. wantVertices < 0 skips the vertex-count check;
// wantGraph is the caller's graph fingerprint and wantPart its
// partitioning digest — for either, 0 skips the check (either side not
// computing one opts out, since a server may also send 0).
func Dial(addrs []string, wantVertices int, wantGraph, wantPart uint64) (*Client, error) {
	cl := &Client{}
	for i, addr := range addrs {
		cc, err := dialShard(i, addr, len(addrs), wantVertices, wantGraph, wantPart)
		if err != nil {
			cl.Close()
			return nil, err
		}
		cl.conns = append(cl.conns, cc)
	}
	return cl, nil
}

func dialShard(i int, addr string, numShards, wantVertices int, wantGraph, wantPart uint64) (*clientConn, error) {
	c, err := net.DialTimeout("tcp", addr, handshakeTimeout)
	if err != nil {
		return nil, fmt.Errorf("shard %d (%s): %w", i, addr, err)
	}
	c.SetReadDeadline(time.Now().Add(handshakeTimeout))
	p, err := wire.ReadFrame(c, nil)
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("shard %d (%s): hello: %w", i, addr, err)
	}
	h, err := wire.DecodeHello(p)
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("shard %d (%s): hello: %w", i, addr, err)
	}
	if int(h.ShardID) != i {
		c.Close()
		return nil, fmt.Errorf("shard %d (%s): server identifies as shard %d", i, addr, h.ShardID)
	}
	if int(h.NumShards) != numShards {
		c.Close()
		return nil, fmt.Errorf("shard %d (%s): server built for %d shards, dialing %d", i, addr, h.NumShards, numShards)
	}
	if wantVertices >= 0 && int(h.NumVertices) != wantVertices {
		c.Close()
		return nil, fmt.Errorf("shard %d (%s): server graph has %d vertices, coordinator has %d", i, addr, h.NumVertices, wantVertices)
	}
	if wantGraph != 0 && h.Graph != 0 && h.Graph != wantGraph {
		c.Close()
		return nil, fmt.Errorf("shard %d (%s): server built from a different graph (fingerprint %#x, coordinator %#x)", i, addr, h.Graph, wantGraph)
	}
	if wantPart != 0 && h.Partitioning != 0 && h.Partitioning != wantPart {
		c.Close()
		return nil, fmt.Errorf("shard %d (%s): server built with a different partitioning (digest %#x, coordinator %#x — same -partitioner spec everywhere?)", i, addr, h.Partitioning, wantPart)
	}
	c.SetReadDeadline(time.Time{})
	cc := &clientConn{shard: i, addr: addr, c: c, bw: bufio.NewWriter(c), done: make(chan struct{})}
	go cc.readLoop()
	return cc, nil
}

// NumShards returns the shard count.
func (cl *Client) NumShards() int { return len(cl.conns) }

// Submit encodes and writes the batch to shard p's connection. The
// Reply arrives on replyc when the response frame is read (or an error
// Reply immediately if the connection is broken).
func (cl *Client) Submit(p int, tasks []wire.Task, replyc chan<- Reply) {
	cl.conns[p].Submit(tasks, replyc)
}

// Close closes every connection and waits for the reader goroutines to
// exit; outstanding Submits receive error replies.
func (cl *Client) Close() error {
	cl.once.Do(func() {
		for _, cc := range cl.conns {
			cc.fail(ErrClosed)
			cc.c.Close()
		}
		for _, cc := range cl.conns {
			<-cc.done
		}
	})
	return nil
}

// Submit encodes and writes the batch to the connection (Replica
// interface). The Reply arrives on replyc when the response frame is
// read, or immediately with an error if the connection is broken.
func (cc *clientConn) Submit(tasks []wire.Task, replyc chan<- Reply) {
	cc.mu.Lock()
	if cc.broken != nil {
		err := cc.broken
		cc.mu.Unlock()
		replyc <- Reply{Shard: cc.shard, Err: err}
		return
	}
	// Register before writing: the reader pops pending FIFO as response
	// frames arrive, and a response can only follow a completed write.
	cc.pending = append(cc.pending, replyc)
	cc.wbuf = wire.AppendTasks(cc.wbuf[:0], tasks)
	err := wire.WriteFrame(cc.bw, cc.wbuf)
	if err == nil {
		err = cc.bw.Flush()
	}
	if err != nil {
		err = fmt.Errorf("shard %d (%s): write: %w", cc.shard, cc.addr, err)
		cc.broken = err
		cc.pending = cc.pending[:len(cc.pending)-1]
		cc.mu.Unlock()
		cc.c.Close() // wake the reader so it fails any earlier pending
		replyc <- Reply{Shard: cc.shard, Err: err}
		return
	}
	cc.mu.Unlock()
}

// Close closes the connection and waits for its reader goroutine to
// exit; pending Submits receive error replies (Replica interface).
func (cc *clientConn) Close() error {
	cc.fail(ErrClosed)
	cc.c.Close()
	<-cc.done
	return nil
}

// fail marks the connection broken and delivers err to every pending
// reply.
func (cc *clientConn) fail(err error) {
	cc.mu.Lock()
	if cc.broken == nil {
		cc.broken = err
	} else {
		err = cc.broken
	}
	pending := cc.pending
	cc.pending = nil
	cc.mu.Unlock()
	for _, replyc := range pending {
		replyc <- Reply{Shard: cc.shard, Err: err}
	}
}

func (cc *clientConn) readLoop() {
	defer close(cc.done)
	br := bufio.NewReader(cc.c)
	var rbuf []byte
	var results []wire.Result
	var arena []uint32
	for {
		p, err := wire.ReadFrame(br, rbuf)
		if err != nil {
			cc.fail(fmt.Errorf("shard %d (%s): read: %w", cc.shard, cc.addr, err))
			return
		}
		rbuf = p
		ty, err := wire.MsgType(p)
		if err == nil && ty == wire.MsgError {
			msg, derr := wire.DecodeError(p)
			if derr != nil {
				msg = "undecodable server error"
			}
			cc.fail(fmt.Errorf("shard %d (%s): server error: %s", cc.shard, cc.addr, msg))
			return
		}
		// Refuse unsolicited frames BEFORE decoding: the decode reuses
		// results/arena, whose previous contents the coordinator may
		// still be reading — only a response matching a pending request
		// guarantees those buffers are quiescent (the engine consumes a
		// round fully before submitting the next). pending can only grow
		// between this check and the decode, since only this goroutine
		// pops.
		cc.mu.Lock()
		unsolicited := len(cc.pending) == 0
		cc.mu.Unlock()
		if unsolicited {
			cc.fail(fmt.Errorf("shard %d (%s): unsolicited response frame", cc.shard, cc.addr))
			return
		}
		results, arena, err = wire.DecodeResults(p, results[:0], arena[:0])
		if err != nil {
			cc.fail(fmt.Errorf("shard %d (%s): bad response: %w", cc.shard, cc.addr, err))
			return
		}
		cc.mu.Lock()
		replyc := cc.pending[0]
		cc.pending = cc.pending[1:]
		cc.mu.Unlock()
		replyc <- Reply{Shard: cc.shard, Results: results}
	}
}
