package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"dsr/internal/obs"
	"dsr/internal/wire"
)

// defaultReconnectEvery is how often the background loop retries dead
// replicas when ReplicatedOptions doesn't say otherwise.
const defaultReconnectEvery = time.Second

// ReplicatedOptions tunes the replica-aware transport.
type ReplicatedOptions struct {
	// ReconnectEvery is the period of the background loop that redials
	// dead replicas (every redial re-runs the full handshake, so a
	// replica that restarted wrong stays dead). 0 means the 1s default;
	// negative disables background reconnection entirely — dead
	// replicas are then only retried when their partition has no live
	// replica left.
	ReconnectEvery time.Duration
	// Metrics, if non-nil, receives the transport's failover telemetry:
	// per-partition retry/failover/redial counters, live-replica gauges,
	// and per-replica RPC latency histograms (see README.md). Health()
	// works either way — the counters it reads always exist.
	Metrics *obs.Registry
}

// counterOr binds name in reg, or returns a standalone counter when reg
// is nil — Replicated's failover counters must count regardless of
// whether the deployment exports metrics, because Health() reports them.
func counterOr(reg *obs.Registry, name string) *obs.Counter {
	if c := reg.Counter(name); c != nil {
		return c
	}
	return &obs.Counter{}
}

// Replicated is the replica-aware Transport: partition p is served by
// one of several interchangeable replicas. Submit routes each task
// batch to a healthy replica (rotating between them to spread load),
// and because local searches are idempotent — pure reads over an
// immutable subgraph — a batch whose send or receive fails mid-query
// is simply retried on a sibling replica. A replica that fails is
// marked dead and periodically redialed in the background; only when
// every replica of a partition fails within one Submit does the
// coordinator see an error Reply, and that Reply's Err details every
// replica's failure.
type Replicated struct {
	sets []*replicaSet
	opts ReplicatedOptions

	// ctx is the transport's lifetime: cancelled by Close so background
	// redials (reconnect loop, in-query last resorts) abort promptly
	// instead of finishing a doomed dial against a dead deployment.
	ctx    context.Context
	cancel context.CancelFunc

	loopWG sync.WaitGroup // background reconnect loop
	subWG  sync.WaitGroup // in-flight Submit goroutines

	mu     sync.Mutex
	closed bool
}

// Expect pins the fleet identity every redialed replica must present. A
// graph-free coordinator learns the deployment's vertex count, graph
// fingerprint, and partitioning digest from the fleet itself at connect
// time; pinning them makes every later redial re-verify that a restarted
// replica still serves the same deployment. NumVertices < 0 skips the
// vertex-count check; a zero fingerprint or digest skips that check
// (matching the dial-time handshake rules). Replicas with no handshake
// identity at all (hello NumShards == 0, i.e. in-process replicas) are
// exempt.
type Expect struct {
	NumVertices int
	Graph       uint64
	Part        uint64
}

// check validates a replica's dial-time hello against the pin.
func (e *Expect) check(part int, h wire.Hello) error {
	if e == nil || h.NumShards == 0 {
		return nil
	}
	if e.NumVertices >= 0 && int(h.NumVertices) != e.NumVertices {
		return fmt.Errorf("shard %d: replica serves %d vertices, fleet pinned %d", part, h.NumVertices, e.NumVertices)
	}
	if e.Graph != 0 && h.Graph != 0 && h.Graph != e.Graph {
		return fmt.Errorf("shard %d: replica built from a different graph (fingerprint %#x, fleet pinned %#x)", part, h.Graph, e.Graph)
	}
	if e.Part != 0 && h.Partitioning != 0 && h.Partitioning != e.Part {
		return fmt.Errorf("shard %d: replica built with a different partitioning (digest %#x, fleet pinned %#x)", part, h.Partitioning, e.Part)
	}
	return nil
}

// replicaSet is one partition's replicas: dialers are fixed at
// construction, live[i] is the connected Replica for dialers[i] or nil
// while it is dead, and lastErr[i] remembers why it died (for the
// all-replicas-failed error detail).
type replicaSet struct {
	part    int
	dialers []ReplicaDialer

	mu      sync.Mutex
	live    []Replica
	lastErr []error
	busy    []bool // replica i is serving an in-flight batch or summary fetch
	rr      int    // round-robin cursor over replica indices
	closed  bool
	expect  *Expect // pinned fleet identity, nil until Pin

	// Endpoint identity as last observed at a successful dial: addrs[i]
	// is replica i's dialed address and hellos[i] the hello it presented
	// — kept even while the replica is dead, so Endpoints() can still
	// name what used to serve the slot. Empty for replicas that don't
	// expose an endpoint (in-process ones). Guarded by mu.
	addrs  []string
	hellos []wire.Hello

	dialMu sync.Mutex // serializes redials so loop and Submit don't race a dial

	// Failover telemetry. The counters are never nil (counterOr) so
	// Health() reports real numbers even without a registry; liveG and
	// lat may be nil instruments (no-ops) when metrics are disabled.
	retries   *obs.Counter     // shard_retries_total{partition=p}
	failovers *obs.Counter     // shard_failovers_total{partition=p}
	redials   *obs.Counter     // shard_redials_total{partition=p}
	liveG     *obs.Gauge       // shard_replicas_live{partition=p}
	lat       []*obs.Histogram // shard_rpc_latency_ns{partition=p,replica=i}
}

// NewReplicated dials every replica of every partition and returns the
// transport. ctx bounds only the construction dials; the transport's own
// lifetime is governed by Close. Construction requires at least one live
// replica per partition (a partition with zero replicas up cannot answer
// anything); replicas that fail to dial start out dead and are retried
// by the reconnect loop. groups[p] lists partition p's dialers.
func NewReplicated(ctx context.Context, groups [][]ReplicaDialer, opts ReplicatedOptions) (*Replicated, error) {
	if len(groups) == 0 {
		return nil, errors.New("shard: no replica groups")
	}
	r := &Replicated{
		sets: make([]*replicaSet, len(groups)),
		opts: opts,
	}
	r.ctx, r.cancel = context.WithCancel(context.Background())
	for p, dialers := range groups {
		if len(dialers) == 0 {
			r.shutdown()
			return nil, fmt.Errorf("shard: partition %d has no replicas", p)
		}
		rs := &replicaSet{
			part:      p,
			dialers:   dialers,
			live:      make([]Replica, len(dialers)),
			lastErr:   make([]error, len(dialers)),
			busy:      make([]bool, len(dialers)),
			retries:   counterOr(opts.Metrics, obs.Name("shard_retries_total", "partition", p)),
			failovers: counterOr(opts.Metrics, obs.Name("shard_failovers_total", "partition", p)),
			redials:   counterOr(opts.Metrics, obs.Name("shard_redials_total", "partition", p)),
			liveG:     opts.Metrics.Gauge(obs.Name("shard_replicas_live", "partition", p)),
			lat:       make([]*obs.Histogram, len(dialers)),
			addrs:     make([]string, len(dialers)),
			hellos:    make([]wire.Hello, len(dialers)),
		}
		for i := range dialers {
			rs.lat[i] = opts.Metrics.Histogram(obs.Name("shard_rpc_latency_ns", "partition", p, "replica", i))
		}
		nlive := 0
		for i, dial := range dialers {
			rep, err := dial(ctx)
			if err != nil {
				rs.lastErr[i] = err
				continue
			}
			rs.live[i] = rep
			rs.recordEndpointLocked(i, rep)
			nlive++
		}
		rs.liveG.Set(int64(nlive))
		r.sets[p] = rs
		if nlive == 0 {
			r.shutdown()
			return nil, fmt.Errorf("shard: partition %d: no replica reachable: %v", p, rs.describeFailures())
		}
	}
	every := opts.ReconnectEvery
	if every == 0 {
		every = defaultReconnectEvery
	}
	if every > 0 {
		r.loopWG.Add(1)
		go r.reconnectLoop(every)
	}
	return r, nil
}

// DialReplicated connects to a replicated TCP deployment: groups[p]
// lists the dsr-shard addresses serving partition p (any of them may be
// down, as long as each partition has at least one up). ctx bounds the
// construction dials. Handshake expectations follow Dial: wantVertices
// < 0 skips the vertex-count check, 0 skips either digest.
func DialReplicated(ctx context.Context, groups [][]string, wantVertices int, wantGraph, wantPart uint64, opts ReplicatedOptions) (*Replicated, error) {
	met := newNetMetrics(opts.Metrics, "net_client")
	dialers := make([][]ReplicaDialer, len(groups))
	for p, addrs := range groups {
		dialers[p] = make([]ReplicaDialer, len(addrs))
		for i, addr := range addrs {
			dialers[p][i] = tcpReplicaDialer(p, addr, len(groups), wantVertices, wantGraph, wantPart, met)
		}
	}
	return NewReplicated(ctx, dialers, opts)
}

// Pin stores the fleet identity every future redial must re-verify and
// sweeps currently-live replicas against it, killing any that mismatch
// (the reconnect loop will redial them, and the redial re-verifies). A
// graph-free coordinator calls this right after cross-checking the
// hellos it collected at connect time, closing the window where a
// replica restarted from a different deployment could rejoin unnoticed.
func (r *Replicated) Pin(e Expect) {
	for _, rs := range r.sets {
		rs.pin(&e)
	}
}

func (rs *replicaSet) pin(e *Expect) {
	rs.mu.Lock()
	rs.expect = e
	var bad []Replica
	for i, rep := range rs.live {
		if rep == nil {
			continue
		}
		if err := e.check(rs.part, rep.Hello()); err != nil {
			rs.live[i] = nil
			rs.lastErr[i] = err
			bad = append(bad, rep)
		}
	}
	rs.updateLiveLocked()
	rs.mu.Unlock()
	for _, rep := range bad {
		rep.Close()
	}
}

// NumShards returns the partition count.
func (r *Replicated) NumShards() int { return len(r.sets) }

// PartitionHealth is one partition's replica-health snapshot: how many
// replicas are configured and live, and the cumulative failover activity
// since the transport was built.
type PartitionHealth struct {
	Partition int    // partition index
	Replicas  int    // configured replica count
	Live      int    // currently-connected replicas
	Retries   uint64 // batches re-run on a sibling after a replica failed
	Failovers uint64 // live->dead transitions
	Redials   uint64 // dial attempts against dead endpoints
}

// Health snapshots every partition's replica health. It works whether or
// not the transport was built with a metrics registry — the counters it
// reads always count.
func (r *Replicated) Health() []PartitionHealth {
	out := make([]PartitionHealth, len(r.sets))
	for p, rs := range r.sets {
		rs.mu.Lock()
		live := 0
		for _, rep := range rs.live {
			if rep != nil {
				live++
			}
		}
		rs.mu.Unlock()
		out[p] = PartitionHealth{
			Partition: p,
			Replicas:  len(rs.dialers),
			Live:      live,
			Retries:   rs.retries.Load(),
			Failovers: rs.failovers.Load(),
			Redials:   rs.redials.Load(),
		}
	}
	return out
}

// NumLive returns how many of partition p's replicas are currently
// connected — observability for tests and operators, not a correctness
// signal (a "live" replica may die on next use).
func (r *Replicated) NumLive(p int) int {
	rs := r.sets[p]
	rs.mu.Lock()
	defer rs.mu.Unlock()
	n := 0
	for _, rep := range rs.live {
		if rep != nil {
			n++
		}
	}
	return n
}

// Submit routes the batch to a healthy replica of partition p,
// retrying siblings on failure; the final Reply (success from whichever
// replica answered, or an all-replicas-failed error) is delivered on
// replyc. Each Submit runs in its own goroutine so the coordinator's
// fan-out never blocks on a slow or dying replica.
func (r *Replicated) Submit(p int, h wire.BatchHeader, tasks []wire.Task, replyc chan<- Reply) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		replyc <- Reply{Shard: p, Err: ErrClosed}
		return
	}
	r.subWG.Add(1)
	r.mu.Unlock()
	go func() {
		defer r.subWG.Done()
		replyc <- r.sets[p].run(r.ctx, h, tasks, false)
	}()
}

// ErrNoIdleSibling is SubmitHedge's fail-fast answer when partition p
// has no live replica sitting idle: every replica is either serving an
// in-flight batch (most likely the very submit being hedged) or dead.
// Hedging is a latency tool, not an availability tool, so this is not
// an outage signal — the primary submit still owns retries and redials.
var ErrNoIdleSibling = errors.New("shard: no idle sibling replica to hedge on")

// SubmitHedge re-sends a round's task batch for partition p to an idle
// sibling replica — one not currently serving any batch — implementing
// the coordinator's hedged requests. It is sound because local searches
// are idempotent reads, and safe concurrently with an in-flight Submit
// on the same partition: a busy replica is never picked, so a hedge can
// never interleave two batches on one replica connection (whose decode
// buffers hold one reply at a time). Unlike Submit it never redials
// dead endpoints and never waits: with no idle live sibling the Reply
// carries ErrNoIdleSibling immediately. The caller must be draining
// replyc for both the primary and the hedged reply — both arrive.
func (r *Replicated) SubmitHedge(p int, h wire.BatchHeader, tasks []wire.Task, replyc chan<- Reply) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		replyc <- Reply{Shard: p, Err: ErrClosed}
		return
	}
	r.subWG.Add(1)
	r.mu.Unlock()
	go func() {
		defer r.subWG.Done()
		replyc <- r.sets[p].run(r.ctx, h, tasks, true)
	}()
}

// Endpoints describes every (partition, replica) endpoint: the address
// each replica was dialed at, the metrics address it announced in its
// hello, and whether it is currently live. Dead replicas keep the
// identity they last presented, so a fleet view can still name them.
func (r *Replicated) Endpoints() []EndpointInfo {
	var eps []EndpointInfo
	for _, rs := range r.sets {
		rs.mu.Lock()
		for i := range rs.dialers {
			eps = append(eps, EndpointInfo{
				Partition:   rs.part,
				Replica:     i,
				Addr:        rs.addrs[i],
				MetricsAddr: rs.hellos[i].MetricsAddr,
				Live:        rs.live[i] != nil,
			})
		}
		rs.mu.Unlock()
	}
	return eps
}

// Summary fetches partition p's boundary summary with the same failover
// as Submit: healthy replicas in round-robin order, dead ones redialed
// as a last resort, each failure marking that replica dead — so a
// replica dying mid-fetch is transparently replaced by a sibling. The
// SummaryInfo pairs the summary with the serving replica's dial-time
// hello. ctx bounds the whole attempt chain.
func (r *Replicated) Summary(ctx context.Context, p int) (SummaryInfo, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return SummaryInfo{}, ErrClosed
	}
	r.subWG.Add(1)
	r.mu.Unlock()
	defer r.subWG.Done()
	return r.sets[p].summary(ctx)
}

// Close stops the reconnect loop, closes every live replica (failing
// any in-flight batch, whose Submit goroutine then delivers an error
// Reply), and waits for all transport-owned goroutines. Safe to call
// more than once.
func (r *Replicated) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	r.shutdown()
	return nil
}

func (r *Replicated) shutdown() {
	r.cancel() // aborts in-flight redials along with the reconnect loop
	for _, rs := range r.sets {
		if rs != nil {
			rs.closeAll()
		}
	}
	r.loopWG.Wait()
	r.subWG.Wait()
}

func (r *Replicated) reconnectLoop(every time.Duration) {
	defer r.loopWG.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-r.ctx.Done():
			return
		case <-t.C:
			for _, rs := range r.sets {
				rs.reconnect(r.ctx)
			}
		}
	}
}

// run executes one batch against the set, trying each replica at most
// once: healthy replicas first in round-robin order, then — only if no
// healthy replica remains — a last-resort redial of the dead ones. A
// replica that fails mid-batch is marked dead (and closed); the batch
// is retried on the next candidate, which is correct because local
// searches are idempotent reads. Only when every replica has failed
// does the caller get an error Reply, carrying each replica's failure.
//
// In hedge mode the candidate pool shrinks to idle live replicas: no
// redial of dead endpoints, and ErrNoIdleSibling the moment the pool is
// empty — a hedge races the primary submit, so spending seconds dialing
// would defeat its purpose.
//
// Replies from a replicaSet own their memory: a replica's decode
// buffers are valid only until its next submit, and with hedging two
// submits to one partition are in flight at once, so the successful
// reply's Boundary lists are copied out of the replica's arena before
// the replica is released for reuse. That keeps every Reply valid until
// the coordinator finishes the whole round, however the round's submits
// interleave.
func (rs *replicaSet) run(ctx context.Context, h wire.BatchHeader, tasks []wire.Task, hedge bool) Reply {
	tried := make([]bool, len(rs.dialers))
	inner := make(chan Reply, 1)
	attempts := 0
	for {
		idx, rep := rs.pick(tried)
		if rep == nil && !hedge {
			idx, rep = rs.redialDead(ctx, tried)
		}
		if rep == nil {
			if hedge {
				return Reply{Shard: rs.part, Err: ErrNoIdleSibling}
			}
			return Reply{Shard: rs.part, Err: &ReplicaSetError{Part: rs.part, Replicas: rs.describeFailures()}}
		}
		if attempts > 0 {
			rs.retries.Inc() // this batch is being re-run on a sibling
		}
		attempts++
		tried[idx] = true
		t0 := time.Now()
		rep.Submit(h, tasks, inner)
		reply := <-inner
		rs.lat[idx].ObserveSince(t0)
		if reply.Err == nil {
			reply.Shard = rs.part
			reply.Results = copyResults(reply.Results)
			rs.setBusy(idx, false)
			return reply
		}
		rs.setBusy(idx, false)
		rs.markDead(idx, rep, reply.Err)
	}
}

// copyResults rebinds results onto a freshly allocated backing array —
// one arena for all Boundary lists — so the reply no longer aliases
// the replica connection's reusable decode buffers.
func copyResults(results []wire.Result) []wire.Result {
	if len(results) == 0 {
		return results
	}
	total := 0
	for i := range results {
		total += len(results[i].Boundary)
	}
	out := make([]wire.Result, len(results))
	copy(out, results)
	arena := make([]uint32, total)
	for i := range out {
		n := copy(arena, out[i].Boundary)
		out[i].Boundary, arena = arena[:n:n], arena[n:]
	}
	return out
}

// setBusy releases (or re-marks) replica idx; acquisition happens
// inside pick/redialDead under rs.mu.
func (rs *replicaSet) setBusy(idx int, b bool) {
	rs.mu.Lock()
	rs.busy[idx] = b
	rs.mu.Unlock()
}

// summary mirrors run for boundary-summary fetches: same candidate
// order, same mark-dead-and-retry failover, same all-replicas-failed
// error. Bails out early when ctx is done rather than burning the
// remaining candidates on a deadline that already passed.
func (rs *replicaSet) summary(ctx context.Context) (SummaryInfo, error) {
	tried := make([]bool, len(rs.dialers))
	attempts := 0
	for {
		if err := ctx.Err(); err != nil {
			return SummaryInfo{}, fmt.Errorf("shard %d: summary: %w", rs.part, err)
		}
		idx, rep := rs.pick(tried)
		if rep == nil {
			idx, rep = rs.redialDead(ctx, tried)
		}
		if rep == nil {
			return SummaryInfo{}, &ReplicaSetError{Part: rs.part, Replicas: rs.describeFailures()}
		}
		if attempts > 0 {
			rs.retries.Inc()
		}
		attempts++
		tried[idx] = true
		sum, err := rep.Summary(ctx)
		rs.setBusy(idx, false)
		if err == nil {
			return SummaryInfo{Hello: rep.Hello(), Summary: sum}, nil
		}
		rs.markDead(idx, rep, err)
	}
}

// pick returns the next untried idle healthy replica in round-robin
// order, or nil if none remains, marking the returned replica busy.
// Skipping busy replicas is what keeps a hedge and its primary (and the
// primary's own sibling retries) on disjoint replicas: each replica
// serves at most one in-flight batch, so its decode buffers hold one
// reply at a time.
func (rs *replicaSet) pick(tried []bool) (int, Replica) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.closed {
		return -1, nil
	}
	n := len(rs.live)
	for i := 0; i < n; i++ {
		idx := (rs.rr + i) % n
		if !tried[idx] && !rs.busy[idx] && rs.live[idx] != nil {
			rs.rr = idx + 1
			rs.busy[idx] = true
			return idx, rs.live[idx]
		}
	}
	return -1, nil
}

// redialDead is the in-query last resort: with no healthy replica left
// the batch would fail anyway, so attempting a fresh dial of each
// untried dead endpoint is strictly better — it catches a replica that
// came back between reconnect ticks. Dials are serialized with the
// background loop so an endpoint is never dialed twice concurrently.
func (rs *replicaSet) redialDead(ctx context.Context, tried []bool) (int, Replica) {
	rs.dialMu.Lock()
	defer rs.dialMu.Unlock()
	for idx := range rs.dialers {
		if tried[idx] {
			continue
		}
		rs.mu.Lock()
		if rs.closed {
			rs.mu.Unlock()
			return -1, nil
		}
		if rep := rs.live[idx]; rep != nil {
			// Revived by the background loop while we waited for dialMu.
			if rs.busy[idx] {
				rs.mu.Unlock()
				continue // revived and immediately claimed by another batch
			}
			rs.busy[idx] = true
			rs.mu.Unlock()
			return idx, rep
		}
		rs.mu.Unlock()
		if ctx.Err() != nil {
			return -1, nil // transport closed (or deadline hit) mid-redial
		}
		rs.redials.Inc()
		rep, err := rs.dialers[idx](ctx)
		if err != nil {
			rs.mu.Lock()
			rs.lastErr[idx] = err
			rs.mu.Unlock()
			continue
		}
		installed, closed := rs.install(idx, rep, true)
		if closed {
			return -1, nil // closed while dialing
		}
		if !installed {
			continue // pinned-identity mismatch; recorded, try the next
		}
		return idx, rep
	}
	return -1, nil
}

// reconnect redials every currently-dead endpoint once.
func (rs *replicaSet) reconnect(ctx context.Context) {
	rs.dialMu.Lock()
	defer rs.dialMu.Unlock()
	for idx := range rs.dialers {
		rs.mu.Lock()
		dead := rs.live[idx] == nil && !rs.closed
		rs.mu.Unlock()
		if !dead || ctx.Err() != nil {
			continue
		}
		rs.redials.Inc()
		rep, err := rs.dialers[idx](ctx)
		if err != nil {
			rs.mu.Lock()
			rs.lastErr[idx] = err
			rs.mu.Unlock()
			continue
		}
		if _, closed := rs.install(idx, rep, false); closed {
			return
		}
	}
}

// install stores a freshly dialed replica after re-verifying it against
// the pinned fleet identity (if any). installed reports whether the
// replica went live; closed reports that the set was closed while the
// dial was in flight (the caller should stop redialing). A verify
// failure records the mismatch as the endpoint's lastErr and closes the
// replica — it stays dead until it comes back serving the right
// deployment. claim marks the installed replica busy for the caller's
// own use (redialDead submits to it immediately; the reconnect loop
// just parks it live for future picks).
func (rs *replicaSet) install(idx int, rep Replica, claim bool) (installed, closed bool) {
	rs.mu.Lock()
	if rs.closed {
		rs.mu.Unlock()
		rep.Close()
		return false, true
	}
	if err := rs.expect.check(rs.part, rep.Hello()); err != nil {
		rs.lastErr[idx] = err
		rs.mu.Unlock()
		rep.Close()
		return false, false
	}
	rs.live[idx] = rep
	rs.lastErr[idx] = nil
	rs.busy[idx] = claim
	rs.recordEndpointLocked(idx, rep)
	rs.updateLiveLocked()
	rs.mu.Unlock()
	return true, false
}

// recordEndpointLocked caches a freshly dialed replica's endpoint
// identity for Endpoints(). Caller holds rs.mu (or owns the set
// exclusively during construction). Replicas without a network
// endpoint leave the slot as-is.
func (rs *replicaSet) recordEndpointLocked(idx int, rep Replica) {
	if ep, ok := rep.(interface{ Endpoint() (string, wire.Hello) }); ok {
		rs.addrs[idx], rs.hellos[idx] = ep.Endpoint()
	}
}

// updateLiveLocked refreshes the live-replica gauge. Caller holds rs.mu.
func (rs *replicaSet) updateLiveLocked() {
	n := 0
	for _, rep := range rs.live {
		if rep != nil {
			n++
		}
	}
	rs.liveG.Set(int64(n))
}

// markDead records why replica idx failed and closes it, unless a
// reconnect already replaced it with a fresh instance (then the fresh
// one is left alone and only the failed instance is closed).
func (rs *replicaSet) markDead(idx int, failed Replica, err error) {
	rs.mu.Lock()
	if rs.live[idx] == failed {
		rs.live[idx] = nil
		rs.lastErr[idx] = err
		rs.failovers.Inc() // a live replica just transitioned to dead
		rs.updateLiveLocked()
	}
	rs.mu.Unlock()
	failed.Close()
}

func (rs *replicaSet) closeAll() {
	rs.mu.Lock()
	rs.closed = true
	live := make([]Replica, len(rs.live))
	copy(live, rs.live)
	for i := range rs.live {
		rs.live[i] = nil
	}
	rs.updateLiveLocked()
	rs.mu.Unlock()
	for _, rep := range live {
		if rep != nil {
			rep.Close()
		}
	}
}

// describeFailures snapshots the per-replica failure detail.
func (rs *replicaSet) describeFailures() []ReplicaError {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make([]ReplicaError, len(rs.dialers))
	for i := range rs.dialers {
		out[i] = ReplicaError{Replica: i, Err: rs.lastErr[i]}
		if out[i].Err == nil {
			if rs.closed {
				out[i].Err = ErrClosed
			} else {
				out[i].Err = errors.New("failed during this batch")
			}
		}
	}
	return out
}

// ReplicaError is one replica's failure within a ReplicaSetError.
type ReplicaError struct {
	Replica int
	Err     error
}

// ReplicaSetError reports that every replica of a partition failed for
// one task batch — the only condition under which the replica-aware
// transport surfaces an error to the coordinator.
type ReplicaSetError struct {
	Part     int
	Replicas []ReplicaError
}

func (e *ReplicaSetError) Error() string {
	s := fmt.Sprintf("all %d replica(s) of partition %d failed:", len(e.Replicas), e.Part)
	for _, re := range e.Replicas {
		s += fmt.Sprintf(" [replica %d: %v]", re.Replica, re.Err)
	}
	return s
}
