package shard

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dsr/internal/wire"
)

// defaultReconnectEvery is how often the background loop retries dead
// replicas when ReplicatedOptions doesn't say otherwise.
const defaultReconnectEvery = time.Second

// ReplicatedOptions tunes the replica-aware transport.
type ReplicatedOptions struct {
	// ReconnectEvery is the period of the background loop that redials
	// dead replicas (every redial re-runs the full handshake, so a
	// replica that restarted wrong stays dead). 0 means the 1s default;
	// negative disables background reconnection entirely — dead
	// replicas are then only retried when their partition has no live
	// replica left.
	ReconnectEvery time.Duration
}

// Replicated is the replica-aware Transport: partition p is served by
// one of several interchangeable replicas. Submit routes each task
// batch to a healthy replica (rotating between them to spread load),
// and because local searches are idempotent — pure reads over an
// immutable subgraph — a batch whose send or receive fails mid-query
// is simply retried on a sibling replica. A replica that fails is
// marked dead and periodically redialed in the background; only when
// every replica of a partition fails within one Submit does the
// coordinator see an error Reply, and that Reply's Err details every
// replica's failure.
type Replicated struct {
	sets []*replicaSet
	opts ReplicatedOptions

	stopc  chan struct{}
	loopWG sync.WaitGroup // background reconnect loop
	subWG  sync.WaitGroup // in-flight Submit goroutines

	mu     sync.Mutex
	closed bool
}

// replicaSet is one partition's replicas: dialers are fixed at
// construction, live[i] is the connected Replica for dialers[i] or nil
// while it is dead, and lastErr[i] remembers why it died (for the
// all-replicas-failed error detail).
type replicaSet struct {
	part    int
	dialers []ReplicaDialer

	mu      sync.Mutex
	live    []Replica
	lastErr []error
	rr      int // round-robin cursor over replica indices
	closed  bool

	dialMu sync.Mutex // serializes redials so loop and Submit don't race a dial
}

// NewReplicated dials every replica of every partition and returns the
// transport. Construction requires at least one live replica per
// partition (a partition with zero replicas up cannot answer anything);
// replicas that fail to dial start out dead and are retried by the
// reconnect loop. groups[p] lists partition p's dialers.
func NewReplicated(groups [][]ReplicaDialer, opts ReplicatedOptions) (*Replicated, error) {
	if len(groups) == 0 {
		return nil, errors.New("shard: no replica groups")
	}
	r := &Replicated{
		sets:  make([]*replicaSet, len(groups)),
		opts:  opts,
		stopc: make(chan struct{}),
	}
	for p, dialers := range groups {
		if len(dialers) == 0 {
			r.shutdown()
			return nil, fmt.Errorf("shard: partition %d has no replicas", p)
		}
		rs := &replicaSet{
			part:    p,
			dialers: dialers,
			live:    make([]Replica, len(dialers)),
			lastErr: make([]error, len(dialers)),
		}
		nlive := 0
		for i, dial := range dialers {
			rep, err := dial()
			if err != nil {
				rs.lastErr[i] = err
				continue
			}
			rs.live[i] = rep
			nlive++
		}
		r.sets[p] = rs
		if nlive == 0 {
			r.shutdown()
			return nil, fmt.Errorf("shard: partition %d: no replica reachable: %v", p, rs.describeFailures())
		}
	}
	every := opts.ReconnectEvery
	if every == 0 {
		every = defaultReconnectEvery
	}
	if every > 0 {
		r.loopWG.Add(1)
		go r.reconnectLoop(every)
	}
	return r, nil
}

// DialReplicated connects to a replicated TCP deployment: groups[p]
// lists the dsr-shard addresses serving partition p (any of them may be
// down, as long as each partition has at least one up). Handshake
// expectations follow Dial: wantVertices < 0 skips the vertex-count
// check, 0 skips either digest.
func DialReplicated(groups [][]string, wantVertices int, wantGraph, wantPart uint64, opts ReplicatedOptions) (*Replicated, error) {
	dialers := make([][]ReplicaDialer, len(groups))
	for p, addrs := range groups {
		dialers[p] = make([]ReplicaDialer, len(addrs))
		for i, addr := range addrs {
			dialers[p][i] = TCPReplicaDialer(p, addr, len(groups), wantVertices, wantGraph, wantPart)
		}
	}
	return NewReplicated(dialers, opts)
}

// NumShards returns the partition count.
func (r *Replicated) NumShards() int { return len(r.sets) }

// NumLive returns how many of partition p's replicas are currently
// connected — observability for tests and operators, not a correctness
// signal (a "live" replica may die on next use).
func (r *Replicated) NumLive(p int) int {
	rs := r.sets[p]
	rs.mu.Lock()
	defer rs.mu.Unlock()
	n := 0
	for _, rep := range rs.live {
		if rep != nil {
			n++
		}
	}
	return n
}

// Submit routes the batch to a healthy replica of partition p,
// retrying siblings on failure; the final Reply (success from whichever
// replica answered, or an all-replicas-failed error) is delivered on
// replyc. Each Submit runs in its own goroutine so the coordinator's
// fan-out never blocks on a slow or dying replica.
func (r *Replicated) Submit(p int, tasks []wire.Task, replyc chan<- Reply) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		replyc <- Reply{Shard: p, Err: ErrClosed}
		return
	}
	r.subWG.Add(1)
	r.mu.Unlock()
	go func() {
		defer r.subWG.Done()
		replyc <- r.sets[p].run(tasks)
	}()
}

// Close stops the reconnect loop, closes every live replica (failing
// any in-flight batch, whose Submit goroutine then delivers an error
// Reply), and waits for all transport-owned goroutines. Safe to call
// more than once.
func (r *Replicated) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	r.shutdown()
	return nil
}

func (r *Replicated) shutdown() {
	close(r.stopc)
	for _, rs := range r.sets {
		if rs != nil {
			rs.closeAll()
		}
	}
	r.loopWG.Wait()
	r.subWG.Wait()
}

func (r *Replicated) reconnectLoop(every time.Duration) {
	defer r.loopWG.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-r.stopc:
			return
		case <-t.C:
			for _, rs := range r.sets {
				rs.reconnect()
			}
		}
	}
}

// run executes one batch against the set, trying each replica at most
// once: healthy replicas first in round-robin order, then — only if no
// healthy replica remains — a last-resort redial of the dead ones. A
// replica that fails mid-batch is marked dead (and closed); the batch
// is retried on the next candidate, which is correct because local
// searches are idempotent reads. Only when every replica has failed
// does the caller get an error Reply, carrying each replica's failure.
func (rs *replicaSet) run(tasks []wire.Task) Reply {
	tried := make([]bool, len(rs.dialers))
	inner := make(chan Reply, 1)
	for {
		idx, rep := rs.pick(tried)
		if rep == nil {
			idx, rep = rs.redialDead(tried)
		}
		if rep == nil {
			return Reply{Shard: rs.part, Err: &ReplicaSetError{Part: rs.part, Replicas: rs.describeFailures()}}
		}
		tried[idx] = true
		rep.Submit(tasks, inner)
		reply := <-inner
		if reply.Err == nil {
			reply.Shard = rs.part
			return reply
		}
		rs.markDead(idx, rep, reply.Err)
	}
}

// pick returns the next untried healthy replica in round-robin order,
// or nil if none remains.
func (rs *replicaSet) pick(tried []bool) (int, Replica) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.closed {
		return -1, nil
	}
	n := len(rs.live)
	for i := 0; i < n; i++ {
		idx := (rs.rr + i) % n
		if !tried[idx] && rs.live[idx] != nil {
			rs.rr = idx + 1
			return idx, rs.live[idx]
		}
	}
	return -1, nil
}

// redialDead is the in-query last resort: with no healthy replica left
// the batch would fail anyway, so attempting a fresh dial of each
// untried dead endpoint is strictly better — it catches a replica that
// came back between reconnect ticks. Dials are serialized with the
// background loop so an endpoint is never dialed twice concurrently.
func (rs *replicaSet) redialDead(tried []bool) (int, Replica) {
	rs.dialMu.Lock()
	defer rs.dialMu.Unlock()
	for idx := range rs.dialers {
		if tried[idx] {
			continue
		}
		rs.mu.Lock()
		if rs.closed {
			rs.mu.Unlock()
			return -1, nil
		}
		if rep := rs.live[idx]; rep != nil {
			// Revived by the background loop while we waited for dialMu.
			rs.mu.Unlock()
			return idx, rep
		}
		rs.mu.Unlock()
		rep, err := rs.dialers[idx]()
		if err != nil {
			rs.mu.Lock()
			rs.lastErr[idx] = err
			rs.mu.Unlock()
			continue
		}
		if !rs.install(idx, rep) {
			return -1, nil // closed while dialing
		}
		return idx, rep
	}
	return -1, nil
}

// reconnect redials every currently-dead endpoint once.
func (rs *replicaSet) reconnect() {
	rs.dialMu.Lock()
	defer rs.dialMu.Unlock()
	for idx := range rs.dialers {
		rs.mu.Lock()
		dead := rs.live[idx] == nil && !rs.closed
		rs.mu.Unlock()
		if !dead {
			continue
		}
		rep, err := rs.dialers[idx]()
		if err != nil {
			rs.mu.Lock()
			rs.lastErr[idx] = err
			rs.mu.Unlock()
			continue
		}
		if !rs.install(idx, rep) {
			return
		}
	}
}

// install stores a freshly dialed replica, or closes it and reports
// false if the set was closed while the dial was in flight.
func (rs *replicaSet) install(idx int, rep Replica) bool {
	rs.mu.Lock()
	if rs.closed {
		rs.mu.Unlock()
		rep.Close()
		return false
	}
	rs.live[idx] = rep
	rs.lastErr[idx] = nil
	rs.mu.Unlock()
	return true
}

// markDead records why replica idx failed and closes it, unless a
// reconnect already replaced it with a fresh instance (then the fresh
// one is left alone and only the failed instance is closed).
func (rs *replicaSet) markDead(idx int, failed Replica, err error) {
	rs.mu.Lock()
	if rs.live[idx] == failed {
		rs.live[idx] = nil
		rs.lastErr[idx] = err
	}
	rs.mu.Unlock()
	failed.Close()
}

func (rs *replicaSet) closeAll() {
	rs.mu.Lock()
	rs.closed = true
	live := make([]Replica, len(rs.live))
	copy(live, rs.live)
	for i := range rs.live {
		rs.live[i] = nil
	}
	rs.mu.Unlock()
	for _, rep := range live {
		if rep != nil {
			rep.Close()
		}
	}
}

// describeFailures snapshots the per-replica failure detail.
func (rs *replicaSet) describeFailures() []ReplicaError {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make([]ReplicaError, len(rs.dialers))
	for i := range rs.dialers {
		out[i] = ReplicaError{Replica: i, Err: rs.lastErr[i]}
		if out[i].Err == nil {
			if rs.closed {
				out[i].Err = ErrClosed
			} else {
				out[i].Err = errors.New("failed during this batch")
			}
		}
	}
	return out
}

// ReplicaError is one replica's failure within a ReplicaSetError.
type ReplicaError struct {
	Replica int
	Err     error
}

// ReplicaSetError reports that every replica of a partition failed for
// one task batch — the only condition under which the replica-aware
// transport surfaces an error to the coordinator.
type ReplicaSetError struct {
	Part     int
	Replicas []ReplicaError
}

func (e *ReplicaSetError) Error() string {
	s := fmt.Sprintf("all %d replica(s) of partition %d failed:", len(e.Replicas), e.Part)
	for _, re := range e.Replicas {
		s += fmt.Sprintf(" [replica %d: %v]", re.Replica, re.Err)
	}
	return s
}
