package shard

import (
	"context"
	"errors"
	"fmt"
	"net"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dsr/internal/wire"
)

// flakyControl is the shared fault state for one test endpoint: every
// redial of the endpoint produces a fresh replica instance (as a real
// dialer would produce a fresh connection) that consults this control.
type flakyControl struct {
	failNext atomic.Int32 // submits to fail with an injected error
	submits  atomic.Int32 // total submits served across all instances
	dialDown atomic.Bool  // endpoint refuses redials while true
}

// dialer returns a ReplicaDialer for the endpoint. The shard may be
// shared across successive instances because at most one instance is
// live at a time (a failed instance is closed before a redial).
func (fc *flakyControl) dialer(sh *Shard) ReplicaDialer {
	return func(ctx context.Context) (Replica, error) {
		if fc.dialDown.Load() {
			return nil, errors.New("endpoint down")
		}
		return &flakyReplica{ctl: fc, inner: NewLocalReplica(sh)}, nil
	}
}

type flakyReplica struct {
	ctl   *flakyControl
	inner Replica
}

func (f *flakyReplica) Submit(h wire.BatchHeader, tasks []wire.Task, replyc chan<- Reply) {
	f.ctl.submits.Add(1)
	for {
		n := f.ctl.failNext.Load()
		if n <= 0 {
			break
		}
		if f.ctl.failNext.CompareAndSwap(n, n-1) {
			replyc <- Reply{Err: errors.New("flaky: injected failure")}
			return
		}
	}
	f.inner.Submit(h, tasks, replyc)
}

func (f *flakyReplica) Summary(ctx context.Context) (wire.Summary, error) {
	if f.ctl.dialDown.Load() {
		return wire.Summary{}, errors.New("flaky: endpoint down")
	}
	return f.inner.Summary(ctx)
}

func (f *flakyReplica) Hello() wire.Hello { return f.inner.Hello() }

func (f *flakyReplica) Close() error { return f.inner.Close() }

// localGroups builds R flaky-wrapped local replicas per partition of
// the chain fixture; each replica gets its own Shard instance, as the
// Replica contract requires.
func localGroups(t testing.TB, R int) ([][]ReplicaDialer, [][]*flakyControl) {
	t.Helper()
	ctls := make([][]*flakyControl, 3)
	groups := make([][]ReplicaDialer, 3)
	for p := 0; p < 3; p++ {
		ctls[p] = make([]*flakyControl, R)
		groups[p] = make([]ReplicaDialer, R)
		for r := 0; r < R; r++ {
			shards, _ := chainFixture(t)
			fc := &flakyControl{}
			ctls[p][r] = fc
			groups[p][r] = fc.dialer(shards[p])
		}
	}
	return groups, ctls
}

// submitOne runs one forward task through the transport and returns the
// reply.
func submitOne(t *testing.T, tr Transport, p int, seed int32) Reply {
	t.Helper()
	replyc := make(chan Reply, 1)
	tr.Submit(p, wire.BatchHeader{}, []wire.Task{{Kind: wire.Forward, Query: 1, Seeds: []int32{seed}}}, replyc)
	select {
	case rep := <-replyc:
		return rep
	case <-time.After(10 * time.Second):
		t.Fatal("no reply")
		return Reply{}
	}
}

// TestReplicatedFailsOverMidQuery: a batch whose chosen replica dies
// mid-query is retried on the sibling and still answered correctly.
func TestReplicatedFailsOverMidQuery(t *testing.T) {
	groups, flaky := localGroups(t, 2)
	tr, err := NewReplicated(t.Context(), groups, ReplicatedOptions{ReconnectEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	// Fail each replica's next submit alternately over several rounds:
	// every round must still produce the right answer via the sibling.
	for round := 0; round < 6; round++ {
		flaky[0][round%2].failNext.Store(1)
		rep := submitOne(t, tr, 0, 0)
		if rep.Err != nil {
			t.Fatalf("round %d: failover did not rescue the batch: %v", round, rep.Err)
		}
		if len(rep.Results) != 1 || !slices.Equal(rep.Results[0].Boundary, []uint32{1}) {
			t.Fatalf("round %d: wrong failover result: %+v", round, rep.Results)
		}
		if rep.Shard != 0 {
			t.Fatalf("round %d: reply names shard %d, want 0", round, rep.Shard)
		}
	}
}

// TestReplicatedAllReplicasFail: when every replica of a partition
// fails in one submit, the error reply details each replica's failure
// and other partitions keep answering.
func TestReplicatedAllReplicasFail(t *testing.T) {
	groups, flaky := localGroups(t, 3)
	tr, err := NewReplicated(t.Context(), groups, ReplicatedOptions{ReconnectEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	for _, fr := range flaky[1] {
		fr.failNext.Store(100)
	}
	rep := submitOne(t, tr, 1, 2)
	if rep.Err == nil {
		t.Fatal("all replicas failing did not error")
	}
	var rse *ReplicaSetError
	if !errors.As(rep.Err, &rse) {
		t.Fatalf("error is %T, want *ReplicaSetError: %v", rep.Err, rep.Err)
	}
	if rse.Part != 1 || len(rse.Replicas) != 3 {
		t.Fatalf("bad error shape: %+v", rse)
	}
	for _, re := range rse.Replicas {
		if re.Err == nil || !strings.Contains(re.Err.Error(), "injected failure") {
			t.Fatalf("replica %d detail missing: %v", re.Replica, re.Err)
		}
	}
	if rep := submitOne(t, tr, 0, 0); rep.Err != nil {
		t.Fatalf("healthy partition failed: %v", rep.Err)
	}
}

// TestReplicatedReconnects: a replica marked dead is revived by the
// background reconnect loop once its dialer succeeds again.
func TestReplicatedReconnects(t *testing.T) {
	shardsA, _ := chainFixture(t)
	shardsB, _ := chainFixture(t)
	ctlA, ctlB := &flakyControl{}, &flakyControl{}
	groups := [][]ReplicaDialer{{ctlA.dialer(shardsA[0]), ctlB.dialer(shardsB[0])}}
	tr, err := NewReplicated(t.Context(), groups, ReplicatedOptions{ReconnectEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if tr.NumShards() != 1 {
		t.Fatalf("NumShards = %d, want 1", tr.NumShards())
	}

	// Kill replica 0: its next submit fails, marking it dead, while the
	// dialer also refuses — NumLive must drop to 1.
	ctlA.dialDown.Store(true)
	ctlA.failNext.Store(1000)
	for tr.NumLive(0) == 2 {
		if rep := submitOne(t, tr, 0, 0); rep.Err != nil {
			t.Fatalf("submit during failover: %v", rep.Err)
		}
	}

	// Bring the endpoint back: the reconnect loop must restore it.
	ctlA.failNext.Store(0)
	ctlA.dialDown.Store(false)
	deadline := time.Now().Add(10 * time.Second)
	for tr.NumLive(0) != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("replica never reconnected: NumLive = %d", tr.NumLive(0))
		}
		time.Sleep(time.Millisecond)
	}
	if rep := submitOne(t, tr, 0, 0); rep.Err != nil {
		t.Fatalf("submit after reconnect: %v", rep.Err)
	}
}

// TestReplicatedRedialsWhenNoneLive: with background reconnection
// disabled and every replica dead, a submit performs a last-resort
// redial instead of failing a recoverable situation.
func TestReplicatedRedialsWhenNoneLive(t *testing.T) {
	shards, _ := chainFixture(t)
	ctl := &flakyControl{}
	groups := [][]ReplicaDialer{{ctl.dialer(shards[0])}}
	tr, err := NewReplicated(t.Context(), groups, ReplicatedOptions{ReconnectEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	// Kill it: the submit fails (marking it dead), and with the dialer
	// down too, further submits keep erroring — with dialer detail.
	ctl.dialDown.Store(true)
	ctl.failNext.Store(1)
	if rep := submitOne(t, tr, 0, 0); rep.Err == nil {
		t.Fatal("dead single replica did not error")
	}
	if rep := submitOne(t, tr, 0, 0); rep.Err == nil ||
		!strings.Contains(rep.Err.Error(), "endpoint down") {
		t.Fatalf("error lacks dialer detail: %v", rep.Err)
	}
	// Endpoint returns: the very next submit must redial and succeed.
	ctl.dialDown.Store(false)
	if rep := submitOne(t, tr, 0, 0); rep.Err != nil {
		t.Fatalf("submit after endpoint returned: %v", rep.Err)
	}
	if tr.NumLive(0) != 1 {
		t.Fatalf("NumLive = %d after redial, want 1", tr.NumLive(0))
	}
}

// TestReplicatedRoundRobin: successive submits rotate across healthy
// replicas so load spreads instead of hammering replica 0.
func TestReplicatedRoundRobin(t *testing.T) {
	groups, flaky := localGroups(t, 2)
	tr, err := NewReplicated(t.Context(), groups, ReplicatedOptions{ReconnectEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for i := 0; i < 8; i++ {
		if rep := submitOne(t, tr, 2, 4); rep.Err != nil {
			t.Fatal(rep.Err)
		}
	}
	a, b := flaky[2][0].submits.Load(), flaky[2][1].submits.Load()
	if a != 4 || b != 4 {
		t.Fatalf("submits not rotated: replica 0 served %d, replica 1 served %d", a, b)
	}
}

// TestReplicatedConstructionNeedsOneLivePerPartition: a partition with
// zero reachable replicas fails construction with per-replica detail;
// one live replica is enough even if siblings are down.
func TestReplicatedConstructionNeedsOneLivePerPartition(t *testing.T) {
	shards, _ := chainFixture(t)
	bad := func(ctx context.Context) (Replica, error) { return nil, errors.New("nobody home") }
	good := func(ctx context.Context) (Replica, error) { return NewLocalReplica(shards[0]), nil }

	if _, err := NewReplicated(t.Context(), [][]ReplicaDialer{{bad, bad}}, ReplicatedOptions{ReconnectEvery: -1}); err == nil ||
		!strings.Contains(err.Error(), "nobody home") {
		t.Fatalf("all-dead partition accepted: %v", err)
	}
	if _, err := NewReplicated(t.Context(), [][]ReplicaDialer{{}}, ReplicatedOptions{ReconnectEvery: -1}); err == nil {
		t.Fatal("empty replica group accepted")
	}
	if _, err := NewReplicated(t.Context(), nil, ReplicatedOptions{}); err == nil {
		t.Fatal("empty deployment accepted")
	}
	tr, err := NewReplicated(t.Context(), [][]ReplicaDialer{{bad, good}}, ReplicatedOptions{ReconnectEvery: -1})
	if err != nil {
		t.Fatalf("one-live partition refused: %v", err)
	}
	if tr.NumLive(0) != 1 {
		t.Fatalf("NumLive = %d, want 1", tr.NumLive(0))
	}
	tr.Close()
}

// TestReplicatedCloseSemantics: Close is idempotent, joins its
// goroutines, and later submits answer ErrClosed.
func TestReplicatedCloseSemantics(t *testing.T) {
	groups, _ := localGroups(t, 2)
	tr, err := NewReplicated(t.Context(), groups, ReplicatedOptions{ReconnectEvery: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if rep := submitOne(t, tr, 0, 0); rep.Err != nil {
		t.Fatal(rep.Err)
	}
	tr.Close()
	tr.Close()
	if rep := submitOne(t, tr, 0, 0); !errors.Is(rep.Err, ErrClosed) {
		t.Fatalf("submit after Close: %v, want ErrClosed", rep.Err)
	}
}

// TestReplicatedSummaryFailover: a replica that fails its summary fetch
// is marked dead and the sibling serves it — the connect-time analogue
// of mid-query failover.
func TestReplicatedSummaryFailover(t *testing.T) {
	groups, flaky := localGroups(t, 2)
	tr, err := NewReplicated(t.Context(), groups, ReplicatedOptions{ReconnectEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	// Take one replica of partition 1 down; whichever order the set
	// tries them, the fetch must succeed via the survivor.
	flaky[1][0].dialDown.Store(true)
	for round := 0; round < 4; round++ {
		info, err := tr.Summary(t.Context(), 1)
		if err != nil {
			t.Fatalf("round %d: summary failover failed: %v", round, err)
		}
		if !slices.Equal(info.Summary.Boundary, []uint32{2, 3}) {
			t.Fatalf("round %d: boundary %v, want [2 3]", round, info.Summary.Boundary)
		}
	}
	// Both replicas down: the summary fetch reports the full failure.
	flaky[1][1].dialDown.Store(true)
	tr.sets[1].closeAll()
	tr.sets[1].mu.Lock()
	tr.sets[1].closed = false // reopen the set with every replica dead
	tr.sets[1].mu.Unlock()
	if _, err := tr.Summary(t.Context(), 1); err == nil {
		t.Fatal("summary with no replica left succeeded")
	}
}

// serveOne boots a single shard server on an ephemeral port and returns
// its address, the server handle (for Shutdown), and a hard-stop func.
func serveOne(t testing.TB, sh *Shard, numShards, numVertices int) (string, *Server, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(sh, numShards, numVertices, testGraphSum, testPartSum)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.Serve(ln)
	}()
	var once sync.Once
	return ln.Addr().String(), srv, func() {
		once.Do(func() {
			srv.Close()
			wg.Wait()
		})
	}
}

// TestReplicatedTCPFailover runs the failover path against real TCP
// replica servers: two servers for one partition, one killed between
// batches, answers keep coming from the survivor.
func TestReplicatedTCPFailover(t *testing.T) {
	shardsA, _ := chainFixture(t)
	shardsB, _ := chainFixture(t)

	addrA, _, stopA := serveOne(t, shardsA[0], 1, 6)
	addrB, _, stopB := serveOne(t, shardsB[0], 1, 6)
	defer stopB()

	tr, err := DialReplicated(t.Context(), [][]string{{addrA, addrB}}, 6, testGraphSum, testPartSum,
		ReplicatedOptions{ReconnectEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	if rep := submitOne(t, tr, 0, 0); rep.Err != nil {
		t.Fatal(rep.Err)
	}
	stopA() // kill replica 0's server
	// Keep submitting until round-robin lands on the dead connection and
	// the transport notices (NumLive drops to 1). Every single reply must
	// stay correct throughout — mid-query failover rescues the batches
	// that hit the corpse.
	deadline := time.Now().Add(10 * time.Second)
	for tr.NumLive(0) != 1 {
		rep := submitOne(t, tr, 0, 0)
		if rep.Err != nil {
			t.Fatalf("reply errored despite a live sibling: %v", rep.Err)
		}
		if len(rep.Results) != 1 || !slices.Equal(rep.Results[0].Boundary, []uint32{1}) {
			t.Fatalf("wrong answer during failover: %+v", rep.Results)
		}
		if time.Now().After(deadline) {
			t.Fatal("dead replica never detected")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestParseGroups covers the replica address group syntax.
func TestParseGroups(t *testing.T) {
	groups, err := ParseGroups([]string{"a:1|b:1", " c:2 ", "d:3| e:3 |f:3"})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"a:1", "b:1"}, {"c:2"}, {"d:3", "e:3", "f:3"}}
	for p := range want {
		if !slices.Equal(groups[p], want[p]) {
			t.Fatalf("group %d = %v, want %v", p, groups[p], want[p])
		}
	}
	for _, bad := range []string{"", "a||b", "|a", "a|"} {
		if _, err := ParseGroups([]string{bad}); err == nil {
			t.Errorf("ParseGroups(%q) accepted", bad)
		}
	}
}

// TestServerShutdownDrains: Shutdown closes idle connections, refuses
// new ones, and every batch racing the drain either gets a complete,
// correct response or a clean connection error — never a hang or a
// corrupt frame.
func TestServerShutdownDrains(t *testing.T) {
	shards, _ := chainFixture(t)
	addr, srv, stop := serveOne(t, shards[0], 3, 6)
	defer stop()

	// An idle connection: handshake done, no request in flight.
	idle, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	idle.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := wire.ReadFrame(idle, nil); err != nil {
		t.Fatal(err)
	}

	// A storm of one-request connections racing the drain.
	const N = 8
	results := make(chan error, N)
	start := make(chan struct{})
	for i := 0; i < N; i++ {
		go func() {
			c, err := net.Dial("tcp", addr)
			if err != nil {
				results <- nil // refused outright: fine under drain
				return
			}
			defer c.Close()
			c.SetDeadline(time.Now().Add(10 * time.Second))
			if _, err := wire.ReadFrame(c, nil); err != nil {
				results <- nil
				return
			}
			<-start
			req := wire.AppendTasks(nil, wire.BatchHeader{}, []wire.Task{{Kind: wire.Forward, Seeds: []int32{0}}})
			if err := wire.WriteFrame(c, req); err != nil {
				results <- nil
				return
			}
			p, err := wire.ReadFrame(c, nil)
			if err != nil {
				results <- nil // dropped before the batch began executing: fine
				return
			}
			_, res, _, err := wire.DecodeResults(p, nil, nil)
			if err != nil {
				results <- fmt.Errorf("corrupt response during drain: %v", err)
				return
			}
			if len(res) != 1 || !slices.Equal(res[0].Boundary, []uint32{1}) {
				results <- fmt.Errorf("wrong response during drain: %+v", res)
				return
			}
			results <- nil
		}()
	}
	close(start)
	srv.Shutdown()
	for i := 0; i < N; i++ {
		if err := <-results; err != nil {
			t.Fatal(err)
		}
	}

	// The idle connection must have been closed by the drain...
	idle.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := wire.ReadFrame(idle, nil); err == nil {
		t.Fatal("idle connection survived Shutdown")
	}
	// ...new connections are refused or immediately closed...
	if c, err := net.Dial("tcp", addr); err == nil {
		c.SetDeadline(time.Now().Add(5 * time.Second))
		if _, err := wire.ReadFrame(c, nil); err == nil {
			t.Fatal("new connection served after Shutdown")
		}
		c.Close()
	}
	// ...and Shutdown stays idempotent alongside Close.
	srv.Shutdown()
}
