package shard

import (
	"net"
	"slices"
	"strings"
	"sync"
	"testing"
	"time"

	"dsr/internal/wire"
)

// testGraphSum and testPartSum stand in for graph.Fingerprint and
// Partitioning.Digest in transport-level tests, which never load a
// real graph.
const (
	testGraphSum = 0xFEEDC0DE
	testPartSum  = 0xBADC0FFEE
)

// serveShards boots one TCP server per shard on an ephemeral localhost
// port and returns their addresses plus a stop function that shuts
// everything down and waits.
func serveShards(t testing.TB, shards []*Shard, numVertices int) ([]string, func()) {
	t.Helper()
	addrs := make([]string, len(shards))
	servers := make([]*Server, len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		srv := NewServer(sh, len(shards), numVertices, testGraphSum, testPartSum)
		servers[i] = srv
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := srv.Serve(ln); err != nil {
				t.Errorf("shard server: %v", err)
			}
		}()
	}
	return addrs, func() {
		for _, srv := range servers {
			srv.Close()
		}
		wg.Wait()
	}
}

func TestTCPTransportMatchesLoopback(t *testing.T) {
	shards, _ := chainFixture(t)
	addrs, stop := serveShards(t, shards, 6)
	defer stop()

	cl, err := Dial(t.Context(), addrs, 6, testGraphSum, testPartSum)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.NumShards() != 3 {
		t.Fatalf("NumShards = %d, want 3", cl.NumShards())
	}

	replyc := make(chan Reply, 3)
	cl.Submit(0, wire.BatchHeader{}, []wire.Task{{Kind: wire.Forward, Query: 4, Seeds: []int32{0}}}, replyc)
	rep := <-replyc
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if rep.Shard != 0 || len(rep.Results) != 1 || rep.Results[0].Query != 4 {
		t.Fatalf("bad reply: %+v", rep)
	}
	if !slices.Equal(rep.Results[0].Boundary, []uint32{1}) {
		t.Fatalf("boundary = %v, want [1]", rep.Results[0].Boundary)
	}

	// Several sequential batches on the same connection reuse buffers.
	for round := 0; round < 5; round++ {
		cl.Submit(2, wire.BatchHeader{}, []wire.Task{{Kind: wire.Backward, Query: uint32(round), Seeds: []int32{5}}}, replyc)
		rep := <-replyc
		if rep.Err != nil {
			t.Fatal(rep.Err)
		}
		if rep.Results[0].Query != uint32(round) || !slices.Equal(rep.Results[0].Boundary, []uint32{4}) {
			t.Fatalf("round %d: %+v", round, rep.Results[0])
		}
	}
}

func TestTCPDialRejectsMismatch(t *testing.T) {
	shards, _ := chainFixture(t)
	addrs, stop := serveShards(t, shards, 6)
	defer stop()

	// Wrong vertex count: the coordinator's graph differs.
	if _, err := Dial(t.Context(), addrs, 7, testGraphSum, testPartSum); err == nil || !strings.Contains(err.Error(), "vertices") {
		t.Fatalf("vertex mismatch not rejected: %v", err)
	}
	// Shards wired in the wrong order: identity check must catch it.
	swapped := []string{addrs[1], addrs[0], addrs[2]}
	if _, err := Dial(t.Context(), swapped, 6, testGraphSum, testPartSum); err == nil || !strings.Contains(err.Error(), "identifies as") {
		t.Fatalf("shard order mismatch not rejected: %v", err)
	}
	// Wrong shard count: dial only a prefix.
	if _, err := Dial(t.Context(), addrs[:2], 6, testGraphSum, testPartSum); err == nil || !strings.Contains(err.Error(), "shards") {
		t.Fatalf("shard count mismatch not rejected: %v", err)
	}
	// Same shape, different edge set: the graph fingerprint catches what
	// the vertex count cannot.
	if _, err := Dial(t.Context(), addrs, 6, testGraphSum+1, testPartSum); err == nil || !strings.Contains(err.Error(), "different graph") {
		t.Fatalf("graph fingerprint mismatch not rejected: %v", err)
	}
	// Same graph, different partitioning (e.g. hash vs locality, or two
	// locality seeds): the partitioning digest catches what the graph
	// fingerprint cannot.
	if _, err := Dial(t.Context(), addrs, 6, testGraphSum, testPartSum+1); err == nil || !strings.Contains(err.Error(), "different partitioning") {
		t.Fatalf("partitioning digest mismatch not rejected: %v", err)
	}
	// Either side opting out (fingerprint/digest 0) skips the checks.
	if cl, err := Dial(t.Context(), addrs, 6, 0, 0); err != nil {
		t.Fatalf("fingerprint opt-out rejected: %v", err)
	} else {
		cl.Close()
	}
}

func TestTCPServerRejectsGarbage(t *testing.T) {
	shards, _ := chainFixture(t)
	addrs, stop := serveShards(t, shards[:1], 6)
	defer stop()

	c, err := net.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := wire.ReadFrame(c, nil); err != nil { // hello
		t.Fatal(err)
	}
	// A hello frame where tasks belong: the server must answer MsgError
	// and drop the connection, not crash.
	if err := wire.WriteFrame(c, wire.AppendHello(nil, wire.Hello{})); err != nil {
		t.Fatal(err)
	}
	p, err := wire.ReadFrame(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ty, _ := wire.MsgType(p); ty != wire.MsgError {
		t.Fatalf("got message %#02x, want MsgError", ty)
	}
	if _, err := wire.ReadFrame(c, nil); err == nil {
		t.Fatal("connection still open after protocol error")
	}
}

// TestTCPServerSkipsUnownedSeeds pins the broadcast contract over TCP:
// a batch whose seeds all live elsewhere is answered (not rejected)
// with Owned 0 and an empty search, and the connection stays usable.
func TestTCPServerSkipsUnownedSeeds(t *testing.T) {
	shards, _ := chainFixture(t)
	addrs, stop := serveShards(t, shards, 6)
	defer stop()

	cl, err := Dial(t.Context(), addrs, 6, testGraphSum, testPartSum)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	replyc := make(chan Reply, 1)
	cl.Submit(0, wire.BatchHeader{}, []wire.Task{{Kind: wire.Forward, Query: 0, Seeds: []int32{5, 999}}}, replyc)
	rep := <-replyc
	if rep.Err != nil {
		t.Fatalf("unowned seeds rejected: %v", rep.Err)
	}
	if r := rep.Results[0]; r.Owned != 0 || r.Hit || len(r.Boundary) != 0 {
		t.Fatalf("unowned batch produced %+v", r)
	}
	// The same connection still answers an owned batch afterward.
	cl.Submit(0, wire.BatchHeader{}, []wire.Task{{Kind: wire.Forward, Query: 1, Seeds: []int32{0}}}, replyc)
	rep = <-replyc
	if rep.Err != nil || rep.Results[0].Owned != 1 {
		t.Fatalf("owned batch after unowned one: %+v / %v", rep.Results, rep.Err)
	}
}

// TestTCPSummaryFetch: the client fetches each shard's boundary summary
// over the wire, the SummaryInfo carries the dial-time hello, and the
// connection keeps serving task batches interleaved with summaries.
func TestTCPSummaryFetch(t *testing.T) {
	shards, _ := chainFixture(t)
	addrs, stop := serveShards(t, shards, 6)
	defer stop()

	cl, err := Dial(t.Context(), addrs, 6, testGraphSum, testPartSum)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for p := 0; p < 3; p++ {
		info, err := cl.Summary(t.Context(), p)
		if err != nil {
			t.Fatalf("shard %d: %v", p, err)
		}
		if info.Hello.ShardID != uint32(p) || info.Hello.NumShards != 3 ||
			info.Hello.NumVertices != 6 || info.Hello.Graph != testGraphSum ||
			info.Hello.Partitioning != testPartSum {
			t.Fatalf("shard %d: hello %+v", p, info.Hello)
		}
		want := shards[p].Summary()
		if !slices.Equal(info.Summary.Boundary, want.Boundary) ||
			!slices.Equal(info.Summary.Edges, want.Edges) ||
			!slices.Equal(info.Summary.Cross, want.Cross) {
			t.Fatalf("shard %d: summary %+v, want %+v", p, info.Summary, want)
		}
	}

	// Interleave: batch, summary, batch on the same connection.
	replyc := make(chan Reply, 1)
	cl.Submit(1, wire.BatchHeader{}, []wire.Task{{Kind: wire.Forward, Query: 0, Seeds: []int32{2}}}, replyc)
	if rep := <-replyc; rep.Err != nil || !slices.Equal(rep.Results[0].Boundary, []uint32{3}) {
		t.Fatalf("batch before summary: %+v / %v", rep.Results, rep.Err)
	}
	if _, err := cl.Summary(t.Context(), 1); err != nil {
		t.Fatal(err)
	}
	cl.Submit(1, wire.BatchHeader{}, []wire.Task{{Kind: wire.Backward, Query: 1, Seeds: []int32{3}}}, replyc)
	if rep := <-replyc; rep.Err != nil || !slices.Equal(rep.Results[0].Boundary, []uint32{2}) {
		t.Fatalf("batch after summary: %+v / %v", rep.Results, rep.Err)
	}
}

func TestTCPClientSubmitAfterServerGone(t *testing.T) {
	shards, _ := chainFixture(t)
	addrs, stop := serveShards(t, shards, 6)

	cl, err := Dial(t.Context(), addrs, 6, testGraphSum, testPartSum)
	if err != nil {
		stop()
		t.Fatal(err)
	}
	defer cl.Close()
	stop() // all servers down

	replyc := make(chan Reply, 1)
	deadline := time.After(10 * time.Second)
	// The write may succeed into the OS buffer before the reset is
	// observed, but the reply must eventually carry an error, and once
	// broken every further Submit fails fast.
	for {
		cl.Submit(0, wire.BatchHeader{}, []wire.Task{{Kind: wire.Forward, Query: 0, Seeds: []int32{0}}}, replyc)
		select {
		case rep := <-replyc:
			if rep.Err != nil {
				return // broken connection surfaced as an error reply
			}
		case <-deadline:
			t.Fatal("no error reply after server shutdown")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTCPClientUnsolicitedFrame covers a protocol-violating server
// that answers one request with two response frames: the client must
// surface a clean error on the connection — and must not decode the
// extra frame into the buffers backing the first (already delivered)
// reply, which the caller may still be reading.
func TestTCPClientUnsolicitedFrame(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		wire.WriteFrame(c, wire.AppendHello(nil, wire.Hello{ShardID: 0, NumShards: 1, NumVertices: 6}))
		if _, err := wire.ReadFrame(c, nil); err != nil { // the request
			return
		}
		good := wire.AppendResults(nil, 0, false, []wire.Result{{Kind: wire.Forward, Query: 0, Boundary: []uint32{1, 2}}})
		evil := wire.AppendResults(nil, 0, false, []wire.Result{{Kind: wire.Forward, Query: 9, Boundary: []uint32{7, 7, 7}}})
		wire.WriteFrame(c, good)
		wire.WriteFrame(c, evil) // unsolicited
		time.Sleep(2 * time.Second)
	}()
	cl, err := Dial(t.Context(), []string{ln.Addr().String()}, 6, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	replyc := make(chan Reply, 1)
	cl.Submit(0, wire.BatchHeader{}, []wire.Task{{Kind: wire.Forward, Query: 0, Seeds: []int32{0}}}, replyc)
	rep := <-replyc
	if rep.Err != nil {
		t.Fatalf("legitimate reply failed: %v", rep.Err)
	}
	// The delivered boundary set must stay intact while the reader
	// handles (and rejects) the unsolicited frame.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if !slices.Equal(rep.Results[0].Boundary, []uint32{1, 2}) {
			t.Fatalf("delivered reply mutated by unsolicited frame: %v", rep.Results[0].Boundary)
		}
		cl.conns[0].mu.Lock()
		broken := cl.conns[0].broken
		cl.conns[0].mu.Unlock()
		if broken != nil {
			if !strings.Contains(broken.Error(), "unsolicited") {
				t.Fatalf("connection broken with %v, want unsolicited-frame error", broken)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("unsolicited frame never surfaced as an error")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestTCPDialUnreachable(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if _, err := Dial(t.Context(), []string{addr}, -1, 0, 0); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestTCPClientCloseFailsPending(t *testing.T) {
	// A server that handshakes but never answers: Close must deliver
	// error replies to pending submits rather than leaking them.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		wire.WriteFrame(c, wire.AppendHello(nil, wire.Hello{ShardID: 0, NumShards: 1, NumVertices: 6}))
		time.Sleep(5 * time.Second) // never answer
	}()
	cl, err := Dial(t.Context(), []string{ln.Addr().String()}, 6, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	replyc := make(chan Reply, 1)
	cl.Submit(0, wire.BatchHeader{}, []wire.Task{{Kind: wire.Forward, Query: 0, Seeds: []int32{0}}}, replyc)
	done := make(chan struct{})
	go func() {
		cl.Close()
		close(done)
	}()
	select {
	case rep := <-replyc:
		if rep.Err == nil {
			t.Fatal("pending submit resolved without error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending submit never resolved")
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return")
	}
}
