package shard

import (
	"context"
	"errors"
	"sync"
	"time"

	"dsr/internal/wire"
)

// SummaryInfo pairs one partition's boundary summary with the hello
// identity of the endpoint that served it, so a graph-free coordinator
// can cross-check the fleet's vertex counts, graph fingerprints, and
// partitioning digests against each other while stitching. In-process
// transports leave Hello's NumVertices/Graph/Partitioning zero ("not
// computed"), which every consumer treats as opting out of the check.
type SummaryInfo struct {
	Hello   wire.Hello
	Summary wire.Summary
}

// EndpointInfo describes one endpoint a transport talks to: which
// partition and replica slot it serves, its dialed address, the metrics
// (ops-endpoint) address it announced in its hello — empty when the
// server runs without -metrics-addr — and whether it is currently live.
// Transports that know their endpoints (Client, Replicated) expose an
// Endpoints() method returning one entry per (partition, replica); the
// fleet aggregator uses it to find every shard registry worth scraping.
type EndpointInfo struct {
	Partition   int
	Replica     int
	Addr        string
	MetricsAddr string
	Live        bool
}

// Reply delivers one shard's results for a submitted batch. On a
// transport failure Err is set and Results is nil. Batch echoes the
// submitted header's batch ID (0 when the serving endpoint predates
// batch IDs), and when the header requested tracing, Timing carries the
// server's self-measured breakdown with HasTiming set — in-process
// transports synthesize it (search time only), TCP servers measure all
// four phases.
type Reply struct {
	Shard     int
	Results   []wire.Result
	Err       error
	Batch     uint64
	HasTiming bool
	Timing    wire.ServerTiming
}

// Transport carries task batches from a coordinator to shards. Submit
// is asynchronous: exactly one Reply per call is delivered on replyc,
// with Results in task order. The Results (and their Boundary slices)
// alias transport-owned buffers and are valid only until the next
// Submit to the same shard — the coordinator must fully consume a
// round's replies before starting the next round, which the DSR engine
// guarantees by serializing rounds under its query lock.
//
// Close shuts the transport down deterministically: when it returns, no
// transport-owned goroutine is still running. Submit after Close
// panics.
// Both implementations also expose NumShards(), but the coordinator
// already knows its partition count, so the interface stays minimal.
type Transport interface {
	// Submit ships the batch to shard p under the given batch header.
	// tasks must be non-empty and remain untouched until the Reply
	// arrives.
	Submit(p int, h wire.BatchHeader, tasks []wire.Task, replyc chan<- Reply)
	// Summary fetches shard p's boundary summary plus the identity of
	// the endpoint serving it. The returned slices follow the same arena
	// contract as Results: they alias transport-owned buffers valid
	// until the next Summary or Submit to the same shard, so the
	// coordinator copies what it keeps. ctx bounds the fetch.
	Summary(ctx context.Context, p int) (SummaryInfo, error)
	// Close releases connections and stops goroutines, waiting for them.
	Close() error
}

// ErrClosed is reported by transports used after Close.
var ErrClosed = errors.New("shard: transport closed")

// Loopback is the in-process Transport: one goroutine per shard serving
// batches from a channel — the original DSR channel fan-out/fan-in,
// now behind the same interface as the TCP client. The fast path stays
// allocation-free: a Submit is one channel send of a request struct,
// and every buffer involved is owned by the Shard and reused.
type Loopback struct {
	shards []*Shard
	reqs   []chan loopReq
	wg     sync.WaitGroup
	once   sync.Once
}

type loopReq struct {
	hdr    wire.BatchHeader
	tasks  []wire.Task
	replyc chan<- Reply
}

// serveLocal runs one batch on sh and builds its Reply, synthesizing
// the server-timing breakdown (search time only — there is no decode,
// queue, or encode in process) when the header asks for tracing. Shared
// by Loopback goroutines and localReplica so both transports feed the
// engine's net-vs-server split. The timing branch is allocation-free:
// the Reply is built by value.
func serveLocal(sh *Shard, hdr wire.BatchHeader, tasks []wire.Task) Reply {
	rep := Reply{Shard: sh.ID(), Batch: hdr.Batch}
	if hdr.Trace {
		start := time.Now()
		rep.Results = sh.Run(tasks)
		rep.Timing.Search = uint64(time.Since(start))
		rep.HasTiming = true
		return rep
	}
	rep.Results = sh.Run(tasks)
	return rep
}

// NewLoopback starts one serving goroutine per shard and returns the
// transport. Close stops and joins all of them.
func NewLoopback(shards []*Shard) *Loopback {
	lb := &Loopback{
		shards: shards,
		reqs:   make([]chan loopReq, len(shards)),
	}
	for i := range shards {
		// Capacity 1: the engine submits at most one batch per shard per
		// round, so sends never block on a busy shard goroutine.
		lb.reqs[i] = make(chan loopReq, 1)
		lb.wg.Add(1)
		go func(sh *Shard, reqs <-chan loopReq) {
			defer lb.wg.Done()
			for req := range reqs {
				req.replyc <- serveLocal(sh, req.hdr, req.tasks)
			}
		}(shards[i], lb.reqs[i])
	}
	return lb
}

// NumShards returns the shard count.
func (lb *Loopback) NumShards() int { return len(lb.shards) }

// Submit sends the batch to shard p's goroutine.
func (lb *Loopback) Submit(p int, h wire.BatchHeader, tasks []wire.Task, replyc chan<- Reply) {
	lb.reqs[p] <- loopReq{hdr: h, tasks: tasks, replyc: replyc}
}

// Summary returns shard p's boundary summary directly — no goroutine
// hop needed, the Shard caches it and concurrent reads are safe. The
// Hello carries only the shard's position (NumVertices and the
// fingerprints stay zero: in-process, the coordinator built the shards
// itself and has nothing to cross-check).
func (lb *Loopback) Summary(ctx context.Context, p int) (SummaryInfo, error) {
	if err := ctx.Err(); err != nil {
		return SummaryInfo{}, err
	}
	return SummaryInfo{
		Hello:   wire.Hello{ShardID: uint32(p), NumShards: uint32(len(lb.shards))},
		Summary: lb.shards[p].Summary(),
	}, nil
}

// Close stops every shard goroutine and waits until all have exited, so
// callers observe no goroutine leak after it returns. Safe to call more
// than once.
func (lb *Loopback) Close() error {
	lb.once.Do(func() {
		for _, ch := range lb.reqs {
			close(ch)
		}
		lb.wg.Wait()
	})
	return nil
}
