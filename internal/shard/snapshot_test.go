package shard

import (
	"math/rand"
	"reflect"
	"testing"

	"dsr/internal/graph"
	"dsr/internal/partition"
	"dsr/internal/snapshot"
	"dsr/internal/wire"
)

// TestShardSnapshotRoundTrip: a shard reconstituted from its own
// snapshot is behaviorally identical to the freshly built one — same
// wire summary (byte for byte) and same Run results on a randomized
// task stream.
func TestShardSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	const n, k = 150, 3
	b := graph.NewBuilder(n)
	for i := 0; i < 2*n; i++ {
		b.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)))
	}
	g := b.Build()
	pt, err := graph.HashPartition(g, k)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < k; id++ {
		fresh := New(id, partition.ExtractOne(g, pt, id))
		sn := fresh.Snapshot(k, n, g.Fingerprint(), pt.Digest())
		buf, err := snapshot.Encode(sn)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := snapshot.Decode(buf)
		if err != nil {
			t.Fatal(err)
		}
		restored := FromSnapshot(dec)

		if restored.ID() != fresh.ID() || restored.NumVertices() != fresh.NumVertices() {
			t.Fatalf("shard %d: identity changed: %d/%d -> %d/%d",
				id, fresh.ID(), fresh.NumVertices(), restored.ID(), restored.NumVertices())
		}
		// The preset summary must match what a fresh build would emit —
		// on the wire, not just semantically.
		a := wire.AppendSummary(nil, fresh.Summary())
		bb := wire.AppendSummary(nil, restored.Summary())
		if !reflect.DeepEqual(a, bb) {
			t.Fatalf("shard %d: encoded summary differs after snapshot round trip", id)
		}

		for q := 0; q < 40; q++ {
			task := wire.Task{
				Kind:  wire.Forward,
				Query: uint32(q),
				Seeds: []int32{int32(rng.Intn(n)), int32(rng.Intn(n))},
			}
			if q%2 == 1 {
				task.Kind = wire.Backward
			}
			if q%3 == 0 {
				task.Targets = []int32{int32(rng.Intn(n))}
			}
			ra := fresh.Run([]wire.Task{task})
			rb := restored.Run([]wire.Task{task})
			if !reflect.DeepEqual(ra, rb) {
				t.Fatalf("shard %d task %d: Run differs:\nfresh:    %+v\nrestored: %+v", id, q, ra, rb)
			}
		}
	}
}

// TestPresetSummaryWinsOnce: a preset summary suppresses the built one,
// and presetting after Summary has run is a no-op.
func TestPresetSummaryWinsOnce(t *testing.T) {
	shards, _ := chainFixture(t)

	canned := wire.Summary{Boundary: []uint32{42}}
	shards[0].PresetSummary(canned)
	if got := shards[0].Summary(); !reflect.DeepEqual(got, canned) {
		t.Fatalf("Summary = %+v, want the preset one", got)
	}

	built := shards[1].Summary()
	shards[1].PresetSummary(canned)
	if got := shards[1].Summary(); !reflect.DeepEqual(got, built) {
		t.Fatal("PresetSummary after Summary must not replace the built summary")
	}
}
