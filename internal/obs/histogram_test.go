package obs

import (
	"math/rand"
	"slices"
	"sync"
	"testing"
)

// exactQuantile mirrors the histogram's rank rule on the raw samples:
// the order statistic at rank floor(q*n), clamped to the last sample.
func exactQuantile(sorted []int64, q float64) int64 {
	rank := int(q * float64(len(sorted)))
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// checkQuantiles observes samples and asserts that every estimated
// quantile lands within one log bucket of the exact order statistic —
// the histogram's accuracy contract.
func checkQuantiles(t *testing.T, name string, samples []int64) {
	t.Helper()
	h := &Histogram{}
	for _, v := range samples {
		h.Observe(v)
	}
	sorted := slices.Clone(samples)
	slices.Sort(sorted)
	for _, q := range []float64{0, 0.25, 0.50, 0.90, 0.99, 0.999, 1} {
		exact := exactQuantile(sorted, q)
		est := h.Quantile(q)
		be, bx := bucketOf(est), bucketOf(uint64(exact))
		if d := be - bx; d < -1 || d > 1 {
			t.Errorf("%s: q=%v: estimate %d (bucket %d) vs exact %d (bucket %d): off by %d buckets",
				name, q, est, be, exact, bx, d)
		}
	}
	if got := h.Count(); got != uint64(len(samples)) {
		t.Errorf("%s: count = %d, want %d", name, got, len(samples))
	}
	snap := h.Snapshot()
	if snap.Max != uint64(sorted[len(sorted)-1]) {
		t.Errorf("%s: max = %d, want %d", name, snap.Max, sorted[len(sorted)-1])
	}
}

func TestHistogramQuantileBucketsUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples := make([]int64, 50_000)
	for i := range samples {
		samples[i] = rng.Int63n(10_000_000) // 0..10ms in ns
	}
	checkQuantiles(t, "uniform", samples)
}

func TestHistogramQuantileBucketsZipf(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	z := rand.NewZipf(rng, 1.2, 1, 1<<40)
	samples := make([]int64, 50_000)
	for i := range samples {
		samples[i] = int64(z.Uint64())
	}
	checkQuantiles(t, "zipf", samples)
}

func TestHistogramQuantileBucketsPointMass(t *testing.T) {
	samples := make([]int64, 10_000)
	for i := range samples {
		samples[i] = 123_456
	}
	checkQuantiles(t, "point-mass", samples)
	// A point mass must report the same bucket at every quantile.
	h := &Histogram{}
	for _, v := range samples {
		h.Observe(v)
	}
	if p50, p999 := h.Quantile(0.5), h.Quantile(0.999); p50 != p999 {
		t.Errorf("point mass: p50 %d != p999 %d", p50, p999)
	}
}

func TestHistogramSmallValuesExact(t *testing.T) {
	// Buckets 0..15 are exact: a histogram of small values is lossless.
	h := &Histogram{}
	for v := int64(0); v < 16; v++ {
		h.Observe(v)
	}
	for _, tc := range []struct {
		q    float64
		want uint64
	}{{0, 0}, {0.5, 8}, {1, 15}} {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %d, want %d", tc.q, got, tc.want)
		}
	}
}

func TestHistogramNegativeClampsToZero(t *testing.T) {
	h := &Histogram{}
	h.Observe(-5)
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("negative sample landed at %d, want bucket 0", got)
	}
}

func TestHistogramBucketRoundTrip(t *testing.T) {
	// bucketHigh(i) must be the largest value mapping to bucket i, and
	// bucketHigh(i)+1 must map to bucket i+1 — no gaps, no overlaps.
	for i := 0; i < numBuckets-1; i++ {
		hi := bucketHigh(i)
		if got := bucketOf(hi); got != i {
			t.Fatalf("bucketOf(bucketHigh(%d)=%d) = %d", i, hi, got)
		}
		if got := bucketOf(hi + 1); got != i+1 {
			t.Fatalf("bucketOf(%d) = %d, want %d", hi+1, got, i+1)
		}
	}
	if got := bucketOf(^uint64(0)); got != numBuckets-1 {
		t.Fatalf("bucketOf(max) = %d, want %d", got, numBuckets-1)
	}
}

// TestHistogramConcurrentWriters hammers one histogram from many
// goroutines while snapshots run, for the race detector; afterwards
// the counts must add up exactly.
func TestHistogramConcurrentWriters(t *testing.T) {
	h := &Histogram{}
	const writers, perWriter = 8, 20_000
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() { // concurrent reader: snapshots must never tear or panic
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = h.Snapshot()
				_ = h.Quantile(0.99)
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWriter; i++ {
				h.Observe(rng.Int63n(1 << 30))
			}
		}(int64(w))
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := h.Count(); got != writers*perWriter {
		t.Fatalf("count = %d, want %d", got, writers*perWriter)
	}
	var sum uint64
	for i := range h.buckets {
		sum += h.buckets[i].Load()
	}
	if sum != writers*perWriter {
		t.Fatalf("bucket sum = %d, want %d", sum, writers*perWriter)
	}
}

func TestHistogramNil(t *testing.T) {
	var h *Histogram
	h.Observe(5) // must not panic
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram must read zero")
	}
	if snap := h.Snapshot(); snap.Count != 0 {
		t.Fatal("nil histogram snapshot must be zero")
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := &Histogram{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) * 37)
	}
}
