// Package obs is the DSR telemetry subsystem: dependency-free
// counters, gauges, log-bucketed latency histograms with quantile
// estimation, a registry that snapshots everything to JSON, a small
// leveled logger with structured key=value fields, per-query trace
// scratch, and an ops HTTP endpoint serving the registry snapshot plus
// net/http/pprof.
//
// The design constraint is the hot path: every instrument is a fixed
// set of atomic words, Observe/Inc/Add never allocate, and every type
// is nil-safe — a nil *Counter, *Gauge, *Histogram, *Registry, or
// *Logger turns the corresponding operation into a no-op branch. Code
// therefore instruments unconditionally and callers opt in by passing
// a real Registry; with none, the cost is a nil check per event and
// the Loopback query path stays 0 allocs/op either way (locked by
// TestQueryZeroAlloc and the BenchmarkQueryWithMetrics bench-gate
// entry, which run with metrics enabled).
package obs

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one. No-op on a nil counter.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. No-op on a nil counter.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value; 0 on a nil counter.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (e.g. live replica count).
type Gauge struct {
	v atomic.Int64
}

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds d (negative to decrement). No-op on a nil gauge.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Load returns the current value; 0 on a nil gauge.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Name renders a metric name with labels in the registry's canonical
// form: base{k1=v1,k2=v2}. Pairs are emitted in argument order, so
// callers keep label order stable per metric. This runs at instrument
// construction time, never on the hot path.
func Name(base string, kv ...any) string {
	if len(kv) == 0 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%v=%v", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}
