package obs

import (
	"bytes"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestLoggerFieldsAndLevels(t *testing.T) {
	var buf bytes.Buffer
	base := NewLogger(&buf, LevelInfo)
	l := base.With("component", "dsr-shard", "partition", 2).With("replica", 1)

	l.Debugf("below the floor")
	l.Infof("serving on %s", "127.0.0.1:7000")
	l.Warnf("slow")
	l.Errorf("bad: %d", 7)

	out := buf.String()
	if strings.Contains(out, "below the floor") {
		t.Error("debug line emitted at info level")
	}
	for _, want := range []string{
		"INFO component=dsr-shard partition=2 replica=1: serving on 127.0.0.1:7000",
		"WARN component=dsr-shard partition=2 replica=1: slow",
		"ERROR component=dsr-shard partition=2 replica=1: bad: 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Every line is timestamped in the documented shape.
	lineRe := regexp.MustCompile(`^\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z (INFO|WARN|ERROR) `)
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !lineRe.MatchString(line) {
			t.Errorf("malformed line %q", line)
		}
	}
}

func TestLoggerEnabled(t *testing.T) {
	l := NewLogger(&bytes.Buffer{}, LevelWarn)
	if l.Enabled(LevelInfo) || !l.Enabled(LevelWarn) || !l.Enabled(LevelError) {
		t.Fatal("Enabled disagrees with the level floor")
	}
	var nilL *Logger
	if nilL.Enabled(LevelError) {
		t.Fatal("nil logger must report disabled")
	}
}

func TestLoggerNil(t *testing.T) {
	var l *Logger
	l.Infof("into the void")      // must not panic
	l.With("k", "v").Errorf("no") // nil child of nil
}

func TestParseLevel(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Level
	}{{"debug", LevelDebug}, {"INFO", LevelInfo}, {"Warn", LevelWarn}, {"warning", LevelWarn}, {"error", LevelError}} {
		got, err := ParseLevel(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel must reject unknown levels")
	}
}

func TestLevelString(t *testing.T) {
	for lv, want := range map[Level]string{LevelDebug: "DEBUG", LevelInfo: "INFO", LevelWarn: "WARN", LevelError: "ERROR", Level(9): "LEVEL(9)"} {
		if got := lv.String(); got != want {
			t.Errorf("Level(%d).String() = %q, want %q", lv, got, want)
		}
	}
}

// TestLoggerConcurrent exercises the shared sink under the race
// detector: children created from one base logger must serialize their
// writes, yielding whole lines.
func TestLoggerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	base := NewLogger(&buf, LevelInfo)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			l := base.With("worker", w)
			for i := 0; i < 200; i++ {
				l.Infof("line %d", i)
			}
		}(w)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 8*200 {
		t.Fatalf("got %d lines, want %d", len(lines), 8*200)
	}
	for _, line := range lines {
		if !strings.Contains(line, "worker=") || !strings.Contains(line, ": line ") {
			t.Fatalf("torn line %q", line)
		}
	}
}
