package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

func TestOpsServerMetricsAndPprof(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total").Add(42)
	reg.Histogram("lat_ns").Observe(1000)
	ops, err := StartOps("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ops.Close()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get("http://" + ops.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, body
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics is not JSON: %v\n%s", err, body)
	}
	if snap.Counters["up_total"] != 42 {
		t.Errorf("/metrics counter = %d, want 42", snap.Counters["up_total"])
	}
	if snap.Histograms["lat_ns"].Count != 1 {
		t.Errorf("/metrics histogram count = %d, want 1", snap.Histograms["lat_ns"].Count)
	}

	if code, body := get("/healthz"); code != http.StatusOK || string(body) != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", code)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", code)
	}
}

func TestOpsServerCloseNil(t *testing.T) {
	var o *OpsServer
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpsServerBadAddr(t *testing.T) {
	if _, err := StartOps("127.0.0.1:1:bad", nil); err == nil {
		t.Fatal("StartOps must fail on an unparseable address")
	}
}
