package obs

import (
	"strings"
	"testing"
	"time"
)

func TestTraceSpansAndRender(t *testing.T) {
	var tr Trace
	tr.Begin()
	root := tr.Add("query_batch", 0, 0, 0, -1, 8)
	round := tr.Add("round", 1, time.Microsecond, 0, -1, 8)
	tr.Add("rpc", 2, 2*time.Microsecond, 800*time.Microsecond, 2, 17)
	tr.SetDur(round, time.Millisecond)
	tr.SetDur(root, 2*time.Millisecond)
	tr.SetN(root, 9)

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Dur != 2*time.Millisecond || spans[0].N != 9 {
		t.Errorf("root span not patched: %+v", spans[0])
	}
	out := tr.String()
	for _, want := range []string{
		"query_batch n=9",
		"  round n=8",
		"    rpc part=2 n=17",
		"dur=800µs",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Depth-0 spans render unindented; partition -1 renders no part=.
	if strings.Contains(strings.Split(out, "\n")[0], "part=") {
		t.Errorf("root span must not carry part=: %s", out)
	}
}

func TestTraceReuse(t *testing.T) {
	var tr Trace
	tr.Begin()
	for i := 0; i < 100; i++ {
		tr.Add("s", 1, 0, 0, i, 0)
	}
	tr.Begin()
	if len(tr.Spans()) != 0 {
		t.Fatal("Begin must clear spans")
	}
	tr.Add("fresh", 0, 0, 0, -1, 0)
	if got := len(tr.Spans()); got != 1 {
		t.Fatalf("got %d spans after reuse, want 1", got)
	}
	if tr.Since() < 0 {
		t.Fatal("Since must be non-negative")
	}
}
