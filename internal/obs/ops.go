package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Mount adds one extra route to an ops endpoint — the coordinator uses
// it to serve its fleet-aggregation view at /fleet next to its own
// /metrics.
type Mount struct {
	Pattern string
	Handler http.Handler
}

// Handler returns the ops endpoint for a registry:
//
//	GET /metrics       — the registry snapshot as JSON
//	GET /healthz       — 200 "ok" liveness probe
//	GET /debug/pprof/* — net/http/pprof profiles
//
// plus whatever extra mounts the caller supplies. The pprof handlers
// are mounted explicitly on a private mux, so serving ops never depends
// on (or pollutes) http.DefaultServeMux.
func Handler(reg *Registry, mounts ...Mount) http.Handler {
	mux := http.NewServeMux()
	for _, m := range mounts {
		mux.Handle(m.Pattern, m.Handler)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// OpsServer is a running ops endpoint; Close stops it.
type OpsServer struct {
	ln  net.Listener
	srv *http.Server
}

// StartOps listens on addr and serves the ops endpoint for reg (plus
// any extra mounts) in a background goroutine. It returns once the
// listener is bound, so Addr() is immediately valid (addr may use port
// 0). The server's lifetime is bounded by Close.
func StartOps(addr string, reg *Registry, mounts ...Mount) (*OpsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	o := &OpsServer{
		ln: ln,
		srv: &http.Server{
			Handler:           Handler(reg, mounts...),
			ReadHeaderTimeout: 10 * time.Second,
		},
	}
	go o.srv.Serve(ln)
	return o, nil
}

// Addr returns the bound listen address ("127.0.0.1:43721").
func (o *OpsServer) Addr() string { return o.ln.Addr().String() }

// Close stops the ops server. Nil-safe, so binaries can close
// unconditionally whether or not -metrics-addr was given.
func (o *OpsServer) Close() error {
	if o == nil {
		return nil
	}
	return o.srv.Close()
}
