package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucketing: values 0..15 get exact buckets; above that,
// each power-of-two octave is split into 16 log-spaced sub-buckets, so
// the relative width of any bucket is at most 1/16 (6.25%). Quantile
// estimates are therefore within one bucket of the exact quantile by
// construction — the property TestHistogramQuantileBuckets locks.
const (
	histSubBits = 4
	histSub     = 1 << histSubBits // 16 sub-buckets per octave
	// Highest sample 2^64-1 lands in octave e=63, whose sub-buckets span
	// indices (63-histSubBits)*histSub + [histSub, 2*histSub).
	numBuckets = (63-histSubBits)*histSub + 2*histSub // 976 for 64-bit values
)

// Histogram is a log-bucketed histogram of non-negative int64 samples
// (latencies in nanoseconds, sizes in items or bytes). Observe is one
// atomic add per sample plus count/sum/max maintenance, allocation-free
// and safe for concurrent writers; quantiles are estimated from a
// racy-but-monotone walk over the bucket counts, which is exact enough
// for p50/p99/p999 reporting (each concurrent Observe can shift a
// quantile by at most its own weight).
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [numBuckets]atomic.Uint64
}

// bucketOf maps a sample to its bucket index.
func bucketOf(v uint64) int {
	if v < histSub {
		return int(v)
	}
	e := bits.Len64(v) - 1 // top bit position, >= histSubBits
	return (e-histSubBits)*histSub + int(v>>uint(e-histSubBits))
}

// bucketHigh is the largest sample value mapping to bucket i — the
// representative value quantile estimates report (conservative: an
// estimate never undershoots the bucket holding the true quantile).
func bucketHigh(i int) uint64 {
	if i < histSub {
		return uint64(i)
	}
	q, r := i/histSub, i%histSub
	// bucket i covers [(r+histSub)<<(q-1), (r+histSub+1)<<(q-1) - 1]
	return (uint64(r+histSub+1) << uint(q-1)) - 1
}

// Observe records one sample; negative samples clamp to 0. No-op on a
// nil histogram.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	u := uint64(max(v, 0))
	h.buckets[bucketOf(u)].Add(1)
	h.count.Add(1)
	h.sum.Add(u)
	for {
		m := h.max.Load()
		if u <= m || h.max.CompareAndSwap(m, u) {
			return
		}
	}
}

// ObserveSince records the elapsed time since t0 in nanoseconds.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h != nil {
		h.Observe(int64(time.Since(t0)))
	}
}

// Count returns the number of samples observed; 0 on nil.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile estimates the q-th quantile (q in [0,1]) of the observed
// samples, reporting the upper bound of the bucket holding that rank —
// within one log-spaced bucket (<= 6.25% relative error above 15) of
// the exact order statistic. It returns 0 when nothing was observed or
// the histogram is nil.
func (h *Histogram) Quantile(q float64) uint64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	last := 0
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		last = i
		cum += n
		if cum > rank {
			return bucketHigh(i)
		}
	}
	// Concurrent writers bumped count before their bucket landed; the
	// highest populated bucket is the best available answer.
	return bucketHigh(last)
}

// HistogramSnapshot is one histogram's point-in-time summary as it
// appears in the registry's JSON.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	Mean  float64 `json:"mean"`
	Max   uint64  `json:"max"`
	P50   uint64  `json:"p50"`
	P90   uint64  `json:"p90"`
	P99   uint64  `json:"p99"`
	P999  uint64  `json:"p999"`
}

// Snapshot summarizes the histogram. Zero-valued on nil.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
	}
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
	}
	return s
}
