// Package fleet merges the metrics registries of a whole DSR
// deployment into one document. The coordinator knows every shard
// replica's ops address (announced in the wire handshake), so instead
// of operators scraping k×R endpoints and joining them by hand, the
// coordinator scrapes them on demand and serves the merged snapshot —
// its own registry plus one entry per replica — at /fleet.
package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"dsr/internal/obs"
)

// Target is one scrapeable shard replica. Addr is the shard's RPC
// address (identity only), MetricsAddr the ops endpoint to scrape;
// an empty MetricsAddr means the shard did not announce one. Live
// reflects the coordinator's current view of the replica's RPC
// connection — a dead replica is still listed so its loss is visible
// in the fleet view rather than silently absent.
type Target struct {
	Partition   int
	Replica     int
	Addr        string
	MetricsAddr string
	Live        bool
}

// Source yields the current scrape targets. It is called once per
// snapshot, so the target set follows failovers and reconnects
// without the aggregator holding any state of its own.
type Source func() []Target

// ShardStatus is one replica's slice of the fleet snapshot. Exactly
// one of Metrics and Error is set: a successful scrape carries the
// shard's full registry snapshot, a failed one carries the reason.
type ShardStatus struct {
	Partition   int           `json:"partition"`
	Replica     int           `json:"replica"`
	Addr        string        `json:"addr"`
	MetricsAddr string        `json:"metrics_addr,omitempty"`
	Live        bool          `json:"live"`
	Error       string        `json:"error,omitempty"`
	Metrics     *obs.Snapshot `json:"metrics,omitempty"`
}

// Snapshot is the merged fleet document served at /fleet: the
// coordinator's own registry plus every shard replica, sorted by
// (partition, replica).
type Snapshot struct {
	Coordinator obs.Snapshot  `json:"coordinator"`
	Shards      []ShardStatus `json:"shards"`
}

// Aggregator scrapes a Source's targets and merges them with a local
// registry. The zero value is not usable; construct with New.
type Aggregator struct {
	local   *obs.Registry
	src     Source
	client  *http.Client
	timeout time.Duration
}

// maxBody bounds a scraped /metrics document; a misconfigured target
// pointing at something that streams forever must not wedge /fleet.
const maxBody = 4 << 20

// New returns an aggregator over the coordinator's own registry
// (nil-safe, snapshots empty) and the given target source. Each
// target is scraped with its own timeout so one stuck endpoint
// delays a fleet snapshot by at most that long.
func New(local *obs.Registry, src Source, timeout time.Duration) *Aggregator {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return &Aggregator{
		local:   local,
		src:     src,
		client:  &http.Client{},
		timeout: timeout,
	}
}

// Snapshot scrapes every current target in parallel and returns the
// merged fleet view. Scrape failures never fail the snapshot; they
// surface as per-shard Error strings.
func (a *Aggregator) Snapshot(ctx context.Context) Snapshot {
	targets := a.src()
	shards := make([]ShardStatus, len(targets))
	var wg sync.WaitGroup
	for i, t := range targets {
		wg.Add(1)
		go func() {
			defer wg.Done()
			shards[i] = a.scrape(ctx, t)
		}()
	}
	wg.Wait()
	sort.Slice(shards, func(i, j int) bool {
		if shards[i].Partition != shards[j].Partition {
			return shards[i].Partition < shards[j].Partition
		}
		return shards[i].Replica < shards[j].Replica
	})
	return Snapshot{Coordinator: a.local.Snapshot(), Shards: shards}
}

func (a *Aggregator) scrape(ctx context.Context, t Target) ShardStatus {
	st := ShardStatus{
		Partition:   t.Partition,
		Replica:     t.Replica,
		Addr:        t.Addr,
		MetricsAddr: t.MetricsAddr,
		Live:        t.Live,
	}
	if t.MetricsAddr == "" {
		st.Error = "no metrics address announced"
		return st
	}
	ctx, cancel := context.WithTimeout(ctx, a.timeout)
	defer cancel()
	url := "http://" + t.MetricsAddr + "/metrics"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		st.Error = err.Error()
		return st
	}
	resp, err := a.client.Do(req)
	if err != nil {
		st.Error = err.Error()
		return st
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		st.Error = fmt.Sprintf("scrape %s: HTTP %d", url, resp.StatusCode)
		return st
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxBody)).Decode(&snap); err != nil {
		st.Error = fmt.Sprintf("scrape %s: %v", url, err)
		return st
	}
	st.Metrics = &snap
	return st
}

// Handler serves the merged snapshot as indented JSON — mount it at
// /fleet on the coordinator's ops endpoint.
func (a *Aggregator) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(a.Snapshot(r.Context()))
	})
}
