package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dsr/internal/obs"
)

// opsAddr strips the scheme from an httptest server URL, yielding the
// host:port form a shard announces in its handshake.
func opsAddr(s *httptest.Server) string {
	return strings.TrimPrefix(s.URL, "http://")
}

func TestSnapshotMergesAndSorts(t *testing.T) {
	regA := obs.NewRegistry()
	regA.Counter("shard_queries").Add(7)
	srvA := httptest.NewServer(obs.Handler(regA))
	defer srvA.Close()

	regB := obs.NewRegistry()
	regB.Counter("shard_queries").Add(11)
	srvB := httptest.NewServer(obs.Handler(regB))
	defer srvB.Close()

	local := obs.NewRegistry()
	local.Counter("dsr_queries").Add(3)

	// Source deliberately out of order: sorting is the aggregator's job.
	src := func() []Target {
		return []Target{
			{Partition: 1, Replica: 0, Addr: "b:1", MetricsAddr: opsAddr(srvB), Live: true},
			{Partition: 0, Replica: 1, Addr: "a1:1", Live: false},
			{Partition: 0, Replica: 0, Addr: "a:1", MetricsAddr: opsAddr(srvA), Live: true},
		}
	}
	snap := New(local, src, time.Second).Snapshot(context.Background())

	if got := snap.Coordinator.Counters["dsr_queries"]; got != 3 {
		t.Errorf("coordinator dsr_queries = %d, want 3", got)
	}
	if len(snap.Shards) != 3 {
		t.Fatalf("got %d shards, want 3", len(snap.Shards))
	}
	order := [][2]int{{0, 0}, {0, 1}, {1, 0}}
	for i, want := range order {
		if snap.Shards[i].Partition != want[0] || snap.Shards[i].Replica != want[1] {
			t.Errorf("shards[%d] = p%d/r%d, want p%d/r%d",
				i, snap.Shards[i].Partition, snap.Shards[i].Replica, want[0], want[1])
		}
	}
	if m := snap.Shards[0].Metrics; m == nil || m.Counters["shard_queries"] != 7 {
		t.Errorf("p0/r0 metrics = %+v, want shard_queries=7", snap.Shards[0].Metrics)
	}
	if m := snap.Shards[2].Metrics; m == nil || m.Counters["shard_queries"] != 11 {
		t.Errorf("p1/r0 metrics = %+v, want shard_queries=11", snap.Shards[2].Metrics)
	}
	// The dead replica announced no ops address: listed, not scraped.
	dead := snap.Shards[1]
	if dead.Live || dead.Metrics != nil || dead.Error == "" {
		t.Errorf("dead replica status = %+v, want error and no metrics", dead)
	}
}

func TestScrapeErrors(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer bad.Close()
	garbled := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("not json"))
	}))
	defer garbled.Close()
	gone := httptest.NewServer(http.NewServeMux())
	goneAddr := opsAddr(gone)
	gone.Close()

	src := func() []Target {
		return []Target{
			{Partition: 0, MetricsAddr: opsAddr(bad), Live: true},
			{Partition: 1, MetricsAddr: opsAddr(garbled), Live: true},
			{Partition: 2, MetricsAddr: goneAddr, Live: true},
		}
	}
	snap := New(nil, src, time.Second).Snapshot(context.Background())
	wants := []string{"HTTP 500", "invalid character", "connection refused"}
	for i, want := range wants {
		st := snap.Shards[i]
		if st.Metrics != nil {
			t.Errorf("shard %d: metrics present despite failure", i)
		}
		if !strings.Contains(st.Error, want) {
			t.Errorf("shard %d error = %q, want substring %q", i, st.Error, want)
		}
	}
}

func TestScrapeTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer slow.Close()

	src := func() []Target {
		return []Target{{Partition: 0, MetricsAddr: opsAddr(slow), Live: true}}
	}
	start := time.Now()
	snap := New(nil, src, 50*time.Millisecond).Snapshot(context.Background())
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("snapshot took %v; per-target timeout not applied", elapsed)
	}
	if snap.Shards[0].Error == "" {
		t.Errorf("slow target produced no error: %+v", snap.Shards[0])
	}
}

func TestHandler(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("shard_queries").Add(5)
	shardSrv := httptest.NewServer(obs.Handler(reg))
	defer shardSrv.Close()

	src := func() []Target {
		return []Target{{Partition: 0, Addr: "s:1", MetricsAddr: opsAddr(shardSrv), Live: true}}
	}
	agg := New(obs.NewRegistry(), src, time.Second)

	rr := httptest.NewRecorder()
	agg.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/fleet", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("GET /fleet = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("response is not a fleet snapshot: %v", err)
	}
	if len(snap.Shards) != 1 || snap.Shards[0].Metrics == nil {
		t.Fatalf("snapshot shards = %+v", snap.Shards)
	}
	if got := snap.Shards[0].Metrics.Counters["shard_queries"]; got != 5 {
		t.Errorf("scraped shard_queries = %d, want 5", got)
	}
	if snap.Coordinator.Build.GoVersion == "" {
		t.Errorf("coordinator snapshot missing build info")
	}
}
