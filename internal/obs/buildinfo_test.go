package obs

import (
	"encoding/json"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestBuildInfo(t *testing.T) {
	b := Build()
	if b.GoVersion != runtime.Version() {
		t.Errorf("GoVersion = %q, want %q", b.GoVersion, runtime.Version())
	}
	start, err := time.Parse(time.RFC3339, b.Start)
	if err != nil {
		t.Fatalf("Start %q is not RFC3339: %v", b.Start, err)
	}
	if start.After(time.Now()) {
		t.Errorf("Start %v is in the future", start)
	}
	if again := Build(); again != b {
		t.Errorf("Build() not stable: %+v then %+v", b, again)
	}
}

// TestSnapshotCarriesBuild asserts every registry snapshot — including
// the nil-registry empty one — embeds the build section, so a fleet
// scrape can always check for version skew.
func TestSnapshotCarriesBuild(t *testing.T) {
	for _, reg := range []*Registry{nil, NewRegistry()} {
		snap := reg.Snapshot()
		if snap.Build != Build() {
			t.Errorf("snapshot build = %+v, want %+v", snap.Build, Build())
		}
	}
	var sb strings.Builder
	if err := NewRegistry().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatal(err)
	}
	var b BuildInfo
	if err := json.Unmarshal(doc["build"], &b); err != nil {
		t.Fatalf("no decodable build section in /metrics JSON: %v", err)
	}
	if b.GoVersion == "" || b.Start == "" {
		t.Errorf("build section missing required fields: %+v", b)
	}
}
