package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// BuildInfo identifies the running binary inside every /metrics
// snapshot: Go toolchain, module path/version, the VCS revision it was
// built from (with Modified marking a dirty working tree), and the
// process start time. A fleet scrape that merges many shard registries
// can then detect version skew — two replicas of one partition built
// from different revisions — without a separate inventory system.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Path      string `json:"path,omitempty"`
	Version   string `json:"version,omitempty"`
	Revision  string `json:"revision,omitempty"`
	Modified  bool   `json:"modified,omitempty"`
	Start     string `json:"start"`
}

// processStart is captured once at init so every snapshot reports the
// same start time regardless of when it is taken.
var processStart = time.Now()

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// Build returns the process's build info, resolved once from
// runtime/debug.ReadBuildInfo. Binaries built without module info
// (e.g. plain `go test` harnesses) still report the Go version and
// start time.
func Build() BuildInfo {
	buildOnce.Do(func() {
		buildInfo = BuildInfo{
			GoVersion: runtime.Version(),
			Start:     processStart.UTC().Format(time.RFC3339),
		}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		buildInfo.Path = bi.Main.Path
		buildInfo.Version = bi.Main.Version
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.Revision = s.Value
			case "vcs.modified":
				buildInfo.Modified = s.Value == "true"
			}
		}
	})
	return buildInfo
}
