package obs

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"
)

// Level is a log severity.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO"
	case LevelWarn:
		return "WARN"
	case LevelError:
		return "ERROR"
	default:
		return fmt.Sprintf("LEVEL(%d)", int32(l))
	}
}

// ParseLevel resolves a level name ("debug", "info", "warn", "error",
// case-insensitive) for CLI flags.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", s)
}

// Logger is the leveled logger every DSR component logs through, so
// all output shares one shape:
//
//	2026-08-08T12:00:00.000Z INFO component=dsr-shard partition=0 replica=1: serving on 127.0.0.1:7000
//
// With derives child loggers carrying additional key=value fields
// (component, partition, replica, ...), pre-rendered once so emitting
// a line formats only the message. Writes to the shared sink are
// serialized, so lines from concurrent components never interleave. A
// nil *Logger discards everything, which is how "no logging" is
// spelled everywhere in this codebase.
type Logger struct {
	s      *sink
	min    Level
	fields string // pre-rendered " k=v k=v" suffix, or ""
}

type sink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewLogger returns a logger writing lines at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	return &Logger{s: &sink{w: w}, min: min}
}

// StderrLogger is the conventional operational logger for binaries.
func StderrLogger(min Level) *Logger {
	return NewLogger(os.Stderr, min)
}

// With returns a child logger whose lines carry the given key=value
// pairs after the parent's. The child shares the parent's sink and
// level. Nil-safe: a nil logger's child is nil.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil || len(kv) == 0 {
		return l
	}
	var b strings.Builder
	b.WriteString(l.fields)
	for i := 0; i+1 < len(kv); i += 2 {
		fmt.Fprintf(&b, " %v=%v", kv[i], kv[i+1])
	}
	return &Logger{s: l.s, min: l.min, fields: b.String()}
}

// Enabled reports whether lines at lv would be written; false on nil.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && lv >= l.min
}

func (l *Logger) emit(lv Level, format string, args ...any) {
	if !l.Enabled(lv) {
		return
	}
	ts := time.Now().UTC().Format("2006-01-02T15:04:05.000Z")
	msg := fmt.Sprintf(format, args...)
	l.s.mu.Lock()
	defer l.s.mu.Unlock()
	fmt.Fprintf(l.s.w, "%s %s%s: %s\n", ts, lv, l.fields, msg)
}

// Debugf logs at debug level.
func (l *Logger) Debugf(format string, args ...any) { l.emit(LevelDebug, format, args...) }

// Infof logs at info level.
func (l *Logger) Infof(format string, args ...any) { l.emit(LevelInfo, format, args...) }

// Warnf logs at warn level.
func (l *Logger) Warnf(format string, args ...any) { l.emit(LevelWarn, format, args...) }

// Errorf logs at error level.
func (l *Logger) Errorf(format string, args ...any) { l.emit(LevelError, format, args...) }
