package obs

import (
	"fmt"
	"strings"
	"time"
)

// Span is one timed step inside a Trace: a query round, one shard's
// RPC within it, the boundary fan-in. Start and Dur are offsets from
// the trace's Begin. Part is the partition involved (-1 when the span
// is not partition-scoped) and N is the span's payload size — batch
// size for a round, frontier size (boundary vertices reported) for a
// shard RPC. Depth places the span in the tree for rendering.
type Span struct {
	Name  string
	Depth int
	Start time.Duration
	Dur   time.Duration
	Part  int
	N     int
}

// Trace accumulates the span tree of one query (or query batch) into
// caller-owned scratch: the engine holds one Trace and re-Begins it
// per batch, so steady-state tracing allocates nothing (the span slice
// is reused once grown). Only rendering — which happens on the
// slow-query log path, never per query — allocates.
type Trace struct {
	t0    time.Time
	spans []Span
}

// Begin resets the trace and starts its clock.
func (t *Trace) Begin() {
	t.t0 = time.Now()
	t.spans = t.spans[:0]
}

// Since returns the offset of "now" from Begin.
func (t *Trace) Since() time.Duration { return time.Since(t.t0) }

// Add appends a span and returns its index, so a caller that knows a
// span's start before its duration (a round enclosing per-shard RPCs)
// can patch it via SetDur once it closes.
func (t *Trace) Add(name string, depth int, start, dur time.Duration, part, n int) int {
	t.spans = append(t.spans, Span{Name: name, Depth: depth, Start: start, Dur: dur, Part: part, N: n})
	return len(t.spans) - 1
}

// SetDur closes span i with the given duration.
func (t *Trace) SetDur(i int, dur time.Duration) { t.spans[i].Dur = dur }

// SetN updates span i's payload size.
func (t *Trace) SetN(i int, n int) { t.spans[i].N = n }

// Spans returns the accumulated spans; the slice aliases trace-owned
// scratch valid until the next Begin.
func (t *Trace) Spans() []Span { return t.spans }

// String renders the span tree, one line per span, indented by depth:
//
//	query_batch n=8 start=0s dur=1.2ms
//	  round n=8 start=10µs dur=1.1ms
//	    rpc part=2 n=17 start=12µs dur=840µs
//
// Allocates; meant for the slow-query log and debugging, not hot paths.
func (t *Trace) String() string {
	var b strings.Builder
	for _, s := range t.spans {
		for i := 0; i < s.Depth; i++ {
			b.WriteString("  ")
		}
		b.WriteString(s.Name)
		if s.Part >= 0 {
			fmt.Fprintf(&b, " part=%d", s.Part)
		}
		fmt.Fprintf(&b, " n=%d start=%s dur=%s\n", s.N, s.Start, s.Dur)
	}
	return b.String()
}
