package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestRegistrySharedByName(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total")
	b := r.Counter("x_total")
	if a != b {
		t.Fatal("same name must yield the same counter")
	}
	a.Inc()
	b.Add(2)
	if got := r.Counter("x_total").Load(); got != 3 {
		t.Fatalf("shared counter = %d, want 3", got)
	}
	if r.Gauge("g") != r.Gauge("g") || r.Histogram("h") != r.Histogram("h") {
		t.Fatal("gauges and histograms must be shared by name too")
	}
	// The three namespaces are independent: one name, three instruments.
	if r.Counter("dup") == nil || r.Gauge("dup") == nil || r.Histogram("dup") == nil {
		t.Fatal("namespaces must not collide")
	}
}

func TestRegistrySnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter(Name("rpc_total", "partition", 2)).Add(7)
	r.Gauge("live").Set(-3)
	h := r.Histogram("lat_ns")
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i * 1000)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	if got := snap.Counters["rpc_total{partition=2}"]; got != 7 {
		t.Errorf("counter = %d, want 7", got)
	}
	if got := snap.Gauges["live"]; got != -3 {
		t.Errorf("gauge = %d, want -3", got)
	}
	hs := snap.Histograms["lat_ns"]
	if hs.Count != 1000 || hs.Max != 1_000_000 {
		t.Errorf("histogram snapshot count=%d max=%d", hs.Count, hs.Max)
	}
	if hs.P50 == 0 || hs.P99 == 0 || hs.P999 == 0 {
		t.Errorf("quantiles missing from snapshot: %+v", hs)
	}
	if hs.P50 > hs.P99 || hs.P99 > hs.P999 {
		t.Errorf("quantiles not monotone: %+v", hs)
	}
}

func TestRegistryNil(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Gauge("g").Set(1)
	r.Histogram("h").Observe(1)
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("shared").Inc()
				r.Histogram(Name("h", "w", w)).Observe(int64(i))
				_ = r.Snapshot()
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared").Load(); got != 8000 {
		t.Fatalf("shared counter = %d, want 8000", got)
	}
}

func TestName(t *testing.T) {
	for _, tc := range []struct {
		got, want string
	}{
		{Name("plain"), "plain"},
		{Name("rpc", "partition", 3), "rpc{partition=3}"},
		{Name("rpc", "partition", 3, "replica", 1), "rpc{partition=3,replica=1}"},
	} {
		if tc.got != tc.want {
			t.Errorf("Name = %q, want %q", tc.got, tc.want)
		}
	}
}

func TestCounterGaugeNil(t *testing.T) {
	var c *Counter
	var g *Gauge
	c.Inc()
	c.Add(5)
	g.Set(5)
	g.Add(-1)
	if c.Load() != 0 || g.Load() != 0 {
		t.Fatal("nil instruments must read zero")
	}
}
