package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Registry is a named collection of instruments. Counter/Gauge/
// Histogram return the instrument registered under the name, creating
// it on first use — so independent components referring to the same
// name share one instrument, and construction order never matters.
// Lookups take a mutex; hot paths therefore resolve their instruments
// once at construction and hold the pointers.
//
// A nil *Registry is valid everywhere and returns nil instruments,
// which are themselves valid no-ops — passing no registry disables
// metrics without a single code path caring.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	histogram map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:  make(map[string]*Counter),
		gauges:    make(map[string]*Gauge),
		histogram: make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it if
// needed. Nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if
// needed. Nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// if needed. Nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histogram[name]
	if h == nil {
		h = &Histogram{}
		r.histogram[name] = h
	}
	return h
}

// Snapshot is the registry's point-in-time state, the JSON document
// the ops endpoint serves at /metrics. Map keys are metric names in
// the Name() label form; encoding/json emits them sorted.
type Snapshot struct {
	Build      BuildInfo                    `json:"build"`
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every registered instrument. Instruments are read
// atomically but not as one consistent cut — counters incremented
// mid-snapshot may or may not be included, which is the standard
// metrics contract. An empty snapshot (not nil maps) on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Build:      Build(),
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.histogram {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
