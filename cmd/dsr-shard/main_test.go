package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"syscall"
	"testing"
	"time"

	"dsr/internal/obs"
)

// buildShard builds the dsr-shard binary once per test binary and
// returns its path plus the test graph's absolute path.
func buildShard(t *testing.T) (bin, graphPath string) {
	t.Helper()
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	build := exec.Command("go", "build", "-o", dir, "./cmd/dsr-shard")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	graphPath, err := filepath.Abs(filepath.Join("..", "..", "internal", "graph", "testdata", "tiny.txt"))
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, "dsr-shard"), graphPath
}

// TestFlagValidationExits: bad invocations must fail fast with the
// documented exit codes — 2 for usage errors caught before any work,
// 1 for validation the logger reports — and name the offending flag.
func TestFlagValidationExits(t *testing.T) {
	bin, graphPath := buildShard(t)
	cases := []struct {
		name     string
		args     []string
		wantCode int
		wantErr  string
	}{
		{
			name:     "missing -graph",
			args:     []string{"-listen", "127.0.0.1:0"},
			wantCode: 2,
			wantErr:  "-graph is required",
		},
		{
			name:     "bad -log-level",
			args:     []string{"-graph", graphPath, "-log-level", "loud"},
			wantCode: 2,
			wantErr:  "-log-level",
		},
		{
			name:     "-id out of range",
			args:     []string{"-graph", graphPath, "-shards", "2", "-id", "5"},
			wantCode: 1,
			wantErr:  "outside",
		},
		{
			name:     "bad -partitioner",
			args:     []string{"-graph", graphPath, "-partitioner", "psychic"},
			wantCode: 1,
			wantErr:  "-partitioner",
		},
		{
			name:     "unreadable graph",
			args:     []string{"-graph", filepath.Join(t.TempDir(), "nope.txt")},
			wantCode: 1,
			wantErr:  "load graph",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec.Command(bin, tc.args...).CombinedOutput()
			var ee *exec.ExitError
			if !errors.As(err, &ee) {
				t.Fatalf("want exit error, got %v\n%s", err, out)
			}
			if ee.ExitCode() != tc.wantCode {
				t.Errorf("exit code = %d, want %d\n%s", ee.ExitCode(), tc.wantCode, out)
			}
			if !regexp.MustCompile(regexp.QuoteMeta(tc.wantErr)).Match(out) {
				t.Errorf("stderr missing %q:\n%s", tc.wantErr, out)
			}
		})
	}
}

// TestMetricsAnnounceAndDrain: a served shard announces its ops
// endpoint on stderr, that endpoint serves a JSON registry snapshot
// (build info included), and SIGTERM drains to exit 0.
func TestMetricsAnnounceAndDrain(t *testing.T) {
	bin, graphPath := buildShard(t)
	cmd := exec.Command(bin,
		"-graph", graphPath, "-listen", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := false
	t.Cleanup(func() {
		if !done {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	metricsRe := regexp.MustCompile(`metrics on (http://\S+/metrics)`)
	servingRe := regexp.MustCompile(`serving on (\S+)`)
	urlCh := make(chan string, 1)
	servingCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if m := metricsRe.FindStringSubmatch(line); m != nil {
				urlCh <- m[1]
			}
			if m := servingRe.FindStringSubmatch(line); m != nil {
				servingCh <- m[1]
			}
		}
	}()
	var metricsURL string
	select {
	case metricsURL = <-urlCh:
	case <-time.After(30 * time.Second):
		t.Fatal("shard never announced its metrics endpoint")
	}
	select {
	case <-servingCh:
	case <-time.After(30 * time.Second):
		t.Fatal("shard never started serving")
	}

	resp, err := http.Get(metricsURL)
	if err != nil {
		t.Fatalf("GET %s: %v", metricsURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %s", metricsURL, resp.Status)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode /metrics JSON: %v", err)
	}
	if snap.Build.GoVersion == "" || snap.Build.Start == "" {
		t.Errorf("/metrics snapshot missing build info: %+v", snap.Build)
	}
	if snap.Counters == nil || snap.Gauges == nil || snap.Histograms == nil {
		t.Errorf("/metrics snapshot missing instrument sections: %+v", snap)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Errorf("SIGTERM drain did not exit 0: %v", err)
	}
	done = true
}
