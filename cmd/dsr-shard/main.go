// Command dsr-shard runs one DSR shard server: it loads the graph,
// partitions it into the deployment's shard count, extracts and
// indexes its own partition, and serves local-search RPCs over TCP.
//
//	dsr-shard -graph edges.txt -shards 3 -id 0 -listen 127.0.0.1:7000 -partitioner locality
//
// Every shard of a deployment must load the same graph file with the
// same -shards count and the same -partitioner spec: every partitioner
// is deterministic, so all shards agree on vertex placement without
// any coordination traffic. The coordinator (dsr-query, or
// core.Connect) is graph-free — it takes only the shard addresses.
// After the handshake each shard ships its boundary summary (boundary
// vertices, entry→exit summary edges, cross-partition edges), which
// the coordinator stitches into the global boundary graph; it verifies
// the shards against each other via the handshake's vertex count,
// graph fingerprint, and partitioning digest, and refuses a fleet
// whose shards disagree.
//
// Snapshots: with -snapshot-dir, a freshly built shard persists its
// complete query state (subgraph, SCC condensation, bitset index,
// boundary summary) to <dir>/part<id>-of-<shards>.dsrsnap via a
// temp-file+rename, and the next boot loads that file instead of
// rebuilding — skipping even the edge-list read, so -graph becomes
// optional. A snapshot that is missing, corrupt, version-skewed, or
// for the wrong partition falls back to the rebuild path (with a
// logged warning), never to a wrong answer; -snapshot-verify forces a
// rebuild from -graph and byte-compares it against the stored
// snapshot, exiting non-zero on any disagreement.
//
// Replication: running several dsr-shard processes with the same -id
// makes them interchangeable replicas of that partition — point the
// coordinator at all of them with a '|' group ("a:7000|b:7000" in
// dsr-query's -shards). Replicas need no awareness of each other; the
// optional -replica flag only labels this process's logs. On SIGTERM
// or SIGINT the server drains gracefully: new connections are refused,
// in-flight task batches finish and are answered, then the process
// exits 0 — so a rolling restart never drops an accepted batch, and a
// replicated coordinator fails the severed connections over to a
// sibling replica.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"dsr/internal/graph"
	"dsr/internal/obs"
	"dsr/internal/partition"
	"dsr/internal/partition/locality"
	"dsr/internal/shard"
	"dsr/internal/snapshot"
)

func main() {
	var (
		graphPath   = flag.String("graph", "", "edge-list file: one 'u v' pair per line (required unless a snapshot is loaded via -snapshot-dir)")
		numShards   = flag.Int("shards", 1, "total shard count of the deployment")
		shardID     = flag.Int("id", 0, "this shard's index in [0, shards)")
		replica     = flag.Int("replica", 0, "replica label for this partition's server (logs only; replicas are interchangeable)")
		listen      = flag.String("listen", "127.0.0.1:7000", "TCP address to serve on")
		partitioner = flag.String("partitioner", "hash", "partitioning strategy: hash, range, or locality[:seed=N,rounds=N,balance=F,refine=N]; must match the coordinator's")
		snapDir     = flag.String("snapshot-dir", "", "directory of persisted per-partition index snapshots: boot loads this partition's snapshot instead of rebuilding from -graph, and a rebuild writes one back")
		snapVerify  = flag.Bool("snapshot-verify", false, "force a rebuild from -graph and byte-compare it against the stored snapshot; any disagreement is fatal")
		metricsAddr = flag.String("metrics-addr", "", "serve the metrics registry (JSON at /metrics) and net/http/pprof on this address; empty disables")
		logLevel    = flag.String("log-level", "info", "log level floor: debug, info, warn, or error")
	)
	flag.Parse()
	if *graphPath == "" && *snapDir == "" {
		fmt.Fprintln(os.Stderr, "dsr-shard: -graph is required (or -snapshot-dir to boot from a snapshot)")
		flag.Usage()
		os.Exit(2)
	}
	if *snapVerify && (*graphPath == "" || *snapDir == "") {
		fmt.Fprintln(os.Stderr, "dsr-shard: -snapshot-verify needs both -graph (to rebuild) and -snapshot-dir (to compare against)")
		flag.Usage()
		os.Exit(2)
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsr-shard: -log-level: %v\n", err)
		os.Exit(2)
	}
	logger := obs.StderrLogger(level).
		With("component", "dsr-shard", "partition", *shardID, "replica", *replica)
	fatalf := func(format string, args ...any) {
		logger.Errorf(format, args...)
		os.Exit(1)
	}
	if *shardID < 0 || *shardID >= *numShards {
		fatalf("-id %d outside [0, %d)", *shardID, *numShards)
	}
	// Register for drain signals before any real work: a SIGTERM that
	// lands during the build (or between listen and the drain goroutine
	// below) parks in the channel instead of killing the process with
	// the default action, and is honored the moment serving starts.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)

	reg := obs.NewRegistry()
	var opsAddr string
	if *metricsAddr != "" {
		ops, err := obs.StartOps(*metricsAddr, reg)
		if err != nil {
			fatalf("metrics-addr: %v", err)
		}
		defer ops.Close()
		opsAddr = ops.Addr()
		logger.Infof("metrics on http://%s/metrics (pprof under /debug/pprof/)", opsAddr)
	}
	var (
		snapLoads        = reg.Counter("dsr_snapshot_loads_total")
		snapLoadFailures = reg.Counter("dsr_snapshot_load_failures_total")
		snapWrites       = reg.Counter("dsr_snapshot_writes_total")
		snapBytes        = reg.Gauge("dsr_snapshot_bytes")
	)

	var snapPath string
	if *snapDir != "" {
		snapPath = filepath.Join(*snapDir, snapshot.Filename(*shardID, *numShards))
	}

	// Fast path: load this partition's finished query state from its
	// snapshot — no edge-list read, no partitioning, no Tarjan, no index
	// build. The header's shard ID/count are checked here; its graph
	// fingerprint and partitioning digest become this shard's handshake
	// identity, so a snapshot from a foreign graph is refused by the
	// coordinator's fleet cross-check exactly like a mismatched hello.
	var sh *shard.Shard
	var numVertices int
	var graphSum, partSum uint64
	if snapPath != "" && !*snapVerify {
		sn, err := snapshot.ReadFile(snapPath)
		if err == nil {
			err = sn.Expect(*shardID, *numShards, 0, 0, 0)
		}
		switch {
		case err == nil:
			sh = shard.FromSnapshot(sn)
			numVertices = sn.TotalVertices
			graphSum, partSum = sn.GraphFingerprint, sn.PartitioningDigest
			snapLoads.Inc()
			snapBytes.Set(int64(sn.Size))
			logger.Infof("loaded snapshot %s (%d bytes, graph file not read): %d of %d vertices, %d entries, %d exits",
				snapPath, sn.Size, sh.NumVertices(), numVertices, len(sn.Sub.Entries), len(sn.Sub.Exits))
		case errors.Is(err, fs.ErrNotExist):
			logger.Infof("no snapshot at %s: building from -graph", snapPath)
		default:
			snapLoadFailures.Inc()
			logger.Warnf("snapshot unusable, rebuilding from -graph: %v", err)
		}
		if sh == nil && *graphPath == "" {
			fatalf("snapshot at %s unusable and no -graph to rebuild from", snapPath)
		}
	}

	if sh == nil {
		strat, err := locality.ParseSpec(*partitioner)
		if err != nil {
			fatalf("-partitioner: %v", err)
		}
		g, err := graph.LoadEdgeListFile(*graphPath)
		if err != nil {
			fatalf("load graph: %v", err)
		}
		pt, err := strat.Partition(g, *numShards)
		if err != nil {
			fatalf("partition (%s): %v", strat.Name(), err)
		}
		// ExtractOne materializes only this shard's partition: startup memory
		// scales with the shard's share of the graph, not all k partitions.
		sub := partition.ExtractOne(g, pt, *shardID)
		sh = shard.New(*shardID, sub)
		numVertices, graphSum, partSum = g.NumVertices(), g.Fingerprint(), pt.Digest()
		logger.Infof("shard %d/%d (%s-partitioned): %d of %d vertices, %d entries, %d exits",
			*shardID, *numShards, strat.Name(), sh.NumVertices(), numVertices,
			len(sub.Entries), len(sub.Exits))

		if snapPath != "" {
			sn := sh.Snapshot(*numShards, numVertices, graphSum, partSum)
			if *snapVerify {
				verifySnapshot(logger, fatalf, snapPath, sn)
			}
			size, err := snapshot.WriteFile(snapPath, sn)
			if err != nil {
				// Serving matters more than persisting: log and carry on.
				logger.Warnf("snapshot write failed (next boot rebuilds): %v", err)
			} else {
				snapWrites.Inc()
				snapBytes.Set(int64(size))
				logger.Infof("wrote snapshot %s (%d bytes)", snapPath, size)
			}
		}
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatalf("listen: %v", err)
	}
	logger.Infof("serving on %s", ln.Addr())
	srv := shard.NewServer(sh, *numShards, numVertices, graphSum, partSum)
	srv.Instrument(reg, logger)
	// Announce the ops address in the handshake so the coordinator's
	// /fleet view can scrape this replica without extra configuration.
	srv.AnnounceMetrics(opsAddr)

	// Graceful drain on SIGTERM/SIGINT: finish in-flight batches, refuse
	// new connections, then exit 0 (Serve returns nil once draining).
	go func() {
		sig := <-sigc
		logger.Infof("received %v: draining (answering in-flight batches, refusing new connections)", sig)
		srv.Shutdown()
		logger.Infof("drained")
	}()

	// ErrClosed means a drain began before Serve was entered (a SIGTERM
	// racing startup) — that is a clean shutdown, not a serving failure.
	if err := srv.Serve(ln); err != nil && !errors.Is(err, shard.ErrClosed) {
		fatalf("serve: %v", err)
	}
	// Make sure the drain fully finished before exiting (Serve can
	// return the moment the listener closes, while a batch is still
	// being answered).
	srv.Shutdown()
	logger.Infof("exiting")
}

// verifySnapshot byte-compares the freshly rebuilt state against the
// stored snapshot. Encoding is deterministic, so equal state means
// equal bytes; any difference — a stale snapshot after the graph file
// changed, a partitioner drift, bit rot the checksum would also catch
// — is fatal, because an operator running -snapshot-verify wants the
// discrepancy surfaced, not papered over. A missing snapshot passes
// (the caller writes the first one).
func verifySnapshot(logger *obs.Logger, fatalf func(string, ...any), snapPath string, sn *snapshot.Snapshot) {
	stored, err := os.ReadFile(snapPath)
	if errors.Is(err, fs.ErrNotExist) {
		logger.Infof("snapshot-verify: no snapshot at %s yet, writing one", snapPath)
		return
	}
	if err != nil {
		fatalf("snapshot-verify: read %s: %v", snapPath, err)
	}
	fresh, err := snapshot.Encode(sn)
	if err != nil {
		fatalf("snapshot-verify: encode rebuilt state: %v", err)
	}
	if !bytes.Equal(stored, fresh) {
		if _, derr := snapshot.Decode(stored); derr != nil {
			fatalf("snapshot-verify: %s does not match the rebuilt state (%d vs %d bytes) and fails to decode: %v",
				snapPath, len(stored), len(fresh), derr)
		}
		fatalf("snapshot-verify: %s does not match the state rebuilt from -graph (%d vs %d bytes): stale snapshot or drifted graph/partitioner",
			snapPath, len(stored), len(fresh))
	}
	logger.Infof("snapshot-verify: %s matches the rebuilt state (%d bytes)", snapPath, len(fresh))
}
