// Command dsr-shard runs one DSR shard server: it loads the graph,
// partitions it into the deployment's shard count, extracts and
// indexes its own partition, and serves local-search RPCs over TCP.
//
//	dsr-shard -graph edges.txt -shards 3 -id 0 -listen 127.0.0.1:7000 -partitioner locality
//
// Every shard of a deployment must load the same graph file with the
// same -shards count and the same -partitioner spec: every partitioner
// is deterministic, so all shards agree on vertex placement without
// any coordination traffic. The coordinator (dsr-query, or
// core.Connect) is graph-free — it takes only the shard addresses.
// After the handshake each shard ships its boundary summary (boundary
// vertices, entry→exit summary edges, cross-partition edges), which
// the coordinator stitches into the global boundary graph; it verifies
// the shards against each other via the handshake's vertex count,
// graph fingerprint, and partitioning digest, and refuses a fleet
// whose shards disagree.
//
// Replication: running several dsr-shard processes with the same -id
// makes them interchangeable replicas of that partition — point the
// coordinator at all of them with a '|' group ("a:7000|b:7000" in
// dsr-query's -shards). Replicas need no awareness of each other; the
// optional -replica flag only labels this process's logs. On SIGTERM
// or SIGINT the server drains gracefully: new connections are refused,
// in-flight task batches finish and are answered, then the process
// exits 0 — so a rolling restart never drops an accepted batch, and a
// replicated coordinator fails the severed connections over to a
// sibling replica.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"dsr/internal/graph"
	"dsr/internal/obs"
	"dsr/internal/partition"
	"dsr/internal/partition/locality"
	"dsr/internal/shard"
)

func main() {
	var (
		graphPath   = flag.String("graph", "", "edge-list file (required): one 'u v' pair per line")
		numShards   = flag.Int("shards", 1, "total shard count of the deployment")
		shardID     = flag.Int("id", 0, "this shard's index in [0, shards)")
		replica     = flag.Int("replica", 0, "replica label for this partition's server (logs only; replicas are interchangeable)")
		listen      = flag.String("listen", "127.0.0.1:7000", "TCP address to serve on")
		partitioner = flag.String("partitioner", "hash", "partitioning strategy: hash, range, or locality[:seed=N,rounds=N,balance=F,refine=N]; must match the coordinator's")
		metricsAddr = flag.String("metrics-addr", "", "serve the metrics registry (JSON at /metrics) and net/http/pprof on this address; empty disables")
		logLevel    = flag.String("log-level", "info", "log level floor: debug, info, warn, or error")
	)
	flag.Parse()
	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "dsr-shard: -graph is required")
		flag.Usage()
		os.Exit(2)
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsr-shard: -log-level: %v\n", err)
		os.Exit(2)
	}
	logger := obs.StderrLogger(level).
		With("component", "dsr-shard", "partition", *shardID, "replica", *replica)
	fatalf := func(format string, args ...any) {
		logger.Errorf(format, args...)
		os.Exit(1)
	}
	if *shardID < 0 || *shardID >= *numShards {
		fatalf("-id %d outside [0, %d)", *shardID, *numShards)
	}
	strat, err := locality.ParseSpec(*partitioner)
	if err != nil {
		fatalf("-partitioner: %v", err)
	}
	reg := obs.NewRegistry()
	var opsAddr string
	if *metricsAddr != "" {
		ops, err := obs.StartOps(*metricsAddr, reg)
		if err != nil {
			fatalf("metrics-addr: %v", err)
		}
		defer ops.Close()
		opsAddr = ops.Addr()
		logger.Infof("metrics on http://%s/metrics (pprof under /debug/pprof/)", opsAddr)
	}

	g, err := graph.LoadEdgeListFile(*graphPath)
	if err != nil {
		fatalf("load graph: %v", err)
	}
	pt, err := strat.Partition(g, *numShards)
	if err != nil {
		fatalf("partition (%s): %v", strat.Name(), err)
	}
	// ExtractOne materializes only this shard's partition: startup memory
	// scales with the shard's share of the graph, not all k partitions.
	sub := partition.ExtractOne(g, pt, *shardID)
	sh := shard.New(*shardID, sub)
	logger.Infof("shard %d/%d (%s-partitioned): %d of %d vertices, %d entries, %d exits",
		*shardID, *numShards, strat.Name(), sh.NumVertices(), g.NumVertices(),
		len(sub.Entries), len(sub.Exits))

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatalf("listen: %v", err)
	}
	logger.Infof("serving on %s", ln.Addr())
	srv := shard.NewServer(sh, *numShards, g.NumVertices(), g.Fingerprint(), pt.Digest())
	srv.Instrument(reg, logger)
	// Announce the ops address in the handshake so the coordinator's
	// /fleet view can scrape this replica without extra configuration.
	srv.AnnounceMetrics(opsAddr)

	// Graceful drain on SIGTERM/SIGINT: finish in-flight batches, refuse
	// new connections, then exit 0 (Serve returns nil once draining).
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	go func() {
		sig := <-sigc
		logger.Infof("received %v: draining (answering in-flight batches, refusing new connections)", sig)
		srv.Shutdown()
		logger.Infof("drained")
	}()

	// ErrClosed means a drain began before Serve was entered (a SIGTERM
	// racing startup) — that is a clean shutdown, not a serving failure.
	if err := srv.Serve(ln); err != nil && !errors.Is(err, shard.ErrClosed) {
		fatalf("serve: %v", err)
	}
	// Make sure the drain fully finished before exiting (Serve can
	// return the moment the listener closes, while a batch is still
	// being answered).
	srv.Shutdown()
	logger.Infof("exiting")
}
