// Command dsr-shard runs one DSR shard server: it loads the graph,
// hash-partitions it into the deployment's shard count, extracts and
// indexes its own partition, and serves local-search RPCs over TCP.
//
//	dsr-shard -graph edges.txt -shards 3 -id 0 -listen 127.0.0.1:7000 -partitioner locality
//
// Every shard of a deployment (and the coordinator, see dsr-query or
// core.NewDistributed) must load the same graph file with the same
// -shards count and the same -partitioner spec: every partitioner is
// deterministic, so all processes agree on vertex placement and local
// IDs without any coordination traffic. The connect-time handshake
// rejects clients whose shard count, vertex count, graph fingerprint,
// or partitioning digest disagrees.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"dsr/internal/graph"
	"dsr/internal/partition"
	"dsr/internal/partition/locality"
	"dsr/internal/shard"
)

func main() {
	log.SetPrefix("dsr-shard: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)
	var (
		graphPath   = flag.String("graph", "", "edge-list file (required): one 'u v' pair per line")
		numShards   = flag.Int("shards", 1, "total shard count of the deployment")
		shardID     = flag.Int("id", 0, "this shard's index in [0, shards)")
		listen      = flag.String("listen", "127.0.0.1:7000", "TCP address to serve on")
		partitioner = flag.String("partitioner", "hash", "partitioning strategy: hash, range, or locality[:seed=N,rounds=N,balance=F,refine=N]; must match the coordinator's")
	)
	flag.Parse()
	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "dsr-shard: -graph is required")
		flag.Usage()
		os.Exit(2)
	}
	if *shardID < 0 || *shardID >= *numShards {
		log.Fatalf("-id %d outside [0, %d)", *shardID, *numShards)
	}
	strat, err := locality.ParseSpec(*partitioner)
	if err != nil {
		log.Fatalf("-partitioner: %v", err)
	}

	g, err := graph.LoadEdgeListFile(*graphPath)
	if err != nil {
		log.Fatalf("load graph: %v", err)
	}
	pt, err := strat.Partition(g, *numShards)
	if err != nil {
		log.Fatalf("partition (%s): %v", strat.Name(), err)
	}
	// ExtractOne materializes only this shard's partition: startup memory
	// scales with the shard's share of the graph, not all k partitions.
	sub := partition.ExtractOne(g, pt, *shardID)
	sh := shard.New(*shardID, sub)
	log.Printf("shard %d/%d (%s-partitioned): %d of %d vertices, %d entries, %d exits",
		*shardID, *numShards, strat.Name(), sh.NumVertices(), g.NumVertices(),
		len(sub.Entries), len(sub.Exits))

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("serving on %s", ln.Addr())
	srv := shard.NewServer(sh, *numShards, g.NumVertices(), g.Fingerprint(), pt.Digest())
	if err := srv.Serve(ln); err != nil {
		log.Fatalf("serve: %v", err)
	}
}
