package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"syscall"
	"testing"
	"time"

	"dsr/internal/obs"
	"dsr/internal/snapshot"
)

// shardProc wraps one running dsr-shard, with its stderr scanned for
// the announce lines the tests synchronize on.
type shardProc struct {
	t       *testing.T
	cmd     *exec.Cmd
	serving chan string // "serving on <addr>"
	metrics chan string // metrics endpoint URL
	lines   chan string // every stderr line, for pattern waits
	done    bool
}

func startShard(t *testing.T, bin string, args ...string) *shardProc {
	t.Helper()
	p := &shardProc{
		t:       t,
		cmd:     exec.Command(bin, args...),
		serving: make(chan string, 1),
		metrics: make(chan string, 1),
		lines:   make(chan string, 256),
	}
	stderr, err := p.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if !p.done {
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
	})
	servingRe := regexp.MustCompile(`serving on (\S+)`)
	metricsRe := regexp.MustCompile(`metrics on (http://\S+/metrics)`)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if m := servingRe.FindStringSubmatch(line); m != nil {
				p.serving <- m[1]
			}
			if m := metricsRe.FindStringSubmatch(line); m != nil {
				p.metrics <- m[1]
			}
			select {
			case p.lines <- line:
			default:
			}
		}
		close(p.lines)
	}()
	return p
}

// waitLine blocks until a stderr line matches pattern, failing after a
// generous timeout. Lines are consumed.
func (p *shardProc) waitLine(pattern string) string {
	p.t.Helper()
	re := regexp.MustCompile(pattern)
	deadline := time.After(30 * time.Second)
	for {
		select {
		case line, ok := <-p.lines:
			if !ok {
				p.t.Fatalf("stderr closed before matching %q", pattern)
			}
			if re.MatchString(line) {
				return line
			}
		case <-deadline:
			p.t.Fatalf("no stderr line matched %q within 30s", pattern)
		}
	}
}

func (p *shardProc) waitServing() string {
	p.t.Helper()
	select {
	case addr := <-p.serving:
		return addr
	case <-time.After(30 * time.Second):
		p.t.Fatal("shard never started serving")
		return ""
	}
}

// drain SIGTERMs the shard and requires a clean exit.
func (p *shardProc) drain() {
	p.t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		p.t.Fatal(err)
	}
	if err := p.cmd.Wait(); err != nil {
		p.t.Fatalf("SIGTERM drain did not exit 0: %v", err)
	}
	p.done = true
}

// counter fetches the named counter from the shard's /metrics endpoint.
func (p *shardProc) counter(name string) uint64 {
	p.t.Helper()
	var url string
	select {
	case url = <-p.metrics:
	case <-time.After(30 * time.Second):
		p.t.Fatal("shard never announced its metrics endpoint")
	}
	resp, err := http.Get(url)
	if err != nil {
		p.t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		p.t.Fatalf("decode /metrics: %v", err)
	}
	return snap.Counters[name]
}

// TestSnapshotBootCycleTCP drives the full snapshot lifecycle through
// the real binary: a cold boot from -graph writes a snapshot, the next
// boot loads it with no -graph at all, a corrupted file falls back to a
// rebuild (rewriting a good snapshot) with a logged warning, and a
// corrupted file with no -graph to rebuild from is fatal.
func TestSnapshotBootCycleTCP(t *testing.T) {
	bin, graphPath := buildShard(t)
	snapDir := t.TempDir()
	snapPath := filepath.Join(snapDir, snapshot.Filename(0, 1))

	// Boot 1: rebuild from -graph, persist the snapshot before serving.
	p1 := startShard(t, bin, "-graph", graphPath, "-snapshot-dir", snapDir, "-listen", "127.0.0.1:0")
	p1.waitLine(`wrote snapshot .*\.dsrsnap \(\d+ bytes\)`)
	p1.waitServing()
	p1.drain()
	if _, err := os.Stat(snapPath); err != nil {
		t.Fatalf("snapshot not on disk after boot 1: %v", err)
	}
	good, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}

	// Boot 2: snapshot only — no -graph anywhere near the process.
	p2 := startShard(t, bin, "-snapshot-dir", snapDir, "-listen", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0")
	p2.waitLine(`loaded snapshot .*graph file not read`)
	p2.waitServing()
	if got := p2.counter("dsr_snapshot_loads_total"); got != 1 {
		t.Errorf("dsr_snapshot_loads_total = %d, want 1", got)
	}
	p2.drain()

	// Corrupt the snapshot: flip a payload byte.
	bad := append([]byte{}, good...)
	bad[len(bad)/2] ^= 0x20
	if err := os.WriteFile(snapPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}

	// Boot 3: corruption is a logged warning and a rebuild, never a
	// wrong answer — and the rebuild path rewrites a good snapshot.
	p3 := startShard(t, bin, "-graph", graphPath, "-snapshot-dir", snapDir,
		"-listen", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0")
	p3.waitLine(`snapshot unusable, rebuilding from -graph`)
	p3.waitLine(`wrote snapshot`)
	p3.waitServing()
	if got := p3.counter("dsr_snapshot_load_failures_total"); got != 1 {
		t.Errorf("dsr_snapshot_load_failures_total = %d, want 1", got)
	}
	p3.drain()
	rewritten, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(rewritten) != string(good) {
		t.Error("rebuild did not restore the original snapshot bytes (encoding should be deterministic)")
	}

	// Boot 4: corrupt snapshot and nothing to rebuild from — fatal.
	if err := os.WriteFile(snapPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "-snapshot-dir", snapDir, "-listen", "127.0.0.1:0").CombinedOutput()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 1 {
		t.Fatalf("corrupt snapshot without -graph: err = %v, want exit 1\n%s", err, out)
	}
	if !regexp.MustCompile(`unusable and no -graph`).Match(out) {
		t.Errorf("stderr missing the no-rebuild-path diagnostic:\n%s", out)
	}
}

// TestSnapshotVerifyTCP: -snapshot-verify passes on a snapshot matching
// the rebuilt state and exits non-zero when the stored snapshot was
// built from a different graph.
func TestSnapshotVerifyTCP(t *testing.T) {
	bin, graphPath := buildShard(t)
	snapDir := t.TempDir()

	// Seed the snapshot, then verify against the same graph: match.
	p1 := startShard(t, bin, "-graph", graphPath, "-snapshot-dir", snapDir, "-listen", "127.0.0.1:0")
	p1.waitLine(`wrote snapshot`)
	p1.waitServing()
	p1.drain()

	p2 := startShard(t, bin, "-graph", graphPath, "-snapshot-dir", snapDir,
		"-snapshot-verify", "-listen", "127.0.0.1:0")
	p2.waitLine(`snapshot-verify: .* matches the rebuilt state`)
	p2.waitServing()
	p2.drain()

	// Same snapshot, different graph: the rebuilt bytes differ, which
	// -snapshot-verify must make fatal.
	orig, err := os.ReadFile(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	drifted := filepath.Join(t.TempDir(), "drifted.txt")
	if err := os.WriteFile(drifted, append([]byte{}, append(orig, []byte("0 7\n")...)...), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "-graph", drifted, "-snapshot-dir", snapDir,
		"-snapshot-verify", "-listen", "127.0.0.1:0").CombinedOutput()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 1 {
		t.Fatalf("snapshot-verify on drifted graph: err = %v, want exit 1\n%s", err, out)
	}
	if !regexp.MustCompile(`does not match the state rebuilt from -graph`).Match(out) {
		t.Errorf("stderr missing the verify mismatch diagnostic:\n%s", out)
	}

	// Usage gate: -snapshot-verify without both inputs is exit 2.
	out, err = exec.Command(bin, "-graph", graphPath, "-snapshot-verify").CombinedOutput()
	if !errors.As(err, &ee) || ee.ExitCode() != 2 {
		t.Fatalf("-snapshot-verify without -snapshot-dir: err = %v, want exit 2\n%s", err, out)
	}
	if !regexp.MustCompile(`-snapshot-verify needs both`).Match(out) {
		t.Errorf("stderr missing the usage diagnostic:\n%s", out)
	}
}
