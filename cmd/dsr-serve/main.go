// Command dsr-serve is the always-on DSR serving layer: it connects to
// a fleet of dsr-shard servers once, then accepts many client
// connections speaking the dsr-query line protocol ("s1 s2 | t1 t2"
// per line; "true", "false", or "error <kind>" per answer) and
// multiplexes them all onto that one coordinator.
//
//	dsr-serve -shards a:7000|b:7000,c:7001|d:7001 -listen :7200
//
// What the layer adds over running dsr-query per client:
//
//   - Cross-client batching: queries arriving within -batch-window (from
//     any connection) share one engine round, so shard RPC fan-out is
//     paid per batch, not per query.
//   - Result cache: a 2Q LRU over canonicalized query sets (-cache
//     entries; negative disables). Sound because the served graph is
//     immutable for the life of the fleet.
//   - Hedged requests (-hedge, replica groups required): batches that
//     outlast a latency quantile are re-sent to an idle sibling
//     replica, first answer wins.
//   - Admission control: -max-queued bounds total outstanding work,
//     -max-per-client keeps one connection from monopolizing it, and
//     rejected queries get "error overload: <scope>" immediately
//     instead of queueing forever.
//
// Flag misuse exits 2; a fleet whose shards disagree with each other
// exits 3 (same contract as dsr-query); other startup failures exit 1.
// SIGINT/SIGTERM drain gracefully: the listener closes, in-flight
// requests finish (bounded by -drain), then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"dsr/internal/core"
	"dsr/internal/obs"
	"dsr/internal/obs/fleet"
	"dsr/internal/serve"
)

// dsr-serve shares dsr-query's exit-code contract (README.md, "Exit
// codes"): 0 clean shutdown, 1 runtime failure or incomplete drain,
// 2 flag misuse, 3 misassembled fleet.
const (
	exitOK       = 0
	exitFailure  = 1
	exitUsage    = 2
	exitMismatch = 3
)

func main() {
	var (
		shards         = flag.String("shards", "", "comma-separated shard addresses (shard i at position i), each optionally a 'a|b' replica group (required)")
		listen         = flag.String("listen", ":7200", "address to serve the query protocol on")
		connectTimeout = flag.Duration("connect-timeout", 30*time.Second, "time limit for dialing the fleet and fetching boundary summaries")
		metricsAddr    = flag.String("metrics-addr", "", "serve the metrics registry (JSON at /metrics) and net/http/pprof on this address; empty disables")
		slowQuery      = flag.Duration("slow-query", 0, "log a structured span trace for any batch slower than this; 0 disables")
		logLevel       = flag.String("log-level", "info", "log level floor: debug, info, warn, or error")
		drain          = flag.Duration("drain", 10*time.Second, "graceful-shutdown budget for in-flight requests on SIGINT/SIGTERM")

		batchWindow  = flag.Duration("batch-window", 250*time.Microsecond, "how long the first query of a batch waits for company before the batch departs")
		batchMax     = flag.Int("batch-max", 64, "depart a batch early once it holds this many queries")
		cacheEntries = flag.Int("cache", 4096, "result-cache capacity in entries; negative disables caching")
		maxQueued    = flag.Int("max-queued", 1024, "server-wide bound on queries admitted but not yet answered; beyond it clients get 'error overload: server'")
		maxPerClient = flag.Int("max-per-client", 256, "per-connection outstanding-query bound; beyond it that client gets 'error overload: client'")
		maxInFlight  = flag.Int("max-inflight", 4, "concurrent engine batch rounds; excess batches queue")

		hedge           = flag.Bool("hedge", false, "hedge slow shard rounds onto idle sibling replicas (requires replica groups in -shards)")
		hedgePercentile = flag.Float64("hedge-percentile", 0.99, "latency quantile of a partition's primary RPCs that arms the hedge deadline")
		hedgeMin        = flag.Duration("hedge-min", time.Millisecond, "lower clamp on the hedge deadline")
		hedgeMax        = flag.Duration("hedge-max", 100*time.Millisecond, "upper clamp on the hedge deadline, and the deadline while latency samples warm up")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsr-serve: -log-level: %v\n", err)
		os.Exit(exitUsage)
	}
	logger := obs.StderrLogger(level).With("component", "dsr-serve")
	if *shards == "" {
		fmt.Fprintln(os.Stderr, "dsr-serve: -shards is required: the serving layer fronts a running shard fleet")
		flag.Usage()
		os.Exit(exitUsage)
	}

	reg := obs.NewRegistry()
	// Same bring-up order as dsr-query: the ops endpoint is alive while
	// the fleet connect is still in progress, reading the engine through
	// an atomic pointer that fills in once connected.
	var engPtr atomic.Pointer[core.Engine]
	agg := fleet.New(reg, func() []fleet.Target {
		e := engPtr.Load()
		if e == nil {
			return nil
		}
		eps := e.Endpoints()
		targets := make([]fleet.Target, len(eps))
		for i, ep := range eps {
			targets[i] = fleet.Target{
				Partition:   ep.Partition,
				Replica:     ep.Replica,
				Addr:        ep.Addr,
				MetricsAddr: ep.MetricsAddr,
				Live:        ep.Live,
			}
		}
		return targets
	}, 0)
	var ops *obs.OpsServer // closed explicitly: os.Exit below skips defers
	if *metricsAddr != "" {
		ops, err = obs.StartOps(*metricsAddr, reg, obs.Mount{Pattern: "/fleet", Handler: agg.Handler()})
		if err != nil {
			logger.Errorf("metrics-addr: %v", err)
			os.Exit(exitFailure)
		}
		logger.Infof("metrics on http://%s/metrics (fleet view at /fleet, pprof under /debug/pprof/)", ops.Addr())
	}

	ctx, cancel := context.WithTimeout(context.Background(), *connectTimeout)
	eng, err := core.Connect(ctx, core.ClusterSpec{
		Groups:    strings.Split(*shards, ","),
		Log:       logger,
		Metrics:   reg,
		SlowQuery: *slowQuery,
		Hedge: core.HedgeOptions{
			Enabled:    *hedge,
			Percentile: *hedgePercentile,
			Min:        *hedgeMin,
			Max:        *hedgeMax,
		},
	})
	cancel()
	if err != nil {
		logger.Errorf("connect shards: %v", err)
		var me *core.MismatchError
		if errors.As(err, &me) {
			os.Exit(exitMismatch)
		}
		os.Exit(exitFailure)
	}
	engPtr.Store(eng)
	logger.Infof("connected to %d shards, %d boundary vertices, %d coordinator-resident bytes",
		eng.NumPartitions(), eng.NumBoundary(), eng.ResidentBytes())

	srv := serve.New(eng, serve.Options{
		BatchWindow:  *batchWindow,
		MaxBatch:     *batchMax,
		CacheEntries: *cacheEntries,
		MaxQueued:    *maxQueued,
		MaxPerClient: *maxPerClient,
		MaxInFlight:  *maxInFlight,
		Metrics:      reg,
		Log:          logger,
	})
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		logger.Errorf("listen: %v", err)
		eng.Close()
		ops.Close()
		os.Exit(exitFailure)
	}
	logger.Infof("serving on %s", ln.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	servec := make(chan error, 1)
	go func() { servec <- srv.Serve(ln) }()

	code := exitOK
	select {
	case sig := <-sigc:
		logger.Infof("%s: draining (up to %v)", sig, *drain)
		dctx, dcancel := context.WithTimeout(context.Background(), *drain)
		if err := srv.Shutdown(dctx); err != nil {
			logger.Warnf("drain incomplete: %v", err)
			code = exitFailure
		}
		dcancel()
		<-servec
	case err := <-servec:
		// The accept loop died without a shutdown — a real failure.
		logger.Errorf("serve: %v", err)
		code = exitFailure
	}
	eng.Close()
	ops.Close()
	os.Exit(code)
}
