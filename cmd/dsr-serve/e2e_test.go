package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"dsr/internal/graph"
	"dsr/internal/serve"
	"dsr/internal/shard/chaos"
)

// TestServeBinaryEndToEnd builds the real dsr-shard and dsr-serve
// binaries and proves the four serving-layer claims against a live TCP
// deployment: two clients' queries share one engine batch, a repeated
// query is answered from the cache, a saturated server sheds with the
// typed overload response, and with a chaos-delayed replica hedges
// fire while every answer stays correct. Plus the contract edges:
// missing -shards is a usage error (exit 2) and SIGTERM drains to exit
// 0.
func TestServeBinaryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin, "./...")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	graphPath, err := filepath.Abs(filepath.Join("..", "..", "internal", "graph", "testdata", "tiny.txt"))
	if err != nil {
		t.Fatal(err)
	}

	t.Run("flag-misuse", func(t *testing.T) {
		var stderr strings.Builder
		cmd := exec.Command(filepath.Join(bin, "dsr-serve"))
		cmd.Stderr = &stderr
		err := cmd.Run()
		var ee *exec.ExitError
		if !isExit(err, &ee) || ee.ExitCode() != 2 {
			t.Fatalf("no -shards: %v, want exit 2\nstderr:\n%s", err, stderr.String())
		}
		if !strings.Contains(stderr.String(), "-shards is required") {
			t.Fatalf("usage error does not name -shards:\n%s", stderr.String())
		}
	})

	shardAddrs := bootShardFleet(t, bin, graphPath, 3, "hash")
	fleetSpec := strings.Join(shardAddrs, ",")

	t.Run("cross-client-batching", func(t *testing.T) {
		// A 5s window with MaxBatch 2 means the only way both clients
		// get answers promptly is by sharing one batch: the second
		// arrival is what makes the batch depart.
		sv := startServe(t, bin, "-shards", fleetSpec,
			"-batch-window", "5s", "-batch-max", "2", "-cache", "-1")
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(v graph.VertexID) {
				defer wg.Done()
				c, err := serve.Dial(sv.addr)
				if err != nil {
					t.Errorf("dial: %v", err)
					return
				}
				defer c.Close()
				ans, err := c.Query([]graph.VertexID{v}, []graph.VertexID{7})
				if err != nil || !ans {
					t.Errorf("client %d: (%v, %v), want true", v, ans, err)
				}
			}(graph.VertexID(i))
		}
		wg.Wait()
		counters := scrapeCounters(t, sv.metricsAddr)
		if got := counters["dsr_serve_batches_total"]; got != 1 {
			t.Errorf("dsr_serve_batches_total = %d, want 1 shared batch", got)
		}
		if got := counters["dsr_serve_queries_total"]; got != 2 {
			t.Errorf("dsr_serve_queries_total = %d, want 2", got)
		}
		sv.drain(t)
	})

	t.Run("cache-hit", func(t *testing.T) {
		sv := startServe(t, bin, "-shards", fleetSpec)
		c, err := serve.Dial(sv.addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		for i := 0; i < 2; i++ {
			if ans, err := c.Query([]graph.VertexID{0}, []graph.VertexID{7}); err != nil || !ans {
				t.Fatalf("query %d: (%v, %v), want true", i, ans, err)
			}
		}
		// Same sets, different order: still one cache key.
		if ans, err := c.Query([]graph.VertexID{7, 0}, []graph.VertexID{7}); err != nil || !ans {
			t.Fatalf("permuted query: (%v, %v), want true", ans, err)
		}
		counters := scrapeCounters(t, sv.metricsAddr)
		if got := counters["dsr_cache_hits_total"]; got < 1 {
			t.Errorf("dsr_cache_hits_total = %d, want >= 1", got)
		}
		sv.drain(t)
	})

	t.Run("load-shedding", func(t *testing.T) {
		// One admission slot per client and a window long enough to pin
		// it: a pipeline of 3 gets exactly one answer and two typed
		// overload rejections.
		sv := startServe(t, bin, "-shards", fleetSpec,
			"-batch-window", "300ms", "-max-per-client", "1", "-cache", "-1")
		c, err := serve.Dial(sv.addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		for i := 0; i < 3; i++ {
			if err := c.Send([]graph.VertexID{0}, []graph.VertexID{graph.VertexID(5 + i)}); err != nil {
				t.Fatal(err)
			}
		}
		if ans, err := c.Recv(); err != nil || !ans {
			t.Fatalf("admitted query: (%v, %v), want true", ans, err)
		}
		for i := 0; i < 2; i++ {
			_, err := c.Recv()
			oe, ok := err.(*serve.OverloadError)
			if !ok || oe.Scope != "client" {
				t.Fatalf("shed query %d: err = %v, want OverloadError{client}", i, err)
			}
		}
		counters := scrapeCounters(t, sv.metricsAddr)
		if got := counters["dsr_serve_shed_total{scope=client}"]; got != 2 {
			t.Errorf("client sheds = %d, want 2", got)
		}
		sv.drain(t)
	})

	t.Run("hedging", func(t *testing.T) {
		// R=2 per partition: the second replica sits behind a chaos
		// proxy that delays every frame up to 30ms. With round-robin
		// replica pick, about half the rounds land on the slow primary;
		// a 10ms hedge ceiling re-sends those to the fast sibling.
		slowAddrs := bootShardFleet(t, bin, graphPath, 3, "hash")
		groups := make([]string, 3)
		for p := 0; p < 3; p++ {
			proxy, err := chaos.NewProxy(slowAddrs[p], chaos.ProxyOptions{
				Seed: int64(100 + p), DelayProb: 1, MaxDelay: 30 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { proxy.Close() })
			groups[p] = shardAddrs[p] + "|" + proxy.Addr()
		}
		sv := startServe(t, bin, "-shards", strings.Join(groups, ","),
			"-cache", "-1", "-hedge", "-hedge-max", "10ms", "-hedge-min", "1ms")
		c, err := serve.Dial(sv.addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		// tiny.txt: 0 reaches 7 across the bridge, 7 never reaches 0.
		for i := 0; i < 30; i++ {
			if ans, err := c.Query([]graph.VertexID{0}, []graph.VertexID{7}); err != nil || !ans {
				t.Fatalf("round %d: 0->7 = (%v, %v), want true", i, ans, err)
			}
			if ans, err := c.Query([]graph.VertexID{7}, []graph.VertexID{0}); err != nil || ans {
				t.Fatalf("round %d: 7->0 = (%v, %v), want false", i, ans, err)
			}
		}
		counters := scrapeCounters(t, sv.metricsAddr)
		var hedges uint64
		for p := 0; p < 3; p++ {
			hedges += counters[fmt.Sprintf("dsr_hedges_total{partition=%d}", p)]
		}
		if hedges == 0 {
			t.Error("no hedge fired despite a delayed replica and a 10ms ceiling")
		}
		sv.drain(t)
	})
}

// serveProc is one running dsr-serve process plus its parsed addresses.
type serveProc struct {
	cmd         *exec.Cmd
	addr        string // query protocol
	metricsAddr string
}

// startServe boots dsr-serve with a metrics endpoint and waits for it
// to announce both listeners; the process is killed on test cleanup if
// drain wasn't called.
func startServe(t *testing.T, bin string, args ...string) *serveProc {
	t.Helper()
	args = append(args, "-listen", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0")
	cmd := exec.Command(filepath.Join(bin, "dsr-serve"), args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	proc := cmd.Process
	t.Cleanup(func() { proc.Kill(); cmd.Wait() })

	serveRe := regexp.MustCompile(`serving on (\S+)`)
	metricsRe := regexp.MustCompile(`metrics on http://(\S+)/metrics`)
	sv := &serveProc{cmd: cmd}
	readyc := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if m := metricsRe.FindStringSubmatch(line); m != nil {
				sv.metricsAddr = m[1]
			}
			if m := serveRe.FindStringSubmatch(line); m != nil {
				sv.addr = m[1]
				close(readyc)
				break
			}
		}
		// Keep draining so the process never blocks on stderr.
		for sc.Scan() {
		}
	}()
	select {
	case <-readyc:
	case <-time.After(30 * time.Second):
		t.Fatal("dsr-serve never announced its address")
	}
	return sv
}

// drain sends SIGTERM and requires a clean exit — the graceful path.
func (sv *serveProc) drain(t *testing.T) {
	t.Helper()
	sv.cmd.Process.Signal(syscall.SIGTERM)
	if err := sv.cmd.Wait(); err != nil {
		t.Fatalf("dsr-serve did not drain cleanly: %v", err)
	}
}

// scrapeCounters fetches the ops endpoint's snapshot and returns the
// counters map (labels rendered into the names).
func scrapeCounters(t *testing.T, addr string) map[string]uint64 {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap.Counters
}

// bootShardFleet starts k dsr-shard processes and returns their
// addresses; killed on test cleanup. Same harness as the dsr-query
// e2e.
func bootShardFleet(t *testing.T, bin, graphPath string, k int, spec string) []string {
	t.Helper()
	addrRe := regexp.MustCompile(`serving on (\S+)`)
	var addrs []string
	for i := 0; i < k; i++ {
		cmd := exec.Command(filepath.Join(bin, "dsr-shard"),
			"-graph", graphPath, "-shards", fmt.Sprint(k), "-id", fmt.Sprint(i),
			"-partitioner", spec, "-listen", "127.0.0.1:0")
		stderr, err := cmd.StderrPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		proc := cmd.Process
		t.Cleanup(func() { proc.Kill(); cmd.Wait() })

		addrCh := make(chan string, 1)
		go func() {
			sc := bufio.NewScanner(stderr)
			for sc.Scan() {
				if m := addrRe.FindStringSubmatch(sc.Text()); m != nil {
					addrCh <- m[1]
				}
			}
		}()
		select {
		case addr := <-addrCh:
			addrs = append(addrs, addr)
		case <-time.After(30 * time.Second):
			t.Fatalf("shard %d never reported its address", i)
		}
	}
	return addrs
}

// isExit reports whether err is an *exec.ExitError, filling ee.
func isExit(err error, ee **exec.ExitError) bool {
	if err == nil {
		return false
	}
	e, ok := err.(*exec.ExitError)
	if ok {
		*ee = e
	}
	return ok
}
