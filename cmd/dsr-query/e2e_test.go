package main

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestBinariesTCPEndToEnd builds the real dsr-shard and dsr-query
// binaries, boots a 3-shard deployment on localhost, and runs a query
// session through the CLI — the full launchable system, not just the
// in-process transports. The coordinator side is graph-free: dsr-query
// gets nothing but -shards and learns the deployment from the shipped
// boundary summaries. The exercise repeats for the hash and the
// locality partitioner (which only the shards know about), checks the
// misassembled-fleet (exit 3) and misused-flag (exit 2) paths, and
// finishes with a malformed-input session that must exit non-zero
// while still answering the well-formed lines. Shards listen on port 0
// and the test parses the bound address from their logs, so no port is
// assumed free.
func TestBinariesTCPEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin, "./...")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	graphPath, err := filepath.Abs(filepath.Join("..", "..", "internal", "graph", "testdata", "tiny.txt"))
	if err != nil {
		t.Fatal(err)
	}

	for _, spec := range []string{"hash", "locality:seed=7"} {
		t.Run(strings.Split(spec, ":")[0], func(t *testing.T) {
			addrs := bootShardFleet(t, bin, graphPath, 3, spec)

			queries := strings.Join([]string{
				"0 | 7",     // across the bridge
				"7 | 0",     // against the bridge
				"4 | 4",     // reflexive
				"# comment", // ignored
				"0 1 | 100", // out-of-range target
			}, "\n")
			want := "true\nfalse\ntrue\nfalse\n"

			for _, batch := range []bool{false, true} {
				// Graph-free coordinator: the only thing dsr-query is told
				// is where the shards are.
				args := []string{"-shards", strings.Join(addrs, ",")}
				if batch {
					args = append(args, "-batch")
				}
				out, code := runQueryBinary(t, filepath.Join(bin, "dsr-query"), args, queries, os.Stderr)
				wantExit(t, fmt.Sprintf("clean session (batch=%v)", batch), code, exitOK)
				if out != want {
					t.Errorf("dsr-query (batch=%v) output:\n%swant:\n%s", batch, out, want)
				}
			}
		})
	}

	// A misassembled fleet — shards from two deployments with different
	// partitionings — must be refused at connect time with the dedicated
	// exit status 3, before any query runs.
	t.Run("fleet-mismatch", func(t *testing.T) {
		hashAddrs := bootShardFleet(t, bin, graphPath, 3, "hash")
		locAddrs := bootShardFleet(t, bin, graphPath, 3, "locality:seed=7")
		mixed := []string{hashAddrs[0], hashAddrs[1], locAddrs[2]}
		var stderr strings.Builder
		_, code := runQueryBinary(t, filepath.Join(bin, "dsr-query"),
			[]string{"-shards", strings.Join(mixed, ",")}, "0 | 7", &stderr)
		wantExit(t, "mixed fleet", code, exitMismatch)
		if !strings.Contains(stderr.String(), "fleet mismatch") {
			t.Errorf("mismatch error does not name the fleet mismatch:\n%s", stderr.String())
		}
	})

	// Graph-describing flags make no sense on the graph-free coordinator
	// and must be rejected as usage errors, not silently ignored.
	t.Run("flag-misuse", func(t *testing.T) {
		var stderr strings.Builder
		_, code := runQueryBinary(t, filepath.Join(bin, "dsr-query"),
			[]string{"-graph", graphPath, "-shards", "127.0.0.1:1"}, "", &stderr)
		wantExit(t, "-graph with -shards", code, exitUsage)
		if !strings.Contains(stderr.String(), "cannot be combined with -shards") {
			t.Errorf("usage error does not explain the conflict:\n%s", stderr.String())
		}
	})

	// Malformed lines: per-line stderr errors, remaining queries still
	// answered, non-zero exit (in both modes). Previously the process
	// died at the first bad line and dropped the rest of the workload.
	t.Run("malformed-input", func(t *testing.T) {
		for _, batch := range []bool{false, true} {
			args := []string{"-graph", graphPath, "-k", "2"}
			if batch {
				args = append(args, "-batch")
			}
			var stderr strings.Builder
			out, code := runQueryBinary(t, filepath.Join(bin, "dsr-query"), args,
				"0 | 7\nbogus line\n7 | 0", &stderr)
			wantExit(t, fmt.Sprintf("malformed input (batch=%v)", batch), code, exitPartial)
			if want := "true\nfalse\n"; out != want {
				t.Errorf("batch=%v: output %q, want %q", batch, out, want)
			}
			if !strings.Contains(stderr.String(), "line 2") {
				t.Errorf("batch=%v: stderr does not name the bad line:\n%s", batch, stderr.String())
			}
		}
	})
}

// bootShardFleet starts k dsr-shard processes with the given
// partitioner spec and returns their addresses; the processes are
// killed on test cleanup.
func bootShardFleet(t *testing.T, bin, graphPath string, k int, spec string) []string {
	t.Helper()
	addrRe := regexp.MustCompile(`serving on (\S+)`)
	var addrs []string
	for i := 0; i < k; i++ {
		cmd := exec.Command(filepath.Join(bin, "dsr-shard"),
			"-graph", graphPath, "-shards", fmt.Sprint(k), "-id", fmt.Sprint(i),
			"-partitioner", spec, "-listen", "127.0.0.1:0")
		stderr, err := cmd.StderrPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		proc := cmd.Process
		t.Cleanup(func() { proc.Kill(); cmd.Wait() })

		addrCh := make(chan string, 1)
		go func() {
			sc := bufio.NewScanner(stderr)
			for sc.Scan() {
				if m := addrRe.FindStringSubmatch(sc.Text()); m != nil {
					addrCh <- m[1]
				}
			}
		}()
		select {
		case addr := <-addrCh:
			addrs = append(addrs, addr)
		case <-time.After(30 * time.Second):
			t.Fatalf("shard %d never reported its address", i)
		}
	}
	return addrs
}

// runQueryBinary runs dsr-query with the given stdin and returns its
// stdout and exit code; any failure that is not a plain non-zero exit
// is fatal.
func runQueryBinary(t *testing.T, bin string, args []string, stdin string, stderr io.Writer) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdin = strings.NewReader(stdin)
	cmd.Stderr = stderr
	out, err := cmd.Output()
	if err != nil {
		var exitErr *exec.ExitError
		if errors.As(err, &exitErr) {
			return string(out), exitErr.ExitCode()
		}
		t.Fatalf("dsr-query %v: %v", args, err)
	}
	return string(out), 0
}
