package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestBinariesTCPEndToEnd builds the real dsr-shard and dsr-query
// binaries, boots a 3-shard deployment on localhost, and runs a query
// session through the CLI — the full launchable system, not just the
// in-process transports. Shards listen on port 0 and the test parses
// the bound address from their logs, so no port is assumed free.
func TestBinariesTCPEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin, "./...")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	graphPath, err := filepath.Abs(filepath.Join("..", "..", "internal", "graph", "testdata", "tiny.txt"))
	if err != nil {
		t.Fatal(err)
	}

	const k = 3
	addrRe := regexp.MustCompile(`serving on (\S+)`)
	var addrs []string
	for i := 0; i < k; i++ {
		cmd := exec.Command(filepath.Join(bin, "dsr-shard"),
			"-graph", graphPath, "-shards", fmt.Sprint(k), "-id", fmt.Sprint(i),
			"-listen", "127.0.0.1:0")
		stderr, err := cmd.StderrPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		proc := cmd.Process
		t.Cleanup(func() { proc.Kill(); cmd.Wait() })

		addrCh := make(chan string, 1)
		go func() {
			sc := bufio.NewScanner(stderr)
			for sc.Scan() {
				if m := addrRe.FindStringSubmatch(sc.Text()); m != nil {
					addrCh <- m[1]
				}
			}
		}()
		select {
		case addr := <-addrCh:
			addrs = append(addrs, addr)
		case <-time.After(30 * time.Second):
			t.Fatalf("shard %d never reported its address", i)
		}
	}

	queries := strings.Join([]string{
		"0 | 7",     // across the bridge
		"7 | 0",     // against the bridge
		"4 | 4",     // reflexive
		"# comment", // ignored
		"0 1 | 100", // out-of-range target
	}, "\n")
	want := "true\nfalse\ntrue\nfalse\n"

	for _, batch := range []bool{false, true} {
		args := []string{"-graph", graphPath, "-shards", strings.Join(addrs, ",")}
		if batch {
			args = append(args, "-batch")
		}
		cmd := exec.Command(filepath.Join(bin, "dsr-query"), args...)
		cmd.Stdin = strings.NewReader(queries)
		cmd.Stderr = os.Stderr
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		out, err := io.ReadAll(stdout)
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Wait(); err != nil {
			t.Fatalf("dsr-query (batch=%v): %v", batch, err)
		}
		if string(out) != want {
			t.Errorf("dsr-query (batch=%v) output:\n%swant:\n%s", batch, out, want)
		}
	}
}
