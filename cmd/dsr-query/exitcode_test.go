package main

import "testing"

// exitCodeName names a code from the exit-code contract so failures
// read as the contract, not as bare integers.
func exitCodeName(code int) string {
	switch code {
	case exitOK:
		return "exitOK"
	case exitPartial:
		return "exitPartial"
	case exitUsage:
		return "exitUsage"
	case exitMismatch:
		return "exitMismatch"
	default:
		return "unknown"
	}
}

// wantExit is the one place tests assert an observed exit code —
// whether from runQueries or from a real dsr-query process — against
// the contract defined in main.go and documented in README.md ("Exit
// codes"). Routing every assertion through it keeps the constants, the
// table, and the tests from drifting apart.
func wantExit(t *testing.T, what string, got, want int) {
	t.Helper()
	if got != want {
		t.Errorf("%s: exit code = %d (%s), want %d (%s)",
			what, got, exitCodeName(got), want, exitCodeName(want))
	}
}

// TestExitCodeContract pins the constants to the values the README
// table documents: scripts in the wild branch on the raw integers, so
// renumbering them is a breaking change this test makes loud.
func TestExitCodeContract(t *testing.T) {
	contract := []struct {
		code int
		want int
		name string
	}{
		{exitOK, 0, "exitOK"},
		{exitPartial, 1, "exitPartial"},
		{exitUsage, 2, "exitUsage"},
		{exitMismatch, 3, "exitMismatch"},
	}
	for _, c := range contract {
		if c.code != c.want {
			t.Errorf("%s = %d, want %d (README.md exit-code table)", c.name, c.code, c.want)
		}
	}
}
