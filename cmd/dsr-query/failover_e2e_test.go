package main

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"dsr/internal/dsr"
	"dsr/internal/graph"
)

// TestBinariesTCPReplicaFailover is the binary-level failover e2e: a
// k=3 fleet with R=2 dsr-shard replicas per partition over real TCP,
// driven by the real dsr-query binary answering a query stream on
// stdin. Mid-stream, one replica of every partition is SIGTERMed; the
// stream must keep being answered correctly (differentially against
// NaiveReach), the killed processes must drain and exit 0, and the
// coordinator must exit 0 with every answer correct.
func TestBinariesTCPReplicaFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin, "./...")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	graphPath, err := filepath.Abs(filepath.Join("..", "..", "internal", "graph", "testdata", "tiny.txt"))
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.LoadEdgeListFile(graphPath)
	if err != nil {
		t.Fatal(err)
	}

	// Boot the replicated fleet: shards[p][r] is replica r of partition p.
	const k, R = 3, 2
	type proc struct {
		cmd  *exec.Cmd
		addr string
	}
	addrRe := regexp.MustCompile(`serving on (\S+)`)
	fleet := [k][R]*proc{}
	specs := make([]string, k)
	for p := 0; p < k; p++ {
		var group []string
		for r := 0; r < R; r++ {
			cmd := exec.Command(filepath.Join(bin, "dsr-shard"),
				"-graph", graphPath, "-shards", fmt.Sprint(k), "-id", fmt.Sprint(p),
				"-replica", fmt.Sprint(r), "-listen", "127.0.0.1:0")
			stderr, err := cmd.StderrPipe()
			if err != nil {
				t.Fatal(err)
			}
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			pr := &proc{cmd: cmd}
			fleet[p][r] = pr
			t.Cleanup(func() {
				if pr.cmd != nil {
					pr.cmd.Process.Kill()
					pr.cmd.Wait()
				}
			})
			addrCh := make(chan string, 1)
			go func() {
				sc := bufio.NewScanner(stderr)
				for sc.Scan() {
					if m := addrRe.FindStringSubmatch(sc.Text()); m != nil {
						addrCh <- m[1]
					}
				}
			}()
			select {
			case pr.addr = <-addrCh:
			case <-time.After(30 * time.Second):
				t.Fatalf("shard %d replica %d never reported its address", p, r)
			}
			group = append(group, pr.addr)
		}
		specs[p] = strings.Join(group, "|")
	}

	// The query stream, precomputed against the oracle.
	rng := rand.New(rand.NewSource(20260728))
	const nq = 40
	n := g.NumVertices()
	lines := make([]string, nq)
	want := make([]string, nq)
	for i := range lines {
		s := graph.VertexID(rng.Intn(n))
		d := graph.VertexID(rng.Intn(n))
		lines[i] = fmt.Sprintf("%d | %d", s, d)
		want[i] = fmt.Sprint(dsr.NaiveReach(g, []graph.VertexID{s}, []graph.VertexID{d}))
	}

	// Interactive session: answers are flushed per line, so we can
	// lock-step the stream and kill replicas at an exact point in it.
	query := exec.Command(filepath.Join(bin, "dsr-query"),
		"-shards", strings.Join(specs, ","))
	query.Stderr = os.Stderr
	stdin, err := query.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	stdout, err := query.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := query.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { query.Process.Kill(); query.Wait() })
	answers := bufio.NewReader(stdout)

	ask := func(i int) {
		t.Helper()
		if _, err := io.WriteString(stdin, lines[i]+"\n"); err != nil {
			t.Fatalf("query %d: write: %v", i, err)
		}
		got, err := answers.ReadString('\n')
		if err != nil {
			t.Fatalf("query %d: read answer: %v", i, err)
		}
		if got := strings.TrimSpace(got); got != want[i] {
			t.Fatalf("query %d (%s): got %s, oracle %s", i, lines[i], got, want[i])
		}
	}

	for i := 0; i < nq/2; i++ {
		ask(i)
	}

	// Mid-stream: SIGTERM replica 0 of every partition. The drain must
	// let each exit 0, and the coordinator must fail over to replica 1.
	for p := 0; p < k; p++ {
		pr := fleet[p][0]
		if err := pr.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
	}
	for p := 0; p < k; p++ {
		pr := fleet[p][0]
		if err := pr.cmd.Wait(); err != nil {
			t.Errorf("shard %d replica 0 did not drain cleanly on SIGTERM: %v", p, err)
		}
		pr.cmd = nil // cleanup must not re-kill
	}

	for i := nq / 2; i < nq; i++ {
		ask(i)
	}
	stdin.Close()
	if err := query.Wait(); err != nil {
		t.Fatalf("dsr-query exited non-zero after failover: %v", err)
	}
}
