package main

import (
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dsr/internal/core"
	"dsr/internal/graph"
	"dsr/internal/partition"
	"dsr/internal/shard"
)

func tinyEngine(t *testing.T) *core.Engine {
	t.Helper()
	g, err := graph.LoadEdgeListFile(filepath.Join("..", "..", "internal", "graph", "testdata", "tiny.txt"))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.Build(g, core.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	return eng
}

// TestRunQueriesMalformedLines: a malformed query line must produce a
// per-line error on stderr and a non-zero exit code — in both modes —
// while the well-formed queries around it still get answers. (The old
// behavior died on the first bad line, losing the rest of the
// workload; worse, a pipeline reading only stdout had no per-line
// indication of *which* input was dropped.)
func TestRunQueriesMalformedLines(t *testing.T) {
	for _, batch := range []bool{false, true} {
		eng := tinyEngine(t)
		in := strings.NewReader(strings.Join([]string{
			"0 | 7",        // valid: true
			"no pipe here", // malformed: no separator
			"1 2 | x",      // malformed: bad vertex
			"7 | 0",        // valid: false
		}, "\n"))
		var out, errw strings.Builder
		code := runQueries(eng, in, &out, &errw, batch, nil)
		wantExit(t, fmt.Sprintf("malformed lines (batch=%v)", batch), code, exitPartial)
		if got, want := out.String(), "true\nfalse\n"; got != want {
			t.Errorf("batch=%v: stdout = %q, want %q", batch, got, want)
		}
		stderr := errw.String()
		for _, want := range []string{"line 2", "line 3", "2 malformed line(s)"} {
			if !strings.Contains(stderr, want) {
				t.Errorf("batch=%v: stderr missing %q:\n%s", batch, want, stderr)
			}
		}
	}
}

func TestRunQueriesCleanInput(t *testing.T) {
	for _, batch := range []bool{false, true} {
		eng := tinyEngine(t)
		in := strings.NewReader("# comment\n\n0 | 7\n4 | 4\n")
		var out, errw strings.Builder
		code := runQueries(eng, in, &out, &errw, batch, nil)
		wantExit(t, fmt.Sprintf("clean input (batch=%v)", batch), code, exitOK)
		if got, want := out.String(), "true\ntrue\n"; got != want {
			t.Errorf("batch=%v: stdout = %q, want %q", batch, got, want)
		}
		if errw.Len() != 0 {
			t.Errorf("batch=%v: unexpected stderr: %s", batch, errw.String())
		}
	}
}

// TestRunQueriesPartialOutage: with one partition's server gone,
// runQueries prints "error" exactly for the queries that needed it
// (keeping output aligned with input), answers everything else, names
// the dead partition on stderr, and exits non-zero — in both modes.
func TestRunQueriesPartialOutage(t *testing.T) {
	g, err := graph.LoadEdgeListFile(filepath.Join("..", "..", "internal", "graph", "testdata", "tiny.txt"))
	if err != nil {
		t.Fatal(err)
	}
	const k = 2
	pt, err := graph.HashPartition(g, k)
	if err != nil {
		t.Fatal(err)
	}
	u := [k]graph.VertexID{}
	found := [k]bool{}
	for v := 0; v < g.NumVertices(); v++ {
		p := pt.Part[v]
		if !found[p] {
			u[p], found[p] = graph.VertexID(v), true
		}
	}
	if !found[0] || !found[1] {
		t.Fatal("hash partitioning left a partition empty on tiny.txt")
	}

	for _, batch := range []bool{false, true} {
		subs, _ := partition.Extract(g, pt)
		servers := make([]*shard.Server, k)
		addrs := make([]string, k)
		var wg sync.WaitGroup
		for i := 0; i < k; i++ {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			addrs[i] = ln.Addr().String()
			servers[i] = shard.NewServer(shard.New(i, subs[i]), k, g.NumVertices(), g.Fingerprint(), pt.Digest())
			wg.Add(1)
			go func(srv *shard.Server, ln net.Listener) {
				defer wg.Done()
				srv.Serve(ln)
			}(servers[i], ln)
		}
		eng, err := core.Connect(t.Context(), core.ClusterSpec{Groups: addrs})
		if err != nil {
			t.Fatal(err)
		}
		servers[1].Close() // partition 1 goes dark
		// Wait until the engine observes the outage so the session below
		// is deterministic.
		probe := []core.Query{{S: []graph.VertexID{u[1]}, T: []graph.VertexID{u[0]}}}
		for i := 0; ; i++ {
			if _, err := eng.QueryBatchErr(probe); err != nil {
				break
			}
			if i > 1000 {
				t.Fatal("engine never observed the dead shard")
			}
			time.Sleep(time.Millisecond)
		}

		in := strings.NewReader(strings.Join([]string{
			fmt.Sprintf("%d | %d", u[0], u[0]), // trivial, healthy: true
			fmt.Sprintf("%d | %d", u[1], u[1]), // trivial: answered with no shard consulted
			fmt.Sprintf("%d | %d", u[1], u[0]), // needs the dead partition's forward search
			fmt.Sprintf("%d | %d", u[0], u[1]), // needs the dead partition's backward search
		}, "\n"))
		var out, errw strings.Builder
		code := runQueries(eng, in, &out, &errw, batch, nil)
		wantExit(t, fmt.Sprintf("failed queries (batch=%v)", batch), code, exitPartial)
		if want := "true\ntrue\nerror\nerror\n"; out.String() != want {
			t.Errorf("batch=%v: stdout = %q, want %q", batch, out.String(), want)
		}
		for _, want := range []string{"partition 1 unavailable", "failed on unavailable partitions"} {
			if !strings.Contains(errw.String(), want) {
				t.Errorf("batch=%v: stderr missing %q:\n%s", batch, want, errw.String())
			}
		}
		eng.Close()
		servers[0].Close()
		wg.Wait()
	}
}
