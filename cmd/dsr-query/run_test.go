package main

import (
	"path/filepath"
	"strings"
	"testing"

	"dsr/internal/core"
	"dsr/internal/graph"
)

func tinyEngine(t *testing.T) *core.Engine {
	t.Helper()
	g, err := graph.LoadEdgeListFile(filepath.Join("..", "..", "internal", "graph", "testdata", "tiny.txt"))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	return eng
}

// TestRunQueriesMalformedLines: a malformed query line must produce a
// per-line error on stderr and a non-zero exit code — in both modes —
// while the well-formed queries around it still get answers. (The old
// behavior died on the first bad line, losing the rest of the
// workload; worse, a pipeline reading only stdout had no per-line
// indication of *which* input was dropped.)
func TestRunQueriesMalformedLines(t *testing.T) {
	for _, batch := range []bool{false, true} {
		eng := tinyEngine(t)
		in := strings.NewReader(strings.Join([]string{
			"0 | 7",        // valid: true
			"no pipe here", // malformed: no separator
			"1 2 | x",      // malformed: bad vertex
			"7 | 0",        // valid: false
		}, "\n"))
		var out, errw strings.Builder
		code := runQueries(eng, in, &out, &errw, batch)
		if code == 0 {
			t.Errorf("batch=%v: exit code 0 despite malformed lines", batch)
		}
		if got, want := out.String(), "true\nfalse\n"; got != want {
			t.Errorf("batch=%v: stdout = %q, want %q", batch, got, want)
		}
		stderr := errw.String()
		for _, want := range []string{"line 2", "line 3", "2 malformed line(s)"} {
			if !strings.Contains(stderr, want) {
				t.Errorf("batch=%v: stderr missing %q:\n%s", batch, want, stderr)
			}
		}
	}
}

func TestRunQueriesCleanInput(t *testing.T) {
	for _, batch := range []bool{false, true} {
		eng := tinyEngine(t)
		in := strings.NewReader("# comment\n\n0 | 7\n4 | 4\n")
		var out, errw strings.Builder
		if code := runQueries(eng, in, &out, &errw, batch); code != 0 {
			t.Errorf("batch=%v: exit code %d on clean input, stderr: %s", batch, code, errw.String())
		}
		if got, want := out.String(), "true\ntrue\n"; got != want {
			t.Errorf("batch=%v: stdout = %q, want %q", batch, got, want)
		}
		if errw.Len() != 0 {
			t.Errorf("batch=%v: unexpected stderr: %s", batch, errw.String())
		}
	}
}
