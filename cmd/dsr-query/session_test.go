package main

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"dsr/internal/core"
)

// fakeEngine satisfies the session's engine interface with scripted
// answers, so the health-summary contract can be tested without a
// shard fleet.
type fakeEngine struct {
	err    error // returned by every QueryBatchErr when non-nil
	health []core.PartitionHealth
}

func (f *fakeEngine) QueryBatchErr(qs []core.Query) ([]bool, error) {
	if f.err != nil {
		return nil, f.err
	}
	return make([]bool, len(qs)), nil
}

func (f *fakeEngine) Health() []core.PartitionHealth { return f.health }

// TestHealthSummaryOnBothEndings: the replica-health summary must be
// printed when the session ends cleanly AND when it ends in an
// unrecoverable query error — the error ending is exactly when the
// operator needs the retry/failover history. (It used to be skipped
// there, leaving failed sessions with no account of what the failover
// machinery did.)
func TestHealthSummaryOnBothEndings(t *testing.T) {
	cases := []struct {
		name     string
		err      error
		wantCode int
	}{
		{name: "clean ending", err: nil, wantCode: exitOK},
		{name: "error ending", err: errors.New("transport exploded"), wantCode: exitPartial},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := &fakeEngine{
				err: tc.err,
				health: []core.PartitionHealth{
					{Partition: 0, Replicas: 2, Live: 1, Retries: 3, Failovers: 1, Redials: 2},
				},
			}
			var out, errw, health strings.Builder
			logf := func(format string, args ...any) {
				fmt.Fprintf(&health, format+"\n", args...)
			}
			code := runQueries(eng, strings.NewReader("0 | 1\n"), &out, &errw, false, logf)
			wantExit(t, tc.name, code, tc.wantCode)
			want := "partition 0: 1/2 replicas live, retries=3 failovers=1 redials=2"
			if !strings.Contains(health.String(), want) {
				t.Errorf("health summary missing %q, got:\n%s", want, health.String())
			}
			if tc.err != nil && !strings.Contains(errw.String(), "transport exploded") {
				t.Errorf("error ending did not report the failure: %s", errw.String())
			}
		})
	}
}

// TestHealthSummaryNilLogger: a nil healthLog (in-process and batch
// sessions) prints nothing and must not panic.
func TestHealthSummaryNilLogger(t *testing.T) {
	var out, errw strings.Builder
	eng := &fakeEngine{health: []core.PartitionHealth{{Partition: 0}}}
	code := runQueries(eng, strings.NewReader("0 | 1\n"), &out, &errw, false, nil)
	wantExit(t, "nil health logger", code, exitOK)
	if errw.Len() != 0 {
		t.Errorf("unexpected stderr: %s", errw.String())
	}
}
