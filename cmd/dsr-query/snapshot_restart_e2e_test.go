package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"dsr/internal/dsr"
	"dsr/internal/graph"
	"dsr/internal/obs"
)

// TestBinariesSnapshotRestartTCP is the rolling-restart-from-snapshot
// e2e over real binaries: a k=3 R=2 fleet boots with -snapshot-dir
// (every shard persists its partition's snapshot), replica 0 of each
// partition is SIGTERMed mid-stream and restarted on its old address
// from the snapshot alone — no -graph flag, so the edge list is never
// re-read. Once the coordinator's redial loop re-adopts the restarted
// replicas (which re-verifies their snapshot-derived handshake identity
// against the pinned fleet), the replicas that still hold the graph are
// killed, forcing the rest of the oracle-checked query stream onto the
// snapshot-restored processes. Answers must be identical throughout,
// and every restarted replica must report dsr_snapshot_loads_total=1.
func TestBinariesSnapshotRestartTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin, "./...")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	graphPath, err := filepath.Abs(filepath.Join("..", "..", "internal", "graph", "testdata", "tiny.txt"))
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.LoadEdgeListFile(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	snapDir := t.TempDir()

	const k, R = 3, 2
	type proc struct {
		cmd    *exec.Cmd
		addr   string
		loaded chan string // "loaded snapshot" line, if one appears
		mURL   chan string // metrics endpoint URL, if announced
	}
	addrRe := regexp.MustCompile(`serving on (\S+)`)
	loadedRe := regexp.MustCompile(`loaded snapshot .*graph file not read`)
	metricsRe := regexp.MustCompile(`metrics on (http://\S+/metrics)`)

	// start launches one dsr-shard and waits for its serving address.
	start := func(p, r int, args ...string) *proc {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, "dsr-shard"), append([]string{
			"-shards", fmt.Sprint(k), "-id", fmt.Sprint(p), "-replica", fmt.Sprint(r),
			"-snapshot-dir", snapDir,
		}, args...)...)
		stderr, err := cmd.StderrPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		pr := &proc{cmd: cmd, loaded: make(chan string, 1), mURL: make(chan string, 1)}
		t.Cleanup(func() {
			if pr.cmd != nil {
				pr.cmd.Process.Kill()
				pr.cmd.Wait()
			}
		})
		addrCh := make(chan string, 1)
		go func() {
			sc := bufio.NewScanner(stderr)
			for sc.Scan() {
				line := sc.Text()
				if m := addrRe.FindStringSubmatch(line); m != nil {
					addrCh <- m[1]
				}
				if loadedRe.MatchString(line) {
					select {
					case pr.loaded <- line:
					default:
					}
				}
				if m := metricsRe.FindStringSubmatch(line); m != nil {
					select {
					case pr.mURL <- m[1]:
					default:
					}
				}
			}
		}()
		select {
		case pr.addr = <-addrCh:
		case <-time.After(30 * time.Second):
			t.Fatalf("shard %d replica %d never reported its address", p, r)
		}
		return pr
	}

	fleet := [k][R]*proc{}
	specs := make([]string, k)
	for p := 0; p < k; p++ {
		var group []string
		for r := 0; r < R; r++ {
			fleet[p][r] = start(p, r, "-graph", graphPath, "-listen", "127.0.0.1:0")
			group = append(group, fleet[p][r].addr)
		}
		specs[p] = strings.Join(group, "|")
	}

	// The snapshot directory now holds one file per partition (replicas
	// of a partition write byte-identical snapshots to the same name).
	if ents, err := os.ReadDir(snapDir); err != nil || len(ents) != k {
		t.Fatalf("snapshot dir: %v entries, err %v; want %d files", ents, err, k)
	}

	// Precomputed oracle stream.
	rng := rand.New(rand.NewSource(20260808))
	const nq = 40
	n := g.NumVertices()
	lines := make([]string, nq)
	want := make([]string, nq)
	for i := range lines {
		s := graph.VertexID(rng.Intn(n))
		d := graph.VertexID(rng.Intn(n))
		lines[i] = fmt.Sprintf("%d | %d", s, d)
		want[i] = fmt.Sprint(dsr.NaiveReach(g, []graph.VertexID{s}, []graph.VertexID{d}))
	}

	query := exec.Command(filepath.Join(bin, "dsr-query"),
		"-shards", strings.Join(specs, ","), "-metrics-addr", "127.0.0.1:0")
	qerr, err := query.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	qURLCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(qerr)
		for sc.Scan() {
			line := sc.Text()
			if m := metricsRe.FindStringSubmatch(line); m != nil {
				select {
				case qURLCh <- m[1]:
				default:
				}
			}
			fmt.Fprintln(os.Stderr, line)
		}
	}()
	stdin, err := query.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	stdout, err := query.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := query.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { query.Process.Kill(); query.Wait() })
	answers := bufio.NewReader(stdout)
	ask := func(i int) {
		t.Helper()
		if _, err := io.WriteString(stdin, lines[i]+"\n"); err != nil {
			t.Fatalf("query %d: write: %v", i, err)
		}
		got, err := answers.ReadString('\n')
		if err != nil {
			t.Fatalf("query %d: read answer: %v", i, err)
		}
		if got := strings.TrimSpace(got); got != want[i] {
			t.Fatalf("query %d (%s): got %s, oracle %s", i, lines[i], got, want[i])
		}
	}

	for i := 0; i < nq/2; i++ {
		ask(i)
	}

	// Roll replica 0 of every partition: drain it, then restart it on
	// its old address from the snapshot alone — no -graph.
	for p := 0; p < k; p++ {
		pr := fleet[p][0]
		if err := pr.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		if err := pr.cmd.Wait(); err != nil {
			t.Errorf("shard %d replica 0 did not drain cleanly: %v", p, err)
		}
		pr.cmd = nil
		fleet[p][0] = start(p, 0, "-listen", pr.addr, "-metrics-addr", "127.0.0.1:0")
		select {
		case <-fleet[p][0].loaded:
		case <-time.After(30 * time.Second):
			t.Fatalf("restarted shard %d never logged a snapshot load", p)
		}
	}

	// Every restarted replica counted exactly one snapshot load.
	for p := 0; p < k; p++ {
		var url string
		select {
		case url = <-fleet[p][0].mURL:
		case <-time.After(30 * time.Second):
			t.Fatalf("restarted shard %d never announced metrics", p)
		}
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		var snap obs.Snapshot
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode /metrics: %v", err)
		}
		if got := snap.Counters["dsr_snapshot_loads_total"]; got != 1 {
			t.Errorf("shard %d: dsr_snapshot_loads_total = %d, want 1", p, got)
		}
	}

	// A few queries while only the graph-built replicas hold fresh
	// connections: the coordinator notices the restarted processes'
	// severed sockets here and fails those batches over to replica 1,
	// so every answer stays correct mid-roll.
	for i := nq / 2; i < nq/2+5; i++ {
		ask(i)
	}

	// Wait for the coordinator's redial loop to re-adopt the restarted
	// replicas — the redial re-runs the handshake, so this also proves a
	// snapshot-booted shard presents the pinned fleet identity.
	var qURL string
	select {
	case qURL = <-qURLCh:
	case <-time.After(30 * time.Second):
		t.Fatal("dsr-query never announced its metrics endpoint")
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(qURL)
		if err != nil {
			t.Fatalf("GET %s: %v", qURL, err)
		}
		var snap obs.Snapshot
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode coordinator /metrics: %v", err)
		}
		live := 0
		for p := 0; p < k; p++ {
			if snap.Gauges[obs.Name("shard_replicas_live", "partition", p)] == R {
				live++
			}
		}
		if live == k {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never re-adopted the snapshot-restored replicas (%d/%d partitions at full strength)", live, k)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Kill the replicas that were built from -graph: the rest of the
	// stream has only snapshot-restored processes to answer from.
	for p := 0; p < k; p++ {
		pr := fleet[p][1]
		if err := pr.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		if err := pr.cmd.Wait(); err != nil {
			t.Errorf("shard %d replica 1 did not drain cleanly: %v", p, err)
		}
		pr.cmd = nil
	}

	for i := nq/2 + 5; i < nq; i++ {
		ask(i)
	}
	stdin.Close()
	if err := query.Wait(); err != nil {
		t.Fatalf("dsr-query exited non-zero after snapshot restart: %v", err)
	}
}
