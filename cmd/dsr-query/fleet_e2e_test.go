package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dsr/internal/dsr"
	"dsr/internal/graph"
	"dsr/internal/obs"
	"dsr/internal/obs/fleet"
)

// TestBinariesFleetObservability is the fleet-wide observability e2e:
// a k=3, R=2 dsr-shard fleet over real TCP, every shard serving its
// own -metrics-addr, and the dsr-query coordinator running with
// -slow-query 1ns so every batch logs a span trace. It asserts the
// two cross-process observability claims end to end:
//
//	(a) the coordinator's slow-query traces contain per-partition
//	    `server` sub-spans (shard-reported compute, propagated in the
//	    MsgResults timing footer) whose durations never exceed the
//	    enclosing RPC span, and the dsr_rpc_server_ns{partition}
//	    histograms are populated for every partition;
//	(b) GET /fleet on the coordinator returns a merged per-replica
//	    snapshot whose counters match each shard's own /metrics.
func TestBinariesFleetObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin, "./...")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	graphPath, err := filepath.Abs(filepath.Join("..", "..", "internal", "graph", "testdata", "tiny.txt"))
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.LoadEdgeListFile(graphPath)
	if err != nil {
		t.Fatal(err)
	}

	// Boot the fleet; every replica announces both its RPC address and
	// its ops endpoint on stderr.
	const k, R = 3, 2
	servingRe := regexp.MustCompile(`serving on (\S+)`)
	metricsRe := regexp.MustCompile(`metrics on (http://\S+/metrics)`)
	var metricsURLs [k][R]string
	specs := make([]string, k)
	for p := 0; p < k; p++ {
		var group []string
		for r := 0; r < R; r++ {
			cmd := exec.Command(filepath.Join(bin, "dsr-shard"),
				"-graph", graphPath, "-shards", fmt.Sprint(k), "-id", fmt.Sprint(p),
				"-replica", fmt.Sprint(r), "-listen", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0")
			stderr, err := cmd.StderrPipe()
			if err != nil {
				t.Fatal(err)
			}
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
			addrCh := make(chan string, 1)
			urlCh := make(chan string, 1)
			go func() {
				sc := bufio.NewScanner(stderr)
				for sc.Scan() {
					if m := servingRe.FindStringSubmatch(sc.Text()); m != nil {
						addrCh <- m[1]
					}
					if m := metricsRe.FindStringSubmatch(sc.Text()); m != nil {
						urlCh <- m[1]
					}
				}
			}()
			select {
			case addr := <-addrCh:
				group = append(group, addr)
			case <-time.After(30 * time.Second):
				t.Fatalf("shard %d replica %d never reported its address", p, r)
			}
			select {
			case metricsURLs[p][r] = <-urlCh:
			case <-time.After(30 * time.Second):
				t.Fatalf("shard %d replica %d never announced its metrics endpoint", p, r)
			}
		}
		specs[p] = strings.Join(group, "|")
	}

	// The coordinator: ops endpoint (with /fleet) on an ephemeral port,
	// and a 1ns slow-query threshold so every batch logs its trace.
	query := exec.Command(filepath.Join(bin, "dsr-query"),
		"-shards", strings.Join(specs, ","), "-metrics-addr", "127.0.0.1:0",
		"-slow-query", "1ns")
	qerr, err := query.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	stdin, err := query.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	stdout, err := query.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := query.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { query.Process.Kill(); query.Wait() })

	// One scanner owns coordinator stderr: it feeds the metrics-URL
	// channel and accumulates every line for trace parsing.
	var mu sync.Mutex
	var lines []string
	urlCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(qerr)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			if m := metricsRe.FindStringSubmatch(line); m != nil {
				select {
				case urlCh <- m[1]:
				default:
				}
			}
			mu.Lock()
			lines = append(lines, line)
			mu.Unlock()
		}
	}()
	var coordMetrics string
	select {
	case coordMetrics = <-urlCh:
	case <-time.After(30 * time.Second):
		t.Fatal("dsr-query never announced its metrics endpoint")
	}
	fleetURL := strings.TrimSuffix(coordMetrics, "/metrics") + "/fleet"

	// Drive a lock-stepped, oracle-verified query stream so the traces
	// and counters below describe a correct run.
	rng := rand.New(rand.NewSource(20260808))
	n := g.NumVertices()
	answers := bufio.NewReader(stdout)
	const nq = 30
	for i := 0; i < nq; i++ {
		s := graph.VertexID(rng.Intn(n))
		d := graph.VertexID(rng.Intn(n))
		if _, err := io.WriteString(stdin, fmt.Sprintf("%d | %d\n", s, d)); err != nil {
			t.Fatalf("query %d: write: %v", i, err)
		}
		got, err := answers.ReadString('\n')
		if err != nil {
			t.Fatalf("query %d: read answer: %v", i, err)
		}
		want := fmt.Sprint(dsr.NaiveReach(g, []graph.VertexID{s}, []graph.VertexID{d}))
		if got := strings.TrimSpace(got); got != want {
			t.Fatalf("query %d (%d | %d): got %s, oracle %s", i, s, d, got, want)
		}
	}

	// (a) Parse the slow-query traces. Span lines look like
	// "    rpc part=2 n=17 start=12µs dur=840µs", with each shard's
	// "server"/"net" sub-spans right below their enclosing rpc span.
	spanRe := regexp.MustCompile(`^\s*(rpc|server) part=(\d+) n=\d+ start=\S+ dur=(\S+)$`)
	serverSeen := map[int]bool{}
	deadline := time.Now().Add(30 * time.Second)
	for {
		mu.Lock()
		snapshot := append([]string(nil), lines...)
		mu.Unlock()
		lastRPC := map[int]time.Duration{}
		pairs := 0
		for _, line := range snapshot {
			m := spanRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			part, err := strconv.Atoi(m[2])
			if err != nil {
				t.Fatal(err)
			}
			dur, err := time.ParseDuration(m[3])
			if err != nil {
				t.Fatalf("unparseable span duration in %q: %v", line, err)
			}
			if m[1] == "rpc" {
				lastRPC[part] = dur
				continue
			}
			rpcDur, ok := lastRPC[part]
			if !ok {
				t.Fatalf("server span with no enclosing rpc span for partition %d: %q", part, line)
			}
			if dur > rpcDur {
				t.Fatalf("partition %d: server span %v exceeds enclosing rpc span %v", part, dur, rpcDur)
			}
			serverSeen[part] = true
			pairs++
		}
		if len(serverSeen) == k && pairs > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server sub-spans seen for partitions %v, want all %d", serverSeen, k)
		}
		time.Sleep(100 * time.Millisecond)
	}

	scrape := func(url string) obs.Snapshot {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %s", url, resp.Status)
		}
		var snap obs.Snapshot
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
		return snap
	}

	// The coordinator's own registry must carry the new split
	// histograms for every partition.
	coord := scrape(coordMetrics)
	for p := 0; p < k; p++ {
		if coord.Histograms[obs.Name("dsr_rpc_server_ns", "partition", p)].Count == 0 {
			t.Errorf("partition %d: dsr_rpc_server_ns empty after %d queries", p, nq)
		}
		if coord.Histograms[obs.Name("dsr_rpc_net_ns", "partition", p)].Count == 0 {
			t.Errorf("partition %d: dsr_rpc_net_ns empty after %d queries", p, nq)
		}
	}

	// (b) The fleet view: merged, sorted, all replicas live, and its
	// per-replica counters matching each shard's own /metrics. The
	// stream is quiesced, so direct scrapes see identical values.
	resp, err := http.Get(fleetURL)
	if err != nil {
		t.Fatalf("GET %s: %v", fleetURL, err)
	}
	var fsnap fleet.Snapshot
	err = json.NewDecoder(resp.Body).Decode(&fsnap)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decode /fleet: %v", err)
	}
	if fsnap.Coordinator.Counters["dsr_queries_total"] == 0 {
		t.Error("/fleet coordinator section has no query counters")
	}
	if len(fsnap.Shards) != k*R {
		t.Fatalf("/fleet lists %d shards, want %d", len(fsnap.Shards), k*R)
	}
	for i, st := range fsnap.Shards {
		p, r := i/R, i%R
		if st.Partition != p || st.Replica != r {
			t.Fatalf("/fleet shards not sorted: index %d is p%d/r%d", i, st.Partition, st.Replica)
		}
		if !st.Live || st.Error != "" || st.Metrics == nil {
			t.Fatalf("p%d/r%d not scraped cleanly: live=%v err=%q", p, r, st.Live, st.Error)
		}
		if st.Metrics.Build.GoVersion == "" {
			t.Errorf("p%d/r%d fleet snapshot missing build info", p, r)
		}
		direct := scrape(metricsURLs[p][r])
		for _, name := range []string{"net_server_frames_in_total", "net_server_frames_out_total", "net_server_bytes_out_total"} {
			if got, want := st.Metrics.Counters[name], direct.Counters[name]; got != want {
				t.Errorf("p%d/r%d %s: /fleet says %d, shard's own /metrics says %d", p, r, name, got, want)
			}
		}
		if got, want := st.Metrics.Histograms["shard_server_search_ns"].Count,
			direct.Histograms["shard_server_search_ns"].Count; got != want || got == 0 {
			t.Errorf("p%d/r%d shard_server_search_ns count: /fleet %d, direct %d (want equal, nonzero)", p, r, got, want)
		}
	}
	// Both replicas of each partition served traffic (the transport
	// load-balances), so the timing histograms are live fleet-wide.
	for i, st := range fsnap.Shards {
		for _, h := range []string{"shard_server_decode_ns", "shard_server_encode_ns", "shard_server_queue_ns"} {
			if st.Metrics.Histograms[h].Count == 0 {
				t.Errorf("shard %d (p%d/r%d): %s never observed", i, st.Partition, st.Replica, h)
			}
		}
	}

	stdin.Close()
	if err := query.Wait(); err != nil {
		t.Fatalf("dsr-query exited non-zero: %v", err)
	}
}
