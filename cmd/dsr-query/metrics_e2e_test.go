package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"dsr/internal/dsr"
	"dsr/internal/graph"
	"dsr/internal/obs"
)

// TestBinariesTCPMetricsEndpoint is the binary-level observability e2e: a
// k=3, R=2 dsr-shard fleet over real TCP with the real dsr-query
// binary serving -metrics-addr. Mid-stream, replica 0 of every
// partition is SIGTERMed. GET /metrics on the live coordinator must
// return a JSON snapshot with query-latency quantiles, per-partition
// RPC counters, and — after the failover — non-zero retry, failover,
// and redial counts.
func TestBinariesTCPMetricsEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin, "./...")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	graphPath, err := filepath.Abs(filepath.Join("..", "..", "internal", "graph", "testdata", "tiny.txt"))
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.LoadEdgeListFile(graphPath)
	if err != nil {
		t.Fatal(err)
	}

	// Boot the replicated fleet: shards[p][r] is replica r of partition p.
	const k, R = 3, 2
	type proc struct {
		cmd  *exec.Cmd
		addr string
	}
	addrRe := regexp.MustCompile(`serving on (\S+)`)
	fleet := [k][R]*proc{}
	specs := make([]string, k)
	for p := 0; p < k; p++ {
		var group []string
		for r := 0; r < R; r++ {
			cmd := exec.Command(filepath.Join(bin, "dsr-shard"),
				"-graph", graphPath, "-shards", fmt.Sprint(k), "-id", fmt.Sprint(p),
				"-replica", fmt.Sprint(r), "-listen", "127.0.0.1:0")
			stderr, err := cmd.StderrPipe()
			if err != nil {
				t.Fatal(err)
			}
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			pr := &proc{cmd: cmd}
			fleet[p][r] = pr
			t.Cleanup(func() {
				if pr.cmd != nil {
					pr.cmd.Process.Kill()
					pr.cmd.Wait()
				}
			})
			addrCh := make(chan string, 1)
			go func() {
				sc := bufio.NewScanner(stderr)
				for sc.Scan() {
					if m := addrRe.FindStringSubmatch(sc.Text()); m != nil {
						addrCh <- m[1]
					}
				}
			}()
			select {
			case pr.addr = <-addrCh:
			case <-time.After(30 * time.Second):
				t.Fatalf("shard %d replica %d never reported its address", p, r)
			}
			group = append(group, pr.addr)
		}
		specs[p] = strings.Join(group, "|")
	}

	// The coordinator with its ops endpoint on an ephemeral port; the
	// URL is announced on stderr.
	query := exec.Command(filepath.Join(bin, "dsr-query"),
		"-shards", strings.Join(specs, ","), "-metrics-addr", "127.0.0.1:0")
	qerr, err := query.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	stdin, err := query.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	stdout, err := query.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := query.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { query.Process.Kill(); query.Wait() })
	metricsRe := regexp.MustCompile(`metrics on (http://\S+/metrics)`)
	urlCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(qerr)
		for sc.Scan() {
			if m := metricsRe.FindStringSubmatch(sc.Text()); m != nil {
				urlCh <- m[1]
			}
		}
	}()
	var metricsURL string
	select {
	case metricsURL = <-urlCh:
	case <-time.After(30 * time.Second):
		t.Fatal("dsr-query never announced its metrics endpoint")
	}
	scrape := func() obs.Snapshot {
		t.Helper()
		resp, err := http.Get(metricsURL)
		if err != nil {
			t.Fatalf("GET %s: %v", metricsURL, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %s", metricsURL, resp.Status)
		}
		var snap obs.Snapshot
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatalf("decode /metrics JSON: %v", err)
		}
		return snap
	}

	// Lock-stepped query stream, verified against the oracle so the
	// metrics describe a correct run, not a degenerate one.
	rng := rand.New(rand.NewSource(20260808))
	const nq = 40
	n := g.NumVertices()
	answers := bufio.NewReader(stdout)
	ask := func(i int) {
		t.Helper()
		s := graph.VertexID(rng.Intn(n))
		d := graph.VertexID(rng.Intn(n))
		if _, err := io.WriteString(stdin, fmt.Sprintf("%d | %d\n", s, d)); err != nil {
			t.Fatalf("query %d: write: %v", i, err)
		}
		got, err := answers.ReadString('\n')
		if err != nil {
			t.Fatalf("query %d: read answer: %v", i, err)
		}
		want := fmt.Sprint(dsr.NaiveReach(g, []graph.VertexID{s}, []graph.VertexID{d}))
		if got := strings.TrimSpace(got); got != want {
			t.Fatalf("query %d (%d | %d): got %s, oracle %s", i, s, d, got, want)
		}
	}
	for i := 0; i < nq/2; i++ {
		ask(i)
	}

	// Healthy-fleet snapshot: latency quantiles and per-partition RPC
	// counters must already be populated.
	snap := scrape()
	lat := snap.Histograms["dsr_query_latency_ns"]
	if lat.Count == 0 || lat.P50 == 0 || lat.P99 < lat.P50 {
		t.Errorf("query latency histogram not live: %+v", lat)
	}
	if got := snap.Counters["dsr_queries_total"]; got != nq/2 {
		t.Errorf("dsr_queries_total = %d, want %d", got, nq/2)
	}
	for p := 0; p < k; p++ {
		if snap.Counters[obs.Name("dsr_rpc_total", "partition", p)] == 0 {
			t.Errorf("partition %d: dsr_rpc_total = 0 after %d queries", p, nq/2)
		}
		if snap.Gauges[obs.Name("shard_replicas_live", "partition", p)] != R {
			t.Errorf("partition %d: shard_replicas_live != %d on a healthy fleet", p, R)
		}
	}
	if snap.Counters["net_client_frames_out_total"] == 0 || snap.Counters["net_client_bytes_in_total"] == 0 {
		t.Error("net_client frame/byte counters silent on an active TCP fleet")
	}
	if snap.Histograms["dsr_summary_fetch_ns"].Count != k {
		t.Errorf("dsr_summary_fetch_ns observed %d fetches, want %d", snap.Histograms["dsr_summary_fetch_ns"].Count, k)
	}

	// SIGTERM replica 0 of every partition; each must drain and exit 0.
	for p := 0; p < k; p++ {
		if err := fleet[p][0].cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
	}
	for p := 0; p < k; p++ {
		pr := fleet[p][0]
		if err := pr.cmd.Wait(); err != nil {
			t.Errorf("shard %d replica 0 did not drain cleanly on SIGTERM: %v", p, err)
		}
		pr.cmd = nil // cleanup must not re-kill
	}
	for i := nq / 2; i < nq; i++ {
		ask(i)
	}

	// Failover snapshot: retries and failovers fire as severed
	// connections are detected; the background reconnect loop (1s
	// period) keeps redialing the dead replicas, so poll briefly.
	deadline := time.Now().Add(30 * time.Second)
	for {
		snap = scrape()
		var retries, failovers, redials uint64
		for p := 0; p < k; p++ {
			retries += snap.Counters[obs.Name("shard_retries_total", "partition", p)]
			failovers += snap.Counters[obs.Name("shard_failovers_total", "partition", p)]
			redials += snap.Counters[obs.Name("shard_redials_total", "partition", p)]
		}
		if retries > 0 && failovers > 0 && redials > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("failover counters never moved: retries=%d failovers=%d redials=%d", retries, failovers, redials)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if got := snap.Counters["dsr_queries_total"]; got != nq {
		t.Errorf("dsr_queries_total = %d after the full stream, want %d", got, nq)
	}

	stdin.Close()
	if err := query.Wait(); err != nil {
		t.Fatalf("dsr-query exited non-zero: %v", err)
	}
}
