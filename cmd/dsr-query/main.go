// Command dsr-query is the DSR coordinator CLI: it answers
// set-reachability queries read from stdin, either against a fleet of
// dsr-shard servers (-shards) or fully in-process (-graph).
//
// Query format, one per line:
//
//	1 2 3 | 9 10
//
// sources left of '|', targets right, whitespace-separated; the answer
// (true/false) is printed per line. With -batch all queries are read
// first and shipped as one QueryBatch — one round-trip per shard for
// the entire workload. A malformed line is reported on stderr with its
// line number and skipped; the process still answers every well-formed
// query but exits non-zero, so pipelines can't silently lose queries.
//
//	dsr-query -shards 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -batch
//	dsr-query -graph edges.txt -k 4                        # in-process, no servers needed
//	dsr-query -graph edges.txt -k 4 -partitioner locality  # boundary-minimizing partitions
//
// With -shards the coordinator is graph-free: it takes no graph file
// and no partitioner spec — those belong to the shards. At connect
// time each shard ships its boundary summary (its boundary vertices,
// entry→exit summary edges, and cross-partition edges) and the
// coordinator stitches them into the global boundary graph; shard
// identity comes from the handshake, and a fleet whose shards disagree
// with each other (different graphs or partitionings) is refused with
// exit status 3. Passing -graph, -k, or -partitioner together with
// -shards is an error (exit status 2). -connect-timeout bounds the
// whole connect phase; summary-fetch progress is logged to stderr.
//
// Replication: each comma-separated -shards entry may be a '|' group
// of interchangeable replica servers for that partition
// ("a:7000|b:7000,c:7001|d:7001"). The coordinator load-balances
// across replicas, retries mid-query failures on a sibling, and
// reconnects dead replicas in the background. If every replica of a
// partition is down, only the queries that needed that partition fail:
// they print "error" in place of an answer (the outage is detailed
// once per partition on stderr), the rest of the stream keeps being
// answered, and the exit code turns non-zero.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"dsr/internal/core"
	"dsr/internal/graph"
	"dsr/internal/obs"
	"dsr/internal/obs/fleet"
	"dsr/internal/partition/locality"
)

// The process exit-code contract, documented in README.md ("Exit
// codes") and shared by dsr-serve. Tests assert observed codes through
// the wantExit helper (exitcode_test.go), so the table, the constants,
// and every assertion stay one definition.
const (
	exitOK       = 0 // every line parsed, every query answered
	exitPartial  = 1 // partial or runtime failure: malformed lines skipped, queries failed on unavailable partitions, connect/IO errors
	exitUsage    = 2 // flag misuse: bad flag values, or graph-describing flags combined with -shards
	exitMismatch = 3 // misassembled fleet: shards disagree about graph/partitioning (core.MismatchError)
)

func main() {
	var (
		graphPath      = flag.String("graph", "", "edge-list file for in-process mode: one 'u v' pair per line (forbidden with -shards)")
		shards         = flag.String("shards", "", "comma-separated shard addresses (shard i at position i), each optionally a 'a|b' replica group; empty runs in-process")
		k              = flag.Int("k", 4, "partition count for in-process mode (forbidden with -shards)")
		batch          = flag.Bool("batch", false, "read all queries first and answer them as one batch")
		partitioner    = flag.String("partitioner", "hash", "in-process partitioning strategy: hash, range, or locality[:seed=N,rounds=N,balance=F,refine=N] (forbidden with -shards)")
		connectTimeout = flag.Duration("connect-timeout", 30*time.Second, "with -shards: time limit for dialing the fleet and fetching boundary summaries")
		metricsAddr    = flag.String("metrics-addr", "", "serve the metrics registry (JSON at /metrics) and net/http/pprof on this address; empty disables")
		slowQuery      = flag.Duration("slow-query", 0, "log a structured span trace for any batch slower than this; 0 disables")
		logLevel       = flag.String("log-level", "info", "log level floor: debug, info, warn, or error")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsr-query: -log-level: %v\n", err)
		os.Exit(exitUsage)
	}
	logger := obs.StderrLogger(level).With("component", "dsr-query")
	reg := obs.NewRegistry()
	// The ops endpoint must be up before the engine exists (connecting
	// can take a while and operators want liveness meanwhile), so the
	// fleet aggregator reads the engine through an atomic pointer that
	// is filled in once connected. Until then /fleet serves just the
	// coordinator's own registry.
	var engPtr atomic.Pointer[core.Engine]
	agg := fleet.New(reg, func() []fleet.Target {
		e := engPtr.Load()
		if e == nil {
			return nil
		}
		eps := e.Endpoints()
		targets := make([]fleet.Target, len(eps))
		for i, ep := range eps {
			targets[i] = fleet.Target{
				Partition:   ep.Partition,
				Replica:     ep.Replica,
				Addr:        ep.Addr,
				MetricsAddr: ep.MetricsAddr,
				Live:        ep.Live,
			}
		}
		return targets
	}, 0)
	var ops *obs.OpsServer // closed explicitly: os.Exit below skips defers
	if *metricsAddr != "" {
		ops, err = obs.StartOps(*metricsAddr, reg, obs.Mount{Pattern: "/fleet", Handler: agg.Handler()})
		if err != nil {
			logger.Errorf("metrics-addr: %v", err)
			os.Exit(exitPartial)
		}
		logger.Infof("metrics on http://%s/metrics (fleet view at /fleet, pprof under /debug/pprof/)", ops.Addr())
	}

	var eng *core.Engine
	if *shards != "" {
		// Graph-free mode: the coordinator learns the deployment from the
		// fleet itself. Flags that describe the graph belong to the
		// shards; accepting them here would suggest they have an effect.
		var rejected []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "graph", "partitioner", "k":
				rejected = append(rejected, "-"+f.Name)
			}
		})
		if len(rejected) > 0 {
			fmt.Fprintf(os.Stderr, "dsr-query: %s cannot be combined with -shards: the coordinator is graph-free and learns the deployment from the shard fleet\n",
				strings.Join(rejected, ", "))
			os.Exit(exitUsage)
		}
		ctx, cancel := context.WithTimeout(context.Background(), *connectTimeout)
		eng, err = core.Connect(ctx, core.ClusterSpec{
			Groups:    strings.Split(*shards, ","),
			Log:       logger,
			Metrics:   reg,
			SlowQuery: *slowQuery,
		})
		cancel()
		if err != nil {
			logger.Errorf("connect shards: %v", err)
			var me *core.MismatchError
			if errors.As(err, &me) {
				// The shards disagree with each other about the deployment —
				// a misassembled fleet, distinct from any transport failure.
				os.Exit(exitMismatch)
			}
			os.Exit(exitPartial)
		}
		logger.Infof("connected to %d shards, %d boundary vertices, %d coordinator-resident bytes",
			eng.NumPartitions(), eng.NumBoundary(), eng.ResidentBytes())
	} else {
		if *graphPath == "" {
			fmt.Fprintln(os.Stderr, "dsr-query: -graph is required (in-process mode) or -shards (distributed mode)")
			flag.Usage()
			os.Exit(exitUsage)
		}
		strat, err := locality.ParseSpec(*partitioner)
		if err != nil {
			logger.Errorf("-partitioner: %v", err)
			os.Exit(exitPartial)
		}
		g, err := graph.LoadEdgeListFile(*graphPath)
		if err != nil {
			logger.Errorf("load graph: %v", err)
			os.Exit(exitPartial)
		}
		eng, err = core.Build(g, core.Options{
			K: *k, Partitioner: strat,
			Metrics: reg, Log: logger, SlowQuery: *slowQuery,
		})
		if err != nil {
			logger.Errorf("build engine: %v", err)
			os.Exit(exitPartial)
		}
		logger.Infof("in-process engine: %d %s-partitioned partitions, %d boundary vertices",
			eng.NumPartitions(), strat.Name(), eng.NumBoundary())
	}
	engPtr.Store(eng) // /fleet now sees the shard endpoints
	// Interactive distributed sessions report what the failover
	// machinery did on the way out — invisible otherwise, since retried
	// queries still answer normally. runQueries prints it on every
	// ending, including error ones, where it matters most.
	var healthLog func(string, ...any)
	if *shards != "" && !*batch {
		healthLog = logger.Infof
	}
	// No defer: os.Exit skips deferred calls, so close explicitly.
	code := runQueries(eng, os.Stdin, os.Stdout, os.Stderr, *batch, healthLog)
	eng.Close()
	ops.Close()
	os.Exit(code)
}

// engine is the slice of core.Engine a query session needs, narrowed
// so session tests can substitute a fake that fails on demand.
type engine interface {
	QueryBatchErr([]core.Query) ([]bool, error)
	Health() []core.PartitionHealth
}

// runQueries drives one query session: reads queries from in, writes
// answers to out and per-line problems to errw, and returns the process
// exit code — 0 only if every line parsed and every query was answered.
// Malformed lines are skipped (with a per-line error naming the line
// number), not fatal: the remaining well-formed queries still get
// answers, but the exit code turns non-zero so callers can't mistake a
// partially-processed workload for a clean run. Partial shard outages
// degrade the same way: queries that needed an unavailable partition
// print "error" (positions stay aligned with the input), everything
// else is still answered, and the exit code turns non-zero.
//
// A non-nil healthLog gets one replica-health summary line per
// partition when the session ends — on every ending, error ones
// included: a session that dies on a failed query is exactly the one
// whose retry/failover history the operator needs to see.
func runQueries(eng engine, in io.Reader, out, errw io.Writer, batch bool, healthLog func(string, ...any)) int {
	if healthLog != nil {
		defer func() {
			for _, ph := range eng.Health() {
				healthLog("partition %d: %d/%d replicas live, retries=%d failovers=%d redials=%d",
					ph.Partition, ph.Live, ph.Replicas, ph.Retries, ph.Failovers, ph.Redials)
			}
		}()
	}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	w := bufio.NewWriter(out)
	defer w.Flush()

	failedQueries := 0
	// emit answers one batch of queries, printing "error" in place of
	// answers a partition outage invalidated. It reports false only on
	// unrecoverable errors (protocol violation, closed transport).
	emit := func(qs []core.Query) bool {
		answers, err := eng.QueryBatchErr(qs)
		var be *core.BatchError
		if err != nil && !errors.As(err, &be) {
			fmt.Fprintf(errw, "dsr-query: query failed: %v\n", err)
			return false
		}
		if be != nil {
			for _, pe := range be.Partitions {
				fmt.Fprintf(errw, "dsr-query: partition %d unavailable: %v\n", pe.Partition, pe.Err)
			}
		}
		for i := range answers {
			if be != nil && be.Failed[i] {
				failedQueries++
				fmt.Fprintln(w, "error")
			} else {
				fmt.Fprintln(w, answers[i])
			}
		}
		return true
	}

	var queries []core.Query
	lineno, badLines := 0, 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		q, err := parseQuery(line)
		if err != nil {
			fmt.Fprintf(errw, "dsr-query: line %d: %v\n", lineno, err)
			badLines++
			continue
		}
		if batch {
			queries = append(queries, q)
			continue
		}
		if !emit([]core.Query{q}) {
			return exitPartial
		}
		// Interactive mode answers as it goes: flush per line so a piped
		// driver sees each answer before sending the next query.
		w.Flush()
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(errw, "dsr-query: read input: %v\n", err)
		return exitPartial
	}
	if batch && len(queries) > 0 && !emit(queries) {
		return exitPartial
	}
	if badLines > 0 {
		fmt.Fprintf(errw, "dsr-query: %d malformed line(s) skipped\n", badLines)
	}
	if failedQueries > 0 {
		fmt.Fprintf(errw, "dsr-query: %d query(ies) failed on unavailable partitions\n", failedQueries)
	}
	if badLines > 0 || failedQueries > 0 {
		return exitPartial
	}
	return exitOK
}

// parseQuery parses "s1 s2 ... | t1 t2 ..." into a Query.
func parseQuery(line string) (core.Query, error) {
	var q core.Query
	left, right, found := strings.Cut(line, "|")
	if !found {
		return q, fmt.Errorf("want 'sources | targets', got %q", line)
	}
	var err error
	if q.S, err = parseIDs(left); err != nil {
		return q, fmt.Errorf("sources: %v", err)
	}
	if q.T, err = parseIDs(right); err != nil {
		return q, fmt.Errorf("targets: %v", err)
	}
	return q, nil
}

func parseIDs(s string) ([]graph.VertexID, error) {
	var ids []graph.VertexID
	for _, f := range strings.Fields(s) {
		v, err := strconv.ParseUint(f, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad vertex %q: %v", f, err)
		}
		ids = append(ids, graph.VertexID(v))
	}
	return ids, nil
}
