// Command dsr-query is the DSR coordinator CLI: it loads the graph,
// connects to a fleet of dsr-shard servers (or runs everything
// in-process when -shards is empty), and answers set-reachability
// queries read from stdin.
//
// Query format, one per line:
//
//	1 2 3 | 9 10
//
// sources left of '|', targets right, whitespace-separated; the answer
// (true/false) is printed per line. With -batch all queries are read
// first and shipped as one QueryBatch — one round-trip per shard for
// the entire workload. A malformed line is reported on stderr with its
// line number and skipped; the process still answers every well-formed
// query but exits non-zero, so pipelines can't silently lose queries.
//
//	dsr-query -graph edges.txt -shards 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -batch
//	dsr-query -graph edges.txt -k 4                        # in-process, no servers needed
//	dsr-query -graph edges.txt -k 4 -partitioner locality  # boundary-minimizing partitions
//
// Replication: each comma-separated -shards entry may be a '|' group
// of interchangeable replica servers for that partition
// ("a:7000|b:7000,c:7001|d:7001"). The coordinator load-balances
// across replicas, retries mid-query failures on a sibling, and
// reconnects dead replicas in the background. If every replica of a
// partition is down, only the queries that needed that partition fail:
// they print "error" in place of an answer (the outage is detailed
// once per partition on stderr), the rest of the stream keeps being
// answered, and the exit code turns non-zero.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"dsr/internal/core"
	"dsr/internal/graph"
	"dsr/internal/partition/locality"
)

func main() {
	log.SetPrefix("dsr-query: ")
	log.SetFlags(0)
	var (
		graphPath   = flag.String("graph", "", "edge-list file (required): one 'u v' pair per line")
		shards      = flag.String("shards", "", "comma-separated shard addresses (shard i at position i), each optionally a 'a|b' replica group; empty runs in-process")
		k           = flag.Int("k", 4, "partition count for in-process mode (ignored with -shards)")
		batch       = flag.Bool("batch", false, "read all queries first and answer them as one batch")
		partitioner = flag.String("partitioner", "hash", "partitioning strategy: hash, range, or locality[:seed=N,rounds=N,balance=F,refine=N]; with -shards it must match the servers'")
	)
	flag.Parse()
	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "dsr-query: -graph is required")
		flag.Usage()
		os.Exit(2)
	}
	strat, err := locality.ParseSpec(*partitioner)
	if err != nil {
		log.Fatalf("-partitioner: %v", err)
	}

	g, err := graph.LoadEdgeListFile(*graphPath)
	if err != nil {
		log.Fatalf("load graph: %v", err)
	}
	var eng *core.Engine
	if *shards != "" {
		addrs := strings.Split(*shards, ",")
		eng, err = core.NewDistributedWithPartitioner(g, strat, addrs...)
		if err != nil {
			log.Fatalf("connect shards: %v", err)
		}
		log.Printf("connected to %d shards (%s-partitioned), %d boundary vertices",
			eng.NumPartitions(), strat.Name(), eng.NumBoundary())
	} else {
		eng, err = core.NewWithPartitioner(g, *k, strat)
		if err != nil {
			log.Fatalf("build engine: %v", err)
		}
		log.Printf("in-process engine: %d %s-partitioned partitions, %d boundary vertices",
			eng.NumPartitions(), strat.Name(), eng.NumBoundary())
	}
	// No defer: os.Exit skips deferred calls, so close explicitly.
	code := runQueries(eng, os.Stdin, os.Stdout, os.Stderr, *batch)
	eng.Close()
	os.Exit(code)
}

// runQueries drives one query session: reads queries from in, writes
// answers to out and per-line problems to errw, and returns the process
// exit code — 0 only if every line parsed and every query was answered.
// Malformed lines are skipped (with a per-line error naming the line
// number), not fatal: the remaining well-formed queries still get
// answers, but the exit code turns non-zero so callers can't mistake a
// partially-processed workload for a clean run. Partial shard outages
// degrade the same way: queries that needed an unavailable partition
// print "error" (positions stay aligned with the input), everything
// else is still answered, and the exit code turns non-zero.
func runQueries(eng *core.Engine, in io.Reader, out, errw io.Writer, batch bool) int {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	w := bufio.NewWriter(out)
	defer w.Flush()

	failedQueries := 0
	// emit answers one batch of queries, printing "error" in place of
	// answers a partition outage invalidated. It reports false only on
	// unrecoverable errors (protocol violation, closed transport).
	emit := func(qs []core.Query) bool {
		answers, err := eng.QueryBatchErr(qs)
		var be *core.BatchError
		if err != nil && !errors.As(err, &be) {
			fmt.Fprintf(errw, "dsr-query: query failed: %v\n", err)
			return false
		}
		if be != nil {
			for _, pe := range be.Partitions {
				fmt.Fprintf(errw, "dsr-query: partition %d unavailable: %v\n", pe.Partition, pe.Err)
			}
		}
		for i := range answers {
			if be != nil && be.Failed[i] {
				failedQueries++
				fmt.Fprintln(w, "error")
			} else {
				fmt.Fprintln(w, answers[i])
			}
		}
		return true
	}

	var queries []core.Query
	lineno, badLines := 0, 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		q, err := parseQuery(line)
		if err != nil {
			fmt.Fprintf(errw, "dsr-query: line %d: %v\n", lineno, err)
			badLines++
			continue
		}
		if batch {
			queries = append(queries, q)
			continue
		}
		if !emit([]core.Query{q}) {
			return 1
		}
		// Interactive mode answers as it goes: flush per line so a piped
		// driver sees each answer before sending the next query.
		w.Flush()
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(errw, "dsr-query: read input: %v\n", err)
		return 1
	}
	if batch && len(queries) > 0 && !emit(queries) {
		return 1
	}
	if badLines > 0 {
		fmt.Fprintf(errw, "dsr-query: %d malformed line(s) skipped\n", badLines)
	}
	if failedQueries > 0 {
		fmt.Fprintf(errw, "dsr-query: %d query(ies) failed on unavailable partitions\n", failedQueries)
	}
	if badLines > 0 || failedQueries > 0 {
		return 1
	}
	return 0
}

// parseQuery parses "s1 s2 ... | t1 t2 ..." into a Query.
func parseQuery(line string) (core.Query, error) {
	var q core.Query
	left, right, found := strings.Cut(line, "|")
	if !found {
		return q, fmt.Errorf("want 'sources | targets', got %q", line)
	}
	var err error
	if q.S, err = parseIDs(left); err != nil {
		return q, fmt.Errorf("sources: %v", err)
	}
	if q.T, err = parseIDs(right); err != nil {
		return q, fmt.Errorf("targets: %v", err)
	}
	return q, nil
}

func parseIDs(s string) ([]graph.VertexID, error) {
	var ids []graph.VertexID
	for _, f := range strings.Fields(s) {
		v, err := strconv.ParseUint(f, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad vertex %q: %v", f, err)
		}
		ids = append(ids, graph.VertexID(v))
	}
	return ids, nil
}
