// Command dsr-query is the DSR coordinator CLI: it loads the graph,
// connects to a fleet of dsr-shard servers (or runs everything
// in-process when -shards is empty), and answers set-reachability
// queries read from stdin.
//
// Query format, one per line:
//
//	1 2 3 | 9 10
//
// sources left of '|', targets right, whitespace-separated; the answer
// (true/false) is printed per line. With -batch all queries are read
// first and shipped as one QueryBatch — one round-trip per shard for
// the entire workload.
//
//	dsr-query -graph edges.txt -shards 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -batch
//	dsr-query -graph edges.txt -k 4            # in-process, no servers needed
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"dsr/internal/core"
	"dsr/internal/graph"
)

func main() {
	log.SetPrefix("dsr-query: ")
	log.SetFlags(0)
	var (
		graphPath = flag.String("graph", "", "edge-list file (required): one 'u v' pair per line")
		shards    = flag.String("shards", "", "comma-separated shard addresses (shard i at position i); empty runs in-process")
		k         = flag.Int("k", 4, "partition count for in-process mode (ignored with -shards)")
		batch     = flag.Bool("batch", false, "read all queries first and answer them as one batch")
	)
	flag.Parse()
	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "dsr-query: -graph is required")
		flag.Usage()
		os.Exit(2)
	}

	g, err := graph.LoadEdgeListFile(*graphPath)
	if err != nil {
		log.Fatalf("load graph: %v", err)
	}
	var eng *core.Engine
	if *shards != "" {
		addrs := strings.Split(*shards, ",")
		eng, err = core.NewDistributed(g, addrs...)
		if err != nil {
			log.Fatalf("connect shards: %v", err)
		}
		log.Printf("connected to %d shards, %d boundary vertices", eng.NumPartitions(), eng.NumBoundary())
	} else {
		eng, err = core.New(g, *k)
		if err != nil {
			log.Fatalf("build engine: %v", err)
		}
		log.Printf("in-process engine: %d partitions, %d boundary vertices", eng.NumPartitions(), eng.NumBoundary())
	}
	defer eng.Close()

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	var queries []core.Query
	lineno := 0
	for in.Scan() {
		lineno++
		line := strings.TrimSpace(in.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		q, err := parseQuery(line)
		if err != nil {
			log.Fatalf("line %d: %v", lineno, err)
		}
		if *batch {
			queries = append(queries, q)
			continue
		}
		ans, err := eng.QueryBatchErr([]core.Query{q})
		if err != nil {
			log.Fatalf("query failed: %v", err)
		}
		fmt.Fprintln(out, ans[0])
	}
	if err := in.Err(); err != nil {
		log.Fatalf("read stdin: %v", err)
	}
	if *batch && len(queries) > 0 {
		answers, err := eng.QueryBatchErr(queries)
		if err != nil {
			log.Fatalf("batch failed: %v", err)
		}
		for _, a := range answers {
			fmt.Fprintln(out, a)
		}
	}
}

// parseQuery parses "s1 s2 ... | t1 t2 ..." into a Query.
func parseQuery(line string) (core.Query, error) {
	var q core.Query
	left, right, found := strings.Cut(line, "|")
	if !found {
		return q, fmt.Errorf("want 'sources | targets', got %q", line)
	}
	var err error
	if q.S, err = parseIDs(left); err != nil {
		return q, fmt.Errorf("sources: %v", err)
	}
	if q.T, err = parseIDs(right); err != nil {
		return q, fmt.Errorf("targets: %v", err)
	}
	return q, nil
}

func parseIDs(s string) ([]graph.VertexID, error) {
	var ids []graph.VertexID
	for _, f := range strings.Fields(s) {
		v, err := strconv.ParseUint(f, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad vertex %q: %v", f, err)
		}
		ids = append(ids, graph.VertexID(v))
	}
	return ids, nil
}
