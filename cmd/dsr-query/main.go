// Command dsr-query is the DSR coordinator CLI: it loads the graph,
// connects to a fleet of dsr-shard servers (or runs everything
// in-process when -shards is empty), and answers set-reachability
// queries read from stdin.
//
// Query format, one per line:
//
//	1 2 3 | 9 10
//
// sources left of '|', targets right, whitespace-separated; the answer
// (true/false) is printed per line. With -batch all queries are read
// first and shipped as one QueryBatch — one round-trip per shard for
// the entire workload. A malformed line is reported on stderr with its
// line number and skipped; the process still answers every well-formed
// query but exits non-zero, so pipelines can't silently lose queries.
//
//	dsr-query -graph edges.txt -shards 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -batch
//	dsr-query -graph edges.txt -k 4                        # in-process, no servers needed
//	dsr-query -graph edges.txt -k 4 -partitioner locality  # boundary-minimizing partitions
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"dsr/internal/core"
	"dsr/internal/graph"
	"dsr/internal/partition/locality"
)

func main() {
	log.SetPrefix("dsr-query: ")
	log.SetFlags(0)
	var (
		graphPath   = flag.String("graph", "", "edge-list file (required): one 'u v' pair per line")
		shards      = flag.String("shards", "", "comma-separated shard addresses (shard i at position i); empty runs in-process")
		k           = flag.Int("k", 4, "partition count for in-process mode (ignored with -shards)")
		batch       = flag.Bool("batch", false, "read all queries first and answer them as one batch")
		partitioner = flag.String("partitioner", "hash", "partitioning strategy: hash, range, or locality[:seed=N,rounds=N,balance=F,refine=N]; with -shards it must match the servers'")
	)
	flag.Parse()
	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "dsr-query: -graph is required")
		flag.Usage()
		os.Exit(2)
	}
	strat, err := locality.ParseSpec(*partitioner)
	if err != nil {
		log.Fatalf("-partitioner: %v", err)
	}

	g, err := graph.LoadEdgeListFile(*graphPath)
	if err != nil {
		log.Fatalf("load graph: %v", err)
	}
	var eng *core.Engine
	if *shards != "" {
		addrs := strings.Split(*shards, ",")
		eng, err = core.NewDistributedWithPartitioner(g, strat, addrs...)
		if err != nil {
			log.Fatalf("connect shards: %v", err)
		}
		log.Printf("connected to %d shards (%s-partitioned), %d boundary vertices",
			eng.NumPartitions(), strat.Name(), eng.NumBoundary())
	} else {
		eng, err = core.NewWithPartitioner(g, *k, strat)
		if err != nil {
			log.Fatalf("build engine: %v", err)
		}
		log.Printf("in-process engine: %d %s-partitioned partitions, %d boundary vertices",
			eng.NumPartitions(), strat.Name(), eng.NumBoundary())
	}
	// No defer: os.Exit skips deferred calls, so close explicitly.
	code := runQueries(eng, os.Stdin, os.Stdout, os.Stderr, *batch)
	eng.Close()
	os.Exit(code)
}

// runQueries drives one query session: reads queries from in, writes
// answers to out and per-line problems to errw, and returns the process
// exit code — 0 only if every line parsed and every query was answered.
// Malformed lines are skipped (with a per-line error naming the line
// number), not fatal: the remaining well-formed queries still get
// answers, but the exit code turns non-zero so callers can't mistake a
// partially-processed workload for a clean run.
func runQueries(eng *core.Engine, in io.Reader, out, errw io.Writer, batch bool) int {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	w := bufio.NewWriter(out)
	defer w.Flush()

	var queries []core.Query
	lineno, badLines := 0, 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		q, err := parseQuery(line)
		if err != nil {
			fmt.Fprintf(errw, "dsr-query: line %d: %v\n", lineno, err)
			badLines++
			continue
		}
		if batch {
			queries = append(queries, q)
			continue
		}
		ans, err := eng.QueryBatchErr([]core.Query{q})
		if err != nil {
			fmt.Fprintf(errw, "dsr-query: query failed: %v\n", err)
			return 1
		}
		fmt.Fprintln(w, ans[0])
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(errw, "dsr-query: read input: %v\n", err)
		return 1
	}
	if batch && len(queries) > 0 {
		answers, err := eng.QueryBatchErr(queries)
		if err != nil {
			fmt.Fprintf(errw, "dsr-query: batch failed: %v\n", err)
			return 1
		}
		for _, a := range answers {
			fmt.Fprintln(w, a)
		}
	}
	if badLines > 0 {
		fmt.Fprintf(errw, "dsr-query: %d malformed line(s) skipped\n", badLines)
		return 1
	}
	return 0
}

// parseQuery parses "s1 s2 ... | t1 t2 ..." into a Query.
func parseQuery(line string) (core.Query, error) {
	var q core.Query
	left, right, found := strings.Cut(line, "|")
	if !found {
		return q, fmt.Errorf("want 'sources | targets', got %q", line)
	}
	var err error
	if q.S, err = parseIDs(left); err != nil {
		return q, fmt.Errorf("sources: %v", err)
	}
	if q.T, err = parseIDs(right); err != nil {
		return q, fmt.Errorf("targets: %v", err)
	}
	return q, nil
}

func parseIDs(s string) ([]graph.VertexID, error) {
	var ids []graph.VertexID
	for _, f := range strings.Fields(s) {
		v, err := strconv.ParseUint(f, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad vertex %q: %v", f, err)
		}
		ids = append(ids, graph.VertexID(v))
	}
	return ids, nil
}
