module dsr

go 1.22
